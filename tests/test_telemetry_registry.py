"""Metrics registry: counters, gauges, histograms, child aggregation."""

import gc

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    process_registry,
)


class TestMetrics:
    def test_counter_increments(self):
        c = Counter("hits")
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge_last_write_wins(self):
        g = Gauge("k")
        g.set(5)
        g.set(3)
        assert g.value == 3

    def test_histogram_buckets_and_mean(self):
        h = Histogram("lat", bounds=(0.001, 0.01, 0.1))
        for v in (0.0005, 0.005, 0.005, 0.05, 5.0):
            h.observe(v)
        assert h.count == 5
        assert h.mean == pytest.approx(5.0605 / 5)
        data = h.as_dict()
        assert data["buckets"] == {
            "le_0.001": 1, "le_0.01": 2, "le_0.1": 1, "inf": 1
        }

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(0.1, 0.01))

    def test_histogram_merge_requires_equal_bounds(self):
        a = Histogram("lat", bounds=(0.1, 1.0))
        b = Histogram("lat", bounds=(0.2, 1.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_histogram_merge_sums(self):
        a = Histogram("lat", bounds=(0.1, 1.0))
        b = Histogram("lat", bounds=(0.1, 1.0))
        a.observe(0.05)
        b.observe(0.5)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.bucket_counts == [1, 1, 1]


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry(owner="t", standalone=True)
        assert reg.counter("a") is reg.counter("a")
        assert "a" in reg

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry(owner="t", standalone=True)
        reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry(owner="t", standalone=True)
        reg.counter("z").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("g").set(7.5)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["owner"] == "t"
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["gauges"]["g"] == 7.5
        assert snap["histograms"]["h"]["count"] == 1

    def test_live_child_merges_into_snapshot(self):
        parent = MetricsRegistry(owner="p", standalone=True)
        child = MetricsRegistry(owner="c", standalone=True)
        parent._adopt(child)
        parent.counter("hits").inc(1)
        child.counter("hits").inc(10)
        assert parent.snapshot()["counters"]["hits"] == 11
        # The child's own metrics are untouched by aggregation.
        assert child.counter("hits").value == 10

    def test_dead_child_folds_totals(self):
        parent = MetricsRegistry(owner="p", standalone=True)
        child = MetricsRegistry(owner="c", standalone=True)
        parent._adopt(child)
        child.counter("hits").inc(10)
        child.histogram("lat").observe(0.5)
        del child
        gc.collect()
        snap = parent.snapshot()
        assert snap["counters"]["hits"] == 10
        assert snap["histograms"]["lat"]["count"] == 1

    def test_counters_stay_monotone_across_child_death(self):
        parent = MetricsRegistry(owner="p", standalone=True)
        for _ in range(3):
            child = MetricsRegistry(owner="c", standalone=True)
            parent._adopt(child)
            child.counter("hits").inc(5)
            assert parent.snapshot()["counters"]["hits"] >= 5
            del child
            gc.collect()
        assert parent.snapshot()["counters"]["hits"] == 15

    def test_reset_detaches_children(self):
        parent = MetricsRegistry(owner="p", standalone=True)
        child = MetricsRegistry(owner="c", standalone=True)
        parent._adopt(child)
        child.counter("hits").inc(3)
        parent.reset()
        del child
        gc.collect()
        assert parent.snapshot()["counters"] == {}

    def test_reset_after_child_fold_leaves_no_stale_totals(self):
        # Regression: fold a dead child first, then reset — the folded
        # totals must not survive into the next measurement epoch.
        parent = MetricsRegistry(owner="p", standalone=True)
        child = MetricsRegistry(owner="c", standalone=True)
        parent._adopt(child)
        child.counter("hits").inc(7)
        child.histogram("lat").observe(0.25)
        del child
        gc.collect()
        assert parent.snapshot()["counters"]["hits"] == 7
        parent.reset()
        snap = parent.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_readopted_child_folds_exactly_once_after_reset(self):
        # Regression: reset() must detach the old finalizer, so adopting
        # the same child again leaves exactly one fold on death — a stale
        # finalizer would double-count the child's totals.
        parent = MetricsRegistry(owner="p", standalone=True)
        child = MetricsRegistry(owner="c", standalone=True)
        parent._adopt(child)
        child.counter("hits").inc(2)
        parent.reset()
        parent._adopt(child)
        child.counter("hits").inc(3)
        del child
        gc.collect()
        assert parent.snapshot()["counters"]["hits"] == 5

    def test_process_registry_is_a_singleton(self):
        assert process_registry() is process_registry()

    def test_component_registries_attach_to_process(self):
        process_registry().reset()
        reg = MetricsRegistry(owner="component")
        reg.counter("component.thing").inc(4)
        assert process_registry().snapshot()["counters"][
            "component.thing"
        ] == 4
        process_registry().reset()
