"""Shared fixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import census, dataset_1, dataset_2, patients


@pytest.fixture(scope="session")
def patients_300():
    """A fixed patient population, session-cached (read-only)."""
    return patients(300, seed=7)


@pytest.fixture(scope="session")
def census_300():
    """A fixed census population, session-cached (read-only)."""
    return census(300, seed=7)


@pytest.fixture
def rng():
    """A fresh deterministic numpy generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def ds1():
    """Paper Table 1, Dataset 1."""
    return dataset_1()


@pytest.fixture
def ds2():
    """Paper Table 1, Dataset 2."""
    return dataset_2()
