"""Tests for generalization hierarchies."""

import numpy as np
import pytest

from repro.data import SUPPRESSED, IntervalHierarchy, TaxonomyHierarchy


class TestIntervalHierarchy:
    def test_level_zero_identity(self):
        h = IntervalHierarchy(base_width=5, n_levels=3)
        values = [161.0, 174.5]
        assert np.array_equal(h.generalize(values, 0), values)

    def test_binning(self):
        h = IntervalHierarchy(base_width=5, n_levels=3)
        out = h.generalize([163.0, 167.0], 1)
        assert out[0] == "[160,165)"
        assert out[1] == "[165,170)"

    def test_width_doubles(self):
        h = IntervalHierarchy(base_width=5, n_levels=3)
        assert h.width_at(1) == 5
        assert h.width_at(2) == 10
        assert h.width_at(3) == 20

    def test_top_level_suppresses(self):
        h = IntervalHierarchy(base_width=5, n_levels=2)
        out = h.generalize([1.0, 2.0], h.levels - 1)
        assert all(v == SUPPRESSED for v in out)

    def test_levels_counts_raw_and_suppression(self):
        h = IntervalHierarchy(base_width=5, n_levels=3)
        assert h.levels == 5  # raw + 3 interval levels + suppression

    def test_out_of_range_level(self):
        h = IntervalHierarchy(base_width=5, n_levels=2)
        with pytest.raises(ValueError, match="level"):
            h.generalize([1.0], h.levels)

    def test_same_bin_merges(self):
        h = IntervalHierarchy(base_width=10, n_levels=2)
        out = h.generalize([161.0, 168.0], 1)
        assert out[0] == out[1] == "[160,170)"

    def test_interval_bounds_round_trip(self):
        h = IntervalHierarchy(base_width=5, n_levels=2)
        label = h.generalize([163.0], 1)[0]
        lo, hi = h.interval_bounds(label)
        assert lo <= 163.0 < hi

    def test_suppressed_bounds_are_infinite(self):
        h = IntervalHierarchy(base_width=5)
        lo, hi = h.interval_bounds(SUPPRESSED)
        assert lo == float("-inf") and hi == float("inf")

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IntervalHierarchy(base_width=0)
        with pytest.raises(ValueError):
            IntervalHierarchy(base_width=5, n_levels=0)

    def test_origin_shifts_bins(self):
        h = IntervalHierarchy(base_width=5, n_levels=1, origin=2.0)
        assert h.generalize([2.0], 1)[0] == "[2,7)"


class TestTaxonomyHierarchy:
    @pytest.fixture
    def geo(self):
        return TaxonomyHierarchy(
            {
                "Tarragona": "Catalonia",
                "Barcelona": "Catalonia",
                "Catalonia": "Spain",
                "Madrid": "Spain",
            }
        )

    def test_levels(self, geo):
        # Tarragona -> Catalonia -> Spain -> * is 4 levels.
        assert geo.levels == 4

    def test_single_step(self, geo):
        assert geo.generalize_value("Tarragona", 1) == "Catalonia"
        assert geo.generalize_value("Tarragona", 2) == "Spain"

    def test_clamped_at_root(self, geo):
        assert geo.generalize_value("Tarragona", 99) == SUPPRESSED

    def test_unknown_value(self, geo):
        assert geo.generalize_value("Paris", 0) == "Paris"
        assert geo.generalize_value("Paris", 1) == SUPPRESSED

    def test_vectorized(self, geo):
        out = geo.generalize(["Tarragona", "Madrid"], 1)
        assert list(out) == ["Catalonia", "Spain"]

    def test_leaves_under(self, geo):
        assert geo.leaves_under("Catalonia") == {"Tarragona", "Barcelona",
                                                 "Catalonia"}
        assert "Madrid" in geo.leaves_under(SUPPRESSED)

    def test_cycle_detected(self):
        with pytest.raises(ValueError, match="cycle"):
            TaxonomyHierarchy({"a": "b", "b": "a"})
