"""Tests for secure ID3 over horizontally partitioned data."""

import random

import numpy as np
import pytest

from repro.data import census, horizontal_partition
from repro.smc import SecureID3, plaintext_exposure, pooled_id3


@pytest.fixture(scope="module")
def labeled_census():
    pop = census(240, seed=5)
    rich = np.where(pop["income"] > np.median(pop["income"]), "Y", "N")
    return pop.project(["sex", "education", "disease"]).with_column("rich", rich)


FEATURES = ["sex", "education", "disease"]


class TestCorrectness:
    def test_secure_equals_pooled(self, labeled_census):
        """The secure tree must match the trusted-third-party tree."""
        parts = horizontal_partition(labeled_census, 3, seed=1)
        secure = SecureID3(FEATURES, "rich", max_depth=3)
        secure.fit(parts, random.Random(2))
        pooled = pooled_id3(labeled_census, FEATURES, "rich", max_depth=3)
        assert np.array_equal(
            secure.predict(labeled_census), pooled.predict(labeled_census)
        )

    def test_partition_count_invariant(self, labeled_census):
        """2 parties vs 4 parties: same global counts, same tree."""
        two = SecureID3(FEATURES, "rich", max_depth=3)
        two.fit(horizontal_partition(labeled_census, 2, seed=3), random.Random(4))
        four = SecureID3(FEATURES, "rich", max_depth=3)
        four.fit(horizontal_partition(labeled_census, 4, seed=3), random.Random(5))
        assert np.array_equal(
            two.predict(labeled_census), four.predict(labeled_census)
        )

    def test_predictions_are_labels(self, labeled_census):
        model = pooled_id3(labeled_census, FEATURES, "rich", max_depth=2)
        assert set(model.predict(labeled_census)) <= {"Y", "N"}

    def test_unseen_value_falls_back_to_majority(self, labeled_census):
        model = pooled_id3(labeled_census, FEATURES, "rich", max_depth=2)
        prediction = model.predict_one(
            {"sex": "M", "education": "???", "disease": "flu"}
        )
        assert prediction in {"Y", "N"}

    def test_better_than_majority_baseline(self, labeled_census):
        model = pooled_id3(labeled_census, FEATURES, "rich", max_depth=3)
        pred = model.predict(labeled_census)
        acc = float(np.mean(pred == labeled_census["rich"]))
        majority = max(
            float(np.mean(labeled_census["rich"] == "Y")),
            float(np.mean(labeled_census["rich"] == "N")),
        )
        assert acc >= majority


class TestPrivacy:
    def test_no_raw_record_values_on_wire(self, labeled_census):
        parts = horizontal_partition(labeled_census, 3, seed=6)
        model = SecureID3(FEATURES, "rich", max_depth=2)
        model.fit(parts, random.Random(7))
        # Private "values" here are row indices/categories, which are not
        # numeric — check instead that every message is a masked partial sum
        # (uniformly random mod 2^64, hence almost surely > any count).
        small = [v for v in model.transcript.all_numbers() if 0 <= v <= 240]
        assert len(small) / max(len(model.transcript), 1) < 0.05

    def test_count_queries_logged(self, labeled_census):
        parts = horizontal_partition(labeled_census, 3, seed=8)
        model = SecureID3(FEATURES, "rich", max_depth=2)
        model.fit(parts, random.Random(9))
        assert model.count_queries > 0
        assert len(model.transcript) >= model.count_queries  # >= 1 msg each

    def test_needs_a_party(self):
        with pytest.raises(ValueError):
            SecureID3(FEATURES, "rich").fit([])
