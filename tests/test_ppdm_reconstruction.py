"""Tests for the AS distribution-reconstruction algorithm."""

import numpy as np
import pytest

from repro.ppdm import (
    NoiseModel,
    posterior_cells,
    reconstruct_joint,
    reconstruct_univariate,
    reconstruction_error,
)


@pytest.fixture(scope="module")
def bimodal():
    """A sharply bimodal original sample — reconstruction must find both
    modes that raw randomized data blur together."""
    rng = np.random.default_rng(42)
    return np.concatenate([
        rng.normal(-5.0, 0.5, 400),
        rng.normal(5.0, 0.5, 400),
    ])


class TestUnivariate:
    def test_beats_naive_histogram(self, bimodal):
        model = NoiseModel("gaussian", 2.0)
        rng = np.random.default_rng(1)
        randomized = bimodal + model.sample(bimodal.size, rng)
        dist = reconstruct_univariate(randomized, model, bins=40)
        err_rec = reconstruction_error(bimodal, dist)
        naive_counts, _ = np.histogram(randomized, bins=dist.edges[0])
        truth_counts, _ = np.histogram(bimodal, bins=dist.edges[0])
        err_naive = 0.5 * np.abs(
            truth_counts / truth_counts.sum()
            - naive_counts / naive_counts.sum()
        ).sum()
        assert err_rec < err_naive / 2

    def test_recovers_bimodality(self, bimodal):
        model = NoiseModel("gaussian", 2.0)
        randomized = bimodal + model.sample(
            bimodal.size, np.random.default_rng(2)
        )
        dist = reconstruct_univariate(randomized, model, bins=40)
        centers = dist.centers()
        # Mass near the true modes must dominate mass near zero.
        near_modes = dist.probabilities[np.abs(np.abs(centers) - 5) < 1].sum()
        near_zero = dist.probabilities[np.abs(centers) < 1].sum()
        assert near_modes > 5 * near_zero

    def test_probabilities_normalized(self, bimodal):
        model = NoiseModel("gaussian", 1.0)
        randomized = bimodal + model.sample(
            bimodal.size, np.random.default_rng(3)
        )
        dist = reconstruct_univariate(randomized, model, bins=30)
        assert dist.probabilities.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(dist.probabilities >= 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reconstruct_univariate([], NoiseModel("gaussian", 1.0))

    def test_marginal_of_univariate(self, bimodal):
        model = NoiseModel("gaussian", 1.0)
        randomized = bimodal[:100] + model.sample(100, np.random.default_rng(4))
        dist = reconstruct_univariate(randomized, model, bins=10)
        assert np.allclose(dist.marginal(0), dist.probabilities)


class TestJoint:
    def test_shape_and_normalization(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0, 10, size=(120, 3))
        models = [NoiseModel("gaussian", 1.0)] * 3
        w = x + np.column_stack([m.sample(120, rng) for m in models])
        dist = reconstruct_joint(w, models, bins=4, max_iter=30)
        assert dist.probabilities.shape == (4, 4, 4)
        assert dist.probabilities.sum() == pytest.approx(1.0, abs=1e-6)

    def test_input_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            reconstruct_joint(np.zeros(5), [NoiseModel("gaussian", 1.0)])
        with pytest.raises(ValueError, match="one noise model"):
            reconstruct_joint(np.zeros((5, 2)), [NoiseModel("gaussian", 1.0)])

    def test_cell_index_clipping(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(0, 1, size=(50, 2))
        models = [NoiseModel("gaussian", 0.1)] * 2
        dist = reconstruct_joint(x, models, bins=3, max_iter=5)
        assert dist.cell_index([-100, -100]) == (0, 0)
        assert dist.cell_index([100, 100]) == (2, 2)

    def test_posterior_cells_confidence(self):
        rng = np.random.default_rng(7)
        # Two tight clusters, tiny noise: MAP cells must be near-certain.
        x = np.vstack([
            rng.normal(0, 0.05, size=(40, 2)),
            rng.normal(5, 0.05, size=(40, 2)),
        ])
        models = [NoiseModel("gaussian", 0.2)] * 2
        w = x + np.column_stack([m.sample(80, rng) for m in models])
        dist = reconstruct_joint(w, models, bins=4, max_iter=40)
        cells = posterior_cells(w, models, dist)
        confidences = [c for _, c in cells]
        assert np.mean(confidences) > 0.9
