"""Tests pinning every property the paper asserts about Table 1."""

import numpy as np

from repro.data import PATIENT_SCHEMA, dataset_1, dataset_2, format_table_1
from repro.sdc import anonymity_level, is_k_anonymous


class TestDataset1:
    def test_ten_records(self, ds1):
        assert ds1.n_rows == 10

    def test_spontaneously_3_anonymous(self, ds1):
        """Paper: 'the dataset turns out to spontaneously satisfy
        k-anonymity for k = 3 with respect to (height, weight)'."""
        assert is_k_anonymous(ds1, 3, ["height", "weight"])
        assert anonymity_level(ds1, ["height", "weight"]) == 3

    def test_all_hypertensive(self, ds1):
        """Paper: all patients suffered from hypertension (syst >= 140)."""
        assert np.all(ds1["blood_pressure"] >= 140)

    def test_aids_column_verbatim(self, ds1):
        assert list(ds1["aids"]) == list("YNNNYNNYNN")

    def test_schema_roles(self, ds1):
        assert ds1.quasi_identifiers == ("height", "weight")
        assert set(ds1.confidential_attributes) == {"blood_pressure", "aids"}


class TestDataset2:
    def test_ten_records(self, ds2):
        assert ds2.n_rows == 10

    def test_not_3_anonymous(self, ds2):
        """Paper: 'The new dataset is no longer 3-anonymous'."""
        assert not is_k_anonymous(ds2, 3, ["height", "weight"])
        assert anonymity_level(ds2, ["height", "weight"]) == 1

    def test_unique_small_heavy_individual(self, ds2):
        """Paper: exactly one individual with height < 165 and
        weight > 105, whose average blood pressure is 146."""
        mask = (ds2["height"] < 165) & (ds2["weight"] > 105)
        assert int(mask.sum()) == 1
        assert float(ds2["blood_pressure"][mask][0]) == 146.0

    def test_all_hypertensive(self, ds2):
        assert np.all(ds2["blood_pressure"] >= 140)

    def test_aids_column_verbatim(self, ds2):
        assert list(ds2["aids"]) == list("NYNNNYNYNN")


def test_format_table_1_renders_both():
    text = format_table_1()
    assert "data set no. 1" in text
    assert "146" in text
    assert len(text.splitlines()) == 12  # title + header + 10 rows


def test_shared_schema_object():
    assert dataset_1().schema == PATIENT_SCHEMA
    assert dataset_2().schema == PATIENT_SCHEMA
