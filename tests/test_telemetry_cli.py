"""The ``repro telemetry`` CLI group and the ``repro observe`` command."""

import pytest

from repro.cli import main
from repro.telemetry import instrument as tele


@pytest.fixture(autouse=True)
def clean_telemetry():
    tele.disable()
    tele.reset_metrics()
    yield
    tele.disable()
    tele.reset_metrics()


class TestSmokeCommand:
    def test_smoke_writes_trace_and_exits_zero(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        assert main(["telemetry", "smoke", "--out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "telemetry smoke OK" in out
        assert trace.exists()


class TestReportCommand:
    def test_report_summarizes_a_capture(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        main(["telemetry", "smoke", "--out", str(trace)])
        capsys.readouterr()
        assert main(["telemetry", "report", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "qdb.query" in out
        assert "refusal decisions:" in out
        assert "sum-audit" in out

    def test_report_missing_file_is_an_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["telemetry", "report", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_flags_corrupt_trace(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"type":"meta","schema":1}\n{"type":"span"}\n')
        assert main(["telemetry", "report", str(trace)]) == 1
        assert "error:" in capsys.readouterr().err


class TestObserveCommand:
    def test_observe_smoke_passes_on_the_golden_trace(self, capsys):
        assert main(["observe", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "observe smoke OK" in out

    def test_observe_replays_a_capture_with_follow(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        main(["telemetry", "smoke", "--out", str(trace)])
        capsys.readouterr()
        assert main(["observe", str(trace), "--follow"]) == 0
        out = capsys.readouterr().out
        assert "privacy observatory" in out
        assert "tracker-probe" in out
        assert "step " in out  # the --follow narration lines

    def test_observe_live_mode_captures_then_replays(self, tmp_path, capsys):
        out_path = tmp_path / "live.jsonl"
        assert main([
            "observe", "--out", str(out_path), "--records", "100",
            "--seed", "3",
        ]) == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "alerts fired:" in out

    def test_observe_exports_metrics(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        main(["telemetry", "smoke", "--out", str(trace)])
        metrics = tmp_path / "metrics.txt"
        assert main([
            "observe", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        text = metrics.read_text()
        assert text.endswith("# EOF\n")

    def test_observe_missing_trace_is_an_error(self, tmp_path, capsys):
        assert main(["observe", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestDashboardCommand:
    def test_dashboard_renders_meters(self, capsys):
        assert main([
            "telemetry", "dashboard", "--records", "80", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "privacy meters" in out
        assert "respondent" in out
        assert "operational metrics" in out
