"""The ``repro telemetry`` CLI group and the ``repro observe`` command."""

import pytest

from repro.cli import main
from repro.telemetry import instrument as tele


@pytest.fixture(autouse=True)
def clean_telemetry():
    tele.disable()
    tele.reset_metrics()
    yield
    tele.disable()
    tele.reset_metrics()


class TestSmokeCommand:
    def test_smoke_writes_trace_and_exits_zero(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        assert main(["telemetry", "smoke", "--out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "telemetry smoke OK" in out
        assert trace.exists()


class TestReportCommand:
    def test_report_summarizes_a_capture(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        main(["telemetry", "smoke", "--out", str(trace)])
        capsys.readouterr()
        assert main(["telemetry", "report", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "qdb.query" in out
        assert "refusal decisions:" in out
        assert "sum-audit" in out

    def test_report_missing_file_is_an_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["telemetry", "report", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_flags_corrupt_trace(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"type":"meta","schema":1}\n{"type":"span"}\n')
        assert main(["telemetry", "report", str(trace)]) == 1
        assert "error:" in capsys.readouterr().err


class TestObserveCommand:
    def test_observe_smoke_passes_on_the_golden_trace(self, capsys):
        assert main(["observe", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "observe smoke OK" in out

    def test_observe_replays_a_capture_with_follow(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        main(["telemetry", "smoke", "--out", str(trace)])
        capsys.readouterr()
        assert main(["observe", str(trace), "--follow"]) == 0
        out = capsys.readouterr().out
        assert "privacy observatory" in out
        assert "tracker-probe" in out
        assert "step " in out  # the --follow narration lines

    def test_observe_live_mode_captures_then_replays(self, tmp_path, capsys):
        out_path = tmp_path / "live.jsonl"
        assert main([
            "observe", "--out", str(out_path), "--records", "100",
            "--seed", "3",
        ]) == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "alerts fired:" in out

    def test_observe_exports_metrics(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        main(["telemetry", "smoke", "--out", str(trace)])
        metrics = tmp_path / "metrics.txt"
        assert main([
            "observe", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        text = metrics.read_text()
        assert text.endswith("# EOF\n")

    def test_observe_missing_trace_is_an_error(self, tmp_path, capsys):
        assert main(["observe", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestDashboardCommand:
    def test_dashboard_renders_meters(self, capsys):
        assert main([
            "telemetry", "dashboard", "--records", "80", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "privacy meters" in out
        assert "respondent" in out
        assert "operational metrics" in out


class TestObserveLimitAndInterrupt:
    def test_follow_narration_respects_limit(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        main(["telemetry", "smoke", "--out", str(trace)])
        capsys.readouterr()
        assert main([
            "observe", str(trace), "--follow", "--limit", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "narration capped at --limit 1" in out
        narration = [line for line in out.splitlines()
                     if line.startswith("  step ")]
        assert len(narration) == 1

    def test_keyboard_interrupt_exits_clean_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_observe_dispatch", boom)
        assert main(["observe", "--smoke"]) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err


class TestObserveServeAndFollowRouting:
    def test_serve_smoke_route_reports_ok(self, monkeypatch, capsys):
        import repro.telemetry.observatory.service as service_mod

        monkeypatch.setattr(
            service_mod, "run_serve_smoke",
            lambda **kwargs: {"ops": 1, "alerts": ["tracker-probe"]},
        )
        assert main(["observe", "serve", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "observe serve smoke OK" in out

    def test_serve_smoke_route_reports_failure(self, monkeypatch, capsys):
        import repro.telemetry.observatory.service as service_mod
        from repro.telemetry.observatory.service import ServeSmokeError

        def fail(**kwargs):
            raise ServeSmokeError("no tracker alert")

        monkeypatch.setattr(service_mod, "run_serve_smoke", fail)
        assert main(["observe", "serve", "--smoke"]) == 1
        assert "observe serve smoke FAILED" in capsys.readouterr().err

    def test_follow_unreachable_service_is_a_clean_error(self, capsys):
        # A port from the ephemeral range nothing is listening on.
        assert main(["observe", "http://127.0.0.1:9", "--limit", "1"]) == 1
        err = capsys.readouterr().err
        assert "cannot reach" in err
        assert "Traceback" not in err

    def test_follow_live_service_disconnects_at_limit(self, capsys):
        import threading

        from repro.telemetry import instrument
        from repro.telemetry.observatory.service import (
            ObservatoryService,
            create_server,
        )

        service = ObservatoryService(emit_every=4)
        server = create_server(service)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        with instrument.session() as tracer:
            service.attach(tracer)
            try:
                # Fire the stock refusal-rate rule before the client
                # connects; the ring replays it to the late subscriber.
                for _ in range(16):
                    with instrument.span("qdb.query", refused=True,
                                         query_set_size=2):
                        pass
                assert main([
                    "observe", f"http://{host}:{port}", "--limit", "1",
                ]) == 0
            finally:
                service.close()
                server.shutdown()
                server.server_close()
        out = capsys.readouterr().out
        assert "connected: schema 2" in out
        assert "qdb-refusal-rate" in out
        assert "--limit 1 reached" in out
