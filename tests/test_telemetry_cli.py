"""The ``repro telemetry`` CLI group: report, dashboard, smoke."""

import pytest

from repro.cli import main
from repro.telemetry import instrument as tele


@pytest.fixture(autouse=True)
def clean_telemetry():
    tele.disable()
    tele.reset_metrics()
    yield
    tele.disable()
    tele.reset_metrics()


class TestSmokeCommand:
    def test_smoke_writes_trace_and_exits_zero(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        assert main(["telemetry", "smoke", "--out", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "telemetry smoke OK" in out
        assert trace.exists()


class TestReportCommand:
    def test_report_summarizes_a_capture(self, tmp_path, capsys):
        trace = tmp_path / "smoke.jsonl"
        main(["telemetry", "smoke", "--out", str(trace)])
        capsys.readouterr()
        assert main(["telemetry", "report", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "qdb.query" in out
        assert "refusal decisions:" in out
        assert "sum-audit" in out

    def test_report_missing_file_is_an_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["telemetry", "report", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_flags_corrupt_trace(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"type":"meta","schema":1}\n{"type":"span"}\n')
        assert main(["telemetry", "report", str(trace)]) == 1
        assert "error:" in capsys.readouterr().err


class TestDashboardCommand:
    def test_dashboard_renders_meters(self, capsys):
        assert main([
            "telemetry", "dashboard", "--records", "80", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "privacy meters" in out
        assert "respondent" in out
        assert "operational metrics" in out
