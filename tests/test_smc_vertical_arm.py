"""Tests for secure vertically partitioned association-rule mining."""

import random

import pytest

from repro.data import market_baskets
from repro.mining import association_rules, itemset_support
from repro.smc import SecureVerticalMiner, VerticalItemBase


@pytest.fixture(scope="module")
def split_baskets():
    tx = market_baskets(150, n_items=10, seed=4)
    alice = VerticalItemBase.from_transactions(tx, [f"i{j}" for j in range(5)])
    bob = VerticalItemBase.from_transactions(
        tx, [f"i{j}" for j in range(5, 10)]
    )
    return tx, alice, bob


def _miner(alice, bob, seed=1):
    return SecureVerticalMiner(alice, bob, key_bits=128,
                               rng=random.Random(seed))


class TestItemBase:
    def test_indicator_shapes(self, split_baskets):
        tx, alice, _bob = split_baskets
        assert alice.indicators.shape == (len(tx), 5)
        assert set(alice.indicators.reshape(-1)) <= {0, 1}

    def test_local_indicator_and(self, split_baskets):
        tx, alice, _bob = split_baskets
        joint = alice.local_indicator(["i0", "i1"])
        expected = [1 if {"i0", "i1"} <= t else 0 for t in tx]
        assert joint.tolist() == expected

    def test_foreign_items_ignored(self, split_baskets):
        _tx, alice, _bob = split_baskets
        assert alice.local_indicator(["i9"]).all()  # not Alice's item


class TestSecureSupport:
    def test_cross_party_support_exact(self, split_baskets):
        tx, alice, bob = split_baskets
        miner = _miner(alice, bob)
        for itemset in ({"i0", "i5"}, {"i1", "i6"}, {"i0", "i1", "i5"}):
            assert miner.support(sorted(itemset)) == pytest.approx(
                itemset_support(tx, itemset)
            )

    def test_single_party_support_is_local(self, split_baskets):
        tx, alice, bob = split_baskets
        miner = _miner(alice, bob)
        value = miner.support(["i0", "i1"])
        assert value == pytest.approx(itemset_support(tx, {"i0", "i1"}))
        assert miner.secure_products == 0  # no protocol needed

    def test_unknown_item(self, split_baskets):
        _tx, alice, bob = split_baskets
        with pytest.raises(KeyError):
            _miner(alice, bob).support(["zz"])

    def test_overlapping_items_rejected(self, split_baskets):
        _tx, alice, _bob = split_baskets
        with pytest.raises(ValueError, match="both parties"):
            SecureVerticalMiner(alice, alice)

    def test_misaligned_transactions_rejected(self, split_baskets):
        tx, alice, _bob = split_baskets
        short = VerticalItemBase.from_transactions(tx[:10], ["i9"])
        with pytest.raises(ValueError, match="same transactions"):
            SecureVerticalMiner(alice, short)


class TestRuleMining:
    def test_rules_match_plaintext_miner(self, split_baskets):
        tx, alice, bob = split_baskets
        miner = _miner(alice, bob)
        secure_rules = miner.mine_pairs(0.2, 0.6)
        plain = association_rules(tx, 0.2, 0.6, max_size=2)
        cross_plain = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent)))
            for r in plain
            if any(i in alice.items for i in r.itemset)
            and any(i in bob.items for i in r.itemset)
        }
        cross_secure = {
            (tuple(sorted(r.antecedent)), tuple(sorted(r.consequent)))
            for r in secure_rules
        }
        assert cross_secure == cross_plain

    def test_check_rule(self, split_baskets):
        tx, alice, bob = split_baskets
        miner = _miner(alice, bob)
        rule = miner.check_rule(["i0"], ["i5"], 0.05, 0.1)
        assert rule is not None
        assert rule.support == pytest.approx(itemset_support(tx, {"i0", "i5"}))

    def test_check_rule_below_threshold(self, split_baskets):
        _tx, alice, bob = split_baskets
        miner = _miner(alice, bob)
        assert miner.check_rule(["i0"], ["i5"], 0.99, 0.99) is None

    def test_no_raw_indicators_on_wire(self, split_baskets):
        _tx, alice, bob = split_baskets
        miner = _miner(alice, bob)
        miner.support(["i0", "i5"])
        # Indicator vectors are 0/1; nothing that small on the wire.
        small = [v for v in miner.transcript.all_numbers() if v in (0.0, 1.0)]
        assert not small
