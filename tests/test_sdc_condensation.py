"""Tests for condensation masking."""

import numpy as np
import pytest

from repro.sdc import Condensation, group_statistics
from repro.sdc.microaggregation import mdav_groups


class TestGroupStatistics:
    def test_moments(self):
        matrix = np.array([[0.0, 0.0], [2.0, 2.0], [4.0, 4.0]])
        stats = group_statistics(matrix, [np.arange(3)])
        assert np.allclose(stats[0].mean, [2.0, 2.0])
        assert stats[0].size == 3
        assert stats[0].covariance.shape == (2, 2)

    def test_singleton_group_zero_cov(self):
        matrix = np.array([[1.0, 2.0]])
        stats = group_statistics(matrix, [np.array([0])])
        assert np.allclose(stats[0].covariance, 0.0)


class TestCondensationMasking:
    def test_covariance_preserved(self, patients_300, rng):
        """Paper Section 2 / [1]: 'the covariance structure of the original
        attributes is preserved'."""
        release = Condensation(10).mask(patients_300, rng)
        cols = ["height", "weight", "age"]
        cov_orig = np.cov(patients_300.matrix(cols), rowvar=False)
        cov_rel = np.cov(release.matrix(cols), rowvar=False)
        rel_err = np.linalg.norm(cov_orig - cov_rel) / np.linalg.norm(cov_orig)
        assert rel_err < 0.15

    def test_means_preserved_exactly_per_group(self, patients_300, rng):
        release = Condensation(10).mask(patients_300, rng)
        for col in ("height", "weight"):
            assert release[col].mean() == pytest.approx(
                patients_300[col].mean(), abs=1e-6
            )

    def test_values_are_synthetic(self, patients_300, rng):
        release = Condensation(10).mask(patients_300, rng)
        overlap = np.mean(
            np.isin(release["height"], patients_300["height"])
        )
        assert overlap < 0.2  # almost no original value survives

    def test_deterministic_given_rng(self, patients_300):
        a = Condensation(5).mask(patients_300, np.random.default_rng(42))
        b = Condensation(5).mask(patients_300, np.random.default_rng(42))
        assert a == b

    def test_confidential_untouched(self, patients_300, rng):
        release = Condensation(5).mask(patients_300, rng)
        assert np.array_equal(release["aids"], patients_300["aids"])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            Condensation(0)

    def test_no_numeric_columns_noop(self):
        from repro.data import Dataset
        ds = Dataset({"c": ["a", "b"]})
        assert Condensation(2, columns=[]).mask(ds) == ds


def test_condensation_uses_same_grouping_as_mdav(patients_300):
    """Condensation is 'a special case of multivariate microaggregation'
    (paper Section 2): it partitions with the same MDAV groups."""
    matrix = patients_300.matrix(["height", "weight", "age"])
    groups = mdav_groups(matrix, 10)
    assert all(10 <= g.size <= 19 for g in groups)
