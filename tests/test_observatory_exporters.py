"""Snapshot exporters: OpenMetrics round-trip and JSONL persistence."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.observatory import (
    OPENMETRICS_CONTENT_TYPE,
    parse_openmetrics,
    read_snapshot_jsonl,
    render_openmetrics,
    sanitize_name,
    sanitized_snapshot,
    split_metric_name,
    write_snapshot_jsonl,
)


def _populated_registry():
    """A registry exercising every exporter feature: bracketed counters,
    gauges with float values, and a multi-bucket histogram."""
    reg = MetricsRegistry(owner="test", standalone=True)
    reg.counter("qdb.queries_asked").inc(42)
    reg.counter("smc.payload_bytes[ring-sum|P0->P1]").inc(24)
    reg.counter("smc.payload_bytes[ring-sum|P1->P2]").inc(24)
    reg.counter("smc.payload_bytes").inc(48)
    reg.gauge("pir.user_privacy").set(0.75)
    h = reg.histogram("qdb.query_seconds", bounds=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.002, 0.05, 0.5):
        h.observe(value)
    return reg


class TestNameMapping:
    def test_sanitize_name(self):
        assert sanitize_name("qdb.mask_cache.hits") == "qdb_mask_cache_hits"
        assert sanitize_name("3d") == "_3d"
        assert sanitize_name("") == "_"

    def test_split_metric_name(self):
        assert split_metric_name("a.b[x|y->z]") == ("a.b", "x|y->z")
        assert split_metric_name("a.b") == ("a.b", None)


class TestOpenMetricsRoundTrip:
    def test_parse_back_equals_sanitized_snapshot(self):
        # The exporter contract: export → parse is the identity on the
        # sanitized snapshot (the text format cannot carry the owner).
        snapshot = _populated_registry().snapshot()
        text = render_openmetrics(snapshot)
        expected = sanitized_snapshot(snapshot)
        expected.pop("owner", None)
        assert parse_openmetrics(text) == expected

    def test_exposition_format_essentials(self):
        text = render_openmetrics(_populated_registry().snapshot())
        assert text.endswith("# EOF\n")
        assert "# TYPE repro_qdb_queries_asked counter" in text
        assert "repro_qdb_queries_asked_total 42" in text
        # Bracketed counters become a tag label under the family name.
        assert 'repro_smc_payload_bytes_total{tag="ring-sum|P0->P1"} 24' in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'repro_qdb_query_seconds_bucket{le="+Inf"} 5' in text
        assert "repro_qdb_query_seconds_count 5" in text

    def test_float_values_round_trip_exactly(self):
        snapshot = {"counters": {}, "gauges": {"g": 0.1 + 0.2},
                    "histograms": {}}
        parsed = parse_openmetrics(render_openmetrics(snapshot))
        assert parsed["gauges"]["g"] == 0.1 + 0.2

    def test_namespace_is_configurable(self):
        text = render_openmetrics(
            {"counters": {"hits": 1}, "gauges": {}, "histograms": {}},
            namespace="privacy",
        )
        assert "privacy_hits_total 1" in text
        assert parse_openmetrics(text, namespace="privacy") == {
            "counters": {"hits": 1}, "gauges": {}, "histograms": {},
        }

    def test_untyped_sample_is_rejected(self):
        with pytest.raises(ValueError, match="has no TYPE"):
            parse_openmetrics("mystery_metric 3\n# EOF\n")

    def test_scrape_content_type_is_the_openmetrics_one(self):
        # The constant the service's /metrics endpoint serves verbatim;
        # the version parameter is what distinguishes an OpenMetrics
        # scrape from plain Prometheus text exposition.
        assert OPENMETRICS_CONTENT_TYPE == (
            "application/openmetrics-text; version=1.0.0; charset=utf-8"
        )

    def test_rendered_exposition_has_exactly_one_trailing_eof(self):
        text = render_openmetrics(_populated_registry().snapshot())
        lines = [line for line in text.splitlines() if line.strip()]
        assert lines[-1] == "# EOF"
        assert lines.count("# EOF") == 1

    def test_truncated_scrape_is_rejected(self):
        # A scrape cut off mid-transfer loses the terminator; parsing it
        # as if complete would silently under-report.
        text = render_openmetrics(_populated_registry().snapshot())
        truncated = text[: text.rindex("# EOF")]
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics(truncated)

    def test_double_exposition_is_rejected(self):
        # Two concatenated scrapes carry a mid-document EOF — one scrape
        # must be one exposition.
        text = render_openmetrics(_populated_registry().snapshot())
        with pytest.raises(ValueError, match="exactly one"):
            parse_openmetrics(text + text)


class TestJsonlSnapshot:
    def test_round_trip_is_exact(self, tmp_path):
        snapshot = _populated_registry().snapshot()
        path = tmp_path / "metrics.jsonl"
        written = write_snapshot_jsonl(snapshot, path)
        assert written == len(snapshot["counters"]) + len(
            snapshot["gauges"]
        ) + len(snapshot["histograms"])
        back = read_snapshot_jsonl(path)
        assert back["owner"] == "test"
        assert back["counters"] == snapshot["counters"]
        assert back["gauges"] == snapshot["gauges"]
        assert back["histograms"] == snapshot["histograms"]

    def test_meta_line_carries_schema_version(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        write_snapshot_jsonl(
            {"counters": {}, "gauges": {}, "histograms": {}}, path
        )
        first = path.read_text().splitlines()[0]
        assert '"type":"meta"' in first
        assert '"schema":1' in first
