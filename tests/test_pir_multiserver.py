"""Tests for the k-server XOR PIR generalization."""

import numpy as np
import pytest

from repro.pir import MultiServerXorPIR


class TestCorrectness:
    @pytest.mark.parametrize("n_servers", [2, 3, 5])
    def test_every_index(self, n_servers):
        records = list(range(0, 120, 3))
        pir = MultiServerXorPIR(records, n_servers=n_servers)
        for i in range(0, len(records), 5):
            assert pir.retrieve_int(i, i) == records[i]

    def test_negative_and_bytes(self):
        pir = MultiServerXorPIR([-9, b"hello", 12], n_servers=3)
        assert pir.retrieve_int(0, 0) == -9
        assert pir.retrieve(1, 1).rstrip(b"\0") == b"hello"

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            MultiServerXorPIR([1, 2], n_servers=3).retrieve(2)

    def test_needs_two_servers(self):
        with pytest.raises(ValueError):
            MultiServerXorPIR([1], n_servers=1)


class TestBatchRetrieval:
    @pytest.mark.parametrize("n_servers", [2, 3, 5])
    def test_batch_equals_sequential_byte_for_byte(self, n_servers):
        pir = MultiServerXorPIR(list(range(90)), n_servers=n_servers)
        indices = [0, 89, 13, 13, 47]
        rng_seq = np.random.default_rng(5)
        sequential = [pir.retrieve(i, rng_seq) for i in indices]
        batched = pir.retrieve_batch(indices, np.random.default_rng(5))
        assert batched == sequential

    def test_batch_views_xor_to_each_target(self):
        pir = MultiServerXorPIR(list(range(32)), n_servers=4)
        indices = [11, 0, 31]
        pir.retrieve_batch(indices, 0)
        for views, target in zip(pir.last_batch_queries, indices):
            combined: set[int] = set()
            for query in views:
                combined ^= set(query)
            assert combined == {target}

    def test_batch_accounting(self):
        pir = MultiServerXorPIR(list(range(64)), n_servers=3)
        pir.retrieve_batch([1, 2, 3, 4], 0)
        assert pir.upstream_bits == 4 * 3 * 64
        assert pir.downstream_bits == 4 * 8 * 3 * pir.block_size

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError, match="at least one block"):
            MultiServerXorPIR([], n_servers=3)


class TestPrivacy:
    def test_queries_xor_to_target(self):
        pir = MultiServerXorPIR(list(range(32)), n_servers=4)
        pir.retrieve(11, 0)
        combined: set[int] = set()
        for query in pir.last_queries:
            combined ^= set(query)
        assert combined == {11}

    def test_proper_coalition_view_uniform(self):
        """Any k-1 servers' joint view is independent of the target: the
        per-index inclusion frequency of every proper subset's combined
        view stays near 1/2 regardless of the retrieved index."""
        pir = MultiServerXorPIR(list(range(16)), n_servers=3)
        rng = np.random.default_rng(1)
        freq = {0: np.zeros(16), 7: np.zeros(16)}
        trials = 300
        for target in freq:
            for _ in range(trials):
                pir.retrieve(target, rng)
                # coalition of servers 0 and 1 (misses server 2's mask)
                for i in pir.last_queries[0]:
                    freq[target][i] += 0.5
                for i in pir.last_queries[1]:
                    freq[target][i] += 0.5
        for target, counts in freq.items():
            assert np.abs(counts / trials - 0.5).max() < 0.15

    def test_communication_counters(self):
        pir = MultiServerXorPIR(list(range(64)), n_servers=3)
        pir.retrieve(5, 0)
        assert pir.upstream_bits == 3 * 64
        assert pir.downstream_bits == 8 * 3 * pir.block_size
