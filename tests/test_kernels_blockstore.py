"""Block-store tests: in-RAM dual views, memmap lifecycle, RAM budgets.

The store layer is what lets the PIR servers answer from either RAM or
a memory-mapped file through one code path, so the properties here are
the load-bearing ones: the uint8 and uint64 views alias the same bytes
(byzantine corruption through ``_db`` must reach the word kernels),
chunked budget scans are bit-identical to unchunked ones, and
copy-on-write replicas never leak mutations back into the canonical
file.
"""

import numpy as np
import pytest

from repro.faults import ResilientXorPIR
from repro.kernels import (
    ArrayBlockStore,
    MemmapBlockStore,
    gf2_matmul_store,
    pack_bool_rows,
    xor_fold_store,
)
from repro.pir import TwoServerXorPIR


def _blocks(n=200, width=13, seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, size=(n, width), dtype=np.uint8
    )


class TestArrayBlockStore:
    def test_geometry_and_padding(self):
        store = ArrayBlockStore(_blocks())
        assert (store.n, store.width, store.n_words) == (200, 13, 2)
        assert store.words.shape == (200, 2)
        assert store.blocks_u8.shape == (200, 13)
        assert store.chunk_rows == store.n  # in-RAM: never chunked
        # Padding bytes are zero.
        assert not store.words.view(np.uint8)[:, 13:].any()

    def test_views_share_memory(self):
        """Corruption through the byte view reaches the word kernels."""
        store = ArrayBlockStore(_blocks())
        before = store.words[0].copy()
        store.blocks_u8[0, 0] ^= 0xFF
        assert (store.words[0] != before).any()

    def test_replica_is_independent(self):
        store = ArrayBlockStore(_blocks())
        replica = store.replica()
        replica.blocks_u8[0, 0] ^= 0xFF
        assert store.blocks_u8[0, 0] != replica.blocks_u8[0, 0]

    def test_constructor_copies_input(self):
        blocks = _blocks()
        store = ArrayBlockStore(blocks)
        blocks[0, 0] ^= 0xFF
        assert store.blocks_u8[0, 0] == blocks[0, 0] ^ 0xFF

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            ArrayBlockStore(np.zeros(5, dtype=np.uint8))
        with pytest.raises(ValueError):
            ArrayBlockStore(np.zeros((5, 0), dtype=np.uint8))


class TestMemmapBlockStore:
    def test_create_open_round_trip(self, tmp_path):
        blocks = _blocks()
        path = tmp_path / "db.npy"
        created = MemmapBlockStore.create(path, blocks)
        np.testing.assert_array_equal(created.blocks_u8, blocks)
        assert path.exists()
        assert MemmapBlockStore._meta_path(path).exists()
        reopened = MemmapBlockStore(path, mode="r")
        assert (reopened.n, reopened.width) == (200, 13)
        np.testing.assert_array_equal(reopened.blocks_u8, blocks)
        np.testing.assert_array_equal(reopened.words, created.words)

    def test_meta_version_guard(self, tmp_path):
        path = tmp_path / "db.npy"
        MemmapBlockStore.create(path, _blocks())
        MemmapBlockStore._meta_path(path).write_text('{"version": 99}')
        with pytest.raises(ValueError, match="meta version"):
            MemmapBlockStore(path)

    def test_chunk_rows_budgeted_and_aligned(self, tmp_path):
        path = tmp_path / "db.npy"
        store = MemmapBlockStore.create(path, _blocks(n=1000))
        assert store.chunk_rows == store.n  # no budget: unchunked
        # 16 bytes/row -> a 3000-byte budget is 187 rows -> 128 aligned.
        budgeted = MemmapBlockStore(path, ram_budget=3000)
        assert budgeted.chunk_rows == 128
        assert budgeted.chunk_rows % 64 == 0
        # The floor is one mask word's worth of rows.
        tiny = MemmapBlockStore(path, ram_budget=1)
        assert tiny.chunk_rows == 64

    def test_chunked_scan_matches_unchunked(self, tmp_path):
        blocks = _blocks(n=777)
        path = tmp_path / "db.npy"
        full = MemmapBlockStore.create(path, blocks)
        budgeted = MemmapBlockStore(path, mode="r", ram_budget=2048)
        assert budgeted.chunk_rows < budgeted.n
        rng = np.random.default_rng(3)
        mask_words = pack_bool_rows(rng.random((5, 777)) < 0.5)
        np.testing.assert_array_equal(
            gf2_matmul_store(mask_words, budgeted),
            gf2_matmul_store(mask_words, full),
        )
        idx = np.flatnonzero(rng.random(777) < 0.5)
        np.testing.assert_array_equal(
            xor_fold_store(budgeted, idx), xor_fold_store(full, idx)
        )

    def test_replica_is_copy_on_write(self, tmp_path):
        path = tmp_path / "db.npy"
        store = MemmapBlockStore.create(path, _blocks())
        replica = store.replica()
        replica.blocks_u8[0, :] = 0xAA
        assert (replica.blocks_u8[0] == 0xAA).all()  # mutable in RAM
        # ... but the canonical file is untouched.
        np.testing.assert_array_equal(
            MemmapBlockStore(path, mode="r").blocks_u8, store.blocks_u8
        )


class TestPIROverStores:
    def test_memmap_pir_matches_in_ram_pir(self, tmp_path):
        """The same seed retrieves the same bytes from disk and RAM —
        including under a budget that forces chunked batch scans."""
        blocks = _blocks(n=500, width=16, seed=7)
        in_ram = TwoServerXorPIR(ArrayBlockStore(blocks))
        path = tmp_path / "db.npy"
        MemmapBlockStore.create(path, blocks)
        on_disk = TwoServerXorPIR(
            MemmapBlockStore(path, mode="r", ram_budget=4096)
        )
        assert on_disk.block_size == in_ram.block_size == 16
        for i in (0, 250, 499):
            assert on_disk.retrieve(i, 42) == in_ram.retrieve(i, 42)
            assert on_disk.retrieve(i, 42) == blocks[i].tobytes()
        indices = [0, 13, 499, 13]
        assert on_disk.retrieve_batch(indices, 5) == in_ram.retrieve_batch(
            indices, 5
        )

    def test_resilient_pir_accepts_store(self, tmp_path):
        blocks = _blocks(n=64, width=8, seed=2)
        path = tmp_path / "db.npy"
        MemmapBlockStore.create(path, blocks)
        pir = ResilientXorPIR(MemmapBlockStore(path, mode="r"), f=0)
        assert pir.retrieve(17, 3) == blocks[17].tobytes()
        assert pir.retrieve_batch([1, 2, 63], 4) == [
            blocks[i].tobytes() for i in (1, 2, 63)
        ]

    def test_byzantine_memmap_replica_cannot_corrupt_file(self, tmp_path):
        """A server poking its COW replica never reaches the other
        server or the canonical database file."""
        blocks = _blocks(n=64, width=8, seed=2)
        path = tmp_path / "db.npy"
        MemmapBlockStore.create(path, blocks)
        pir = TwoServerXorPIR(MemmapBlockStore(path, mode="r"))
        pir._servers[0]._db[:, :] = 0xFF  # replica 0 goes byzantine
        # Retrieval is now corrupt (no integrity — by design) ...
        assert pir.retrieve(5, 11) != blocks[5].tobytes()
        # ... but the file and the second server still hold the truth.
        np.testing.assert_array_equal(
            MemmapBlockStore(path, mode="r").blocks_u8, blocks
        )
        np.testing.assert_array_equal(pir._servers[1]._db, blocks)
