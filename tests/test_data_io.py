"""Tests for CSV round-tripping."""

import numpy as np
import pytest

from repro.data import Dataset, dataset_1, read_csv, write_csv
from repro.data.roles import AttributeRole, Schema


def test_round_trip_preserves_values(tmp_path, ds1):
    path = tmp_path / "ds1.csv"
    write_csv(ds1, path)
    back = read_csv(path)
    assert back.column_names == ds1.column_names
    assert np.array_equal(back["height"], ds1["height"])
    assert list(back["aids"]) == list(ds1["aids"])


def test_numeric_columns_restored(tmp_path, ds1):
    path = tmp_path / "ds1.csv"
    write_csv(ds1, path)
    back = read_csv(path)
    assert back.is_numeric("blood_pressure")
    assert not back.is_numeric("aids")


def test_schema_can_be_attached(tmp_path, ds1):
    path = tmp_path / "ds1.csv"
    write_csv(ds1, path)
    schema = Schema({"height": AttributeRole.QUASI_IDENTIFIER})
    back = read_csv(path, schema=schema)
    assert back.quasi_identifiers == ("height",)


def test_empty_file_raises(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(ValueError, match="no header"):
        read_csv(path)


def test_mixed_column_stays_categorical(tmp_path):
    path = tmp_path / "mixed.csv"
    ds = Dataset({"v": np.asarray(["1", "x", "3"], dtype=object)})
    write_csv(ds, path)
    back = read_csv(path)
    assert not back.is_numeric("v")


def test_empty_cell_keeps_column_categorical(tmp_path):
    path = tmp_path / "gap.csv"
    path.write_text("v\n1\n\n3\n")
    back = read_csv(path)
    assert not back.is_numeric("v")
