"""The packed/incremental audit policies must match the seed, decision
for decision.

The throughput layer (packed-bitset ``OverlapControl``, incremental-QR
``SumAuditPolicy``, predicate-mask cache) is only allowed to change *how
fast* the engine answers, never *what* it answers: randomized workloads
are replayed against frozen replicas of the seed implementations
(:mod:`benchmarks.seed_replicas`) and every answer, refusal, reason and
counter must be identical.
"""

import numpy as np
import pytest

from benchmarks.seed_replicas import SeedOverlapControl, SeedSumAuditPolicy
from repro.data import patients
from repro.qdb import (
    Aggregate,
    Comparison,
    Not,
    OverlapControl,
    PackedMaskLog,
    Query,
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
)


def random_workload(pop, rng, n_queries):
    """A mixed-aggregate query stream over random predicates on *pop*."""
    columns = ["height", "weight", "age"]
    aggregates = [
        Aggregate.COUNT, Aggregate.SUM, Aggregate.AVG,
        Aggregate.VARIANCE, Aggregate.STDDEV, Aggregate.MEDIAN,
    ]
    queries = []
    for _ in range(n_queries):
        column = columns[rng.integers(len(columns))]
        op = ["<", "<=", ">", ">=", "=", "!="][rng.integers(6)]
        value = float(np.round(rng.choice(pop[column]), 1))
        predicate = Comparison(column, op, value)
        if rng.random() < 0.3:
            other = columns[rng.integers(len(columns))]
            predicate = predicate & Comparison(
                other, ">", float(np.quantile(pop[other], rng.random()))
            )
        if rng.random() < 0.15:
            predicate = Not(predicate)
        aggregate = aggregates[rng.integers(len(aggregates))]
        column = None if aggregate is Aggregate.COUNT else "blood_pressure"
        queries.append(Query(aggregate, column, predicate))
    return queries


def same_value(x, y):
    """Bitwise-identical answer values (NaN for an empty query set is a
    legitimate answer and must match NaN)."""
    if x is None or y is None:
        return x is y
    return x == y or (np.isnan(x) and np.isnan(y))


def assert_sessions_identical(pop, queries, new_policies, seed_policies):
    """Replay *queries* through both stacks; every outcome must match."""
    db_new = StatisticalDatabase(pop, new_policies, seed=0)
    db_seed = StatisticalDatabase(pop, seed_policies, seed=0)
    for query in queries:
        a, b = db_new.ask(query), db_seed.ask(query)
        assert a.refused == b.refused, (query, a, b)
        assert a.reason == b.reason, (query, a, b)
        assert same_value(a.value, b.value), (query, a, b)
        assert a.interval == b.interval, (query, a, b)
    assert db_new.queries_asked == db_seed.queries_asked
    assert db_new.queries_refused == db_seed.queries_refused
    assert len(db_new.history) == len(db_seed.history)
    assert [e.answered for e in db_new.history] == [
        e.answered for e in db_seed.history
    ]


@pytest.mark.parametrize("seed", range(5))
def test_overlap_control_matches_seed(seed):
    """Packed popcount overlap == seed per-entry loop, random workloads
    with varying n, k and max_overlap."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(60, 350))
    pop = patients(n, seed=seed)
    k = int(rng.integers(1, 8))
    max_overlap = int(rng.integers(0, n // 2))
    queries = random_workload(pop, rng, 80)
    assert_sessions_identical(
        pop, queries,
        [QuerySetSizeControl(k), OverlapControl(max_overlap)],
        [QuerySetSizeControl(k), SeedOverlapControl(max_overlap)],
    )


@pytest.mark.parametrize("seed", range(5, 10))
def test_sum_audit_matches_seed(seed):
    """Incremental Gram–Schmidt audit == seed full-QR audit, random
    workloads with a mixed aggregate profile."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(60, 350))
    pop = patients(n, seed=seed)
    k = int(rng.integers(1, 6))
    queries = random_workload(pop, rng, 80)
    assert_sessions_identical(
        pop, queries,
        [QuerySetSizeControl(k), SumAuditPolicy()],
        [QuerySetSizeControl(k), SeedSumAuditPolicy()],
    )


@pytest.mark.parametrize("seed", range(10, 13))
def test_combined_stack_matches_seed(seed):
    """Both optimized policies together == both seed replicas together."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(80, 300))
    pop = patients(n, seed=seed)
    max_overlap = int(rng.integers(n // 4, n))
    queries = random_workload(pop, rng, 60)
    assert_sessions_identical(
        pop, queries,
        [OverlapControl(max_overlap), SumAuditPolicy()],
        [SeedOverlapControl(max_overlap), SeedSumAuditPolicy()],
    )


class TestGoldenSession:
    """A fixed seed session with a frozen answer/refusal fingerprint.

    Guards against *both* implementations drifting together (which the
    replica comparison cannot see).
    """

    def _run(self, policies):
        pop = patients(150, seed=42)
        rng = np.random.default_rng(99)
        db = StatisticalDatabase(pop, policies, seed=0)
        answers = [db.ask(q) for q in random_workload(pop, rng, 60)]
        refusals = "".join("R" if a.refused else "A" for a in answers)
        # nansum: empty-query-set SUM/AVG answers are NaN by contract.
        checksum = float(
            np.nansum([a.value for a in answers if a.value is not None])
        )
        return refusals, checksum

    def test_overlap_golden_vector(self):
        refusals, checksum = self._run([OverlapControl(40)])
        assert refusals == (
            "AAAAARRAARAARAAAAARRRAARAAARAAAARAARARRARRRAARARRARRRAAARRRA"
        )
        assert checksum == pytest.approx(12866.158211603071, rel=1e-12)

    def test_sum_audit_golden_vector(self):
        refusals, checksum = self._run([SumAuditPolicy()])
        assert refusals == (
            "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAARAAAAARAAR"
        )
        assert checksum == pytest.approx(63104.77017914514, rel=1e-12)


class TestPackedMaskLog:
    def test_append_and_views(self):
        log = PackedMaskLog(20, initial_capacity=2)
        rng = np.random.default_rng(0)
        masks = [rng.random(20) < 0.5 for _ in range(9)]
        for mask in masks:
            log.append(mask)
        assert len(log) == 9
        assert log.rows.shape == (9, 3)  # ceil(20 / 8) bytes per row
        np.testing.assert_array_equal(
            log.counts, [int(m.sum()) for m in masks]
        )

    def test_overlaps_match_boolean_intersection(self):
        rng = np.random.default_rng(1)
        log = PackedMaskLog(77)
        masks = [rng.random(77) < 0.4 for _ in range(30)]
        for mask in masks:
            log.append(mask)
        candidate = rng.random(77) < 0.6
        expected = [int(np.sum(candidate & m)) for m in masks]
        np.testing.assert_array_equal(
            log.overlaps(log.pack(candidate)), expected
        )
        np.testing.assert_array_equal(
            log.overlaps(log.pack(candidate), 10, 20), expected[10:20]
        )

    def test_growth_beyond_initial_capacity(self):
        log = PackedMaskLog(8, initial_capacity=1)
        for i in range(70):
            mask = np.zeros(8, dtype=bool)
            mask[i % 8] = True
            log.append(mask)
        assert len(log) == 70
        assert log.counts.sum() == 70

    def test_engine_history_mirrors_answered_queries(self):
        pop = patients(100, seed=5)
        db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
        db.ask("SELECT COUNT(*) WHERE height > 170")
        db.ask("SELECT COUNT(*)")  # refused: query set too large
        db.ask("SELECT AVG(blood_pressure) WHERE weight > 60")
        answered = [e for e in db.history if e.answered]
        assert len(db.history.answered_masks) == len(answered) == 2
        for row, entry in zip(db.history.answered_masks.rows, answered):
            np.testing.assert_array_equal(row, np.packbits(entry.mask))


class TestMaskCache:
    def test_repeated_predicates_hit_the_cache(self):
        pop = patients(120, seed=2)
        db = StatisticalDatabase(pop)
        q = "SELECT COUNT(*) WHERE height > 170"
        db.ask(q)
        assert (db.mask_cache_hits, db.mask_cache_misses) == (0, 1)
        db.ask(q)
        db.ask("SELECT SUM(blood_pressure) WHERE height > 170")
        assert (db.mask_cache_hits, db.mask_cache_misses) == (2, 1)

    def test_structurally_equal_predicates_share_one_mask(self):
        pop = patients(120, seed=2)
        db = StatisticalDatabase(pop)
        a = Comparison("height", ">", 170.0) & Comparison("weight", "<", 90.0)
        b = Comparison("height", ">", 170.0) & Comparison("weight", "<", 90.0)
        m1 = db.predicate_mask(a)
        m2 = db.predicate_mask(b)
        assert m1 is m2
        assert not m1.flags.writeable  # shared masks are frozen

    def test_distinct_value_types_do_not_collide(self):
        pop = patients(120, seed=2)
        db = StatisticalDatabase(pop)
        assert (
            Comparison("height", ">", 170).cache_key()
            != Comparison("height", ">", 170.0).cache_key()
        )
        db.predicate_mask(Comparison("height", ">", 170))
        db.predicate_mask(Comparison("height", ">", 170.0))
        assert db.mask_cache_misses == 2
