"""Graceful degradation in the statistical database engine.

The engine over a :class:`ReplicatedBackend` must keep the session alive
through replica failures: failover reads yield :class:`Degraded` answers
with *correct* values, total blackouts yield typed ``Refusal`` answers
(reason prefixed ``backend:``), and every path keeps the audit history
and counters consistent.
"""

import numpy as np
import pytest

from repro.data import Dataset
from repro.faults import Fault, FaultPlan, ReplicatedBackend
from repro.faults.errors import BackendUnavailable
from repro.qdb import Degraded, QuerySetSizeControl, Refusal, StatisticalDatabase

SUM_Q = "SELECT SUM(x) WHERE x > 5"
AVG_Q = "SELECT AVG(x) WHERE x < 12"


@pytest.fixture
def data():
    return Dataset({"x": np.arange(20.0)})


def _crashed_backend(data, n_replicas=1, name="qdb"):
    plan = FaultPlan(
        [Fault("crash", f"{name}.replica:{r}", after=0)
         for r in range(n_replicas)],
        seed=0,
    )
    return ReplicatedBackend(data, n_replicas=n_replicas, plan=plan,
                             name=name)


class TestFailover:
    def test_failover_answers_are_correct_and_marked(self, data):
        plan = FaultPlan([Fault("crash", "qdb.replica:0", after=0)], seed=1)
        backend = ReplicatedBackend(data, n_replicas=2, plan=plan)
        db = StatisticalDatabase(backend, policies=[])
        pristine = StatisticalDatabase(data, policies=[])
        answer = db.ask(SUM_Q)
        assert isinstance(answer, Degraded)
        assert answer.value == pristine.ask(SUM_Q).value
        assert "failover" in answer.detail
        assert db.degraded_answers == 1
        assert backend._c_failovers.value >= 1

    def test_corrupt_replica_rejected_by_checksum(self, data):
        """Corrupted microdata is never served: the replica is treated
        as failed and the healthy one answers, correctly but degraded."""
        plan = FaultPlan([Fault("corrupt", "qdb.replica:0", bits=8)],
                         seed=4)
        backend = ReplicatedBackend(data, n_replicas=2, plan=plan)
        db = StatisticalDatabase(backend, policies=[])
        answer = db.ask(AVG_Q)
        assert isinstance(answer, Degraded)
        assert answer.value == float(np.arange(12.0).mean())
        assert backend._c_rejected.value >= 1


class TestBlackout:
    def test_blackout_refuses_typed_not_raises(self, data):
        db = StatisticalDatabase(_crashed_backend(data), policies=[])
        answer = db.ask(SUM_Q)
        assert isinstance(answer, Refusal)
        assert answer.refused and answer.reason.startswith("backend: ")
        assert db.backend_refusals == 1
        assert db.queries_refused == 1
        assert db.queries_asked == 1
        assert len(db.history) == 1  # refusal audited with an empty mask

    def test_count_star_survives_blackout(self, data):
        """COUNT(*) touches no replica (the mask is synthesized), so the
        degradation ordering is: COUNT keeps working, SUM/AVG refuse."""
        db = StatisticalDatabase(_crashed_backend(data), policies=[])
        count = db.ask("SELECT COUNT(*)")
        assert not count.refused and count.value == 20
        assert isinstance(db.ask(SUM_Q), Refusal)

    def test_evaluate_stage_failure_also_refuses(self, data):
        """Crash mid-session: the mask is already cached, so the failure
        surfaces from the aggregate's column read, not the mask walk."""
        plan = FaultPlan([Fault("crash", "qdb.replica:0", after=2)], seed=0)
        backend = ReplicatedBackend(data, n_replicas=1, plan=plan)
        db = StatisticalDatabase(backend, policies=[])
        first = db.ask(SUM_Q)  # mask read (op 0) + evaluate read (op 1)
        assert not first.refused
        second = db.ask(SUM_Q)  # cached mask; evaluate read (op 2) dies
        assert isinstance(second, Refusal)
        assert second.reason.startswith("backend: ")

    def test_ask_batch_mixes_refusals_and_answers(self, data):
        db = StatisticalDatabase(_crashed_backend(data), policies=[])
        answers = db.ask_batch([SUM_Q, "SELECT COUNT(*)", AVG_Q])
        assert isinstance(answers[0], Refusal)
        assert not answers[1].refused
        assert isinstance(answers[2], Refusal)
        assert db.queries_asked == 3

    def test_raw_backend_still_raises(self, data):
        """Only the engine converts blackouts; direct column reads keep
        the exception so non-engine callers cannot miss the failure."""
        backend = _crashed_backend(data)
        with pytest.raises(BackendUnavailable, match="all 1 replicas"):
            backend.column("x")


class TestDegradedFlagHygiene:
    def test_policy_refusal_discards_pending_failover(self, data):
        """A failover observed during a refused query must not mark the
        *next* answered query as degraded."""
        backend = ReplicatedBackend(data, n_replicas=2)
        db = StatisticalDatabase(backend, policies=[QuerySetSizeControl(5)])
        backend._degraded_pending = True
        refused = db.ask("SELECT COUNT(*) WHERE x > 17")  # |Q| = 2 < k
        assert refused.refused and refused.reason.startswith("size-control")
        answer = db.ask(SUM_Q)
        assert not isinstance(answer, Degraded)
        assert db.degraded_answers == 0

    def test_plain_dataset_backend_never_degrades(self, data):
        db = StatisticalDatabase(data, policies=[])
        assert not isinstance(db.ask(SUM_Q), Degraded)
        assert db.degraded_answers == 0 and db.backend_refusals == 0


class TestDeterminism:
    def test_session_replays_bit_identically(self, data):
        plan = FaultPlan([
            Fault("crash", "qdb.replica:0", after=3),
            Fault("delay", "qdb.replica:1", delay=0.08, probability=0.5),
        ], seed=9)

        def run(p):
            backend = ReplicatedBackend(data, n_replicas=2, plan=p)
            db = StatisticalDatabase(backend, policies=[])
            return [(type(a).__name__, a.value, a.reason)
                    for a in db.ask_batch([SUM_Q, AVG_Q, SUM_Q,
                                           "SELECT COUNT(*) WHERE x > 5"])]

        assert run(plan.copy()) == run(plan.copy())
