"""Tests for attribute roles and schemas."""

import pytest

from repro.data import AttributeRole, Schema


@pytest.fixture
def schema():
    return Schema(
        {
            "name": AttributeRole.IDENTIFIER,
            "height": AttributeRole.QUASI_IDENTIFIER,
            "weight": AttributeRole.QUASI_IDENTIFIER,
            "aids": AttributeRole.CONFIDENTIAL,
            "notes": AttributeRole.NON_CONFIDENTIAL,
        }
    )


def test_role_buckets(schema):
    assert schema.identifiers == ("name",)
    assert schema.quasi_identifiers == ("height", "weight")
    assert schema.confidential == ("aids",)
    assert schema.non_confidential == ("notes",)


def test_contains_and_len(schema):
    assert "height" in schema
    assert "zzz" not in schema
    assert len(schema) == 5


def test_getitem_and_default(schema):
    assert schema["aids"] is AttributeRole.CONFIDENTIAL
    assert schema.role("zzz") is None
    assert schema.role("zzz", AttributeRole.NON_CONFIDENTIAL) is (
        AttributeRole.NON_CONFIDENTIAL
    )


def test_with_roles_is_nondestructive(schema):
    updated = schema.with_roles({"notes": AttributeRole.CONFIDENTIAL})
    assert updated["notes"] is AttributeRole.CONFIDENTIAL
    assert schema["notes"] is AttributeRole.NON_CONFIDENTIAL


def test_restricted_to(schema):
    sub = schema.restricted_to(["height", "aids"])
    assert set(sub) == {"height", "aids"}


def test_equality(schema):
    assert schema == Schema(schema.as_dict())
    assert schema != Schema({})


def test_repr_mentions_roles(schema):
    assert "quasi-identifier" in repr(schema)
