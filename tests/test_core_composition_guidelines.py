"""Tests for composition rules, guidelines and pipelines."""

import numpy as np
import pytest

from repro.core import (
    HippocraticPipeline,
    KAnonymousPIRPipeline,
    Mechanism,
    PrivacyDimension,
    check_stack,
    full_coverage_stacks,
    recommend,
)
from repro.data import patients

R, O, U = (
    PrivacyDimension.RESPONDENT,
    PrivacyDimension.OWNER,
    PrivacyDimension.USER,
)


class TestComposition:
    def test_query_control_pir_incompatible(self):
        report = check_stack([Mechanism.QUERY_CONTROL, Mechanism.PIR])
        assert not report.valid
        assert "inspect queries" in report.conflicts[0]

    def test_crypto_ppdm_pir_incompatible(self):
        report = check_stack([Mechanism.CRYPTO_PPDM, Mechanism.PIR])
        assert not report.valid

    def test_masking_pir_compatible_and_complete(self):
        report = check_stack([Mechanism.DATA_MASKING, Mechanism.PIR])
        assert report.valid
        assert report.uncovered == frozenset()

    def test_masking_alone_leaves_user_uncovered(self):
        report = check_stack([Mechanism.DATA_MASKING])
        assert report.valid
        assert report.uncovered == frozenset({U})

    def test_duplicates_collapsed(self):
        report = check_stack([Mechanism.PIR, Mechanism.PIR])
        assert report.mechanisms == (Mechanism.PIR,)

    def test_full_coverage_stacks_match_paper(self):
        """The paper's Section 6 conclusion: masking + PIR (crypto PPDM
        routes never qualify)."""
        stacks = full_coverage_stacks()
        assert (Mechanism.DATA_MASKING, Mechanism.PIR) in stacks
        for stack in stacks:
            assert Mechanism.CRYPTO_PPDM not in stack
            assert Mechanism.QUERY_CONTROL not in stack


class TestGuidelines:
    def test_all_three_dimensions(self):
        recs = recommend({R, O, U})
        assert len(recs) >= 1
        assert recs[0].mechanisms == (Mechanism.DATA_MASKING, Mechanism.PIR)
        assert "k-anonymize" in recs[0].rationale.lower()

    def test_owner_only_offers_crypto(self):
        mechanisms = {rec.mechanisms for rec in recommend({O})}
        assert (Mechanism.CRYPTO_PPDM,) in mechanisms

    def test_user_only_is_pir(self):
        recs = recommend({U})
        assert recs[0].mechanisms == (Mechanism.PIR,)

    def test_owner_user_excludes_crypto(self):
        """Section 4: crypto PPDM is incompatible with user privacy."""
        for rec in recommend({O, U}):
            assert Mechanism.CRYPTO_PPDM not in rec.mechanisms

    def test_every_recommendation_is_valid_stack(self):
        import itertools
        dims = [R, O, U]
        for r in range(1, 4):
            for combo in itertools.combinations(dims, r):
                for rec in recommend(set(combo)):
                    report = check_stack(list(rec.mechanisms))
                    assert report.valid
                    assert set(combo) <= report.covered

    def test_empty_requirement_rejected(self):
        with pytest.raises(ValueError):
            recommend(set())

    def test_description(self):
        rec = recommend({U})[0]
        assert rec.description == "PIR"


class TestKAnonymousPIRPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        pop = patients(300, seed=4)
        return KAnonymousPIRPipeline(
            pop, k=5, value_column="blood_pressure",
            edges={"height": [140, 160, 180, 210],
                   "weight": [40, 70, 100, 140]},
        )

    def test_audit_passes(self, pipeline):
        audit = pipeline.audit()
        assert audit.passed
        assert audit.k_achieved >= 5
        assert audit.singleton_cells == 0

    def test_queries_answered(self, pipeline):
        result = pipeline.query({"height": (140, 160)})
        assert result.count >= 0

    def test_no_isolating_cell(self, pipeline):
        """The Section 3 PIR attack cannot find a COUNT=1 cell."""
        from repro.attacks import isolation_attack
        report = isolation_attack(pipeline.index, 300)
        assert len(report.victims) == 0


class TestHippocraticPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        return HippocraticPipeline(
            patients(200, seed=6), k=5, allowed_purposes=["research"],
        )

    def test_purpose_enforced(self, pipeline):
        with pytest.raises(PermissionError):
            pipeline.request_release("insurer", "underwriting")

    def test_release_granted_and_logged(self, pipeline):
        release = pipeline.request_release("lab", "research")
        assert release.n_rows == 200
        assert ("lab", "research") in pipeline.disclosure_log

    def test_release_is_k_anonymous_on_qi(self, pipeline):
        assert pipeline.audit().passed

    def test_noise_models_published(self, pipeline):
        assert "blood_pressure" in pipeline.noise_models

    def test_release_masks_confidential_numerics(self, pipeline):
        pop = patients(200, seed=6)
        release = pipeline.request_release("lab", "research")
        assert not np.array_equal(
            release["blood_pressure"], pop["blood_pressure"]
        )
