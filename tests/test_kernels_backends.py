"""Cross-backend equivalence for the GF(2) kernel tier.

The contract of :mod:`repro.kernels.backends` is *bit-identity*: every
backend — compiled C, numba, pure-numpy uint64 — must produce exactly
the bytes the frozen uint8 reference produces, at the kernel level and
end to end (every PIR scheme, the faulty wrappers, every audit policy
stack).  These tests run each check under every backend available on
the machine, so a box without a C compiler still verifies uint64 vs
uint8 while a full box verifies all of them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import Fault, FaultPlan, ResilientXorPIR
from repro.kernels import (
    Uint8ReferenceBackend,
    available_backends,
    backend_info,
    get_backend,
    pack_bool_rows,
    pack_bytes_rows,
    use_backend,
)
from repro.kernels.backends import _probe, float_dtype_for
from repro.pir import MultiServerXorPIR, SquareSchemePIR, TwoServerXorPIR
from repro.qdb import (
    OverlapControl,
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
)
from repro.data import patients

ALL = available_backends()
FAST = [name for name in ALL if name != "uint8"]


def _random_case(seed, n, width, batch):
    rng = np.random.default_rng(seed)
    db = rng.integers(0, 256, size=(n, width), dtype=np.uint8)
    masks = rng.random((batch, n)) < 0.5
    return pack_bytes_rows(db), pack_bool_rows(masks), masks, db


@pytest.mark.parametrize("name", FAST)
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(1, 300),
    width=st.integers(1, 40),
    batch=st.integers(1, 5),
)
def test_gf2_matmul_bit_identical_to_uint8(name, seed, n, width, batch):
    db_words, mask_words, masks, db = _random_case(seed, n, width, batch)
    reference = Uint8ReferenceBackend().gf2_matmul(mask_words, db_words, n)
    result = _probe(name).gf2_matmul(mask_words, db_words, n)
    np.testing.assert_array_equal(result, reference)
    # And both match the boolean-algebra ground truth on logical bytes.
    for b in range(batch):
        expected = np.bitwise_xor.reduce(
            db[masks[b]], axis=0
        ) if masks[b].any() else np.zeros(width, dtype=np.uint8)
        np.testing.assert_array_equal(
            result.view(np.uint8)[b, :width], expected
        )


@pytest.mark.parametrize("name", FAST)
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 300),
       width=st.integers(1, 40))
def test_xor_fold_bit_identical_to_uint8(name, seed, n, width):
    db_words, _, _, _ = _random_case(seed, n, width, 1)
    rng = np.random.default_rng(seed + 1)
    idx = np.flatnonzero(rng.random(n) < 0.5)
    reference = Uint8ReferenceBackend().xor_fold(db_words, idx)
    np.testing.assert_array_equal(
        _probe(name).xor_fold(db_words, idx), reference
    )


@pytest.mark.parametrize("name", FAST)
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), h=st.integers(0, 60),
       n=st.integers(1, 300))
def test_overlap_counts_bit_identical_to_uint8(name, seed, h, n):
    rng = np.random.default_rng(seed)
    rows = pack_bool_rows(rng.random((h, n)) < 0.5)
    cand = pack_bool_rows(rng.random((1, n)) < 0.5)[0]
    reference = Uint8ReferenceBackend().overlap_counts(rows, cand)
    np.testing.assert_array_equal(
        _probe(name).overlap_counts(rows, cand), reference
    )


def _scheme_transcript(scheme_factory):
    """Deterministic single + batch retrievals for one scheme instance."""
    pir = scheme_factory()
    singles = [pir.retrieve(i % pir.n, 1000 + i) for i in range(4)]
    batch = pir.retrieve_batch([0, pir.n // 2, pir.n - 1, 0], 77)
    return singles, batch, pir.last_batch_queries


# Ragged 13-byte blocks + a non-multiple-of-64 database size: the shapes
# where packed layouts break first.
_SCHEMES = {
    "two-server": lambda: TwoServerXorPIR(
        [bytes([i % 251]) * 13 for i in range(137)]
    ),
    "multi-server": lambda: MultiServerXorPIR(
        [bytes([i % 251]) * 13 for i in range(137)], n_servers=3
    ),
    "square": lambda: SquareSchemePIR(
        [bytes([i % 251]) * 13 for i in range(137)]
    ),
}


@pytest.mark.parametrize("scheme", sorted(_SCHEMES))
def test_schemes_byte_identical_across_backends(scheme):
    with use_backend("uint8"):
        reference = _scheme_transcript(_SCHEMES[scheme])
    for name in FAST:
        with use_backend(name):
            assert _scheme_transcript(_SCHEMES[scheme]) == reference, name


def test_faulty_wrappers_identical_across_backends():
    """Byzantine voting over every backend returns the same blocks."""

    def transcript():
        plan = FaultPlan([Fault("byzantine", "pir.replica:0")], seed=9)
        pir = ResilientXorPIR(
            [bytes([i % 251]) * 13 for i in range(137)], f=1, plan=plan
        )
        singles = [pir.retrieve(i * 31 % pir.n, 500 + i) for i in range(3)]
        return singles, pir.retrieve_batch([0, 5, 136], 88)

    with use_backend("uint8"):
        reference = transcript()
    for name in FAST:
        with use_backend(name):
            assert transcript() == reference, name


def test_audit_decisions_identical_across_backends():
    """The full policy stack refuses/answers identically on any backend."""
    from tests.test_qdb_perf_equivalence import (  # reuse the workload maker
        random_workload,
    )

    pop = patients(300, seed=5)
    queries = random_workload(pop, np.random.default_rng(21), 60)

    def transcript():
        db = StatisticalDatabase(pop, [
            QuerySetSizeControl(5),
            OverlapControl(40),
            SumAuditPolicy(),
        ])
        out = []
        for query in queries:
            answer = db.ask(query)
            out.append((answer.refused, answer.reason, answer.value))
        return out

    with use_backend("uint8"):
        reference = transcript()
    assert any(r for r, _, _ in reference)  # the session must exercise refusals
    for name in FAST:
        with use_backend(name):
            assert transcript() == reference, name


def test_uint8_bits_cache_rekeys_on_dtype_change(monkeypatch):
    """Regression: the cached unpacked-bit matrix is keyed by dtype.

    The pre-kernel-tier server cached its float bit matrix on first use
    and never re-keyed, so a dtype policy change silently kept serving
    the stale dtype.  The reference backend now keys the cache by
    ``(key, dtype.name)``.
    """
    import repro.kernels.backends as backends

    rng = np.random.default_rng(0)
    db = rng.integers(0, 256, size=(50, 8), dtype=np.uint8)
    db_words = pack_bytes_rows(db)
    mask_words = pack_bool_rows(rng.random((3, 50)) < 0.5)
    backend = Uint8ReferenceBackend()
    state: dict = {}

    first = backend.gf2_matmul(mask_words, db_words, 50, state=state)
    assert set(state["uint8_bits"]) == {("all", "float32")}
    assert state["uint8_bits"][("all", "float32")].dtype == np.float32

    monkeypatch.setattr(backends, "float_dtype_for", lambda n: np.float64)
    second = backend.gf2_matmul(mask_words, db_words, 50, state=state)
    # A fresh float64 matrix was built — not the stale float32 one.
    assert set(state["uint8_bits"]) == {
        ("all", "float32"), ("all", "float64")
    }
    assert state["uint8_bits"][("all", "float64")].dtype == np.float64
    np.testing.assert_array_equal(first, second)


def test_float_dtype_policy_thresholds():
    assert float_dtype_for(2**24 - 1) is np.float32
    assert float_dtype_for(2**24) is np.float64


def test_registry_selection_and_restore():
    assert get_backend().name in ALL
    assert backend_info()["name"] == get_backend().name
    before = get_backend()
    with use_backend("uint8") as backend:
        assert backend.name == "uint8"
        assert get_backend().name == "uint8"
    assert get_backend() is before
    with pytest.raises(ValueError, match="unknown kernel backend"):
        with use_backend("no-such-backend"):
            pass  # pragma: no cover
    assert get_backend() is before


def test_unavailable_backend_is_loud():
    unavailable = [
        name for name in ("cext", "numba") if name not in ALL
    ]
    if not unavailable:
        pytest.skip("every optional backend is available on this machine")
    with pytest.raises(RuntimeError, match="unavailable"):
        with use_backend(unavailable[0]):
            pass  # pragma: no cover


def test_env_override_requires_available_backend(monkeypatch):
    import repro.kernels.backends as backends

    monkeypatch.setattr(backends, "_active", None)
    monkeypatch.setenv("REPRO_KERNELS", "definitely-not-a-backend")
    with pytest.raises(ValueError, match="unknown kernel backend"):
        backends.get_backend()
    monkeypatch.setenv("REPRO_KERNELS", "uint8")
    assert backends.get_backend().name == "uint8"
