"""The fault-plan layer: determinism, crash semantics, payload mutation."""

import numpy as np
import pytest

from repro.faults import FAULT_KINDS, Fault, FaultPlan, random_fault_plan
from repro.faults.plan import NO_FAULT


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("explode", "pir.replica:0")

    @pytest.mark.parametrize("kwargs", [
        {"probability": 1.5},
        {"probability": -0.1},
        {"after": -1},
        {"delay": -0.5},
        {"bits": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Fault("drop", "pir.replica:0", **kwargs)

    def test_non_fault_rejected_by_plan(self):
        with pytest.raises(TypeError, match="expected Fault"):
            FaultPlan(["not a fault"])


class TestDeterminism:
    def test_outcome_pure_in_key(self):
        """Same (seed, target, op, attempt) -> identical decision+payload."""
        plan = FaultPlan(
            [Fault("corrupt", "a", bits=3), Fault("drop", "a",
                                                  probability=0.5)],
            seed=42,
        )
        for op in range(20):
            first = plan.outcome("a", op=op)
            second = plan.outcome("a", op=op)
            assert first.delivered == second.delivered
            if first.delivered:
                assert (first.apply_bytes(b"payload!")
                        == second.apply_bytes(b"payload!"))

    def test_different_ops_decide_independently(self):
        plan = FaultPlan([Fault("drop", "a", probability=0.5)], seed=0)
        decisions = [plan.outcome("a", op=op).dropped for op in range(200)]
        assert 20 < sum(decisions) < 180  # both outcomes occur

    def test_copy_replays_identically(self):
        rng = np.random.default_rng(5)
        plan = random_fault_plan(rng, ["a", "b"], max_faults=3)
        replay = plan.copy()
        for _ in range(10):
            first = plan.outcome("a")
            second = replay.outcome("a")
            assert first.delivered == second.delivered
            assert first.op == second.op

    def test_seed_changes_decisions(self):
        fault = Fault("drop", "a", probability=0.5)
        a = [FaultPlan([fault], seed=1).outcome("a", op=i).dropped
             for i in range(64)]
        b = [FaultPlan([fault], seed=2).outcome("a", op=i).dropped
             for i in range(64)]
        assert a != b


class TestOpCounters:
    def test_take_ops_claims_consecutive_ranges(self):
        plan = FaultPlan()
        assert plan.take_ops("t", 5) == 0
        assert plan.take_ops("t", 3) == 5
        assert plan.ops_issued("t") == 8
        assert plan.take_ops("other") == 0

    def test_outcome_without_op_advances_counter(self):
        plan = FaultPlan([Fault("delay", "t", delay=0.1)], seed=0)
        assert plan.outcome("t").op == 0
        assert plan.outcome("t").op == 1
        plan.reset()
        assert plan.outcome("t").op == 0


class TestCrash:
    def test_crash_after_k_is_sticky(self):
        plan = FaultPlan([Fault("crash", "t", after=3)], seed=0)
        served = [not plan.outcome("t", op=op).crashed for op in range(6)]
        assert served == [True, True, True, False, False, False]

    def test_crash_ignores_attempt_dimension(self):
        """Retrying a crashed target can never succeed."""
        plan = FaultPlan([Fault("crash", "t", after=0)], seed=0)
        assert all(plan.outcome("t", op=0, attempt=a).crashed
                   for a in range(5))


class TestPayloads:
    def test_unfaulted_target_gets_shared_singleton(self):
        plan = FaultPlan([Fault("drop", "elsewhere")], seed=0)
        assert plan.outcome("t", op=0) is NO_FAULT
        assert NO_FAULT.delivered and not NO_FAULT.corrupts
        assert NO_FAULT.apply_bytes(b"x") == b"x"

    def test_byzantine_replaces_payload(self):
        plan = FaultPlan([Fault("byzantine", "t")], seed=3)
        outcome = plan.outcome("t", op=0)
        mutated = outcome.apply_bytes(b"honest--")
        assert outcome.corrupts
        assert mutated != b"honest--" and len(mutated) == 8

    def test_corrupt_flips_bounded_bits(self):
        plan = FaultPlan([Fault("corrupt", "t", bits=2)], seed=3)
        outcome = plan.outcome("t", op=0)
        payload = bytes(16)
        mutated = outcome.apply_bytes(payload)
        flipped = int.from_bytes(mutated, "big").bit_count()
        assert 1 <= flipped <= 2  # <= bits (positions may collide)

    def test_apply_int_stays_in_modulus(self):
        plan = FaultPlan([Fault("corrupt", "t", bits=4)], seed=1)
        for op in range(16):
            outcome = plan.outcome("t", op=op)
            value = outcome.apply_int(1234, modulus=1 << 16)
            assert 0 <= value < (1 << 16)

    def test_undelivered_payload_is_none(self):
        plan = FaultPlan([Fault("drop", "t")], seed=0)
        outcome = plan.outcome("t", op=0)
        assert outcome.apply_bytes(b"x") is None
        assert outcome.apply_int(7) is None


class TestRandomPlans:
    def test_generator_produces_valid_plans(self):
        rng = np.random.default_rng(9)
        for _ in range(50):
            plan = random_fault_plan(rng, ["a", "b", "c"])
            assert all(f.kind in FAULT_KINDS for f in plan.faults)
            for target in plan.targets():
                plan.outcome(target)  # must never raise
