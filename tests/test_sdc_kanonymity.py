"""Tests for k-anonymity verification."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.sdc import (
    anonymity_level,
    class_size_histogram,
    equivalence_classes,
    is_k_anonymous,
    violating_indices,
)


class TestEquivalenceClasses:
    def test_partition_is_exact(self, ds1):
        classes = equivalence_classes(ds1, ["height", "weight"])
        covered = sorted(i for c in classes for i in c.indices)
        assert covered == list(range(ds1.n_rows))

    def test_sizes(self, ds1):
        sizes = sorted(c.size for c in equivalence_classes(ds1, ["height", "weight"]))
        assert sizes == [3, 3, 4]

    def test_default_schema_qi(self, ds1):
        # Schema marks height/weight as key attributes.
        assert len(equivalence_classes(ds1)) == 3

    def test_no_qi_raises(self):
        ds = Dataset({"x": [1.0, 2.0]})
        with pytest.raises(ValueError, match="quasi-identifier"):
            equivalence_classes(ds)


class TestAnonymityLevel:
    def test_dataset_1_is_3(self, ds1):
        assert anonymity_level(ds1) == 3

    def test_dataset_2_is_1(self, ds2):
        assert anonymity_level(ds2) == 1

    def test_empty_dataset(self):
        ds = Dataset.from_rows(["a"], [])
        assert anonymity_level(ds, ["a"]) == 0

    def test_monotone_in_k(self, ds1):
        assert is_k_anonymous(ds1, 1)
        assert is_k_anonymous(ds1, 3)
        assert not is_k_anonymous(ds1, 4)

    def test_invalid_k(self, ds1):
        with pytest.raises(ValueError):
            is_k_anonymous(ds1, 0)

    def test_empty_is_trivially_anonymous(self):
        ds = Dataset.from_rows(["a"], [])
        assert is_k_anonymous(ds, 5, ["a"])


class TestViolations:
    def test_dataset_2_violators(self, ds2):
        bad = violating_indices(ds2, 3, ["height", "weight"])
        # Every record outside the one 3-group violates.
        assert 3 in bad  # the unique (160, 110) record
        assert 0 not in bad  # member of the (170, 72) x3 group

    def test_dataset_1_no_violators(self, ds1):
        assert violating_indices(ds1, 3).size == 0

    def test_histogram(self, ds2):
        hist = class_size_histogram(ds2, ["height", "weight"])
        assert hist[1] == 5  # five singleton key combinations
        assert hist[3] == 1


class TestSingleColumn:
    def test_categorical_key(self):
        ds = Dataset({"city": ["A", "A", "B", "B", "B"]})
        assert anonymity_level(ds, ["city"]) == 2
        assert is_k_anonymous(ds, 2, ["city"])
