"""The query-plan layer: IR, optimizer passes, plan cache, word stores.

Unit coverage for :mod:`repro.plan` and its supporting pieces — plan
rendering, pass-by-pass optimizer behaviour (pruning, audit fusion, PIR
coalescing), plan-cache keying and eviction, the ``WordLogStore`` tier
backing out-of-core packed histories, loud environment-variable
validation, and the ``repro qdb explain`` CLI.  Decision equivalence
against the legacy pipeline lives in ``test_qdb_plan_equivalence.py``.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.data import patients
from repro.kernels import MemmapWordLog, RamWordLog, words_per_bits
from repro.plan import (
    AuditCheck,
    FusedAuditCheck,
    FusedPirFetch,
    PirFetch,
    Plan,
    PlanCache,
    PolicyCheck,
    QueryPlanner,
    ScanMask,
    Transform,
    coalesce_pir_fetches,
    compile_query,
    fuse_audit_checks,
    optimize,
    plan_key,
    policy_signature,
    prune_noop_nodes,
)
from repro.qdb import (
    Aggregate,
    Comparison,
    NoisePerturbation,
    OverlapControl,
    Query,
    QueryHistory,
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
)

QUERY = Query(Aggregate.SUM, "blood_pressure", Comparison("height", ">", 170.0))


class TestCompiler:
    def test_unoptimized_plan_spells_out_the_pipeline(self):
        policies = [QuerySetSizeControl(5), SumAuditPolicy()]
        plan = compile_query(QUERY, policies)
        kinds = [type(n).__name__ for n in plan.nodes]
        assert kinds == [
            "ScanMask", "PolicyCheck", "PolicyCheck", "Evaluate",
            "Transform", "Transform", "AnswerSink", "RefuseSink",
        ]
        assert plan.nodes[0].predicate == "height > 170.0"
        assert plan.passes == ()

    def test_plan_key_normalizes_query_structure(self):
        policies = [QuerySetSizeControl(5)]
        same = Query(Aggregate.SUM, "blood_pressure",
                     Comparison("height", ">", 170.0))
        assert plan_key(QUERY, policies) == plan_key(same, policies)
        other_agg = Query(Aggregate.AVG, "blood_pressure", QUERY.predicate)
        assert plan_key(QUERY, policies) != plan_key(other_agg, policies)
        assert plan_key(QUERY, policies) != plan_key(
            QUERY, [QuerySetSizeControl(6)]
        )

    def test_policy_signature_captures_fused_parameters(self):
        sig = policy_signature(
            [QuerySetSizeControl(7), OverlapControl(9), SumAuditPolicy()]
        )
        assert sig[0] == ("QuerySetSizeControl", "size-control(k=7)", 7)
        assert sig[1][2:] == (9, OverlapControl(9).chunk)
        assert sig[2] == ("SumAuditPolicy", "sum-audit")


class TestOptimizerPasses:
    def test_prune_drops_noop_reviews_and_transforms(self):
        # NoisePerturbation reviews nothing; QuerySetSizeControl
        # transforms nothing — both no-op nodes must disappear.
        policies = [QuerySetSizeControl(5), NoisePerturbation(1.0)]
        plan = optimize(compile_query(QUERY, policies), policies)
        checks = [n for n in plan.nodes if isinstance(n, PolicyCheck)]
        transforms = [n for n in plan.nodes if isinstance(n, Transform)]
        assert [c.index for c in checks] == [0]
        assert [t.index for t in transforms] == [1]
        assert "prune-noop-nodes" in plan.passes

    def test_three_audit_policies_fuse_into_one_node(self):
        policies = [QuerySetSizeControl(5), OverlapControl(40),
                    SumAuditPolicy()]
        plan = optimize(compile_query(QUERY, policies), policies)
        fused = [n for n in plan.nodes if isinstance(n, FusedAuditCheck)]
        assert len(fused) == 1
        assert [c.kind for c in fused[0].checks] == [
            "size", "overlap", "sum-audit"
        ]
        assert [c.index for c in fused[0].checks] == [0, 1, 2]
        assert not any(isinstance(n, PolicyCheck) for n in plan.nodes)

    def test_lone_size_check_is_not_fused(self):
        policies = [QuerySetSizeControl(5)]
        plan = optimize(compile_query(QUERY, policies), policies)
        assert not any(isinstance(n, FusedAuditCheck) for n in plan.nodes)
        assert "fuse-audit-checks" not in plan.passes

    def test_lone_overlap_check_is_fused_for_incremental_scanning(self):
        policies = [OverlapControl(40)]
        plan = optimize(compile_query(QUERY, policies), policies)
        fused = [n for n in plan.nodes if isinstance(n, FusedAuditCheck)]
        assert [c.kind for c in fused[0].checks] == ["overlap"]

    def test_policy_subclasses_are_never_fused(self):
        class StricterSize(QuerySetSizeControl):
            def review(self, query, mask, data, history):
                return "always refused"

        policies = [StricterSize(5), OverlapControl(40)]
        plan = optimize(compile_query(QUERY, policies), policies)
        fused = [n for n in plan.nodes if isinstance(n, FusedAuditCheck)]
        assert [c.kind for c in fused[0].checks] == ["overlap"]
        assert any(
            isinstance(n, PolicyCheck) and n.index == 0 for n in plan.nodes
        )

    def test_intervening_custom_policy_splits_the_fusion_run(self):
        class CustomReview(NoisePerturbation):
            def review(self, query, mask, data, history):
                return None

        policies = [QuerySetSizeControl(5), CustomReview(1.0),
                    OverlapControl(40)]
        nodes = compile_query(QUERY, policies).nodes
        nodes = prune_noop_nodes(nodes, policies)
        fused_nodes = fuse_audit_checks(nodes, policies)
        fused = [n for n in fused_nodes if isinstance(n, FusedAuditCheck)]
        # The custom review sits between them: only the overlap check
        # fuses (for incremental scanning); the size check stays plain.
        assert [c.kind for f in fused for c in f.checks] == ["overlap"]

    def test_coalesce_dedupes_blocks_and_preserves_routing(self):
        nodes = (
            PirFetch((3, 1, 4), source="a"),
            PirFetch((1, 5), source="b"),
        )
        (fused,) = coalesce_pir_fetches(nodes)
        assert fused.blocks == (3, 1, 4, 5)  # first-occurrence order
        assert fused.requested == 5
        assert fused.routing == ((0, 1, 2), (1, 3))

    def test_single_fetch_is_left_alone(self):
        nodes = (PirFetch((3, 1, 4)),)
        assert coalesce_pir_fetches(nodes) is nodes

    def test_only_changing_passes_are_recorded(self):
        policies = [QuerySetSizeControl(5)]
        plan = optimize(compile_query(QUERY, policies), policies)
        # size-only: pruning removes the no-op transform; nothing fuses,
        # nothing coalesces.
        assert plan.passes == ("prune-noop-nodes",)


class TestPlanRendering:
    def test_render_numbers_nodes_and_lists_passes(self):
        plan = Plan("demo", (ScanMask("height > 170.0"),),
                    passes=("prune-noop-nodes",))
        text = plan.render()
        assert text.startswith("plan: demo\npasses: prune-noop-nodes")
        assert "  1. ScanMask" in text

    def test_fused_audit_describe_names_every_check(self):
        node = FusedAuditCheck((
            AuditCheck("size", 0, "size-control(k=5)", k=5),
            AuditCheck("overlap", 1, "overlap-control(r=40)",
                       max_overlap=40, chunk=2048),
        ))
        text = node.describe()
        assert "2 checks" in text
        assert "size k=5" in text
        assert "overlap r=40 chunk=2048" in text

    def test_fused_pir_describe_counts_the_dedupe(self):
        node = FusedPirFetch((3, 1, 4, 5), requested=5,
                             routing=((0, 1, 2), (1, 3)))
        assert "4 unique blocks for 5 requested" in node.describe()
        assert "(1 deduped)" in node.describe()

    def test_db_explain_shows_before_and_after(self):
        db = StatisticalDatabase(
            patients(80, seed=0),
            [QuerySetSizeControl(5), OverlapControl(40), SumAuditPolicy()],
        )
        text = db.explain("SELECT SUM(blood_pressure) WHERE height > 170")
        assert "== before optimization ==" in text
        assert "== after optimization" in text
        assert "FusedAudit" in text
        assert "cache key:" in text


class TestPlanCache:
    def test_put_get_and_len(self):
        cache = PlanCache()
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0

    def test_oldest_entry_is_evicted_at_capacity(self):
        cache = PlanCache(max_size=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_engine_counts_hits_and_misses(self):
        db = StatisticalDatabase(patients(100, seed=1),
                                 [QuerySetSizeControl(5)])
        q = "SELECT COUNT(*) WHERE height > 170"
        db.ask(q)
        assert (db.plan_cache_hits, db.plan_cache_misses) == (0, 1)
        db.ask(q)
        db.ask(q)
        assert (db.plan_cache_hits, db.plan_cache_misses) == (2, 1)
        # A different aggregate over the same predicate is a new shape.
        db.ask("SELECT SUM(blood_pressure) WHERE height > 170")
        assert db.plan_cache_misses == 2

    def test_swapping_the_policy_stack_changes_the_key(self):
        db = StatisticalDatabase(patients(100, seed=1),
                                 [QuerySetSizeControl(5)])
        q = "SELECT COUNT(*) WHERE height > 170"
        db.ask(q)
        db.policies = [QuerySetSizeControl(6)]
        db.ask(q)
        assert db.plan_cache_misses == 2

    def test_planner_without_cache_always_compiles(self):
        db = StatisticalDatabase(patients(100, seed=1),
                                 [QuerySetSizeControl(5)])
        planner = QueryPlanner(db, cache=False)
        q = Query(Aggregate.COUNT, None, Comparison("height", ">", 170.0))
        p1, _ = planner.plan_for(q)
        p2, _ = planner.plan_for(q)
        assert p1 is not p2
        assert planner.cache is None


class TestWordLogStores:
    @pytest.mark.parametrize("make", [
        lambda n_words: RamWordLog(n_words, initial_capacity=2),
        lambda n_words: MemmapWordLog(n_words, initial_capacity=2),
    ], ids=["ram", "memmap"])
    def test_append_rows_and_overlap_counts(self, make):
        n_bits = 130
        n_words = words_per_bits(n_bits)
        store = make(n_words)
        rng = np.random.default_rng(0)
        masks = [rng.random(n_bits) < 0.5 for _ in range(17)]
        log = QueryHistory(n_bits).answered_masks  # packer only
        for mask in masks:
            store.append(log.pack(mask))
        assert len(store) == 17
        candidate = rng.random(n_bits) < 0.5
        packed = log.pack(candidate)
        expected = [int(np.sum(candidate & m)) for m in masks]
        np.testing.assert_array_equal(
            store.overlap_counts(packed, 0, len(store)), expected
        )
        np.testing.assert_array_equal(
            store.overlap_counts(packed, 5, 12), expected[5:12]
        )

    def test_memmap_chunked_scan_matches_unchunked(self):
        n_words = 4
        budget = 3 * n_words * 8  # three rows per chunk
        store = MemmapWordLog(n_words, initial_capacity=1, ram_budget=budget)
        plain = RamWordLog(n_words)
        rng = np.random.default_rng(1)
        for _ in range(20):
            row = rng.integers(0, 2**63, n_words, dtype=np.uint64)
            store.append(row)
            plain.append(row)
        assert store.chunk_rows == 3
        probe = rng.integers(0, 2**63, n_words, dtype=np.uint64)
        np.testing.assert_array_equal(
            store.overlap_counts(probe, 0, 20),
            plain.overlap_counts(probe, 0, 20),
        )

    def test_memmap_growth_survives_generations(self):
        store = MemmapWordLog(2, initial_capacity=1)
        rows = [np.array([i, i + 1], dtype=np.uint64) for i in range(9)]
        for row in rows:
            store.append(row)
        assert len(store) == 9
        np.testing.assert_array_equal(np.asarray(store.rows), np.array(rows))

    def test_invalid_ram_budget_is_rejected(self):
        with pytest.raises(ValueError, match="ram_budget"):
            MemmapWordLog(4, ram_budget=0)


class TestEnvironmentValidation:
    @pytest.mark.parametrize("value", ["abc", "0", "-5", "2.5"])
    def test_overlap_chunk_misconfiguration_raises(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_QDB_OVERLAP_CHUNK", value)
        with pytest.raises(ValueError, match="REPRO_QDB_OVERLAP_CHUNK"):
            OverlapControl(10)

    def test_overlap_chunk_override_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_QDB_OVERLAP_CHUNK", "64")
        assert OverlapControl(10).chunk == 64

    @pytest.mark.parametrize("value", ["disk", "mmap", "RAMM"])
    def test_unknown_history_store_raises(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_QDB_HISTORY_STORE", value)
        with pytest.raises(ValueError, match="REPRO_QDB_HISTORY_STORE"):
            QueryHistory(32)

    @pytest.mark.parametrize("value", ["abc", "0", "-1"])
    def test_invalid_history_budget_raises(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_QDB_HISTORY_STORE", "memmap")
        monkeypatch.setenv("REPRO_QDB_HISTORY_BUDGET", value)
        with pytest.raises(ValueError, match="REPRO_QDB_HISTORY_BUDGET"):
            QueryHistory(32)

    def test_memmap_store_selected_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_QDB_HISTORY_STORE", "memmap")
        monkeypatch.setenv("REPRO_QDB_HISTORY_BUDGET", str(1 << 16))
        history = QueryHistory(32)
        assert history.answered_masks.store_kind == "MemmapWordLog"

    def test_default_store_is_ram(self):
        assert QueryHistory(32).answered_masks.store_kind == "RamWordLog"


class TestExplainCli:
    def test_explain_renders_both_plans(self, capsys):
        assert main([
            "qdb", "explain",
            "SELECT SUM(blood_pressure) WHERE height > 170",
            "--records", "80",
        ]) == 0
        out = capsys.readouterr().out
        assert "== before optimization ==" in out
        assert "FusedAudit" in out
        assert "passes:" in out
        assert "cache key:" in out

    def test_explain_pir_demo_shows_coalescing(self, capsys):
        assert main([
            "qdb", "explain", "SELECT COUNT(*) WHERE height > 170",
            "--records", "80", "--pir-demo",
        ]) == 0
        out = capsys.readouterr().out
        assert "FusedPirFetch" in out
        assert "retrieve_batch" in out

    def test_custom_policy_spec(self, capsys):
        assert main([
            "qdb", "explain", "SELECT COUNT(*) WHERE height > 170",
            "--records", "80", "--policies", "overlap:30,noise:2.0",
        ]) == 0
        out = capsys.readouterr().out
        assert "overlap-control(r=30)" in out

    def test_unknown_policy_token_exits_loudly(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            main([
                "qdb", "explain", "SELECT COUNT(*)",
                "--policies", "sizes:5",
            ])

    def test_unparseable_query_is_an_error(self, capsys):
        assert main(["qdb", "explain", "SELEC COUNT(*)"]) == 1
        assert "error:" in capsys.readouterr().err
