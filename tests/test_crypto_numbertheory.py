"""Tests for number-theoretic primitives."""

import random

import pytest

from repro.crypto import (
    crt_pair,
    egcd,
    invmod,
    is_probable_prime,
    lcm,
    random_coprime,
    random_prime,
    random_safe_prime,
)


class TestEgcd:
    def test_bezout_identity(self):
        for a, b in [(240, 46), (17, 5), (100, 100), (0, 7)]:
            g, x, y = egcd(a, b)
            assert a * x + b * y == g

    def test_gcd_values(self):
        assert egcd(12, 18)[0] == 6
        assert egcd(17, 31)[0] == 1


class TestInvmod:
    def test_inverse_property(self):
        rng = random.Random(0)
        for _ in range(20):
            m = rng.randrange(3, 10**6) | 1
            a = rng.randrange(1, m)
            if egcd(a, m)[0] != 1:
                continue
            assert a * invmod(a, m) % m == 1

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError, match="not invertible"):
            invmod(6, 9)


class TestPrimality:
    def test_known_primes(self):
        for p in (2, 3, 97, 7919, 104729, (1 << 61) - 1):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for n in (1, 0, -7, 4, 100, 561, 1105, 7919 * 104729):
            assert not is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes that Miller-Rabin must catch.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(n)


class TestGeneration:
    def test_random_prime_bits(self):
        rng = random.Random(1)
        p = random_prime(64, rng)
        assert p.bit_length() == 64
        assert is_probable_prime(p)

    def test_random_prime_minimum_bits(self):
        with pytest.raises(ValueError):
            random_prime(2, random.Random(0))

    def test_safe_prime(self):
        rng = random.Random(2)
        p = random_safe_prime(32, rng)
        assert is_probable_prime(p)
        assert is_probable_prime((p - 1) // 2)

    def test_random_coprime(self):
        rng = random.Random(3)
        n = 2 * 3 * 5 * 7 * 11
        for _ in range(10):
            c = random_coprime(n, rng)
            assert egcd(c, n)[0] == 1


class TestCrtLcm:
    def test_crt_pair(self):
        x = crt_pair(2, 3, 3, 5)
        assert x % 3 == 2 and x % 5 == 3

    def test_crt_requires_coprime(self):
        with pytest.raises(ValueError):
            crt_pair(1, 4, 2, 6)

    def test_lcm(self):
        assert lcm(4, 6) == 12
        assert lcm(7, 13) == 91
