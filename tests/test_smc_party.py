"""Tests for the transcript machinery and exposure meter."""

from repro.smc import Message, Transcript, plaintext_exposure


class TestMessage:
    def test_payload_numbers_flattening(self):
        m = Message("A", "B", "t", {"x": [1, 2.5], "y": (3,), "z": "text"})
        assert sorted(m.payload_numbers()) == [1.0, 2.5, 3.0]

    def test_booleans_not_numbers(self):
        m = Message("A", "B", "t", [True, False, 2])
        assert m.payload_numbers() == [2.0]


class TestTranscript:
    def test_record_and_len(self):
        t = Transcript()
        t.record("A", "B", "x", 1)
        t.record("B", "A", "y", 2)
        assert len(t) == 2

    def test_visible_to(self):
        t = Transcript()
        t.record("A", "B", "x", 1)
        t.record("B", "C", "y", 2)
        assert len(t.visible_to("A")) == 1
        assert len(t.visible_to("B")) == 2
        assert len(t.visible_to("C")) == 1

    def test_numbers_seen_by_excludes_own(self):
        t = Transcript()
        t.record("A", "B", "x", 10)
        t.record("B", "B", "self", 99)
        assert t.numbers_seen_by("B") == [10.0]

    def test_all_numbers(self):
        t = Transcript()
        t.record("A", "B", "x", [1, 2])
        t.record("B", "A", "y", 3)
        assert sorted(t.all_numbers()) == [1.0, 2.0, 3.0]


class TestExposure:
    def test_naive_sharing_fully_exposed(self):
        t = Transcript()
        t.record("P0", "P1", "raw", 42)
        exposure = plaintext_exposure(t, {"P0": [42], "P1": [7]})
        assert exposure == 0.5  # P0's value seen by P1; P1 sent nothing

    def test_masked_sharing_not_exposed(self):
        t = Transcript()
        t.record("P0", "P1", "masked", 42 + 12345)
        assert plaintext_exposure(t, {"P0": [42], "P1": [7]}) == 0.0

    def test_exposure_to_external_receiver(self):
        t = Transcript()
        t.record("P0", "server", "raw", 42)
        assert plaintext_exposure(t, {"P0": [42]}) == 1.0

    def test_empty(self):
        assert plaintext_exposure(Transcript(), {}) == 0.0
