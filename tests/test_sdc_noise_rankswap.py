"""Tests for noise addition and rank swapping."""

import numpy as np
import pytest

from repro.sdc import (
    CorrelatedNoise,
    LaplaceNoise,
    RankSwap,
    UncorrelatedNoise,
    rank_swap_column,
)


class TestUncorrelatedNoise:
    def test_noise_scale(self, patients_300, rng):
        release = UncorrelatedNoise(0.5).mask(patients_300, rng)
        delta = release["height"] - patients_300["height"]
        expected = 0.5 * patients_300["height"].std()
        assert delta.std() == pytest.approx(expected, rel=0.2)
        assert abs(delta.mean()) < expected / 3

    def test_zero_noise_identity(self, patients_300, rng):
        release = UncorrelatedNoise(0.0).mask(patients_300, rng)
        assert np.array_equal(release["height"], patients_300["height"])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UncorrelatedNoise(-1)

    def test_only_qi_columns_touched(self, patients_300, rng):
        release = UncorrelatedNoise(0.5).mask(patients_300, rng)
        assert np.array_equal(
            release["blood_pressure"], patients_300["blood_pressure"]
        )


class TestCorrelatedNoise:
    def test_correlations_roughly_preserved(self, patients_300, rng):
        release = CorrelatedNoise(0.3).mask(patients_300, rng)
        cols = ["height", "weight", "age"]
        corr_orig = np.corrcoef(patients_300.matrix(cols), rowvar=False)
        corr_rel = np.corrcoef(release.matrix(cols), rowvar=False)
        assert np.abs(corr_orig - corr_rel).max() < 0.15

    def test_alpha_zero_identity(self, patients_300, rng):
        release = CorrelatedNoise(0.0).mask(patients_300, rng)
        assert release == patients_300

    def test_variance_inflated_by_alpha(self, patients_300, rng):
        release = CorrelatedNoise(0.5).mask(patients_300, rng)
        v_orig = patients_300["height"].var()
        v_rel = release["height"].var()
        assert v_rel == pytest.approx(1.5 * v_orig, rel=0.25)


class TestLaplaceNoise:
    def test_perturbs(self, patients_300, rng):
        release = LaplaceNoise(0.3).mask(patients_300, rng)
        assert not np.array_equal(release["height"], patients_300["height"])

    def test_validation(self):
        with pytest.raises(ValueError):
            LaplaceNoise(-0.1)


class TestRankSwap:
    def test_multiset_preserved(self, patients_300, rng):
        """Rank swapping never changes the univariate distribution."""
        release = RankSwap(15).mask(patients_300, rng)
        for col in ("height", "weight", "age"):
            assert sorted(release[col]) == sorted(patients_300[col])

    def test_links_broken(self, patients_300, rng):
        release = RankSwap(15).mask(patients_300, rng)
        moved = np.mean(release["height"] != patients_300["height"])
        assert moved > 0.5

    def test_swap_window_respected(self, rng):
        values = np.arange(100, dtype=float)
        swapped = rank_swap_column(values, 10.0, rng)
        # Ranks equal values here; no displacement may exceed the window.
        assert np.abs(swapped - values).max() <= 10

    def test_single_value(self, rng):
        assert rank_swap_column([5.0], 10, rng)[0] == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RankSwap(0)
