"""Tests for secure vertically partitioned naive Bayes."""

import random

import numpy as np
import pytest

from repro.data import patients
from repro.mining import GaussianNaiveBayes, accuracy
from repro.smc import (
    secure_vertical_naive_bayes,
    vertical_nb_feature_order,
)


@pytest.fixture(scope="module")
def partitioned():
    pop = patients(180, seed=9)
    label = np.where(
        pop["blood_pressure"] > np.median(pop["blood_pressure"]), "hi", "lo"
    )
    table = pop.project(
        ["height", "weight", "age", "cholesterol"]
    ).with_column("risk", label)
    alice = table.project(["height", "weight"])
    bob = table.project(["age", "cholesterol", "risk"])
    return table, alice, bob


class TestCorrectness:
    def test_matches_plaintext_model(self, partitioned):
        table, alice, bob = partitioned
        result = secure_vertical_naive_bayes(
            alice, bob, "risk", key_bits=160, rng=random.Random(5)
        )
        order = vertical_nb_feature_order(alice, bob, "risk")
        x = table.matrix(order)
        plain = GaussianNaiveBayes().fit(x, table["risk"])
        assert np.array_equal(result.model.predict(x), plain.predict(x))

    def test_parameters_match_plaintext(self, partitioned):
        table, alice, bob = partitioned
        result = secure_vertical_naive_bayes(
            alice, bob, "risk", key_bits=160, rng=random.Random(6)
        )
        order = vertical_nb_feature_order(alice, bob, "risk")
        x = table.matrix(order)
        plain = GaussianNaiveBayes().fit(x, table["risk"])
        assert np.allclose(result.model._means, plain._means, atol=1e-2)
        assert np.allclose(result.model._priors, plain._priors)

    def test_learns_signal(self, partitioned):
        table, alice, bob = partitioned
        result = secure_vertical_naive_bayes(
            alice, bob, "risk", key_bits=160, rng=random.Random(7)
        )
        order = vertical_nb_feature_order(alice, bob, "risk")
        acc = accuracy(table["risk"], result.model.predict(table.matrix(order)))
        assert acc > 0.6


class TestPrivacy:
    def test_no_raw_features_on_wire(self, partitioned):
        _table, alice, bob = partitioned
        result = secure_vertical_naive_bayes(
            alice, bob, "risk", key_bits=160, rng=random.Random(8)
        )
        alice_values = {
            float(v) for c in ("height", "weight") for v in alice[c]
        }
        wire = set(result.transcript.all_numbers())
        assert not (alice_values & wire)

    def test_no_plain_indicator_on_wire(self, partitioned):
        """Bob's class labels travel only as Paillier ciphertexts, which
        are astronomically larger than 0/1."""
        _table, alice, bob = partitioned
        result = secure_vertical_naive_bayes(
            alice, bob, "risk", key_bits=160, rng=random.Random(9)
        )
        small = [v for v in result.transcript.all_numbers() if v in (0.0, 1.0)]
        assert not small

    def test_scalar_product_count(self, partitioned):
        _table, alice, bob = partitioned
        result = secure_vertical_naive_bayes(
            alice, bob, "risk", key_bits=160, rng=random.Random(10)
        )
        # 2 Alice columns x 2 classes x (sum, sum of squares).
        assert result.scalar_products == 8


class TestValidation:
    def test_misaligned_rejected(self, partitioned):
        _table, alice, bob = partitioned
        with pytest.raises(ValueError, match="row-aligned"):
            secure_vertical_naive_bayes(
                alice.select(np.arange(10)), bob, "risk"
            )

    def test_class_column_must_be_bobs(self, partitioned):
        _table, alice, bob = partitioned
        with pytest.raises(ValueError, match="belong to Bob"):
            secure_vertical_naive_bayes(alice, bob, "height")
