"""Tests for the three privacy meters."""

import numpy as np
import pytest

from repro.core import (
    owner_privacy_from_release,
    owner_privacy_from_transcript,
    respondent_privacy_score,
    user_privacy_from_posterior,
    user_privacy_plaintext,
    user_privacy_use_specific,
)
from repro.sdc import IdentityMasking, Microaggregation, UncorrelatedNoise
from repro.smc import Transcript


QI = ["height", "weight", "age"]


class TestRespondentMeter:
    def test_identity_release_scores_zero(self, patients_300):
        score = respondent_privacy_score(
            patients_300, patients_300, QI
        )
        assert score < 0.05

    def test_k_anonymous_release_scores_high(self, patients_300):
        release = Microaggregation(10).mask(patients_300)
        score = respondent_privacy_score(patients_300, release, QI)
        assert score > 0.85

    def test_extra_disclosure_channel(self, patients_300):
        release = Microaggregation(10).mask(patients_300)
        base = respondent_privacy_score(patients_300, release, QI)
        worse = respondent_privacy_score(
            patients_300, release, QI, extra_disclosure=0.5
        )
        assert worse == pytest.approx(0.5)
        assert worse < base


class TestOwnerMeter:
    def test_identity_release_zero(self, patients_300):
        assert owner_privacy_from_release(
            patients_300, IdentityMasking().mask(patients_300), QI
        ) == 0.0

    def test_masking_raises_owner_privacy(self, patients_300, rng):
        noisy = UncorrelatedNoise(1.0).mask(patients_300, rng)
        assert owner_privacy_from_release(patients_300, noisy, QI) > 0.5

    def test_transcript_meter(self):
        t = Transcript()
        t.record("P0", "P1", "raw", 5.0)
        assert owner_privacy_from_transcript(t, {"P0": [5.0], "P1": [7.0]}) == 0.5
        assert owner_privacy_from_transcript(Transcript(), {"P0": [5.0]}) == 1.0


class TestUserMeter:
    def test_plaintext_zero(self):
        assert user_privacy_plaintext() == 0.0

    def test_uniform_posterior_is_one(self):
        assert user_privacy_from_posterior([0.25] * 4) == pytest.approx(1.0)

    def test_point_mass_is_zero(self):
        assert user_privacy_from_posterior([1.0, 0.0, 0.0]) == 0.0

    def test_normalization(self):
        assert user_privacy_from_posterior([2.0, 2.0]) == pytest.approx(1.0)

    def test_degenerate_space(self):
        assert user_privacy_from_posterior([1.0]) == 0.0

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            user_privacy_from_posterior([0.0, 0.0])

    def test_use_specific_lands_medium(self):
        """The paper's 'some clue on the queries' argument: 4 analysis
        classes x 16 targets -> log(16)/log(64) = 2/3, a medium grade."""
        score = user_privacy_use_specific(4, 16)
        assert score == pytest.approx(np.log2(16) / np.log2(64))
        from repro.core import Grade, grade_from_score
        assert grade_from_score(score) is Grade.MEDIUM

    def test_use_specific_validation(self):
        with pytest.raises(ValueError):
            user_privacy_use_specific(0, 4)

    def test_more_classes_known_hurts_more(self):
        assert user_privacy_use_specific(16, 16) < user_privacy_use_specific(2, 16)
