"""Tests for p-sensitive k-anonymity and l-diversity."""

import pytest

from repro.data import AttributeRole, Dataset, Schema
from repro.sdc import (
    distinct_l_diversity,
    homogeneous_classes,
    is_p_sensitive_k_anonymous,
    sensitivity_level,
)


@pytest.fixture
def homogeneous():
    """2-anonymous but with a class where 'disease' is constant."""
    return Dataset(
        {
            "zip": ["A", "A", "B", "B"],
            "disease": ["flu", "flu", "flu", "cancer"],
        },
        schema=Schema({
            "zip": AttributeRole.QUASI_IDENTIFIER,
            "disease": AttributeRole.CONFIDENTIAL,
        }),
    )


def test_paper_footnote_3_scenario(homogeneous):
    """k-anonymity alone does not protect when a class shares the
    confidential value (paper footnote 3)."""
    assert is_p_sensitive_k_anonymous(homogeneous, p=1, k=2)
    assert not is_p_sensitive_k_anonymous(homogeneous, p=2, k=2)


def test_sensitivity_level(homogeneous):
    assert sensitivity_level(homogeneous) == 1


def test_sensitivity_level_diverse():
    ds = Dataset(
        {
            "zip": ["A", "A", "B", "B"],
            "disease": ["flu", "cancer", "flu", "cancer"],
        },
        schema=Schema({
            "zip": AttributeRole.QUASI_IDENTIFIER,
            "disease": AttributeRole.CONFIDENTIAL,
        }),
    )
    assert sensitivity_level(ds) == 2
    assert is_p_sensitive_k_anonymous(ds, p=2, k=2)


def test_l_diversity(homogeneous):
    assert distinct_l_diversity(homogeneous, "disease", ["zip"]) == 1


def test_homogeneous_classes_found(homogeneous):
    keys = homogeneous_classes(homogeneous, "disease", ["zip"])
    assert ("A",) in keys
    assert ("B",) not in keys


def test_p_sensitive_fails_without_k(homogeneous):
    assert not is_p_sensitive_k_anonymous(homogeneous, p=1, k=3)


def test_validation():
    ds = Dataset({"zip": ["A"], "d": ["x"]})
    with pytest.raises(ValueError, match="confidential"):
        sensitivity_level(ds, confidential=None, quasi_identifiers=["zip"])
    with pytest.raises(ValueError):
        is_p_sensitive_k_anonymous(ds, p=0, k=1, confidential=["d"],
                                   quasi_identifiers=["zip"])


def test_empty_dataset_sensitivity():
    ds = Dataset.from_rows(["zip", "d"], [])
    assert sensitivity_level(ds, ["d"], ["zip"]) == 0
    assert distinct_l_diversity(ds, "d", ["zip"]) == 0


def test_dataset_1_aids_not_diverse(ds1):
    """In the reconstructed Dataset 1, checking both confidential columns:
    blood pressure varies within groups; AIDS has both values only in some."""
    level = distinct_l_diversity(ds1, "blood_pressure", ["height", "weight"])
    assert level >= 3  # all pressures distinct within groups
