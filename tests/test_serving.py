"""The sharded serving runtime: routing, admission, cross-shard audit.

The acceptance scenario: a Schlörer tracker *split* across sessions on
different shards must be refused by the shared audit view at every shard
count, the isolated-audit control must lose to the identical attack, and
every overload refusal must be typed, frozen-reason, and reconstructable
from the telemetry capture alone.
"""

import pytest

from repro.data import patients
from repro.qdb import (
    QuerySetSizeControl,
    Refusal,
    StatisticalDatabase,
    SumAuditPolicy,
)
from repro.sdc import equivalence_classes
from repro.serving import (
    ADMISSION_PREFIX,
    ConsistentHashRouter,
    FakeClock,
    REASON_QUEUE_FULL,
    REASON_RATE_LIMITED,
    ServingRuntime,
    TokenBucket,
    split_tracker_attack,
)
from repro.telemetry import instrument as tele
from repro.telemetry.report import degradation_decisions, read_trace

pytestmark = pytest.mark.usefixtures("clean_telemetry")


@pytest.fixture
def clean_telemetry():
    tele.disable()
    tele.reset_metrics()
    yield
    tele.disable()
    tele.reset_metrics()


def _tracked_population(records=150, seed=3):
    pop = patients(records, seed=seed)
    targets = [
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
        and (pop["height"] == pop["height"][cls.indices[0]]).sum() >= 6
    ]
    assert targets, "seeded population must contain a trackable target"
    return pop, targets


class TestRouter:
    def test_deterministic_across_instances(self):
        a, b = ConsistentHashRouter(4), ConsistentHashRouter(4)
        keys = [f"user-{i}" for i in range(500)]
        assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]

    def test_all_shards_in_range(self):
        router = ConsistentHashRouter(3)
        shards = {router.shard_for(f"s{i}") for i in range(300)}
        assert shards <= set(range(3))

    def test_resharding_moves_keys_only_to_the_new_shard(self):
        keys = [f"session-{i}" for i in range(1000)]
        for n in (1, 2, 4, 8):
            narrow, wide = ConsistentHashRouter(n), ConsistentHashRouter(n + 1)
            moved = [k for k in keys
                     if narrow.shard_for(k) != wide.shard_for(k)]
            # The consistent-hashing contract: no key migrates between
            # two pre-existing shards when the ring only gained points.
            assert moved, "a wider ring should claim some keys"
            assert all(wide.shard_for(k) == n for k in moved)

    def test_spread_is_roughly_balanced(self):
        router = ConsistentHashRouter(4)
        counts = router.spread(f"user-{i}" for i in range(4000))
        assert set(counts) == {0, 1, 2, 3}
        assert min(counts.values()) > 0
        # vnodes=64 keeps the imbalance well under 3x on 4k keys.
        assert max(counts.values()) < 3 * min(counts.values())

    def test_salt_decorrelates_rings(self):
        sessions = ConsistentHashRouter(4, salt="serving")
        blocks = ConsistentHashRouter(4, salt="blocks")
        keys = [f"k{i}" for i in range(200)]
        assert [sessions.shard_for(k) for k in keys] != \
            [blocks.shard_for(k) for k in keys]

    def test_rejects_degenerate_rings(self):
        with pytest.raises(ValueError):
            ConsistentHashRouter(0)
        with pytest.raises(ValueError):
            ConsistentHashRouter(2, vnodes=0)


class TestTokenBucket:
    def test_burst_then_refill_under_fake_clock(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == \
            [True, True, True, False]
        clock.advance(0.5)  # 0.5 s * 2/s = exactly one token back
        assert bucket.try_acquire() is True
        assert bucket.try_acquire() is False

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert [bucket.try_acquire() for _ in range(3)] == \
            [True, True, False]

    def test_rate_zero_is_a_first_b_only_counter(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        clock.advance(1e9)  # no refill, ever
        assert bucket.try_acquire() is False

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmission:
    PROBE = "SELECT COUNT(*) WHERE height > 170"

    def test_rate_limit_refusals_are_typed_audited_and_spanned(self, tmp_path):
        pop, _ = _tracked_population()
        trace = tmp_path / "overload.jsonl"
        with tele.session(trace):
            with ServingRuntime(pop, shards=2, session_rate=0.0,
                                session_burst=2, clock=FakeClock(),
                                auto_start=False) as runtime:
                futures = [runtime.submit("greedy", self.PROBE)
                           for _ in range(8)]
                runtime.start()
                answers = [f.result() for f in futures]
            stats = runtime.stats()
        refused = [a for a in answers if a.refused]
        assert len(refused) == 6
        for answer in refused:
            assert isinstance(answer, Refusal)
            assert answer.reason.startswith(
                ADMISSION_PREFIX + REASON_RATE_LIMITED
            )
        assert stats["admitted"] == 2
        assert stats["overload_refusals"] == 6
        # The trace alone reconstructs every shed request.
        decisions = [
            d for d in degradation_decisions(read_trace(trace, validate=True))
            if d["component"] == "serving"
        ]
        assert len(decisions) == 6
        assert {d["decision"] for d in decisions} == {"refuse-overload"}
        assert {d["reason"] for d in decisions} == {REASON_RATE_LIMITED}

    def test_queue_full_refusals_are_typed_and_counted(self, tmp_path):
        pop, _ = _tracked_population()
        trace = tmp_path / "backpressure.jsonl"
        with tele.session(trace):
            with ServingRuntime(pop, shards=1, queue_depth=2,
                                auto_start=False) as runtime:
                futures = [runtime.submit("burst", self.PROBE)
                           for _ in range(5)]
                runtime.start()
                answers = [f.result() for f in futures]
        refused = [a for a in answers if a.refused]
        assert len(refused) == 3
        for answer in refused:
            assert isinstance(answer, Refusal)
            assert answer.reason.startswith(
                ADMISSION_PREFIX + REASON_QUEUE_FULL
            )
        admitted = [a for a in answers if not a.refused]
        assert len(admitted) == 2 and all(a.ok for a in admitted)
        decisions = [
            d for d in degradation_decisions(read_trace(trace))
            if d["component"] == "serving"
        ]
        assert {d["reason"] for d in decisions} == {REASON_QUEUE_FULL}

    def test_admission_never_raises_on_the_query_path(self):
        pop, _ = _tracked_population()
        with ServingRuntime(pop, shards=1, queue_depth=1,
                            auto_start=False) as runtime:
            answers = [runtime.submit("s", self.PROBE) for _ in range(4)]
            runtime.start()
            results = [f.result(timeout=10) for f in answers]
        assert all(hasattr(a, "refused") for a in results)


class TestCrossShardAudit:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_split_tracker_refused_under_shared_audit(self, shards):
        pop, targets = _tracked_population()
        with ServingRuntime(pop, shards=shards, sum_audit=True) as runtime:
            sessions = runtime.distinct_shard_sessions("split", 2)
            if shards >= 2:
                assert runtime.shard_of(sessions[0]) != \
                    runtime.shard_of(sessions[1])
            outcome = split_tracker_attack(
                runtime, pop, targets[0], ["height", "weight"],
                "blood_pressure", sessions=sessions,
            )
        assert not outcome.succeeded
        assert outcome.refusals >= 1
        assert outcome.detail == "padding or tracker COUNT refused"

    def test_isolated_audits_lose_to_the_split_tracker(self):
        # The negative control: identical attack, per-shard audits only.
        pop, targets = _tracked_population()
        with ServingRuntime(pop, shards=2, sum_audit=True,
                            shared_audit=False) as runtime:
            sessions = runtime.distinct_shard_sessions("split", 2)
            assert runtime.shard_of(sessions[0]) != \
                runtime.shard_of(sessions[1])
            outcome = split_tracker_attack(
                runtime, pop, targets[0], ["height", "weight"],
                "blood_pressure", sessions=sessions,
            )
        assert outcome.succeeded and outcome.exact

    def test_sharded_decisions_match_a_single_engine(self):
        # Decision equivalence: one analyst's serialized workload through
        # the 4-shard runtime refuses and answers exactly like a lone
        # StatisticalDatabase with the same policy stack.  (Reason
        # strings differ by the "cross-shard-audit: " wrapper, so the
        # comparison pins refused flags and answered values.)
        pop, _ = _tracked_population()
        workload = [
            "SELECT COUNT(*) WHERE height > 170",
            "SELECT AVG(blood_pressure) WHERE height > 170",
            "SELECT SUM(blood_pressure) WHERE height > 170",
            "SELECT SUM(blood_pressure) WHERE height > 170 AND weight > 70",
            "SELECT SUM(blood_pressure) WHERE height > 170 AND weight <= 70",
            "SELECT COUNT(*) WHERE weight <= 80",
            "SELECT COUNT(*)",
        ]
        single = StatisticalDatabase(
            pop, [QuerySetSizeControl(5), SumAuditPolicy()]
        )
        with single.session("analyst"):
            truth = single.ask_batch(workload)
        with ServingRuntime(pop, shards=4, sum_audit=True) as runtime:
            served = [runtime.ask("analyst", q) for q in workload]
        assert [a.refused for a in served] == [t.refused for t in truth]
        for answer, expected in zip(served, truth):
            if not expected.refused:
                assert answer.value == pytest.approx(expected.value)
        assert any(t.refused for t in truth), \
            "workload must exercise at least one refusal"

    def test_audit_view_counts_committed_answers(self):
        pop, _ = _tracked_population()
        with ServingRuntime(pop, shards=2, sum_audit=True) as runtime:
            runtime.ask("a", "SELECT COUNT(*) WHERE height > 170")
            runtime.ask("b", "SELECT COUNT(*) WHERE weight <= 80")
            stats = runtime.stats()
        assert stats["audit_answered"] == 2
        assert stats["shared_audit"] is True


class TestPirScatter:
    def test_scatter_gather_roundtrip_in_request_order(self):
        pop, _ = _tracked_population()
        values = [int(v) for v in pop["blood_pressure"][:16]]
        with ServingRuntime(pop, shards=4, pir_values=values) as runtime:
            assert runtime.n_blocks == 16
            indices = [15, 0, 7, 7, 3, 12]
            got = runtime.retrieve_batch_int("reader", indices, seed=11)
        assert got == [values[i] for i in indices]

    def test_blocks_partition_over_all_busy_shards(self):
        pop, _ = _tracked_population()
        values = list(range(64))
        with ServingRuntime(pop, shards=4, pir_values=values) as runtime:
            got = runtime.retrieve_batch_int("reader", range(64))
            stats = runtime.stats()
        assert got == values
        assert sum(s["pir_blocks"] for s in stats["shards"]) == 64
        busy = [s for s in stats["shards"] if s["pir_positions"]]
        assert len(busy) >= 2

    def test_pir_requires_blocks(self):
        pop, _ = _tracked_population()
        with ServingRuntime(pop, shards=1) as runtime:
            with pytest.raises(ValueError):
                runtime.submit_pir("reader", [0])


class TestRuntimeLifecycle:
    def test_distinct_shard_sessions_are_distinct_and_stable(self):
        pop, _ = _tracked_population()
        with ServingRuntime(pop, shards=4) as runtime:
            labels = runtime.distinct_shard_sessions("cohort", 3)
            assert len(labels) == 3
            shards = [runtime.shard_of(label) for label in labels]
            assert len(set(shards)) == 3
            assert labels == runtime.distinct_shard_sessions("cohort", 3)

    def test_single_shard_runtime_pads_session_labels(self):
        pop, _ = _tracked_population()
        with ServingRuntime(pop, shards=1) as runtime:
            labels = runtime.distinct_shard_sessions("cohort", 2)
        assert len(labels) == 2 and len(set(labels)) == 2

    def test_close_is_idempotent_and_restartable(self):
        pop, _ = _tracked_population()
        runtime = ServingRuntime(pop, shards=2)
        assert runtime.ask("s", "SELECT COUNT(*) WHERE height > 170").ok
        runtime.close()
        runtime.close()
        runtime.start()
        assert runtime.ask("s", "SELECT COUNT(*) WHERE weight <= 80").ok
        runtime.close()

    def test_rejects_degenerate_configuration(self):
        pop, _ = _tracked_population()
        with pytest.raises(ValueError):
            ServingRuntime(pop, shards=0)
        with pytest.raises(ValueError):
            ServingRuntime(pop, shards=1, queue_depth=0)
