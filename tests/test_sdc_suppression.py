"""Tests for record and cell suppression."""

import numpy as np
import pytest

from repro.data import SUPPRESSED
from repro.sdc import (
    CellSuppression,
    RecordSuppression,
    anonymity_level,
    is_k_anonymous,
    suppress_cells,
    suppress_records,
)


class TestRecordSuppression:
    def test_achieves_k(self, ds2):
        out = suppress_records(ds2, 3, ["height", "weight"])
        assert is_k_anonymous(out, 3, ["height", "weight"])

    def test_only_violators_dropped(self, ds2):
        out = suppress_records(ds2, 3, ["height", "weight"])
        assert out.n_rows == 3  # only the (170, 72) x3 group survives
        assert set(out["height"]) == {170.0}

    def test_already_anonymous_untouched(self, ds1):
        out = suppress_records(ds1, 3, ["height", "weight"])
        assert out.n_rows == ds1.n_rows

    def test_wrapper(self, ds2):
        release = RecordSuppression(3, ["height", "weight"]).mask(ds2)
        assert is_k_anonymous(release, 3, ["height", "weight"])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            RecordSuppression(0)


class TestCellSuppression:
    def test_row_count_preserved(self, ds2):
        out = suppress_cells(ds2, 3, ["height", "weight"])
        assert out.n_rows == ds2.n_rows

    def test_violators_blanked(self, ds2):
        out = suppress_cells(ds2, 3, ["height", "weight"])
        assert out["height"][3] == SUPPRESSED  # the unique (160, 110) record
        assert out["weight"][3] == SUPPRESSED

    def test_survivors_keep_values(self, ds2):
        out = suppress_cells(ds2, 3, ["height", "weight"])
        assert out["height"][0] == 170.0

    def test_confidential_never_blanked(self, ds2):
        out = suppress_cells(ds2, 3, ["height", "weight"])
        assert np.array_equal(out["blood_pressure"], ds2["blood_pressure"])

    def test_suppressed_records_form_one_class(self, ds2):
        out = suppress_cells(ds2, 3, ["height", "weight"])
        level = anonymity_level(out, ["height", "weight"])
        # The blanked records all share ("*", "*"), the rest keep their group.
        assert level >= 3

    def test_wrapper_and_validation(self, ds2):
        assert CellSuppression(3).mask(ds2).n_rows == ds2.n_rows
        with pytest.raises(ValueError):
            CellSuppression(0)
