"""Online attack detectors and the declarative alert rules."""

import pytest

from repro.telemetry.observatory import (
    Alert,
    AlertRule,
    AlertSchemaError,
    DegradationBurstDetector,
    PIRAccessSkewDetector,
    RulesEngine,
    SMCImbalanceDetector,
    TrackerProbeDetector,
    default_detectors,
    validate_alert_record,
)
from repro.telemetry.observatory.detectors import pair_traffic_from_counters
from repro.telemetry.observatory.stream import SeriesStore


def span(name, **attrs):
    """A minimal schema-shaped span record for feeding detectors."""
    return {
        "type": "span", "span_id": 1, "parent_id": None, "name": name,
        "depth": 0, "start": 0.0, "duration": 0.001, "attrs": attrs,
    }


def count_probe(predicate, size):
    return span(
        "qdb.query", aggregate="COUNT", predicate=predicate,
        query_set_size=size,
    )


class TestTrackerProbeDetector:
    def test_padding_tracker_pair_fires_critical(self):
        d = TrackerProbeDetector()
        store = SeriesStore()
        assert d.observe_span(count_probe("height = 170.0", 3), 1, store) == []
        fired = d.observe_span(
            count_probe("(height = 170.0 AND (NOT weight = 80.0))", 2),
            2, store,
        )
        assert len(fired) == 1
        alert = fired[0]
        assert alert.name == "tracker-probe"
        assert alert.severity == "critical"
        assert alert.dimension == "respondent"
        assert alert.value == 1.0

    def test_innocent_drilldown_passes(self):
        d = TrackerProbeDetector()
        store = SeriesStore()
        d.observe_span(count_probe("height > 170.0", 60), 1, store)
        # Contains the earlier predicate but carves off a large
        # sub-population and negates nothing: not a tracker.
        assert d.observe_span(
            count_probe("(height > 170.0 AND weight > 80.0)", 20), 2, store,
        ) == []

    def test_large_difference_passes_even_with_negation(self):
        d = TrackerProbeDetector(max_count_diff=2.0)
        store = SeriesStore()
        d.observe_span(count_probe("height > 150.0", 90), 1, store)
        assert d.observe_span(
            count_probe("(height > 150.0 AND (NOT weight > 80.0))", 40),
            2, store,
        ) == []

    def test_each_tracker_predicate_fires_once(self):
        d = TrackerProbeDetector()
        store = SeriesStore()
        d.observe_span(count_probe("height = 170.0", 3), 1, store)
        tracker = count_probe("(height = 170.0 AND (NOT weight = 80.0))", 2)
        assert len(d.observe_span(tracker, 2, store)) == 1
        d.observe_span(count_probe("height = 170.0", 3), 3, store)
        assert d.observe_span(tracker, 4, store) == []

    def test_sum_queries_are_ignored(self):
        d = TrackerProbeDetector()
        store = SeriesStore()
        d.observe_span(count_probe("height = 170.0", 3), 1, store)
        assert d.observe_span(
            span("qdb.query", aggregate="SUM",
                 predicate="(height = 170.0 AND (NOT weight = 80.0))",
                 query_set_size=2),
            2, store,
        ) == []


class TestPIRAccessSkewDetector:
    def test_skewed_single_retrievals_fire(self):
        d = PIRAccessSkewDetector(min_retrievals=12, max_top_share=0.5)
        store = SeriesStore()
        fired = []
        step = 0
        for block in [5] * 8 + [0, 1, 2, 3] + [5]:
            step += 1
            fired += d.observe_span(
                span("pir.retrieve", block=block), step, store
            )
        assert [a.name for a in fired] == ["pir-access-skew"]
        assert fired[0].dimension == "respondent"
        assert "block 5" in fired[0].detail

    def test_uniform_access_stays_silent(self):
        d = PIRAccessSkewDetector(min_retrievals=12, max_top_share=0.5)
        store = SeriesStore()
        fired = []
        for step, block in enumerate(list(range(8)) * 3, start=1):
            fired += d.observe_span(
                span("pir.retrieve", block=block), step, store
            )
        assert fired == []

    def test_batch_summary_attrs_are_ingested(self):
        d = PIRAccessSkewDetector(min_retrievals=12, max_top_share=0.5)
        store = SeriesStore()
        fired = d.observe_span(
            span("pir.retrieve_batch", n_queries=16, top_block=3,
                 top_count=12, distinct_blocks=5),
            1, store,
        )
        assert len(fired) == 1
        assert fired[0].value == pytest.approx(12 / 16)

    def test_fires_once_per_top_block(self):
        d = PIRAccessSkewDetector(min_retrievals=4, max_top_share=0.5)
        store = SeriesStore()
        fired = []
        for step in range(1, 9):
            fired += d.observe_span(span("pir.retrieve", block=7), step, store)
        assert len(fired) == 1


class TestSMCImbalanceDetector:
    def test_pair_traffic_parsing(self):
        traffic = pair_traffic_from_counters({
            "smc.payload_bytes[ring-sum|P0->P1]": 24,
            "smc.payload_bytes[shares-sum|P2->P0]": 8,
            "smc.rounds": 3,
            "smc.payload_bytes[malformed": 1,
        })
        assert traffic == {
            ("ring-sum", "P0", "P1"): 24,
            ("shares-sum", "P2", "P0"): 8,
        }

    def test_silent_receiver_fires_owner_alert(self):
        d = SMCImbalanceDetector(min_received_bytes=8)
        fired = d.observe_snapshot({"counters": {
            "smc.payload_bytes[shares-sum|P0->P1]": 16,
            "smc.payload_bytes[shares-sum|P0->P2]": 16,
            "smc.payload_bytes[shares-sum|P2->P0]": 16,
        }}, step=5)
        assert [a.name for a in fired] == ["smc-traffic-imbalance"]
        alert = fired[0]
        assert alert.dimension == "owner"
        assert alert.source == "metric"
        assert "P1" in alert.detail

    def test_balanced_ring_stays_silent(self):
        d = SMCImbalanceDetector()
        assert d.observe_snapshot({"counters": {
            "smc.payload_bytes[ring-sum|P0->P1]": 8,
            "smc.payload_bytes[ring-sum|P1->P2]": 8,
            "smc.payload_bytes[ring-sum|P2->P0]": 8,
        }}, step=1) == []

    def test_fires_once_per_party(self):
        d = SMCImbalanceDetector()
        counters = {"counters": {"smc.payload_bytes[s|P0->P1]": 16}}
        assert len(d.observe_snapshot(counters, step=1)) == 1
        assert d.observe_snapshot(counters, step=2) == []


class TestDegradationBurstDetector:
    def test_burst_fires_with_component_dimension(self):
        d = DegradationBurstDetector(burst=3, window_steps=10)
        store = SeriesStore()
        fired = []
        for step, component in ((1, "pir"), (2, "pir"), (3, "smc")):
            fired += d.observe_span(
                span("faults.degrade", component=component), step, store
            )
        assert [a.name for a in fired] == ["degradation-burst"]
        assert fired[0].dimension == "user"  # pir is the top component
        assert fired[0].value == 3.0

    def test_spread_out_degradations_stay_silent(self):
        d = DegradationBurstDetector(burst=3, window_steps=5)
        store = SeriesStore()
        fired = []
        for step in (1, 10, 20):
            fired += d.observe_span(
                span("faults.degrade", component="qdb"), step, store
            )
        assert fired == []

    def test_fires_once_per_run(self):
        d = DegradationBurstDetector(burst=2, window_steps=100)
        store = SeriesStore()
        fired = []
        for step in range(1, 6):
            fired += d.observe_span(
                span("faults.degrade", component="smc"), step, store
            )
        assert len(fired) == 1
        assert fired[0].dimension == "owner"


class TestRules:
    def test_rule_fires_past_threshold_with_min_count(self):
        store = SeriesStore()
        rule = AlertRule(name="r", series="s", window=4, aggregate="mean",
                         op=">=", threshold=0.5, dimension="user",
                         min_count=4)
        for step in range(1, 4):
            store.series("s").append(step, 1.0)
            assert rule.evaluate(store, step) is None  # below min_count
        store.series("s").append(4, 1.0)
        alert = rule.evaluate(store, 4)
        assert alert is not None and alert.value == 1.0

    def test_engine_is_one_shot_per_rule(self):
        store = SeriesStore()
        rule = AlertRule(name="r", series="s", window=None, aggregate="total",
                         op=">=", threshold=2, dimension="owner")
        engine = RulesEngine([rule])
        store.series("s").append(1, 3.0)
        assert [a.name for a in engine.evaluate(store, 1)] == ["r"]
        store.series("s").append(2, 3.0)
        assert engine.evaluate(store, 2) == []

    def test_rule_validates_op_dimension_severity(self):
        with pytest.raises(ValueError):
            AlertRule(name="r", series="s", window=1, aggregate="mean",
                      op="~=", threshold=0, dimension="user")
        with pytest.raises(ValueError):
            AlertRule(name="r", series="s", window=1, aggregate="mean",
                      op=">", threshold=0, dimension="attacker")

    def test_default_detectors_are_fresh_instances(self):
        a, b = default_detectors(), default_detectors()
        assert {d.name for d in a} == {
            "tracker-probe", "pir-access-skew", "smc-traffic-imbalance",
            "degradation-burst",
        }
        assert all(x is not y for x, y in zip(a, b))


class TestAlertSchema:
    def test_span_attrs_round_trip(self):
        alert = Alert(name="x", severity="warning", dimension="user",
                      step=3, value=1.5, threshold=1.0, detail="d")
        assert Alert.from_span_attrs(alert.span_attrs()) == alert

    def test_alert_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            Alert(name="x", severity="fatal", dimension="user", step=1,
                  value=0, threshold=0)
        with pytest.raises(ValueError):
            Alert(name="x", severity="info", dimension="user", step=1,
                  value=0, threshold=0, source="guess")

    def test_validate_alert_record(self):
        alert = Alert(name="x", severity="info", dimension="owner", step=2,
                      value=0.0, threshold=1.0)
        record = span("observatory.alert", **alert.span_attrs())
        validate_alert_record(record)  # no raise
        with pytest.raises(AlertSchemaError, match="not an alert span"):
            validate_alert_record(span("qdb.query"))
        broken = span("observatory.alert", **alert.span_attrs())
        del broken["attrs"]["severity"]
        with pytest.raises(AlertSchemaError, match="missing attr"):
            validate_alert_record(broken)
        wrong_type = span("observatory.alert", **alert.span_attrs())
        wrong_type["attrs"]["step"] = "2"
        with pytest.raises(AlertSchemaError, match="invalid type"):
            validate_alert_record(wrong_type)
