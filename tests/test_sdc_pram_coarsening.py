"""Tests for PRAM and coarsening masks."""

import numpy as np
import pytest

from repro.data import census
from repro.sdc import (
    Pram,
    Rounding,
    TopBottomCoding,
    TransitionMatrix,
    invariant_matrix,
    retention_matrix,
    unbiased_frequencies,
)


class TestTransitionMatrix:
    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            TransitionMatrix(("a", "b"), np.ones((2, 3)))
        with pytest.raises(ValueError, match="sum to 1"):
            TransitionMatrix(("a", "b"), np.array([[0.5, 0.4], [0.5, 0.5]]))
        with pytest.raises(ValueError, match="non-negative"):
            TransitionMatrix(("a", "b"), np.array([[1.5, -0.5], [0.0, 1.0]]))

    def test_unknown_value(self):
        m = retention_matrix(["a", "b"], 0.9)
        with pytest.raises(KeyError):
            m.index_of("z")

    def test_apply_with_identity_matrix(self):
        m = TransitionMatrix(("a", "b"), np.eye(2))
        out = m.apply(["a", "b", "a"], np.random.default_rng(0))
        assert list(out) == ["a", "b", "a"]


class TestRetentionMatrix:
    def test_diagonal(self):
        m = retention_matrix(["a", "b", "c"], 0.7)
        assert np.allclose(np.diag(m.matrix), 0.7)
        assert np.allclose(m.matrix.sum(axis=1), 1.0)

    def test_needs_two_categories(self):
        with pytest.raises(ValueError):
            retention_matrix(["only"], 0.5)

    def test_retention_bounds(self):
        with pytest.raises(ValueError):
            retention_matrix(["a", "b"], 1.5)


class TestInvariantMatrix:
    def test_invariance_property(self):
        """t P = t — the defining property of invariant PRAM."""
        column = ["x"] * 70 + ["y"] * 25 + ["z"] * 5
        m = invariant_matrix(column, 0.8)
        t = np.array([0.70, 0.25, 0.05])
        order = [m.values.index(v) for v in ("x", "y", "z")]
        t_ordered = np.zeros(3)
        t_ordered[order] = t
        assert np.allclose(t_ordered @ m.matrix, t_ordered)

    def test_rows_stochastic(self):
        m = invariant_matrix(["a"] * 5 + ["b"] * 3, 0.6)
        assert np.allclose(m.matrix.sum(axis=1), 1.0)
        assert np.all(m.matrix >= 0)

    def test_missing_value_rejected(self):
        # invariant construction needs every value to occur
        with pytest.raises(ValueError):
            # build domain manually with a zero-frequency value
            invariant_matrix([], 0.8)


class TestPramMasking:
    @pytest.fixture(scope="class")
    def pop(self):
        return census(2000, seed=2)

    def test_frequencies_preserved_in_expectation(self, pop):
        release = Pram(0.8, columns=["disease"]).mask(
            pop, np.random.default_rng(1)
        )
        for value in set(pop["disease"]):
            orig = float(np.mean(pop["disease"] == value))
            rel = float(np.mean(release["disease"] == value))
            assert rel == pytest.approx(orig, abs=0.03)

    def test_records_actually_flip(self, pop):
        release = Pram(0.8, columns=["disease"]).mask(
            pop, np.random.default_rng(2)
        )
        flipped = float(np.mean(release["disease"] != pop["disease"]))
        assert 0.05 < flipped < 0.5

    def test_matrices_published(self, pop):
        method = Pram(0.8, columns=["disease"])
        method.mask(pop, np.random.default_rng(3))
        assert "disease" in method.matrices

    def test_default_targets_skip_identifiers(self, pop):
        method = Pram(0.9)
        targets = method._target_columns(pop)
        assert "person_id" not in targets  # all-unique, identifier-like
        assert "disease" in targets

    def test_non_invariant_variant(self, pop):
        method = Pram(0.7, columns=["sex"], invariant=False)
        release = method.mask(pop, np.random.default_rng(4))
        matrix = method.matrices["sex"]
        assert np.allclose(np.diag(matrix.matrix), 0.7)
        # Aggregate inversion recovers the original frequencies.
        estimated = unbiased_frequencies(release["sex"], matrix)
        truth = float(np.mean(pop["sex"] == "M"))
        assert estimated["M"] == pytest.approx(truth, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            Pram(retention=-0.1)


class TestTopBottomCoding:
    def test_extremes_clipped(self, patients_300):
        release = TopBottomCoding(0.1).mask(patients_300)
        lo = np.quantile(patients_300["height"], 0.1)
        hi = np.quantile(patients_300["height"], 0.9)
        assert release["height"].min() >= lo - 1e-9
        assert release["height"].max() <= hi + 1e-9

    def test_interior_untouched(self, patients_300):
        release = TopBottomCoding(0.05).mask(patients_300)
        col = patients_300["height"]
        lo, hi = np.quantile(col, [0.05, 0.95])
        interior = (col > lo) & (col < hi)
        assert np.array_equal(release["height"][interior], col[interior])

    def test_validation(self):
        with pytest.raises(ValueError):
            TopBottomCoding(0.0)
        with pytest.raises(ValueError):
            TopBottomCoding(0.5)


class TestRounding:
    def test_values_on_grid(self, patients_300):
        method = Rounding(0.5)
        release = method.mask(patients_300)
        base = method.base_for(patients_300, "height")
        remainders = np.abs(
            release["height"] / base - np.round(release["height"] / base)
        )
        assert np.all(remainders < 1e-9)

    def test_coarsening_reduces_cardinality(self, patients_300):
        release = Rounding(1.0).mask(patients_300)
        assert len(set(release["height"])) < len(set(patients_300["height"]))

    def test_explicit_base(self, patients_300):
        method = Rounding(bases={"height": 10.0}, columns=["height"])
        release = method.mask(patients_300)
        assert np.all(release["height"] % 10 == 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Rounding(0.0)
