"""Tests for the Schlörer tracker attack."""

import pytest

from repro.data import patients
from repro.qdb import (
    NoisePerturbation,
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
    identifying_predicate,
    split_predicate,
    tracker_attack,
    tracker_success_rate,
)
from repro.sdc import equivalence_classes


@pytest.fixture(scope="module")
def population():
    return patients(200, seed=11)


@pytest.fixture(scope="module")
def unique_targets(population):
    """Indices of records unique on (height, weight)."""
    return [
        cls.indices[0]
        for cls in equivalence_classes(population, ["height", "weight"])
        if cls.size == 1
    ]


class TestPredicates:
    def test_identifying_predicate_pins_target(self, population, unique_targets):
        target = unique_targets[0]
        pred = identifying_predicate(population, target, ["height", "weight"])
        assert pred.mask(population).sum() == 1

    def test_split_rejoins(self, population, unique_targets):
        target = unique_targets[0]
        c1, c2 = split_predicate(population, target, ["height", "weight"])
        joined = c1 & c2
        assert list(joined.mask(population).nonzero()[0]) == [target]

    def test_split_needs_two_columns(self, population):
        with pytest.raises(ValueError):
            split_predicate(population, 0, ["height"])

    def test_identifying_needs_columns(self, population):
        with pytest.raises(ValueError):
            identifying_predicate(population, 0, [])


class TestAttack:
    def test_defeats_size_control(self, population, unique_targets):
        """Paper Section 3: size control alone is broken by trackers."""
        db = StatisticalDatabase(population, [QuerySetSizeControl(5)])
        result = tracker_attack(
            db, population, unique_targets[0],
            ["height", "weight"], "blood_pressure",
        )
        assert result.succeeded
        assert result.exact
        assert result.inferred_count == 1

    def test_succeeds_without_any_policy(self, population, unique_targets):
        db = StatisticalDatabase(population)
        result = tracker_attack(
            db, population, unique_targets[0],
            ["height", "weight"], "blood_pressure",
        )
        assert result.exact

    def test_fails_on_non_unique_target(self, population):
        """If (height, weight) matches several people, the COUNT check
        reports the target was not isolated."""
        classes = [
            c for c in equivalence_classes(population, ["height", "weight"])
            if c.size > 1
        ]
        target = classes[0].indices[0]
        db = StatisticalDatabase(population)
        result = tracker_attack(
            db, population, target, ["height", "weight"], "blood_pressure"
        )
        assert not result.succeeded
        assert "not isolated" in result.detail

    def test_audit_blocks_tracker(self, population, unique_targets):
        rate = tracker_success_rate(
            lambda: StatisticalDatabase(
                population, [QuerySetSizeControl(5), SumAuditPolicy()]
            ),
            population, ["height", "weight"], "blood_pressure",
            unique_targets[:8],
        )
        assert rate == 0.0

    def test_perturbation_blunts_tracker(self, population, unique_targets):
        rate = tracker_success_rate(
            lambda: StatisticalDatabase(
                population,
                [QuerySetSizeControl(5), NoisePerturbation(20.0)],
                seed=1,
            ),
            population, ["height", "weight"], "blood_pressure",
            unique_targets[:8], tolerance=2.0,
        )
        assert rate <= 0.25

    def test_success_rate_against_size_control_high(
        self, population, unique_targets
    ):
        rate = tracker_success_rate(
            lambda: StatisticalDatabase(population, [QuerySetSizeControl(5)]),
            population, ["height", "weight"], "blood_pressure",
            unique_targets[:10],
        )
        assert rate >= 0.6

    def test_empty_targets(self, population):
        assert tracker_success_rate(
            lambda: StatisticalDatabase(population), population,
            ["height", "weight"], "blood_pressure", [],
        ) == 0.0
