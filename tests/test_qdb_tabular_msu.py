"""Tests for tabular cell suppression, MSU risk and multiplicative noise."""

import numpy as np
import pytest

from repro.attacks import minimal_sample_uniques
from repro.data import Dataset, census, patients
from repro.qdb import (
    FrequencyTable,
    margin_reconstruction_attack,
    protect_table,
)
from repro.sdc import MultiplicativeNoise


@pytest.fixture(scope="module")
def pop():
    return census(300, seed=6)


class TestFrequencyTable:
    def test_counts_sum_to_population(self, pop):
        table = FrequencyTable.from_microdata(pop, "education", "disease")
        assert table.counts.sum() == 300
        assert table.row_margins.sum() == 300
        assert table.col_margins.sum() == 300

    def test_cell_values(self, pop):
        table = FrequencyTable.from_microdata(pop, "sex", "disease")
        i = table.row_values.index("M")
        j = table.col_values.index("flu")
        expected = int(np.sum(
            (pop["sex"] == "M") & (pop["disease"] == "flu")
        ))
        assert table.counts[i, j] == expected

    def test_published_cell_none_when_suppressed(self, pop):
        table = FrequencyTable.from_microdata(pop, "sex", "disease")
        table.suppressed.add((0, 0))
        assert table.published_cell(0, 0) is None
        assert table.published()[0][0] is None

    def test_format_marks_suppressed(self, pop):
        table = protect_table(pop, "education", "disease", 3)
        text = table.format()
        assert "x" in text
        assert "total" in text


class TestSuppression:
    def test_primary_targets_small_cells(self, pop):
        table = FrequencyTable.from_microdata(pop, "education", "disease")
        primary = table.primary_suppress(3)
        for (i, j) in primary:
            assert 0 < table.counts[i, j] < 3
        # Zero cells are not suppressed (they are public knowledge anyway).
        for i in range(len(table.row_values)):
            for j in range(len(table.col_values)):
                if table.counts[i, j] == 0:
                    assert (i, j) not in primary

    def test_primary_alone_is_breakable(self, pop):
        """The margin attack recovers every primarily suppressed cell."""
        table = FrequencyTable.from_microdata(pop, "education", "disease")
        primary = table.primary_suppress(3)
        recovered = margin_reconstruction_attack(table)
        assert set(recovered) == primary
        for cell, value in recovered.items():
            assert value == int(table.counts[cell])

    def test_complementary_defeats_the_attack(self, pop):
        table = protect_table(pop, "education", "disease", 3)
        assert margin_reconstruction_attack(table) == {}

    def test_complementary_is_additive(self, pop):
        plain = FrequencyTable.from_microdata(pop, "education", "disease")
        primary = plain.primary_suppress(3)
        protected = protect_table(pop, "education", "disease", 3)
        assert primary <= protected.suppressed
        assert len(protected.suppressed) > len(primary)

    def test_threshold_validation(self, pop):
        table = FrequencyTable.from_microdata(pop, "sex", "disease")
        with pytest.raises(ValueError):
            table.primary_suppress(0)

    def test_no_small_cells_no_suppression(self):
        data = Dataset({
            "a": ["x"] * 10 + ["y"] * 10,
            "b": ["p", "q"] * 10,
        })
        table = protect_table(data, "a", "b", 3)
        assert table.suppressed == set()


class TestMinimalSampleUniques:
    def test_unique_single_attribute_is_msu(self):
        data = Dataset({
            "a": [1.0, 1.0, 2.0],
            "b": [5.0, 6.0, 5.0],
        })
        report = minimal_sample_uniques(data, ["a", "b"], max_subset=2)
        # Record 2 is unique on {a}; records 0/1 unique on {a,b} only...
        assert ("a",) in report.minimal_uniques[2]

    def test_minimality(self):
        data = Dataset({
            "a": [1.0, 2.0],
            "b": [5.0, 6.0],
        })
        report = minimal_sample_uniques(data, ["a", "b"], max_subset=2)
        for msus in report.minimal_uniques:
            # A record unique on {a} must not also list {a, b}.
            for m in msus:
                assert len(m) == 1

    def test_scores_favor_small_subsets(self):
        data = Dataset({
            "a": [1.0, 2.0, 2.0],
            "b": [5.0, 6.0, 7.0],
        })
        report = minimal_sample_uniques(data, ["a", "b"], max_subset=2)
        # Record 0 unique on {a} (score 2); records 1, 2 unique only via b.
        assert report.scores[0] >= report.scores[1]

    def test_no_uniques_no_risk(self):
        data = Dataset({"a": [1.0, 1.0], "b": [2.0, 2.0]})
        report = minimal_sample_uniques(data, ["a", "b"], max_subset=2)
        assert report.risky_records.size == 0
        assert report.mean_score == 0.0

    def test_masking_lowers_msu_risk(self):
        pop = patients(150, seed=1)
        from repro.sdc import Microaggregation
        masked = Microaggregation(5).mask(pop)
        raw = minimal_sample_uniques(pop, ["height", "weight"], 2)
        safe = minimal_sample_uniques(masked, ["height", "weight"], 2)
        assert safe.mean_score < raw.mean_score

    def test_validation(self):
        data = Dataset({"a": [1.0]})
        with pytest.raises(ValueError):
            minimal_sample_uniques(data, ["a"], max_subset=0)


class TestMultiplicativeNoise:
    def test_relative_perturbation(self, rng):
        pop = patients(400, seed=2)
        release = MultiplicativeNoise(0.1).mask(pop, rng)
        ratio = release["height"] / pop["height"]
        assert ratio.std() == pytest.approx(0.1, abs=0.03)
        assert ratio.mean() == pytest.approx(1.0, abs=0.02)

    def test_large_values_perturbed_more(self, rng):
        data = Dataset({"v": [10.0] * 200 + [1000.0] * 200})
        release = MultiplicativeNoise(0.1, columns=["v"]).mask(data, rng)
        delta = np.abs(release["v"] - data["v"])
        small = delta[:200].mean()
        large = delta[200:].mean()
        assert large > 10 * small

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiplicativeNoise(-0.1)
