"""The env-knob table is the single source of truth — and stays true.

Two drift gates: every ``REPRO_*`` variable the source tree actually
reads must be declared in :data:`repro.envdoc.ENV_KNOBS` (and nothing
phantom may be declared), and the README's configuration section must
contain the rendered table verbatim, so regenerating it is never
optional.
"""

import re
from pathlib import Path

from repro.envdoc import ENV_KNOBS, env_knob_epilog, render_env_table

REPO = Path(__file__).resolve().parent.parent


def _knobs_read_by_source() -> set[str]:
    pattern = re.compile(r"REPRO_[A-Z_]+")
    found: set[str] = set()
    for path in (REPO / "src").rglob("*.py"):
        if path.name == "envdoc.py":
            continue  # the declarations themselves don't count as reads
        found.update(pattern.findall(path.read_text(encoding="utf-8")))
    return found


class TestKnobCompleteness:
    def test_every_source_knob_is_documented(self):
        documented = {knob.name for knob in ENV_KNOBS}
        read = _knobs_read_by_source()
        assert read, "the source tree should read at least one knob"
        undocumented = read - documented
        assert not undocumented, (
            f"REPRO_* variables read by src/ but missing from "
            f"repro.envdoc.ENV_KNOBS: {sorted(undocumented)}"
        )

    def test_no_phantom_knobs_are_documented(self):
        documented = {knob.name for knob in ENV_KNOBS}
        read = _knobs_read_by_source()
        phantom = documented - read
        assert not phantom, (
            f"ENV_KNOBS documents variables nothing reads: "
            f"{sorted(phantom)}"
        )

    def test_every_knob_is_fully_described(self):
        for knob in ENV_KNOBS:
            assert knob.name.startswith("REPRO_")
            assert knob.component and knob.values and knob.default
            assert len(knob.description) >= 20


class TestRenderedTable:
    def test_table_lists_every_knob_once(self):
        table = render_env_table()
        for knob in ENV_KNOBS:
            assert table.count(f"{knob.name} ") == 1

    def test_epilog_wraps_the_same_table(self):
        assert render_env_table() in env_knob_epilog()

    def test_readme_embeds_the_rendered_table_verbatim(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert render_env_table() in readme, (
            "README.md's configuration section has drifted from "
            "repro.envdoc.render_env_table(); re-paste the rendered table"
        )
