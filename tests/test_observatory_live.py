"""The observatory end-to-end: live attachment, emission, replay, golden gate."""

import pytest

from repro.data import patients
from repro.qdb import QuerySetSizeControl, StatisticalDatabase, tracker_attack
from repro.sdc import equivalence_classes
from repro.telemetry import Observatory, instrument as tele, replay_trace
from repro.telemetry.observatory import validate_alert_record
from repro.telemetry.observatory.smoke import (
    EXPECTED_ALERTS,
    ObserveSmokeError,
    run_observe_smoke,
)
from repro.telemetry.report import read_trace


@pytest.fixture(autouse=True)
def clean_telemetry():
    tele.disable()
    tele.reset_metrics()
    yield
    tele.disable()
    tele.reset_metrics()


def _tracker_workload():
    pop = patients(120, seed=7)
    target = next(
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
        and (pop["height"] == pop["height"][cls.indices[0]]).sum() >= 6
    )
    db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
    return tracker_attack(
        db, pop, target, ["height", "weight"], "blood_pressure"
    )


class TestLiveAttachment:
    def test_detector_alert_is_emitted_as_span(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        observatory = Observatory()
        with tele.session(trace) as tracer:
            observatory.attach(tracer)
            try:
                disclosure = _tracker_workload()
            finally:
                observatory.detach()
        assert disclosure.exact
        spans = read_trace(trace)
        alert_spans = [s for s in spans if s["name"] == "observatory.alert"]
        assert alert_spans, "tracker workload must raise an alert"
        for record in alert_spans:
            validate_alert_record(record)
        assert any(
            s["attrs"]["alert"] == "tracker-probe" for s in alert_spans
        )

    def test_alert_fires_before_the_differencing_sum_pair(self, tmp_path):
        # The acceptance criterion: the respondent-dimension alert span is
        # recorded strictly before the attacker's final SUM queries close.
        trace = tmp_path / "t.jsonl"
        observatory = Observatory()
        with tele.session(trace) as tracer:
            observatory.attach(tracer)
            try:
                _tracker_workload()
            finally:
                observatory.detach()
        spans = read_trace(trace)
        alert_ids = [
            s["span_id"] for s in spans
            if s["name"] == "observatory.alert"
            and s["attrs"]["alert"] == "tracker-probe"
        ]
        sum_ids = [
            s["span_id"] for s in spans
            if s["name"] == "qdb.query"
            and s["attrs"].get("aggregate") == "SUM"
            and "(NOT " in s["attrs"].get("predicate", "")
        ]
        assert alert_ids and sum_ids
        assert min(alert_ids) < min(sum_ids)

    def test_replay_rederives_the_live_alert_set(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        observatory = Observatory()
        with tele.session(trace) as tracer:
            observatory.attach(tracer)
            try:
                _tracker_workload()
            finally:
                observatory.detach()
        replayed = replay_trace(trace)
        assert replayed.span_alerts() == observatory.span_alerts()
        assert replayed.step == observatory.step

    def test_detach_stops_ingestion(self):
        observatory = Observatory()
        with tele.session() as tracer:
            observatory.attach(tracer)
            with tele.span("qdb.query", refused=False):
                pass
            observatory.detach()
            with tele.span("qdb.query", refused=False):
                pass
        assert observatory.step == 1

    def test_own_alert_spans_do_not_advance_steps(self):
        observatory = Observatory()
        processed = observatory.process_record({
            "type": "span", "span_id": 1, "parent_id": None,
            "name": "observatory.alert", "depth": 0, "start": 0.0,
            "duration": 0.0, "attrs": {},
        })
        assert processed == []
        assert observatory.step == 0

    def test_non_span_records_are_ignored(self):
        observatory = Observatory()
        assert observatory.process_record({"type": "meta", "schema": 1}) == []
        assert observatory.step == 0


class TestPosture:
    def test_penalties_accumulate_per_dimension(self):
        from repro.telemetry.observatory import Alert

        observatory = Observatory(rules=[], detectors=[])
        for severity, penalty_dim in (
            ("critical", "respondent"), ("warning", "owner"),
            ("info", "user"),
        ):
            observatory._register(
                Alert(name="a", severity=severity, dimension=penalty_dim,
                      step=1, value=0, threshold=0),
                emit=False,
            )
        posture = observatory.posture()
        assert posture == {"respondent": 0.5, "owner": 0.75, "user": 0.9}

    def test_render_shows_meters_and_alerts(self):
        observatory = Observatory(rules=[], detectors=[])
        text = observatory.render(title="posture")
        assert "posture" in text
        assert "respondent" in text and "[####" in text
        assert "events ingested: 0" in text


class TestGoldenGate:
    def test_committed_golden_trace_passes(self):
        summary = run_observe_smoke()
        assert summary["alerts"] == len(EXPECTED_ALERTS)
        assert "tracker-probe" in summary["alert_names"]
        assert "pir-access-skew" in summary["alert_names"]

    def test_missing_trace_is_an_error(self, tmp_path):
        with pytest.raises(ObserveSmokeError, match="missing"):
            run_observe_smoke(tmp_path / "nope.jsonl")

    def test_tampered_trace_fails_the_gate(self, tmp_path):
        from repro.telemetry.observatory.smoke import default_golden_path

        lines = default_golden_path().read_text().splitlines()
        # Drop one alert span: replay and record no longer agree.
        kept = [
            line for line in lines if '"observatory.alert"' not in line
        ] + [line for line in lines if '"observatory.alert"' in line][:-1]
        tampered = tmp_path / "tampered.jsonl"
        tampered.write_text("\n".join(kept) + "\n")
        with pytest.raises(ObserveSmokeError):
            run_observe_smoke(tampered)
