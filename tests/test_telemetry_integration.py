"""End-to-end telemetry: traced attacks, SMC/SDC metrics, dashboards.

The acceptance scenario: run the S3a tracker against an audited database
with telemetry enabled, then reconstruct — from the JSONL capture alone —
every refusal decision with the policy that refused and its reason.
"""

import pytest

from repro.core import assess_masking
from repro.core.pipelines import HippocraticPipeline
from repro.data import patients
from repro.pir.keyword import KeywordPIR
from repro.qdb import (
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
    tracker_attack,
)
from repro.sdc import Microaggregation, equivalence_classes
from repro.smc.party import Transcript
from repro.smc.secure_sum import ring_secure_sum, shares_secure_sum
from repro.telemetry import (
    SmokeError,
    instrument as tele,
    load_trace,
    read_trace,
    refusal_decisions,
    render_dashboard,
    render_metrics,
    run_smoke,
)

pytestmark = pytest.mark.usefixtures("clean_telemetry")


@pytest.fixture
def clean_telemetry():
    tele.disable()
    tele.reset_metrics()
    yield
    tele.disable()
    tele.reset_metrics()


def _tracked_population(records=150, seed=3):
    pop = patients(records, seed=seed)
    targets = [
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
        and (pop["height"] == pop["height"][cls.indices[0]]).sum() >= 6
    ]
    return pop, targets


class TestTrackerForensics:
    def test_trace_reconstructs_every_refusal_decision(self, tmp_path):
        pop, targets = _tracked_population()
        assert targets, "seeded population must contain a trackable target"
        trace = tmp_path / "s3a.jsonl"
        with tele.session(trace):
            db = StatisticalDatabase(
                pop, [QuerySetSizeControl(5), SumAuditPolicy()]
            )
            tracker_attack(
                db, pop, targets[0], ["height", "weight"], "blood_pressure"
            )
        refused_in_session = db.queries_refused
        spans = read_trace(trace, validate=True)
        decisions = refusal_decisions(spans)
        # Every refusal the engine recorded appears in the capture, and
        # each one names its policy and reason.
        assert len(decisions) == refused_in_session > 0
        for decision in decisions:
            assert decision["policy"] in (
                "sum-audit", "size-control(k=5)"
            )
            assert decision["reason"] not in ("", "?")
            assert decision["query"].startswith("SELECT")

    def test_batch_spans_parent_their_query_children(self, tmp_path):
        pop, _ = _tracked_population(records=100, seed=5)
        trace = tmp_path / "batch.jsonl"
        with tele.session(trace):
            db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
            db.ask_batch([
                "SELECT COUNT(*) WHERE height > 170",
                "SELECT AVG(blood_pressure) WHERE weight <= 85",
            ])
        spans = read_trace(trace)
        batch = [s for s in spans if s["name"] == "qdb.ask_batch"]
        children = [s for s in spans if s["name"] == "qdb.query"]
        assert len(batch) == 1 and len(children) == 2
        assert all(
            c["parent_id"] == batch[0]["span_id"] for c in children
        )
        assert batch[0]["attrs"]["n_queries"] == 2

    def test_report_formats_the_acceptance_view(self, tmp_path):
        pop, targets = _tracked_population()
        trace = tmp_path / "s3a.jsonl"
        with tele.session(trace):
            db = StatisticalDatabase(
                pop, [QuerySetSizeControl(5), SumAuditPolicy()]
            )
            tracker_attack(
                db, pop, targets[0], ["height", "weight"], "blood_pressure"
            )
        text = load_trace(trace).format()
        assert "refusal decisions:" in text
        assert "sum-audit" in text or "size-control" in text
        assert "qdb.query" in text


class TestPirTelemetry:
    def test_keyword_lookup_spans_nest_retrieve_batches(self, tmp_path):
        directory = KeywordPIR({f"k{i:02d}": i for i in range(16)})
        trace = tmp_path / "pir.jsonl"
        with tele.session(trace):
            assert directory.lookup("k04", rng=0) == 4
            assert directory.lookup("absent", rng=1) is None
        spans = read_trace(trace)
        lookups = [
            s for s in spans if s["name"] == "pir.keyword_lookup_batch"
        ]
        batches = [s for s in spans if s["name"] == "pir.retrieve_batch"]
        assert len(lookups) == 2
        assert lookups[0]["attrs"]["hits"] == 1
        assert lookups[1]["attrs"]["hits"] == 0
        rounds = lookups[0]["attrs"]["rounds"]
        assert len(batches) == 2 * rounds
        lookup_ids = {s["span_id"] for s in lookups}
        assert all(b["parent_id"] in lookup_ids for b in batches)

    def test_latency_histograms_populated_when_enabled(self):
        pir_db = KeywordPIR({"a": 1, "b": 2, "c": 3})
        with tele.session():
            pir_db.lookup("b", rng=0)
            histograms = tele.snapshot()["histograms"]
            assert histograms["pir.keyword_lookup_seconds"]["count"] == 1
            assert histograms["pir.batch_seconds"]["count"] >= 1


class TestSmcTelemetry:
    def test_transcript_counts_messages_bytes_rounds(self):
        t = Transcript()
        ring_secure_sum([3, 5, 9], transcript=t)
        assert t.protocol == "ring-sum"
        assert t.message_count == len(t.messages) == 3
        assert t.payload_bytes == 3 * 8
        assert t.rounds == 3  # every hop changes speaker

    def test_per_pair_counters_tagged_by_protocol(self):
        t = Transcript()
        shares_secure_sum([4, 6], transcript=t)
        snap = t.metrics.snapshot(include_children=False)
        pair_keys = [
            k for k in snap["counters"] if k.startswith("smc.messages[")
        ]
        assert pair_keys
        assert all("shares-sum|" in k for k in pair_keys)
        assert sum(snap["counters"][k] for k in pair_keys) == len(t.messages)

    def test_smc_traffic_reaches_process_snapshot(self):
        ring_secure_sum([1, 2, 3])
        counters = tele.snapshot()["counters"]
        assert counters["smc.messages"] >= 3
        assert counters["smc.payload_bytes"] >= 24


class TestSdcTelemetry:
    def test_pipeline_audit_publishes_gauges_and_span(self, tmp_path):
        pop = patients(80, seed=4).drop(["patient_id"])
        trace = tmp_path / "sdc.jsonl"
        with tele.session(trace):
            pipeline = HippocraticPipeline(pop, k=3, allowed_purposes=["x"])
            audit = pipeline.audit()
            gauges = tele.snapshot()["gauges"]
            assert gauges["sdc.k_required"] == 3
            assert gauges["sdc.k_achieved"] == audit.k_achieved
        spans = read_trace(trace)
        assert any(s["name"] == "sdc.pipeline_audit" for s in spans)

    def test_assessment_sets_il1s_gauge(self):
        pop = patients(60, seed=7).drop(["patient_id"])
        with tele.session():
            assessment = assess_masking(Microaggregation(3), pop)
            gauges = tele.snapshot()["gauges"]
        assert gauges["sdc.il1s"] == pytest.approx(
            assessment.utility.il1s
        )


class TestDashboard:
    def test_dashboard_renders_scores_and_metrics(self):
        pop = patients(60, seed=7).drop(["patient_id"])
        with tele.session():
            assessment = assess_masking(Microaggregation(3), pop)
            snapshot = tele.snapshot()
        text = render_dashboard([assessment], snapshot)
        assert "microaggregation(k=3)" in text
        assert "respondent" in text and "owner" in text and "user" in text
        assert "operational metrics" in text
        assert "sdc.il1s" in text

    def test_render_metrics_empty_snapshot(self):
        text = render_metrics({"counters": {}, "gauges": {}, "histograms": {}})
        assert "(none recorded)" in text


class TestSmoke:
    def test_run_smoke_passes_and_summarizes(self, tmp_path):
        summary = run_smoke(tmp_path / "smoke.jsonl")
        assert summary["whole_count_refused"] is True
        assert summary["refusal_decisions"] > 0
        assert "qdb.query" in summary["per_name_counts"]

    def test_run_smoke_rejects_schema_drift(self, tmp_path):
        trace = tmp_path / "smoke.jsonl"
        run_smoke(trace)
        # Corrupt one span line: drop a required field.
        lines = trace.read_text().splitlines()
        import json

        broken = json.loads(lines[-1])
        broken.pop("duration")
        lines[-1] = json.dumps(broken)
        trace.write_text("\n".join(lines) + "\n")
        with pytest.raises(Exception) as excinfo:
            read_trace(trace, validate=True)
        assert "duration" in str(excinfo.value)

    def test_smoke_error_on_empty_capture(self, tmp_path, monkeypatch):
        from repro.telemetry import smoke

        monkeypatch.setattr(
            smoke, "_scenario",
            lambda records, seed: {"whole_count_refused": True},
        )
        with pytest.raises(SmokeError, match="no spans"):
            smoke.run_smoke(tmp_path / "empty.jsonl")
