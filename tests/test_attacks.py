"""Tests for the attack adversaries."""

import numpy as np
import pytest

from repro.attacks import (
    DistanceLinkageAttack,
    ProbabilisticLinkageAttack,
    best_linkage_rate,
    dimensionality_sweep,
    extraction_from_release,
    extraction_from_transcript,
    extraction_via_pir_download,
    isolation_attack,
    reconstruction_attack,
)
from repro.data import dataset_2, patients, sparse_uniform
from repro.pir import PrivateAggregateIndex
from repro.ppdm import AgrawalSrikantRandomizer
from repro.sdc import IdentityMasking, Microaggregation, UncorrelatedNoise
from repro.smc import Transcript


class TestLinkage:
    def test_distance_attack_identity(self, patients_300):
        outcome = DistanceLinkageAttack(["height", "weight", "age"]).run(
            patients_300, patients_300
        )
        assert outcome.success_rate > 0.95

    def test_probabilistic_attack_identity(self, patients_300):
        outcome = ProbabilisticLinkageAttack(["height", "weight"]).run(
            patients_300, patients_300
        )
        assert outcome.success_rate > 0.8

    def test_probabilistic_prefers_rare_values(self):
        """Agreement on a rare value outweighs agreement on a common one."""
        from repro.data import Dataset
        release = Dataset({
            "a": ["common"] * 9 + ["rare"],
            "b": [str(i) for i in range(10)],
        })
        attack = ProbabilisticLinkageAttack(["a"])
        outcome = attack.run(release, release)
        # The rare record links perfectly; commons are 1/9 each.
        assert outcome.correct == pytest.approx(9 * (1 / 9) + 1.0)

    def test_probabilistic_needs_columns(self):
        with pytest.raises(ValueError):
            ProbabilisticLinkageAttack([])

    def test_probabilistic_matches_reference_loop(self):
        """The vectorized score accumulation must agree with a direct
        per-record reference implementation."""
        import math
        rng = np.random.default_rng(11)
        from repro.data import Dataset
        n = 40
        original = Dataset({
            "a": rng.integers(0, 5, size=n).astype(str),
            "b": rng.integers(0, 3, size=n).astype(str),
        })
        release = Dataset({
            "a": rng.integers(0, 5, size=n).astype(str),
            "b": rng.integers(0, 3, size=n).astype(str),
        })
        columns = ["a", "b"]

        weights = {}
        for name in columns:
            values, counts = np.unique(release[name].astype(str),
                                       return_counts=True)
            weights[name] = {v: -math.log2(c / n)
                             for v, c in zip(values, counts)}
        expected = 0.0
        for i in range(n):
            scores = np.zeros(n)
            for name in columns:
                target = original[name].astype(str)[i]
                agree = release[name].astype(str) == target
                scores += np.where(agree, weights[name].get(target, 0.0), 0.0)
            best = scores.max()
            ties = np.flatnonzero(scores >= best - 1e-12)
            if i in ties:
                expected += 1.0 / ties.size

        outcome = ProbabilisticLinkageAttack(columns).run(original, release)
        assert outcome.correct == pytest.approx(expected, abs=1e-9)

    def test_probabilistic_chunked_scoring_consistent(self, patients_300):
        attack = ProbabilisticLinkageAttack(["height", "weight"])
        whole = attack.run(patients_300, patients_300)
        small_chunks = ProbabilisticLinkageAttack(["height", "weight"])
        small_chunks._CHUNK = 17
        chunked = small_chunks.run(patients_300, patients_300)
        assert chunked.correct == pytest.approx(whole.correct, abs=1e-9)

    def test_best_linkage_uses_class_model_for_suppressed(self, patients_300):
        from repro.sdc import RecordSuppression
        release = RecordSuppression(2).mask(patients_300)
        rate = best_linkage_rate(patients_300, release, ["height", "weight"])
        assert 0.0 <= rate <= 1.0

    def test_masking_reduces_best_linkage(self, patients_300, rng):
        masked = UncorrelatedNoise(1.0).mask(patients_300, rng)
        assert best_linkage_rate(
            patients_300, masked, ["height", "weight", "age"]
        ) < best_linkage_rate(
            patients_300, patients_300, ["height", "weight", "age"]
        )


class TestSparseReconstruction:
    def test_disclosure_rises_with_dimension(self):
        """The [11] effect: same per-value noise, more dimensions, more
        respondents pinned into singleton cells."""
        def make_pop(d):
            return sparse_uniform(150, d, seed=7)

        def randomize(data):
            r = AgrawalSrikantRandomizer(
                relative_scale=0.3, columns=list(data.column_names)
            )
            rel = r.mask(data, np.random.default_rng(1))
            return rel, [r.noise_models[c] for c in data.column_names]

        reports = dimensionality_sweep(make_pop, randomize, dims=[2, 6], bins=3)
        assert reports[0].disclosure_rate < 0.05
        assert reports[1].disclosure_rate > 0.15

    def test_report_arithmetic(self):
        from repro.attacks import SparseDisclosureReport
        report = SparseDisclosureReport(100, 4, 3, 40, 10)
        assert report.cell_recovery_rate == 0.4
        assert report.disclosure_rate == 0.1

    def test_attack_runs_on_dataset(self):
        pop = sparse_uniform(80, 3, seed=2)
        r = AgrawalSrikantRandomizer(0.4, columns=["x0", "x1", "x2"])
        rel = r.mask(pop, np.random.default_rng(3))
        report = reconstruction_attack(
            pop, rel, [r.noise_models[c] for c in ["x0", "x1", "x2"]],
            ["x0", "x1", "x2"], bins=3, max_iter=20,
        )
        assert report.n_records == 80
        assert 0 <= report.disclosure_rate <= report.cell_recovery_rate <= 1


class TestPIRIsolation:
    def test_dataset_2_attack(self):
        ds2 = dataset_2()
        index = PrivateAggregateIndex(
            ds2, ["height", "weight"], "blood_pressure",
            edges={"height": [150, 165, 180, 200],
                   "weight": [50, 80, 105, 130]},
        )
        report = isolation_attack(index, ds2.n_rows)
        assert report.cells_probed == 9
        values = {v.confidential_value for v in report.victims}
        assert 146.0 in values  # the paper's victim

    def test_k_anonymous_data_yields_fewer_victims(self, patients_300):
        masked = Microaggregation(5).mask(patients_300)
        edges = {
            "height": list(np.linspace(140, 210, 8)),
            "weight": list(np.linspace(30, 140, 8)),
        }
        raw_index = PrivateAggregateIndex(
            patients_300, ["height", "weight"], "blood_pressure", edges
        )
        masked_index = PrivateAggregateIndex(
            masked, ["height", "weight"], "blood_pressure", edges
        )
        raw_report = isolation_attack(raw_index, 300)
        masked_report = isolation_attack(masked_index, 300)
        assert masked_report.disclosure_rate < raw_report.disclosure_rate


class TestOwnerExtraction:
    def test_identity_release_total(self, patients_300):
        report = extraction_from_release(
            patients_300, IdentityMasking().mask(patients_300)
        )
        assert report.extraction_rate == 1.0
        assert report.owner_privacy == 0.0

    def test_masking_reduces_extraction(self, patients_300, rng):
        noisy = UncorrelatedNoise(1.5).mask(patients_300, rng)
        report = extraction_from_release(
            patients_300, noisy, ["height", "weight", "age"]
        )
        assert report.extraction_rate < 0.4

    def test_shuffled_release_matched_by_nearest(self, patients_300):
        shuffled = patients_300.take(
            np.random.default_rng(1).permutation(300)
        )
        report = extraction_from_release(
            patients_300, shuffled, ["height", "weight"]
        )
        # Values are all still there; nearest-neighbour matching finds them.
        assert report.extraction_rate == 1.0

    def test_transcript_extraction(self):
        t = Transcript()
        t.record("P0", "P1", "raw", [1.5, 2.5])
        report = extraction_from_transcript(t, {"P0": [1.5, 2.5], "P1": [9.9]})
        assert report.extraction_rate == pytest.approx(2 / 3)

    def test_pir_download_is_total(self, patients_300):
        report = extraction_via_pir_download(patients_300)
        assert report.extraction_rate == 1.0
