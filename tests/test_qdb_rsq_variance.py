"""Tests for random-sample-queries control and variance aggregates."""

import numpy as np
import pytest

from repro.data import patients
from repro.qdb import (
    Aggregate,
    QuerySetSizeControl,
    RandomSampleQueries,
    StatisticalDatabase,
    SumAuditPolicy,
    tracker_success_rate,
)
from repro.sdc import equivalence_classes


@pytest.fixture(scope="module")
def population():
    return patients(250, seed=3)


class TestVarianceAggregates:
    def test_variance_exact_unprotected(self, population):
        db = StatisticalDatabase(population)
        value = db.ask("SELECT VARIANCE(blood_pressure) WHERE height > 0").value
        assert value == pytest.approx(float(population["blood_pressure"].var()))

    def test_stddev_is_sqrt_variance(self, population):
        db = StatisticalDatabase(population)
        var = db.ask("SELECT VARIANCE(age) WHERE height > 160").value
        sd = db.ask("SELECT STDDEV(age) WHERE height > 160").value
        assert sd == pytest.approx(np.sqrt(var))

    def test_parser_accepts_variance(self, population):
        from repro.qdb import parse_query
        query = parse_query("SELECT VARIANCE(age) WHERE height > 150")
        assert query.aggregate is Aggregate.VARIANCE

    def test_audit_covers_variance(self, population):
        """A VARIANCE difference attack must be refused like a SUM one."""
        db = StatisticalDatabase(population, [SumAuditPolicy()])
        h = float(population["height"][0])
        w = float(population["weight"][0])
        a = float(population["age"][0])
        db.ask("SELECT VARIANCE(blood_pressure) WHERE height > 0")
        second = db.ask(
            f"SELECT VARIANCE(blood_pressure) WHERE NOT (height = {h} "
            f"AND weight = {w} AND age = {a})"
        )
        if population.group_by(["height", "weight", "age"])[(h, w, a)].size == 1:
            assert second.refused


class TestRandomSampleQueries:
    def test_repeat_queries_identical(self, population):
        """The sample is query-set-deterministic: averaging cannot help."""
        db = StatisticalDatabase(population, [RandomSampleQueries(0.8)])
        q = "SELECT SUM(blood_pressure) WHERE height > 170"
        values = {db.ask(q).value for _ in range(5)}
        assert len(values) == 1

    def test_answers_near_truth(self, population):
        db = StatisticalDatabase(population, [RandomSampleQueries(0.9)])
        q = "SELECT COUNT(*) WHERE height > 170"
        truth = db.true_answer(q)
        answer = db.ask(q).value
        assert abs(answer - truth) < 0.2 * truth

    def test_different_query_sets_sample_differently(self, population):
        db = StatisticalDatabase(population, [RandomSampleQueries(0.7)])
        a = db.ask("SELECT SUM(blood_pressure) WHERE height > 170").value
        b = db.ask("SELECT SUM(blood_pressure) WHERE height >= 170").value
        # Almost surely different samples and hence different errors.
        truth_a = db.true_answer("SELECT SUM(blood_pressure) WHERE height > 170")
        truth_b = db.true_answer("SELECT SUM(blood_pressure) WHERE height >= 170")
        assert (a - truth_a) != pytest.approx(b - truth_b, abs=1e-9)

    def test_defeats_tracker(self, population):
        unique = [
            cls.indices[0]
            for cls in equivalence_classes(population, ["height", "weight"])
            if cls.size == 1
            and (population["height"] == population["height"][cls.indices[0]]).sum() >= 6
        ][:8]
        rate = tracker_success_rate(
            lambda: StatisticalDatabase(
                population,
                [QuerySetSizeControl(5), RandomSampleQueries(0.9)],
            ),
            population, ["height", "weight"], "blood_pressure",
            unique, tolerance=2.0,
        )
        assert rate <= 0.15

    def test_full_fraction_is_exact(self, population):
        db = StatisticalDatabase(population, [RandomSampleQueries(1.0)])
        q = "SELECT AVG(blood_pressure) WHERE height > 160"
        assert db.ask(q).value == pytest.approx(db.true_answer(q))

    def test_unsupported_aggregates_passthrough(self, population):
        db = StatisticalDatabase(population, [RandomSampleQueries(0.8)])
        q = "SELECT MEDIAN(blood_pressure) WHERE height > 160"
        assert db.ask(q).value == pytest.approx(db.true_answer(q))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSampleQueries(0.0)
        with pytest.raises(ValueError):
            RandomSampleQueries(1.5)

    def test_sample_digest_stable_across_processes(self):
        """The sample stream is a CRC32 of the packed query-set mask, so
        it cannot depend on PYTHONHASHSEED or any interpreter config —
        the same query must sample identically in a fresh process."""
        import os
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent(
            """
            from repro.data import patients
            from repro.qdb import RandomSampleQueries, StatisticalDatabase

            db = StatisticalDatabase(
                patients(80, seed=3), [RandomSampleQueries(0.7, seed=5)]
            )
            answer = db.ask("SELECT SUM(blood_pressure) WHERE height > 160")
            print(repr(answer.value))
            """
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "424242"  # would skew a hash()-based digest
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        db = StatisticalDatabase(
            patients(80, seed=3), [RandomSampleQueries(0.7, seed=5)]
        )
        here = db.ask("SELECT SUM(blood_pressure) WHERE height > 160").value
        assert float(result.stdout.strip()) == here

    def test_packed_digest_distinguishes_nested_masks(self):
        """Masks are packed to whole bytes; two nested query sets in the
        same byte must still produce different digests and samples."""
        policy = RandomSampleQueries(0.5, seed=0)
        a = np.zeros(10, dtype=bool)
        a[:4] = True
        b = np.zeros(10, dtype=bool)
        b[:5] = True
        assert not np.array_equal(policy._sample_mask(a), policy._sample_mask(b))
