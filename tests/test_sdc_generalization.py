"""Tests for global recoding and the Mondrian anonymizer."""

import numpy as np
import pytest

from repro.data import IntervalHierarchy, SUPPRESSED
from repro.sdc import (
    GlobalRecoding,
    MondrianKAnonymizer,
    anonymity_level,
    apply_recoding,
    is_k_anonymous,
    minimal_generalization,
    mondrian_partition,
)


@pytest.fixture
def hierarchies():
    return {
        "height": IntervalHierarchy(base_width=5, n_levels=3, origin=100),
        "weight": IntervalHierarchy(base_width=5, n_levels=3, origin=0),
    }


class TestApplyRecoding:
    def test_level_zero_identity(self, ds2, hierarchies):
        out = apply_recoding(ds2, hierarchies, {"height": 0, "weight": 0})
        assert np.array_equal(out["height"], ds2["height"])

    def test_recoded_to_labels(self, ds2, hierarchies):
        out = apply_recoding(ds2, hierarchies, {"height": 1, "weight": 0})
        assert out["height"][0] == "[170,175)"


class TestMinimalGeneralization:
    def test_achieves_k(self, ds2, hierarchies):
        result = minimal_generalization(ds2, hierarchies, k=3)
        assert is_k_anonymous(result.data, 3, ["height", "weight"])

    def test_already_anonymous_needs_nothing(self, ds1, hierarchies):
        result = minimal_generalization(ds1, hierarchies, k=3)
        assert result.total_level == 0
        assert result.suppressed == ()

    def test_minimality(self, ds2, hierarchies):
        """No node with a smaller total level achieves 3-anonymity."""
        result = minimal_generalization(ds2, hierarchies, k=3)
        assert result.total_level > 0
        for h_level in range(hierarchies["height"].levels):
            for w_level in range(hierarchies["weight"].levels):
                if h_level + w_level >= result.total_level:
                    continue
                recoded = apply_recoding(
                    ds2, hierarchies,
                    {"height": h_level, "weight": w_level},
                )
                assert not is_k_anonymous(recoded, 3, ["height", "weight"])

    def test_suppression_budget_reduces_generalization(self, ds2, hierarchies):
        tight = minimal_generalization(ds2, hierarchies, k=3, max_suppression=0.0)
        loose = minimal_generalization(ds2, hierarchies, k=3, max_suppression=0.5)
        assert loose.total_level <= tight.total_level

    def test_invalid_k(self, ds2, hierarchies):
        with pytest.raises(ValueError):
            minimal_generalization(ds2, hierarchies, k=0)

    def test_masking_wrapper(self, ds2, hierarchies, patients_300):
        method = GlobalRecoding(hierarchies, k=3)
        release = method.mask(ds2)
        assert is_k_anonymous(release, 3, ["height", "weight"])


class TestMondrianPartition:
    def test_leaf_sizes(self):
        matrix = np.random.default_rng(0).normal(size=(97, 3))
        for k in (2, 5, 10):
            leaves = mondrian_partition(matrix, k)
            assert all(leaf.size >= k for leaf in leaves)
            assert sum(leaf.size for leaf in leaves) == 97

    def test_single_leaf_small_input(self):
        matrix = np.zeros((3, 2))
        assert len(mondrian_partition(matrix, 5)) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            mondrian_partition(np.zeros((5, 2)), 0)

    def test_constant_data_one_leaf(self):
        matrix = np.ones((20, 2))
        assert len(mondrian_partition(matrix, 5)) == 1


class TestMondrianMasking:
    def test_k_anonymity(self, patients_300):
        release = MondrianKAnonymizer(5).mask(patients_300)
        assert anonymity_level(release, ["height", "weight", "age"]) >= 5

    def test_finer_than_global_recoding(self, patients_300):
        """Mondrian (local) should lose less information than heavy global
        recoding — its leaf means stay close to the records."""
        release = MondrianKAnonymizer(5).mask(patients_300)
        err = np.abs(release["height"] - patients_300["height"]).mean()
        assert err < patients_300["height"].std()
