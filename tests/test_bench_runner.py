"""Smoke test for the benchmark-regression harness.

Runs the real runner with ``--trials 1 --no-compare`` (the `make
bench-check` smoke entry) so the tier-1 suite exercises kernel setup,
timing, JSON emission, and the speedup bookkeeping without depending on
wall-clock stability.
"""

import json

from benchmarks import runner
from benchmarks.baselines import BASELINE_BACKEND, BASELINES


def test_runner_smoke(tmp_path):
    out = tmp_path / "bench.json"
    code = runner.main(["--trials", "1", "--no-compare",
                        "--output", str(out)])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["kernels"]
    assert data["calibration_seconds"] > 0
    # Schema 5: the run records the kernel backend that produced the
    # numbers, each kernel's plan-cache traffic, and the serving
    # runtime section (qps/p99/per-shard counters).
    assert data["schema"] == 5
    assert data["serving"]["qps"] > 0
    assert data["serving"]["p99_normalized"] > 0
    assert len(data["serving"]["per_shard"]) == data["serving"]["n_shards"]
    from repro.kernels import available_backends
    assert data["backend"]["name"] in available_backends()
    assert data["backend"]["numpy"]
    for entry in data["kernels"].values():
        assert entry["median_seconds"] > 0
        assert entry["normalized"] > 0
        assert set(entry["plan_cache"]) == {"hits", "misses", "hit_rate"}
    # The speedup over the seed's per-byte loop is recorded (its exact
    # value is asserted by --check, not here, to stay timing-robust).
    assert data["speedups"]["pir_single_retrieve_n4096_vs_seed"] > 1.0


def test_kernel_subset_and_check_logic(tmp_path):
    out = tmp_path / "bench.json"
    code = runner.main([
        "--trials", "1", "--no-compare", "--output", str(out),
        "--kernels", "pir_square_retrieve_n4096", "mdav_n1000_k5",
    ])
    assert code == 0
    data = json.loads(out.read_text())
    assert set(data["kernels"]) == {
        "pir_square_retrieve_n4096", "mdav_n1000_k5"
    }
    # check_regressions flags a kernel that blows past its baseline and
    # accepts one comfortably under it.  Pin the recorded backend to the
    # baseline one so only the normalized-time failure is in play.
    data["backend"] = {"name": BASELINE_BACKEND, "numpy": "0"}
    data["kernels"]["mdav_n1000_k5"]["normalized"] = (
        BASELINES["mdav_n1000_k5"] * 100
    )
    data["kernels"]["pir_square_retrieve_n4096"]["normalized"] = (
        BASELINES["pir_square_retrieve_n4096"] * 0.5
    )
    failures = runner.check_regressions(data, tolerance=2.0)
    assert len(failures) == 1 and "mdav_n1000_k5" in failures[0]


def test_every_baseline_names_a_kernel():
    kernel_names = {k.name for k in runner.KERNELS}
    assert set(BASELINES) <= kernel_names


def test_every_speedup_pair_names_kernels_with_minimums():
    kernel_names = {k.name for k in runner.KERNELS}
    for fast, ref in runner.SPEEDUP_PAIRS + runner.UINT8_PAIRS:
        assert {fast, ref} <= kernel_names
    for fast, ref, _suffix in runner.PLAN_PAIRS:
        assert {fast, ref} <= kernel_names
    from benchmarks.baselines import MIN_SPEEDUPS
    recorded_keys = (
        {f"{fast}_vs_seed" for fast, _ in runner.SPEEDUP_PAIRS}
        | {f"{fast}_vs_uint8" for fast, _ in runner.UINT8_PAIRS}
        | {f"{fast}_vs_{suffix}" for fast, _, suffix in runner.PLAN_PAIRS}
    )
    # Every gate guards a speedup the runner actually records.
    assert set(MIN_SPEEDUPS) <= recorded_keys


def test_list_prints_registered_kernels(capsys):
    assert runner.main(["--list"]) == 0
    out = capsys.readouterr().out
    for kernel in runner.KERNELS:
        assert kernel.name in out


def test_check_fails_on_empty_baseline():
    """A baseline with no kernels guards nothing — --check must say so."""
    results = {
        "kernels": {"mdav_n1000_k5": {
            "median_seconds": 0.01, "normalized": 1.0,
            "reps": 1, "reference_only": False,
        }},
        "speedups": {},
    }
    failures = runner.check_regressions(results, tolerance=2.0, baselines={})
    assert failures
    assert "contains no kernels" in failures[0]


def test_check_fails_when_nothing_was_timed():
    failures = runner.check_regressions(
        {"kernels": {}, "speedups": {}}, tolerance=2.0
    )
    assert any("no kernels were timed" in f for f in failures)


def test_check_flags_speedup_shortfall():
    results = {"kernels": {}, "speedups": {"qdb_overlap_h2000_vs_seed": 2.0}}
    failures = runner.check_regressions(results, tolerance=2.0)
    assert any(
        "qdb_overlap_h2000" in f and "2.0x" in f for f in failures
    )


def test_check_flags_uint8_speedup_shortfall():
    results = {
        "kernels": {},
        "speedups": {"pir_batch64_retrieve_n65536_vs_uint8": 1.5},
    }
    failures = runner.check_regressions(results, tolerance=2.0)
    assert any(
        "pir_batch64_retrieve_n65536" in f and "uint8" in f
        for f in failures
    )


def test_check_flags_backend_mismatch():
    """Numbers from a different kernel backend must not be compared."""
    results = {
        "kernels": {},
        "speedups": {},
        "backend": {"name": "definitely-not-the-baseline", "numpy": "0"},
    }
    failures = runner.check_regressions(results, tolerance=2.0)
    assert any("backend mismatch" in f for f in failures)
    # Matching backend (or a pre-schema-3 record with none): no complaint.
    results["backend"] = {"name": BASELINE_BACKEND, "numpy": "0"}
    assert not any(
        "backend mismatch" in f
        for f in runner.check_regressions(results, tolerance=2.0)
    )
