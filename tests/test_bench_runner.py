"""Smoke test for the benchmark-regression harness.

Runs the real runner with ``--trials 1 --no-compare`` (the `make
bench-check` smoke entry) so the tier-1 suite exercises kernel setup,
timing, JSON emission, and the speedup bookkeeping without depending on
wall-clock stability.
"""

import json

from benchmarks import runner
from benchmarks.baselines import BASELINES


def test_runner_smoke(tmp_path):
    out = tmp_path / "bench.json"
    code = runner.main(["--trials", "1", "--no-compare",
                        "--output", str(out)])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["kernels"]
    assert data["calibration_seconds"] > 0
    for entry in data["kernels"].values():
        assert entry["median_seconds"] > 0
        assert entry["normalized"] > 0
    # The speedup over the seed's per-byte loop is recorded (its exact
    # value is asserted by --check, not here, to stay timing-robust).
    assert data["speedups"]["pir_single_retrieve_n4096_vs_seed"] > 1.0


def test_kernel_subset_and_check_logic(tmp_path):
    out = tmp_path / "bench.json"
    code = runner.main([
        "--trials", "1", "--no-compare", "--output", str(out),
        "--kernels", "pir_square_retrieve_n4096", "mdav_n1000_k5",
    ])
    assert code == 0
    data = json.loads(out.read_text())
    assert set(data["kernels"]) == {
        "pir_square_retrieve_n4096", "mdav_n1000_k5"
    }
    # check_regressions flags a kernel that blows past its baseline and
    # accepts one comfortably under it.
    data["kernels"]["mdav_n1000_k5"]["normalized"] = (
        BASELINES["mdav_n1000_k5"] * 100
    )
    data["kernels"]["pir_square_retrieve_n4096"]["normalized"] = (
        BASELINES["pir_square_retrieve_n4096"] * 0.5
    )
    failures = runner.check_regressions(data, tolerance=2.0)
    assert len(failures) == 1 and "mdav_n1000_k5" in failures[0]


def test_every_baseline_names_a_kernel():
    kernel_names = {k.name for k in runner.KERNELS}
    assert set(BASELINES) <= kernel_names


def test_every_speedup_pair_names_kernels_with_minimums():
    kernel_names = {k.name for k in runner.KERNELS}
    for fast, seed in runner.SPEEDUP_PAIRS:
        assert {fast, seed} <= kernel_names
    from benchmarks.baselines import MIN_SPEEDUPS
    assert set(MIN_SPEEDUPS) <= {fast for fast, _ in runner.SPEEDUP_PAIRS}


def test_list_prints_registered_kernels(capsys):
    assert runner.main(["--list"]) == 0
    out = capsys.readouterr().out
    for kernel in runner.KERNELS:
        assert kernel.name in out


def test_check_fails_on_empty_baseline():
    """A baseline with no kernels guards nothing — --check must say so."""
    results = {
        "kernels": {"mdav_n1000_k5": {
            "median_seconds": 0.01, "normalized": 1.0,
            "reps": 1, "reference_only": False,
        }},
        "speedups": {},
    }
    failures = runner.check_regressions(results, tolerance=2.0, baselines={})
    assert failures
    assert "contains no kernels" in failures[0]


def test_check_fails_when_nothing_was_timed():
    failures = runner.check_regressions(
        {"kernels": {}, "speedups": {}}, tolerance=2.0
    )
    assert any("no kernels were timed" in f for f in failures)


def test_check_flags_speedup_shortfall():
    results = {"kernels": {}, "speedups": {"qdb_overlap_vs_seed": 2.0}}
    failures = runner.check_regressions(results, tolerance=2.0)
    assert any(
        "qdb_overlap" in f and "2.0x" in f for f in failures
    )
