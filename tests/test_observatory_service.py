"""The resident observatory service: bus, timelines, HTTP surface, bundles.

These tests drive the ISSUE 8 service layer the way the serve smoke does
— real spans through a real tracer, real HTTP over an ephemeral port —
but one property at a time, so a failure names the broken part instead
of the whole pipeline.
"""

import json
import threading
from urllib.request import urlopen

import pytest

from repro.telemetry import instrument
from repro.telemetry.observatory import OPENMETRICS_CONTENT_TYPE
from repro.telemetry.observatory.service import (
    ANONYMOUS_SESSION,
    EventBus,
    ObservatoryService,
    SessionTimelines,
    create_server,
    verify_incident_bundle,
)
from repro.telemetry.observatory.service.server import _SseCollector


def _span_record(name="qdb.query", span_id=1, **attrs):
    return {
        "type": "span",
        "name": name,
        "span_id": span_id,
        "trace_id": 1,
        "parent_id": None,
        "start": 0.0,
        "duration": 0.001,
        "attrs": attrs,
    }


class TestEventBus:
    def test_seq_is_contiguous_and_stamped(self):
        bus = EventBus()
        first = bus.publish("point", {"a": 1})
        second = bus.publish("alert", {"b": 2})
        assert (first["seq"], second["seq"]) == (1, 2)
        assert bus.seq == 2

    def test_since_returns_only_newer_events(self):
        bus = EventBus()
        for i in range(5):
            bus.publish("point", {"i": i})
        events, lost = bus.since(3)
        assert lost == 0
        assert [e["data"]["i"] for e in events] == [3, 4]
        events, lost = bus.since(5)
        assert (events, lost) == ([], 0)

    def test_slow_consumer_loses_overwritten_events_counted(self):
        bus = EventBus(history=4)
        for i in range(10):
            bus.publish("point", {"i": i})
        events, lost = bus.since(0)
        # Ring holds the last 4; the first 6 are gone and said so.
        assert lost == 6
        assert [e["data"]["i"] for e in events] == [6, 7, 8, 9]
        assert bus.dropped == 6

    def test_catch_up_is_gapless_and_duplicate_free(self):
        bus = EventBus()
        seen = []
        last = 0
        for i in range(20):
            bus.publish("point", {"i": i})
            if i % 3 == 0:  # poll at a different cadence than publish
                events, lost = bus.since(last)
                assert lost == 0
                seen.extend(e["seq"] for e in events)
                last = seen[-1]
        events, _ = bus.since(last)
        seen.extend(e["seq"] for e in events)
        assert seen == list(range(1, 21))

    def test_concurrent_publish_never_skips_a_seq(self):
        bus = EventBus(history=4096)
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            for _ in range(250):
                bus.publish("point", {})

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events, lost = bus.since(0)
        assert lost == 0
        assert [e["seq"] for e in events] == list(range(1, 1001))


class TestSessionTimelines:
    def test_folds_queries_refusals_degradations_and_batches(self):
        timelines = SessionTimelines()
        timelines.observe(_span_record(session="alice"), 1)
        timelines.observe(
            _span_record(session="alice", refused=True, policy="size",
                         reason="too small", query="COUNT(x)"), 2)
        timelines.observe(_span_record(session="alice", degraded=True), 3)
        timelines.observe(
            _span_record(name="qdb.ask_batch", session="alice",
                         n_queries=4, refused=1), 4)
        (summary,) = timelines.summary()
        assert summary["session"] == "alice"
        assert summary["queries"] == 3
        assert summary["refusals"] == 1
        assert summary["degraded"] == 1
        assert summary["batches"] == 1
        assert (summary["first_step"], summary["last_step"]) == (1, 4)
        timeline = timelines.timeline("alice")
        kinds = [e["kind"] for e in timeline["events"]]
        assert kinds == ["query", "refusal", "degraded", "batch"]
        assert "size: too small" in timeline["events"][1]["detail"]

    def test_unlabelled_spans_group_under_anonymous(self):
        timelines = SessionTimelines()
        timelines.observe(_span_record(), 1)
        assert timelines.labels() == [ANONYMOUS_SESSION]

    def test_unknown_session_timeline_is_none(self):
        assert SessionTimelines().timeline("nobody") is None


class TestServiceLifecycle:
    def test_double_attach_is_rejected(self):
        service = ObservatoryService()
        with instrument.session() as tracer:
            service.attach(tracer)
            with pytest.raises(RuntimeError, match="already attached"):
                service.attach(tracer)
            service.detach()

    def test_feed_emits_points_and_alert_frames_in_order(self):
        service = ObservatoryService(emit_every=4)
        with instrument.session() as tracer:
            service.attach(tracer)
            # Refusal-heavy traffic: the stock refusal-rate rule fires.
            for _ in range(16):
                with instrument.span("qdb.query", refused=True,
                                     query_set_size=2):
                    pass
            service.close()
        events, lost = service.bus.since(0)
        assert lost == 0
        kinds = [e["event"] for e in events]
        assert kinds.count("point") == 4
        assert "alert" in kinds
        assert kinds[-1] == "bye"
        # The alert frame must follow the point context that triggered
        # it (the service feed subscribes before the observatory).
        assert kinds.index("alert") > kinds.index("point")
        point = next(e["data"] for e in events if e["event"] == "point")
        assert set(point["series"]) == {
            "qdb.refused", "qdb.query_set_size",
            "faults.degrade", "pir.batch_queries",
        }
        alert = next(e["data"] for e in events if e["event"] == "alert")
        assert alert["alert"] == "qdb-refusal-rate"
        assert alert["dimension"] == "respondent"


class TestHttpSurface:
    @pytest.fixture()
    def served(self):
        service = ObservatoryService(emit_every=4)
        server = create_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        with instrument.session() as tracer:
            service.attach(tracer)
            try:
                yield service, base
            finally:
                service.close()
                server.shutdown()
                server.server_close()

    @staticmethod
    def _get_json(url):
        with urlopen(url) as response:
            return json.loads(response.read().decode("utf-8"))

    def _drive(self, n=8):
        for i in range(n):
            with instrument.span("qdb.query", session="probe",
                                 refused=i % 2 == 0, query_set_size=9):
                pass

    def test_status_metrics_sessions_and_404(self, served):
        service, base = served
        self._drive()
        status = self._get_json(f"{base}/")
        assert status["attached"] is True
        assert status["seen"] == 8
        with urlopen(f"{base}/metrics") as response:
            assert (response.headers.get("Content-Type")
                    == OPENMETRICS_CONTENT_TYPE)
            assert response.read().decode().rstrip().endswith("# EOF")
        sessions = self._get_json(f"{base}/sessions")
        assert [s["session"] for s in sessions["sessions"]] == ["probe"]
        timeline = self._get_json(f"{base}/sessions/probe")
        assert timeline["queries"] == 8
        assert timeline["refusals"] == 4
        for url in (f"{base}/sessions/ghost", f"{base}/nope"):
            with pytest.raises(Exception):
                urlopen(url)

    def test_sse_stream_delivers_hello_points_and_bye(self, served):
        service, base = served
        collector = _SseCollector(f"{base}/events")
        collector.start()
        assert collector.hello_seen.wait(timeout=10.0)
        self._drive(12)
        service.close()
        collector.join(timeout=10.0)
        assert collector.error is None
        assert not collector.is_alive()
        (hello,) = collector.of_type("hello")
        assert hello["schema"] == 2
        assert hello["events"] == ["hello", "point", "alert", "trace", "bye"]
        assert len(collector.of_type("point")) == 3
        assert collector.of_type("bye")

    def test_late_subscriber_receives_retained_history(self, served):
        service, base = served
        self._drive(12)  # all before anyone is connected
        collector = _SseCollector(f"{base}/events")
        collector.start()
        assert collector.hello_seen.wait(timeout=10.0)
        service.close()
        collector.join(timeout=10.0)
        assert len(collector.of_type("point")) == 3

    def test_incident_bundle_round_trips_over_http(self, served):
        service, base = served
        self._drive(16)
        bundle = self._get_json(f"{base}/incident")
        assert bundle["schema"] == 1
        assert bundle["replay"]["verified"] is True
        assert bundle["spans"] == len(bundle["trace"])
        # The proof is recomputable offline by any reviewer.
        proof = verify_incident_bundle(bundle)
        assert proof == bundle["replay"]


class TestIncidentBundleHonesty:
    def test_bundle_after_buffer_overflow_is_unverifiable(self):
        bundle = {"spans_dropped": 3, "alerts": [], "trace": []}
        proof = verify_incident_bundle(bundle)
        assert proof["verified"] is False
        assert "incomplete" in proof["detail"]

    def test_tampered_bundle_fails_verification(self):
        service = ObservatoryService(emit_every=4)
        with instrument.session() as tracer:
            service.attach(tracer)
            for _ in range(16):
                with instrument.span("qdb.query", refused=True,
                                     query_set_size=2):
                    pass
            bundle = service.incident_bundle()
            service.detach()
        assert bundle["replay"]["verified"] is True
        assert bundle["alerts"], "expected at least one recorded alert"
        doctored = dict(bundle)
        doctored["alerts"] = [
            dict(attrs, step=attrs["step"] + 1)
            for attrs in bundle["alerts"]
        ]
        proof = verify_incident_bundle(doctored)
        assert proof["verified"] is False
        assert "drift" in proof["detail"]
