"""Tracing: span nesting, bounded buffer, JSONL sink, schema validation."""

import json

import numpy as np
import pytest

from repro.telemetry import (
    JsonlSink,
    SpanSchemaError,
    TRACE_SCHEMA_VERSION,
    Tracer,
    read_trace,
    validate_record,
)


class TestSpans:
    def test_nesting_assigns_parents_and_depths(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = list(tracer.finished)
        assert inner["name"] == "inner"
        assert inner["parent_id"] == outer["span_id"]
        assert inner["depth"] == 1
        assert outer["parent_id"] is None
        assert outer["depth"] == 0

    def test_span_ids_are_unique_and_ordered(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("s"):
                pass
        ids = [r["span_id"] for r in tracer.finished]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_durations_are_monotonic_clock_based(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = list(tracer.finished)
        assert 0 <= inner["duration"] <= outer["duration"]
        assert outer["start"] <= inner["start"]

    def test_attrs_coerced_to_scalars(self):
        tracer = Tracer()
        with tracer.span(
            "s", n=np.int64(3), x=np.float64(0.5), obj=[1, 2]
        ) as span:
            span.set("late", np.int32(7))
        record = tracer.finished[-1]
        assert record["attrs"]["n"] == 3
        assert record["attrs"]["x"] == 0.5
        assert record["attrs"]["late"] == 7
        assert isinstance(record["attrs"]["obj"], str)  # repr fallback
        validate_record(record)

    def test_exception_records_error_and_unwinds_stack(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.depth == 0
        records = {r["name"]: r for r in tracer.finished}
        assert records["inner"]["attrs"]["error"] == "RuntimeError"
        # A new span opened afterwards nests at the top level again.
        with tracer.span("after"):
            pass
        assert tracer.finished[-1]["depth"] == 0

    def test_buffer_bounds_and_drop_counting(self):
        tracer = Tracer(buffer_size=4)
        for i in range(7):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished) == 4
        assert tracer.spans_started == 7
        assert tracer.spans_dropped == 3
        assert [r["name"] for r in tracer.finished] == [
            "s3", "s4", "s5", "s6"
        ]


class TestDeferredAttrs:
    """Span.defer_attrs: attributes rendered only at materialization."""

    def test_builder_runs_on_buffer_read_not_on_close(self):
        tracer = Tracer()
        calls = []

        def build():
            calls.append(1)
            return {"x": 1}

        with tracer.span("s") as span:
            span.defer_attrs(build)
        assert calls == []  # buffered-only session: nothing rendered yet
        assert tracer.finished[-1]["attrs"] == {"x": 1}
        assert calls == [1]
        tracer.finished  # re-reading does not re-render
        assert calls == [1]

    def test_eager_writes_overlay_the_built_dict(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.defer_attrs(lambda: {"a": 1, "b": 2})
            span.set("b", 99)  # set() materializes, then overwrites
        assert tracer.finished[-1]["attrs"] == {"a": 1, "b": 99}

    def test_error_key_survives_deferred_attrs(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("s") as span:
                span.defer_attrs(lambda: {"a": 1})
                raise RuntimeError("boom")
        record = tracer.finished[-1]
        assert record["attrs"] == {"a": 1, "error": "RuntimeError"}
        validate_record(record)

    def test_sink_materializes_at_close(self, tmp_path):
        calls = []
        sink = JsonlSink(tmp_path / "t.jsonl")
        tracer = Tracer(sink=sink)
        with tracer.span("s") as span:
            span.defer_attrs(lambda: calls.append(1) or {"k": "v"})
        assert calls == [1]  # a sink consumes the record immediately
        sink.close()
        assert read_trace(sink.path)[0]["attrs"] == {"k": "v"}

    def test_subscriber_attachment_drains_parked_spans(self):
        tracer = Tracer()
        with tracer.span("early") as span:
            span.defer_attrs(lambda: {"i": 0})
        seen = []
        tracer.add_subscriber(seen.append)
        with tracer.span("late"):
            pass
        assert [r["name"] for r in tracer.finished] == ["early", "late"]
        assert tracer.finished[0]["attrs"] == {"i": 0}
        assert [r["name"] for r in seen] == ["late"]


class TestJsonlSink:
    def test_meta_header_and_span_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlSink(path))
        with tracer.span("a", key="value"):
            pass
        tracer.sink.close()
        lines = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert lines[0]["type"] == "meta"
        assert lines[0]["schema"] == TRACE_SCHEMA_VERSION
        assert lines[1]["type"] == "span"
        assert lines[1]["attrs"] == {"key": "value"}

    def test_read_trace_validates_and_drops_meta(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlSink(path))
        with tracer.span("a"):
            pass
        tracer.sink.close()
        spans = read_trace(path)
        assert [s["name"] for s in spans] == ["a"]

    def test_read_trace_flags_bad_json_with_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type":"meta","schema":1}\nnot json\n')
        with pytest.raises(SpanSchemaError, match=":2:"):
            read_trace(path)

    def test_read_trace_flags_schema_drift(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        record = {
            "type": "span", "span_id": 1, "parent_id": None, "name": "a",
            "depth": 0, "start": 0.0, "duration": 0.001, "attrs": {},
        }
        bad = dict(record)
        del bad["duration"]  # a field renamed/removed = drift
        path.write_text(
            json.dumps(record) + "\n" + json.dumps(bad) + "\n"
        )
        with pytest.raises(SpanSchemaError, match="duration"):
            read_trace(path)


class TestValidateRecord:
    def _span(self, **overrides):
        record = {
            "type": "span", "span_id": 1, "parent_id": None, "name": "a",
            "depth": 0, "start": 0.0, "duration": 0.001, "attrs": {},
        }
        record.update(overrides)
        return record

    def test_valid_span_passes(self):
        validate_record(self._span())

    def test_meta_requires_integer_schema(self):
        validate_record({"type": "meta", "schema": 1})
        with pytest.raises(SpanSchemaError):
            validate_record({"type": "meta", "schema": "1"})

    def test_unknown_type_rejected(self):
        with pytest.raises(SpanSchemaError):
            validate_record({"type": "event"})

    def test_bool_span_id_rejected(self):
        with pytest.raises(SpanSchemaError):
            validate_record(self._span(span_id=True))

    def test_negative_timings_rejected(self):
        with pytest.raises(SpanSchemaError):
            validate_record(self._span(duration=-1.0))

    def test_non_scalar_attr_rejected(self):
        with pytest.raises(SpanSchemaError):
            validate_record(self._span(attrs={"x": [1, 2]}))

    def test_zero_span_id_rejected(self):
        with pytest.raises(SpanSchemaError):
            validate_record(self._span(span_id=0))
