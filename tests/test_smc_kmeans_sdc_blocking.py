"""Tests for secure k-means and blocked microaggregation."""

import random

import numpy as np
import pytest

from repro.data import patients, sparse_clusters
from repro.sdc import (
    BlockedMicroaggregation,
    Microaggregation,
    anonymity_level,
    il1s,
    is_k_anonymous,
    tree_blocks,
)
from repro.smc import plaintext_exposure, pooled_kmeans, secure_kmeans


@pytest.fixture(scope="module")
def clustered():
    pop = sparse_clusters(240, 2, n_clusters=3, cluster_std=0.4, seed=5)
    parts = [pop.select(np.arange(i, 240, 3)) for i in range(3)]
    return pop, parts


class TestSecureKMeans:
    def test_matches_pooled_baseline(self, clustered):
        pop, parts = clustered
        secure = secure_kmeans(parts, ["x0", "x1"], 3, rng=random.Random(1))
        pooled = pooled_kmeans(pop, ["x0", "x1"], 3)
        assert np.allclose(
            np.sort(secure.centroids, axis=0),
            np.sort(pooled.centroids, axis=0),
            atol=1e-3,
        )

    def test_recovers_planted_clusters(self, clustered):
        pop, parts = clustered
        result = secure_kmeans(parts, ["x0", "x1"], 3, rng=random.Random(2))
        assignments = result.assign(pop.matrix(["x0", "x1"]))
        # Each found cluster should be dominated by one planted cluster:
        # within-cluster spread far below the between-centroid spread.
        matrix = pop.matrix(["x0", "x1"])
        within = np.mean([
            np.linalg.norm(
                matrix[assignments == c] - result.centroids[c], axis=1
            ).mean()
            for c in range(3)
            if np.any(assignments == c)
        ])
        between = np.linalg.norm(
            result.centroids[0] - result.centroids[-1]
        )
        assert within < between / 2

    def test_no_record_exposure(self, clustered):
        _pop, parts = clustered
        result = secure_kmeans(parts, ["x0", "x1"], 3, rng=random.Random(3))
        private = {
            f"P{i}": [float(v) for col in ("x0", "x1") for v in part[col]]
            for i, part in enumerate(parts)
        }
        assert plaintext_exposure(result.transcript, private) == 0.0

    def test_converges(self, clustered):
        _pop, parts = clustered
        result = secure_kmeans(
            parts, ["x0", "x1"], 3, max_iter=25, rng=random.Random(4)
        )
        assert result.iterations < 25

    def test_validation(self, clustered):
        _pop, parts = clustered
        with pytest.raises(ValueError):
            secure_kmeans(parts, ["x0"], 0)
        with pytest.raises(ValueError):
            secure_kmeans([], ["x0"], 2)


class TestTreeBlocks:
    def test_partition_exact(self):
        matrix = np.random.default_rng(0).normal(size=(500, 3))
        blocks = tree_blocks(matrix, max_block=64, min_block=5)
        covered = sorted(i for b in blocks for i in b)
        assert covered == list(range(500))

    def test_block_size_bounds(self):
        matrix = np.random.default_rng(1).normal(size=(800, 2))
        blocks = tree_blocks(matrix, max_block=100, min_block=5)
        assert all(b.size >= 5 for b in blocks)
        # Blocks may exceed max_block only in degenerate tie cases.
        assert np.mean([b.size <= 100 for b in blocks]) > 0.9

    def test_constant_data_single_block(self):
        matrix = np.ones((50, 2))
        blocks = tree_blocks(matrix, max_block=10, min_block=2)
        assert len(blocks) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_blocks(np.zeros((10, 1)), max_block=2, min_block=5)


class TestBlockedMicroaggregation:
    def test_k_anonymity_preserved(self):
        pop = patients(1200, seed=2)
        release = BlockedMicroaggregation(5, 128).mask(pop)
        assert is_k_anonymous(release, 5, ["height", "weight", "age"])

    def test_information_loss_near_plain_mdav(self):
        pop = patients(1200, seed=2)
        qi = ["height", "weight", "age"]
        blocked = BlockedMicroaggregation(5, 128).mask(pop)
        plain = Microaggregation(5).mask(pop)
        assert il1s(pop, blocked, qi) < 2.0 * il1s(pop, plain, qi)

    def test_means_preserved(self):
        pop = patients(600, seed=3)
        release = BlockedMicroaggregation(5, 128).mask(pop)
        assert release["height"].mean() == pytest.approx(
            pop["height"].mean()
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockedMicroaggregation(0)
        with pytest.raises(ValueError):
            BlockedMicroaggregation(10, max_block=15)
