"""Tests for the AOL-style query-log re-identification attack."""

import numpy as np
import pytest

from repro.pir import (
    QueryLog,
    log_matching_attack,
    make_user_population,
    run_search_sessions,
)


@pytest.fixture(scope="module")
def users():
    return make_user_population(60, n_topics=15, seed=1)


class TestPopulation:
    def test_profiles_are_distributions(self, users):
        for user in users:
            assert user.topic_weights.sum() == pytest.approx(1.0)
            assert np.all(user.topic_weights >= 0)

    def test_profiles_are_peaky(self, users):
        """Low concentration => identifying profiles."""
        peak = np.mean([u.topic_weights.max() for u in users])
        assert peak > 0.3

    def test_deterministic(self):
        a = make_user_population(5, seed=3)
        b = make_user_population(5, seed=3)
        assert all(
            np.array_equal(x.topic_weights, y.topic_weights)
            for x, y in zip(a, b)
        )

    def test_sampling_follows_profile(self, users):
        rng = np.random.default_rng(0)
        user = users[0]
        draws = user.sample_queries(3000, rng)
        top = int(np.argmax(user.topic_weights))
        freq = draws.count(top) / len(draws)
        assert freq == pytest.approx(float(user.topic_weights[top]), abs=0.05)


class TestQueryLog:
    def test_plaintext_log_records_topics(self, users):
        log = run_search_sessions(users[:3], 10, use_pir=False, seed=2)
        assert all(len(v) == 10 for v in log.entries.values())

    def test_pir_log_is_empty_of_topics(self, users):
        log = run_search_sessions(users[:3], 10, use_pir=True, seed=2)
        assert all(len(v) == 0 for v in log.entries.values())

    def test_histogram_normalized(self, users):
        log = run_search_sessions(users[:1], 20, use_pir=False, seed=2)
        hist = log.histogram("anon-0000", 15)
        assert hist.sum() == pytest.approx(1.0)

    def test_histogram_of_unknown_pseudonym_is_uniform(self):
        log = QueryLog()
        hist = log.histogram("ghost", 10)
        assert np.allclose(hist, 0.1)


class TestAttack:
    def test_plaintext_logs_reidentify(self, users):
        """The AOL effect: query histories are fingerprints."""
        log = run_search_sessions(users, 40, use_pir=False, seed=2)
        report = log_matching_attack(log, users, 3)
        assert report.reidentification_rate > 0.8

    def test_pir_logs_are_at_chance(self, users):
        log = run_search_sessions(users, 40, use_pir=True, seed=2)
        report = log_matching_attack(log, users, 3)
        assert report.reidentification_rate < 0.15

    def test_more_queries_more_identifying(self, users):
        short = log_matching_attack(
            run_search_sessions(users, 3, seed=4), users, 5
        )
        long = log_matching_attack(
            run_search_sessions(users, 60, seed=4), users, 5
        )
        assert long.reidentification_rate >= short.reidentification_rate

    def test_chance_rate(self, users):
        log = run_search_sessions(users, 5, use_pir=True, seed=2)
        report = log_matching_attack(log, users, 3)
        assert report.chance_rate == pytest.approx(1 / 60)
