"""Byzantine-tolerant PIR: the two central resilience properties.

1. For *any* fault plan touching at most ``f`` replica groups, the
   majority vote returns blocks bit-identical to the fault-free scheme.
2. Batched retrieval under a plan equals sequential retrieval under a
   copy of the same plan — fault decisions key on operation indices, not
   arrival order, so batching is not observable through the fault layer.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import (
    FAULT_KINDS,
    Fault,
    FaultPlan,
    ResilientXorPIR,
    random_fault_plan,
    wrap_servers,
)
from repro.faults.errors import PIRUnavailableError, QuorumLostError
from repro.pir import TwoServerXorPIR

_slow = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

BLOCKS = [i.to_bytes(8, "big") for i in range(977, 993)]


def _fault_for(draw, kind: str, target: str) -> Fault:
    return Fault(
        kind,
        target,
        probability=draw(st.sampled_from([0.25, 0.5, 1.0])),
        after=draw(st.integers(0, 3)),
        delay=draw(st.sampled_from([0.01, 0.08, 0.5])),
        bits=draw(st.integers(1, 12)),
    )


class TestByzantineTolerance:
    @given(f=st.integers(1, 2), seed=st.integers(0, 2**32 - 1),
           data=st.data())
    @_slow
    def test_le_f_faulty_groups_bit_identical(self, f, seed, data):
        """Any plan hitting <= f of the 2f+1 groups changes nothing."""
        n_groups = 2 * f + 1
        groups = data.draw(
            st.lists(st.integers(0, n_groups - 1), min_size=1, max_size=f,
                     unique=True)
        )
        faults = [
            _fault_for(data.draw, data.draw(st.sampled_from(FAULT_KINDS)),
                       f"pir.replica:{g}")
            for g in groups
        ]
        indices = data.draw(
            st.lists(st.integers(0, len(BLOCKS) - 1), min_size=1, max_size=6)
        )
        pir = ResilientXorPIR(BLOCKS, f=f,
                              plan=FaultPlan(faults, seed=seed))
        assert pir.retrieve_batch(indices, rng=0) == [
            BLOCKS[i] for i in indices
        ]

    def test_f_byzantine_outvoted_and_counted(self):
        plan = FaultPlan([Fault("byzantine", "pir.replica:0")], seed=7)
        pir = ResilientXorPIR(BLOCKS, f=1, plan=plan)
        values = pir.retrieve_batch(range(len(BLOCKS)), rng=1)
        assert values == BLOCKS
        assert all(r.votes == 2 and r.outvoted == 1 and not r.degraded
                   for r in pir.last_reports)
        assert pir._c_outvoted.value == len(BLOCKS)

    def test_raw_scheme_has_no_such_tolerance(self):
        """The contrast the resilient layer exists for: one byzantine
        server inside a raw XOR scheme corrupts the answer silently."""
        raw = wrap_servers(
            TwoServerXorPIR(BLOCKS),
            FaultPlan([Fault("byzantine", "pir.server:1")], seed=7),
        )
        assert raw.retrieve(3, np.random.default_rng(0)) != BLOCKS[3]


class TestQuorumLoss:
    TWO_DOWN = [Fault("crash", "pir.replica:0", after=0),
                Fault("byzantine", "pir.replica:1")]

    def test_beyond_f_failures_raise_by_default(self):
        pir = ResilientXorPIR(BLOCKS, f=1,
                              plan=FaultPlan(self.TWO_DOWN, seed=2))
        with pytest.raises(QuorumLostError, match="quorum lost"):
            pir.retrieve(4, rng=0)
        assert pir._c_quorum_lost.value == 1

    def test_degraded_fallback_is_explicit_policy(self):
        pir = ResilientXorPIR(BLOCKS, f=1,
                              plan=FaultPlan(self.TWO_DOWN, seed=2),
                              allow_degraded=True)
        # Replica 0 crashed, replica 1 lies: two delivered candidates
        # disagree 1-1, and the fallback serves the first survivor --
        # which may be the byzantine one.  Integrity is gone; the report
        # says so.
        pir.retrieve(4, rng=0)
        (report,) = pir.last_reports
        assert report.degraded and report.delivered == 2
        assert pir._c_degraded.value == 1

    def test_total_blackout_raises_unavailable_even_degraded(self):
        plan = FaultPlan([Fault("crash", f"pir.replica:{g}", after=0)
                          for g in range(3)], seed=0)
        pir = ResilientXorPIR(BLOCKS, f=1, plan=plan, allow_degraded=True)
        with pytest.raises(PIRUnavailableError):
            pir.retrieve(0, rng=0)


class TestBatchSequentialEquivalence:
    @given(seed=st.integers(0, 2**32 - 1),
           plan_seed=st.integers(0, 2**32 - 1),
           allow_degraded=st.booleans())
    @_slow
    def test_batch_equals_sequential_under_same_plan(
            self, seed, plan_seed, allow_degraded):
        plan = random_fault_plan(
            np.random.default_rng(plan_seed),
            [f"pir.replica:{g}" for g in range(3)],
        )
        rng = np.random.default_rng(seed)
        indices = [int(i) for i in
                   rng.integers(0, len(BLOCKS), size=int(rng.integers(1, 8)))]

        def run(pir, mode):
            try:
                if mode == "batch":
                    return ("ok", pir.retrieve_batch(indices, rng=0))
                return ("ok", [pir.retrieve(i, rng=0) for i in indices])
            except (QuorumLostError, PIRUnavailableError) as exc:
                return ("error", type(exc))

        batch = run(ResilientXorPIR(BLOCKS, f=1, plan=plan.copy(),
                                    allow_degraded=allow_degraded), "batch")
        seq = run(ResilientXorPIR(BLOCKS, f=1, plan=plan.copy(),
                                  allow_degraded=allow_degraded), "seq")
        assert batch == seq


class TestConstruction:
    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            ResilientXorPIR(BLOCKS, scheme="three-server")

    def test_negative_f_rejected(self):
        with pytest.raises(ValueError, match="f must be"):
            ResilientXorPIR(BLOCKS, f=-1)

    def test_retrieve_int_roundtrip(self):
        pir = ResilientXorPIR([5, -17, 4096], f=1)
        assert pir.retrieve_batch_int([1, 2, 0], rng=0) == [-17, 4096, 5]

    @pytest.mark.parametrize("scheme,n_servers", [
        ("two-server", 2), ("multi-server", 4), ("square", 2),
    ])
    def test_all_wrapped_schemes_vote(self, scheme, n_servers):
        plan = FaultPlan([Fault("byzantine", "pir.replica:2")], seed=1)
        pir = ResilientXorPIR(BLOCKS, f=1, scheme=scheme,
                              n_servers=n_servers, plan=plan)
        assert pir.retrieve(7, rng=0) == BLOCKS[7]
