"""Tests for the secure-computation protocols."""

import random

import numpy as np
import pytest

from repro.data import census, horizontal_partition
from repro.smc import (
    Transcript,
    millionaires,
    naive_pooled_datasets,
    naive_pooled_sum,
    plaintext_exposure,
    private_set_intersection,
    ring_secure_sum,
    secure_mean,
    secure_scalar_product,
    shares_secure_sum,
)


class TestSecureSum:
    def test_ring_correct(self):
        values = [17, -3 % (1 << 64), 25, 8]
        rng = random.Random(0)
        assert ring_secure_sum([17, 3, 25, 8], rng=rng) == 53

    def test_ring_needs_three_parties(self):
        with pytest.raises(ValueError, match="3 parties"):
            ring_secure_sum([1, 2])

    def test_ring_intermediate_messages_masked(self):
        """No partial sum on the wire equals any prefix of real values."""
        values = [100, 200, 300]
        transcript = Transcript()
        ring_secure_sum(values, rng=random.Random(1), transcript=transcript)
        on_wire = set(transcript.all_numbers())
        prefixes = {100.0, 300.0, 600.0}
        assert not (on_wire & prefixes)

    def test_ring_exposure_zero_vs_naive(self):
        values = [11, 22, 33, 44]
        priv = {f"P{i}": [v] for i, v in enumerate(values)}
        t_secure, t_naive = Transcript(), Transcript()
        ring_secure_sum(values, rng=random.Random(2), transcript=t_secure)
        naive_pooled_sum(values, t_naive)
        assert plaintext_exposure(t_secure, priv) == 0.0
        assert plaintext_exposure(t_naive, priv) == 0.75

    def test_shares_variant_correct(self):
        assert shares_secure_sum([5, 6, 7], rng=random.Random(3)) == 18
        assert shares_secure_sum([0, 0], rng=random.Random(4)) == 0

    def test_shares_needs_two(self):
        with pytest.raises(ValueError):
            shares_secure_sum([1])

    def test_secure_mean_fixed_point(self):
        mean = secure_mean([1.25, 2.50, 3.75], rng=random.Random(5))
        assert mean == pytest.approx(2.5)

    def test_secure_mean_negative_values(self):
        mean = secure_mean([-1.0, -2.0, -3.0], rng=random.Random(6))
        assert mean == pytest.approx(-2.0)


class TestScalarProduct:
    def test_correct(self):
        shares = secure_scalar_product(
            [1, 2, 3], [4, 5, 6], key_bits=128, rng=random.Random(7)
        )
        assert shares.reveal() == 32

    def test_negative_result(self):
        shares = secure_scalar_product(
            [1, -2], [3, 4], key_bits=128, rng=random.Random(8)
        )
        assert shares.reveal() == -5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            secure_scalar_product([1], [1, 2])

    def test_alice_vector_not_on_wire_in_clear(self):
        transcript = Transcript()
        secure_scalar_product(
            [9, 8, 7], [1, 1, 1], key_bits=128,
            rng=random.Random(9), transcript=transcript,
        )
        bob_view = set(transcript.numbers_seen_by("Bob"))
        assert not ({9.0, 8.0, 7.0} & bob_view)


class TestSetIntersection:
    def test_intersection_found(self):
        result = private_set_intersection(
            ["ann", "bob", "eve"], ["bob", "eve", "zoe"],
            rng=random.Random(10),
        )
        assert result == {"bob", "eve"}

    def test_disjoint(self):
        assert private_set_intersection(
            ["a"], ["b"], rng=random.Random(11)
        ) == set()

    def test_duplicates_tolerated(self):
        result = private_set_intersection(
            ["x", "x", "y"], ["x"], rng=random.Random(12)
        )
        assert result == {"x"}

    def test_raw_items_not_on_wire(self):
        transcript = Transcript()
        private_set_intersection(
            [101, 102], [102, 103], rng=random.Random(13),
            transcript=transcript,
        )
        assert not ({101.0, 102.0, 103.0} & set(transcript.all_numbers()))


class TestMillionaires:
    @pytest.mark.parametrize("a,b,expected", [
        (10, 7, True), (3, 7, False), (7, 7, True), (1, 32, False),
        (32, 1, True),
    ])
    def test_comparisons(self, a, b, expected):
        assert millionaires(a, b, rng=random.Random(a * 37 + b)) is expected

    def test_range_validation(self):
        with pytest.raises(ValueError):
            millionaires(0, 5)
        with pytest.raises(ValueError):
            millionaires(5, 33)


class TestNaivePooling:
    def test_pooled_datasets(self):
        pop = census(60, seed=0)
        parts = horizontal_partition(pop, 3, seed=0)
        transcript = Transcript()
        pooled = naive_pooled_datasets(parts, transcript)
        assert pooled.n_rows == 60
        assert len(transcript) == 2  # two parties shipped tables to P0

    def test_pooled_exposes_numeric_data(self):
        pop = census(30, seed=1)
        parts = horizontal_partition(pop, 2, seed=0)
        transcript = Transcript()
        naive_pooled_datasets(parts, transcript)
        incomes = set(parts[1]["income"])
        seen = set(transcript.all_numbers())
        assert incomes <= seen

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            naive_pooled_datasets([])
