"""The load generator in runtime mode: scripted traffic over the shards.

The ``make serve-smoke`` gate runs this shape over real HTTP; here the
same generator drives a :class:`ServingRuntime` directly so the
runtime-mode contract — cohort split across shards, zero successful
attacks, consistent per-shard accounting — is pinned without a server.
"""

import pytest

from repro.serving import ServingRuntime
from repro.telemetry import instrument as tele
from repro.telemetry.observatory.service.loadgen import LoadGenerator


@pytest.fixture
def clean_telemetry():
    tele.disable()
    tele.reset_metrics()
    yield
    tele.disable()
    tele.reset_metrics()


pytestmark = pytest.mark.usefixtures("clean_telemetry")


def _runtime(**kwargs):
    from repro.data import patients

    pop = patients(150, seed=3)
    values = [int(v) for v in pop["blood_pressure"][:16]]
    defaults = dict(shards=4, sum_audit=True, pir_values=values,
                    queue_depth=256)
    defaults.update(kwargs)
    return ServingRuntime(pop, **defaults)


class TestRuntimeMode:
    def test_cohort_is_split_refused_and_accounted(self):
        with _runtime() as runtime:
            generator = LoadGenerator(
                threads=4, ops=48, profile="mixed", tracker_cohort=True,
                runtime=runtime,
            )
            report = generator.run()
            runtime.drain()
            stats = runtime.stats()
        # The cohort ran once per target, split across distinct shards,
        # and the shared audit refused every attack.
        assert report["cohort"]["attacks"] == len(generator.targets) > 0
        assert report["cohort"]["succeeded"] == 0
        assert report["cohort"]["refusals"] >= 1
        assert generator.cohort_sessions is not None
        shards = {runtime.shard_of(s) for s in generator.cohort_sessions}
        assert len(shards) == 2
        assert set(generator.cohort_sessions) <= set(report["sessions"])
        # Scripted accounting is exact and the shards did the work.
        assert report["ops"] == 48
        assert report["qdb_ops"] + report["pir_ops"] == 48
        assert stats["overload_refusals"] == 0
        processed = sum(s["processed"] for s in stats["shards"])
        assert processed >= report["qdb_ops"]

    def test_runtime_mode_uses_the_runtime_population_and_blocks(self):
        with _runtime(shards=2) as runtime:
            generator = LoadGenerator(
                records=999, seed=3, threads=2, ops=12,
                tracker_cohort=False, runtime=runtime,
            ).build()
        assert generator.pop is runtime.data
        assert generator.db is None and generator.pir is None
        assert generator._n_pir_blocks == runtime.n_blocks == 16
        assert generator.cohort_sessions is None

    def test_blockless_runtime_scripts_qdb_only(self):
        with _runtime(pir_values=None, shards=2) as runtime:
            generator = LoadGenerator(
                threads=2, ops=16, tracker_cohort=False, runtime=runtime,
            )
            report = generator.run()
            runtime.drain()
        assert report["pir_ops"] == 0
        assert report["qdb_ops"] == 16

    def test_profiles_shift_the_qdb_pir_mix(self):
        mixes = {}
        for profile in ("audit-heavy", "pir-heavy"):
            with _runtime(shards=2) as runtime:
                report = LoadGenerator(
                    threads=2, ops=64, profile=profile,
                    tracker_cohort=False, runtime=runtime,
                ).run()
                runtime.drain()
            mixes[profile] = report["qdb_ops"]
        assert mixes["audit-heavy"] > mixes["pir-heavy"]
