"""Tests for the synthetic population generators."""

import numpy as np
import pytest

from repro.data import (
    census,
    horizontal_partition,
    market_baskets,
    patients,
    sparse_clusters,
    sparse_uniform,
    vertical_partition,
)


class TestPatients:
    def test_deterministic(self):
        assert patients(50, seed=3) == patients(50, seed=3)

    def test_different_seeds_differ(self):
        assert patients(50, seed=3) != patients(50, seed=4)

    def test_all_hypertensive_floor(self, patients_300):
        # Pressure has weight/age terms, but stays near-clinical range.
        assert np.all(patients_300["blood_pressure"] >= 120)

    def test_height_weight_correlated(self, patients_300):
        r = np.corrcoef(patients_300["height"], patients_300["weight"])[0, 1]
        assert r > 0.3

    def test_pressure_has_signal(self, patients_300):
        r = np.corrcoef(patients_300["weight"], patients_300["blood_pressure"])[0, 1]
        assert r > 0.3

    def test_schema(self, patients_300):
        assert "height" in patients_300.quasi_identifiers
        assert "blood_pressure" in patients_300.confidential_attributes

    def test_aids_is_rare_binary(self, patients_300):
        values = set(patients_300["aids"])
        assert values <= {"Y", "N"}
        assert (patients_300["aids"] == "Y").mean() < 0.3


class TestCensus:
    def test_columns(self, census_300):
        assert set(census_300.column_names) >= {
            "age", "zipcode", "sex", "education", "income", "disease"
        }

    def test_zipcode_cardinality(self):
        data = census(500, seed=1, n_zipcodes=5)
        assert len(set(data["zipcode"])) <= 5

    def test_income_positive(self, census_300):
        assert np.all(census_300["income"] > 0)

    def test_deterministic(self):
        assert census(40, seed=9) == census(40, seed=9)


class TestSparse:
    def test_clusters_shape(self):
        data = sparse_clusters(100, 6, seed=0)
        assert data.n_rows == 100
        assert data.n_columns == 6

    def test_uniform_bounds(self):
        data = sparse_uniform(100, 3, low=-1, high=1, seed=0)
        m = data.matrix()
        assert m.min() >= -1 and m.max() <= 1

    def test_all_quasi_identifiers(self):
        data = sparse_uniform(10, 4)
        assert len(data.quasi_identifiers) == 4


class TestBasketsAndPartitions:
    def test_baskets_are_frozensets(self):
        baskets = market_baskets(50, seed=2)
        assert len(baskets) == 50
        assert all(isinstance(b, frozenset) for b in baskets)

    def test_planted_pattern_frequent(self):
        baskets = market_baskets(400, seed=2)
        both = sum(1 for b in baskets if {"i0", "i1"} <= b)
        assert both / len(baskets) > 0.2

    def test_horizontal_partition_covers(self, patients_300):
        parts = horizontal_partition(patients_300, 3, seed=0)
        assert sum(p.n_rows for p in parts) == 300
        ids = sorted(i for p in parts for i in p["patient_id"])
        assert ids == sorted(patients_300["patient_id"])

    def test_horizontal_partition_needs_party(self, patients_300):
        with pytest.raises(ValueError):
            horizontal_partition(patients_300, 0)

    def test_vertical_partition(self, patients_300):
        parts = vertical_partition(
            patients_300, [["height", "weight"], ["blood_pressure"]]
        )
        assert parts[0].column_names == ("height", "weight")
        assert parts[1].column_names == ("blood_pressure",)

    def test_vertical_partition_rejects_overlap(self, patients_300):
        with pytest.raises(ValueError, match="two parties"):
            vertical_partition(patients_300, [["height"], ["height"]])
