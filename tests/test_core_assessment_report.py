"""Tests for the generic masking assessment and the report generator."""

import pytest

from repro.core import (
    PrivacyDimension,
    assess_masking,
    full_report,
    masking_scoreboard,
)
from repro.sdc import IdentityMasking, Microaggregation, UncorrelatedNoise

R, O, U = (
    PrivacyDimension.RESPONDENT,
    PrivacyDimension.OWNER,
    PrivacyDimension.USER,
)


class TestAssessMasking:
    def test_identity_scores(self, patients_300):
        assessment = assess_masking(IdentityMasking(), patients_300)
        assert assessment.scores[R] < 0.05
        assert assessment.scores[O] < 0.05
        assert assessment.scores[U] == 0.0
        assert assessment.utility.il1s == 0.0

    def test_masking_improves_privacy_costs_utility(self, patients_300):
        identity = assess_masking(IdentityMasking(), patients_300)
        masked = assess_masking(Microaggregation(5), patients_300)
        assert masked.scores[R] > identity.scores[R]
        assert masked.utility.il1s > identity.utility.il1s

    def test_pir_flag_lifts_user_dimension_only(self, patients_300):
        plain = assess_masking(UncorrelatedNoise(0.5), patients_300)
        pired = assess_masking(
            UncorrelatedNoise(0.5), patients_300, with_pir=True
        )
        assert plain.scores[U] == 0.0
        assert pired.scores[U] > 0.9
        assert plain.scores[R] == pytest.approx(pired.scores[R])
        assert "+ PIR" in pired.method_name

    def test_summary_format(self, patients_300):
        text = assess_masking(Microaggregation(5), patients_300).summary()
        assert "R=" in text and "IL1s=" in text


class TestScoreboard:
    def test_sorted_by_respondent_score(self, patients_300):
        board = masking_scoreboard(
            [IdentityMasking(), Microaggregation(5), UncorrelatedNoise(0.5)],
            patients_300,
        )
        scores = [a.scores[R] for a in board]
        assert scores == sorted(scores, reverse=True)
        assert board[-1].method_name == "identity"


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return full_report(seed=0)

    def test_contains_all_sections(self, report):
        for heading in (
            "## Table 1", "## Table 2", "PIR attack", "tracker attack",
            "Section 6 stack",
        ):
            assert heading in report

    def test_headline_claims(self, report):
        assert "cell agreement with the paper: 100%" in report
        assert "-> 146" in report or "146" in report
        assert "Overall: Table 2 cell agreement 100%" in report
