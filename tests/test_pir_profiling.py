"""Tests for query profiling (the user-privacy meter)."""

import numpy as np
import pytest

from repro.pir import (
    ProfilingReport,
    TwoServerXorPIR,
    profile_custom,
    profile_itpir,
    profile_plaintext_retrieval,
)


class TestReport:
    def test_plaintext_has_zero_privacy(self):
        report = profile_plaintext_retrieval(32, trials=100)
        assert report.success_rate == 1.0
        assert report.user_privacy == 0.0

    def test_pir_near_chance(self):
        pir = TwoServerXorPIR(list(range(64)))
        report = profile_itpir(pir, trials=300, rng=1)
        assert report.success_rate < 0.08
        assert report.user_privacy > 0.95

    def test_single_record_degenerate(self):
        report = ProfilingReport(1, 10, 10)
        assert report.user_privacy == 0.0

    def test_zero_trials(self):
        assert ProfilingReport(10, 0, 0).success_rate == 0.0

    def test_privacy_monotone_in_success(self):
        low = ProfilingReport(100, 100, 2)
        high = ProfilingReport(100, 100, 80)
        assert low.user_privacy > high.user_privacy


class TestCustomProfiling:
    def test_leaky_mechanism_detected(self):
        """A mechanism that leaks the target mod 4 gives the server a
        measurable advantage over chance."""
        rng_master = np.random.default_rng(2)

        def run_query(target, rng):
            return target % 4

        def server_guess(view, rng):
            candidates = [i for i in range(16) if i % 4 == view]
            return int(rng.choice(candidates))

        report = profile_custom(16, run_query, server_guess, trials=400, rng=3)
        assert report.success_rate == pytest.approx(0.25, abs=0.06)
        assert 0.6 < report.user_privacy < 0.9

    def test_perfect_mechanism(self):
        report = profile_custom(
            16,
            run_query=lambda target, rng: None,
            server_guess=lambda view, rng: int(rng.integers(16)),
            trials=300,
            rng=4,
        )
        assert report.user_privacy > 0.9
