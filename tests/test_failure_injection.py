"""Failure-injection and robustness tests.

Degenerate inputs, corrupted intermediate state, and adversarial misuse:
the library must fail loudly on unusable input and degrade gracefully on
merely unusual input.
"""

import numpy as np
import pytest

from repro.data import Dataset, dataset_2, patients
from repro.pir import PrivateAggregateIndex, TwoServerXorPIR
from repro.qdb import StatisticalDatabase
from repro.sdc import (
    Condensation,
    Microaggregation,
    MondrianKAnonymizer,
    RankSwap,
    SyntheticRelease,
    UncorrelatedNoise,
    anonymity_level,
)
from repro.smc import ring_secure_sum, shares_secure_sum


class TestDegenerateDatasets:
    MASKERS = [
        Microaggregation(3, ["x"]),
        MondrianKAnonymizer(3, ["x"]),
        Condensation(3, ["x"]),
        UncorrelatedNoise(0.5, ["x"]),
        RankSwap(10, ["x"]),
        SyntheticRelease(["x"]),
    ]

    @pytest.mark.parametrize("masker", MASKERS, ids=lambda m: m.name)
    def test_empty_dataset_round_trips(self, masker):
        empty = Dataset({"x": np.empty(0)})
        out = masker.mask(empty, np.random.default_rng(0))
        assert out.n_rows == 0

    @pytest.mark.parametrize("masker", MASKERS, ids=lambda m: m.name)
    def test_single_record_survives(self, masker):
        one = Dataset({"x": [5.0]})
        out = masker.mask(one, np.random.default_rng(0))
        assert out.n_rows == 1
        assert np.isfinite(out["x"][0])

    @pytest.mark.parametrize("masker", MASKERS[:4], ids=lambda m: m.name)
    def test_nan_input_rejected_loudly(self, masker):
        """NaN quasi-identifiers must raise, not silently poison groups."""
        dirty = Dataset({"x": [1.0, np.nan, 3.0, 4.0]})
        with pytest.raises(ValueError, match="NaN"):
            masker.mask(dirty, np.random.default_rng(0))

    def test_constant_column_fully_anonymous(self):
        const = Dataset({"x": [2.0] * 10})
        release = Microaggregation(3, ["x"]).mask(const)
        assert anonymity_level(release, ["x"]) == 10

    def test_inf_rejected(self):
        dirty = Dataset({"x": [1.0, np.inf]})
        with pytest.raises(ValueError, match="NaN/inf"):
            Microaggregation(2, ["x"]).mask(dirty)


class TestCorruptedProtocols:
    def test_tampered_pir_answer_detected_by_value(self):
        """IT-PIR has no integrity: a byzantine server corrupts the
        result silently — the documented trust assumption.  Verify the
        corruption actually propagates (so callers know the model).
        ``repro.faults.ResilientXorPIR`` is the remedy: replica-group
        voting outvotes exactly this behaviour (tests/test_faults_pir.py).
        """
        pir = TwoServerXorPIR([100, 200, 300])
        honest = pir.retrieve_int(1, 0)
        assert honest == 200
        # Corrupt one server's database copy (one row of its matrix).
        pir._servers[1]._db[0] = 0xFF
        rng = np.random.default_rng(1)
        results = {pir.retrieve_int(1, rng) for _ in range(20)}
        assert results != {200}  # corruption visible in some retrievals

    def test_secure_sum_modular_wraparound(self):
        """Sums exceeding the modulus wrap — callers must size it.

        The rng is an explicit integer seed resolved through
        ``resolve_protocol_rng`` (a deterministic numpy Generator), not
        process-global ``random`` state.
        """
        modulus = 1 << 8
        total = ring_secure_sum([200, 100, 50], modulus=modulus, rng=0)
        assert total == (200 + 100 + 50) % modulus
        again = ring_secure_sum([200, 100, 50], modulus=modulus, rng=0)
        assert again == total  # same seed, same masks, same transcript

    def test_shares_sum_with_zero_values(self):
        assert shares_secure_sum([0, 0, 0], rng=1) == 0

    def test_secure_sum_accepts_generator_directly(self):
        rng = np.random.default_rng(5)
        assert ring_secure_sum([3, 5, 9], rng=rng) == 17


class TestEngineMisuse:
    def test_unknown_column_in_query(self, patients_300):
        db = StatisticalDatabase(patients_300)
        with pytest.raises(KeyError):
            db.ask("SELECT AVG(nonexistent) WHERE height > 0")

    def test_ordering_comparison_on_categorical(self, patients_300):
        db = StatisticalDatabase(patients_300)
        with pytest.raises(TypeError):
            db.ask("SELECT COUNT(*) WHERE aids < 'Y'")

    def test_empty_predicate_average_is_nan(self, patients_300):
        db = StatisticalDatabase(patients_300)
        answer = db.ask("SELECT AVG(blood_pressure) WHERE height > 999")
        assert np.isnan(answer.value)


class TestBridgeMisuse:
    def test_value_column_must_be_numeric(self):
        with pytest.raises(TypeError, match="must be numeric"):
            PrivateAggregateIndex(
                dataset_2(), ["height"], "aids",
                edges={"height": [150, 200]},
            )

    def test_inverted_range_matches_nothing(self):
        index = PrivateAggregateIndex(
            dataset_2(), ["height"], "blood_pressure",
            edges={"height": [150, 175, 200]},
        )
        assert index.query({"height": (200.0, 150.0)}).count == 0
