"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data import patients, read_csv, write_csv


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestTable1(object):
    def test_prints_table(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "data set no. 1" in out
        assert "Dataset 1 anonymity level: 3" in out
        assert "Dataset 2 anonymity level: 1" in out


class TestTable2:
    def test_full_agreement_exit_zero(self, capsys):
        assert main(["table2", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "cell agreement with the paper: 100%" in out


class TestRecommend:
    def test_all_dimensions(self, capsys):
        assert main(["recommend", "r,o,u"]) == 0
        out = capsys.readouterr().out
        assert "data masking + PIR" in out

    def test_long_names(self, capsys):
        assert main(["recommend", "owner,user"]) == 0
        assert "PIR" in capsys.readouterr().out

    def test_unknown_dimension(self):
        with pytest.raises(SystemExit):
            main(["recommend", "everything"])


class TestMask:
    def test_masks_csv(self, tmp_path, capsys):
        source = tmp_path / "pop.csv"
        write_csv(patients(80, seed=1), source)
        assert main([
            "mask", str(source), "--method", "microaggregation", "--k", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "pop.masked.csv" in out
        masked = read_csv(tmp_path / "pop.masked.csv")
        assert masked.n_rows == 80

    def test_pram_method(self, tmp_path, capsys):
        source = tmp_path / "pop.csv"
        write_csv(patients(60, seed=2), source)
        assert main([
            "mask", str(source), "--method", "pram", "--scale", "0.2",
        ]) == 0
        assert (tmp_path / "pop.masked.csv").exists()

    def test_missing_method_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["mask", str(tmp_path / "x.csv")])


class TestScoreboard:
    def test_scoreboard_lists_methods(self, capsys):
        assert main(["scoreboard", "--records", "150"]) == 0
        out = capsys.readouterr().out
        assert "identity" in out
        assert "microaggregation(k=5)" in out
        assert "R=" in out

    def test_scoreboard_with_pir(self, capsys):
        assert main(["scoreboard", "--records", "120", "--pir"]) == 0
        out = capsys.readouterr().out
        assert "+ PIR" in out
        assert "U=1.00" in out or "U=0.9" in out


class TestAttacks:
    def test_tracker_demo(self, capsys):
        assert main(["tracker", "--records", "200", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "tracker succeeded: True" in out

    def test_attack_pir(self, capsys):
        assert main(["attack-pir"]) == 0
        out = capsys.readouterr().out
        assert "-> 1" in out
        assert "146" in out
