"""Tests for dimensions, grades, and the paper's Table 2 constants."""

import pytest

from repro.core import (
    Grade,
    PAPER_TABLE2,
    PrivacyDimension,
    grade_from_score,
)


class TestGrade:
    def test_ordering(self):
        assert Grade.NONE < Grade.LOW < Grade.MEDIUM < Grade.MEDIUM_HIGH < Grade.HIGH

    def test_labels_match_paper_spelling(self):
        assert Grade.MEDIUM_HIGH.label == "medium-high"
        assert str(Grade.NONE) == "none"

    def test_grade_from_score_boundaries(self):
        assert grade_from_score(0.0) is Grade.NONE
        assert grade_from_score(0.14) is Grade.NONE
        assert grade_from_score(0.15) is Grade.LOW
        assert grade_from_score(0.45) is Grade.MEDIUM
        assert grade_from_score(0.70) is Grade.MEDIUM_HIGH
        assert grade_from_score(0.90) is Grade.HIGH
        assert grade_from_score(1.0) is Grade.HIGH

    def test_grade_from_score_validation(self):
        with pytest.raises(ValueError):
            grade_from_score(-0.1)
        with pytest.raises(ValueError):
            grade_from_score(1.2)


class TestPaperTable2:
    def test_eight_rows(self):
        assert len(PAPER_TABLE2) == 8

    def test_every_row_grades_all_dimensions(self):
        for grades in PAPER_TABLE2.values():
            assert set(grades) == set(PrivacyDimension)

    def test_verbatim_cells(self):
        """Spot-check cells against the paper text."""
        assert PAPER_TABLE2["SDC"][PrivacyDimension.RESPONDENT] is Grade.MEDIUM_HIGH
        assert PAPER_TABLE2["Crypto PPDM"][PrivacyDimension.OWNER] is Grade.HIGH
        assert PAPER_TABLE2["PIR"][PrivacyDimension.RESPONDENT] is Grade.NONE
        assert PAPER_TABLE2["PIR"][PrivacyDimension.USER] is Grade.HIGH
        assert PAPER_TABLE2["Use-specific non-crypto PPDM + PIR"][
            PrivacyDimension.USER
        ] is Grade.MEDIUM

    def test_no_pir_no_user_privacy(self):
        """Every technology class without PIR has user privacy 'none'."""
        for name, grades in PAPER_TABLE2.items():
            if "PIR" not in name:
                assert grades[PrivacyDimension.USER] is Grade.NONE

    def test_pir_combinations_inherit_masking_grades(self):
        for base in ("SDC", "Use-specific non-crypto PPDM",
                     "Generic non-crypto PPDM"):
            combined = PAPER_TABLE2[f"{base} + PIR"]
            for dim in (PrivacyDimension.RESPONDENT, PrivacyDimension.OWNER):
                assert combined[dim] is PAPER_TABLE2[base][dim]
