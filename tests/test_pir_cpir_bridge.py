"""Tests for computational PIR and the PIR-SQL bridge."""

import random

import numpy as np
import pytest

from repro.data import dataset_2, patients
from repro.pir import (
    LinearCPIR,
    MatrixCPIR,
    PrivateAggregateIndex,
)


class TestLinearCPIR:
    @pytest.fixture(scope="class")
    def pir(self):
        return LinearCPIR([10, 20, 30, 40, 50], key_bits=128,
                          rng=random.Random(0))

    def test_retrieval(self, pir):
        for i in range(5):
            assert pir.retrieve(i) == (i + 1) * 10

    def test_out_of_range(self, pir):
        with pytest.raises(IndexError):
            pir.retrieve(5)

    def test_upstream_is_linear(self, pir):
        before = pir.upstream_ciphertexts
        pir.retrieve(2)
        assert pir.upstream_ciphertexts - before == pir.n

    def test_negative_records(self):
        pir = LinearCPIR([-7, 3], key_bits=128, rng=random.Random(1))
        assert pir.retrieve(0) == -7


class TestMatrixCPIR:
    def test_retrieval(self):
        pir = MatrixCPIR(list(range(30)), key_bits=128, rng=random.Random(2))
        for i in (0, 13, 29):
            assert pir.retrieve(i) == i

    def test_upstream_sublinear(self):
        n = 64
        linear = LinearCPIR(list(range(n)), key_bits=128, rng=random.Random(3))
        matrix = MatrixCPIR(list(range(n)), key_bits=128, rng=random.Random(4))
        linear.retrieve(5)
        matrix.retrieve(5)
        assert matrix.upstream_ciphertexts < linear.upstream_ciphertexts / 4


class TestPrivateAggregateIndex:
    @pytest.fixture(scope="class")
    def index(self):
        return PrivateAggregateIndex(
            dataset_2(), ["height", "weight"], "blood_pressure",
            edges={"height": [150, 165, 180, 200],
                   "weight": [50, 80, 105, 130]},
        )

    def test_paper_count_query(self, index):
        result = index.query({"height": (0, 165), "weight": (105, 1000)})
        assert result.count == 1

    def test_paper_avg_query(self, index):
        """The Section 3 attack: AVG(blood_pressure) of the isolated
        individual is 146."""
        result = index.query({"height": (0, 165), "weight": (105, 1000)})
        assert result.average == pytest.approx(146.0)

    def test_unconstrained_query_counts_everyone(self, index):
        result = index.query({})
        assert result.count == 10

    def test_sum_consistency(self, index):
        result = index.query({})
        assert result.total == pytest.approx(float(dataset_2()["blood_pressure"].sum()))

    def test_empty_selection(self, index):
        result = index.query({"height": (195, 200), "weight": (105, 130)})
        assert result.count == 0
        assert np.isnan(result.average)

    def test_unknown_column_rejected(self, index):
        with pytest.raises(KeyError):
            index.query({"age": (0, 100)})

    def test_boundary_cells_excluded(self, index):
        """Predicates not aligned on published edges return partial cells
        only — the straddling cell is excluded, never approximated."""
        aligned = index.query({"height": (150, 165)})
        narrower = index.query({"height": (150, 160)})
        assert narrower.count == 0  # no cell fits inside [150, 160)
        assert aligned.count >= 1

    def test_server_sees_only_subsets(self, index):
        index.query({"height": (0, 165), "weight": (105, 1000)}, rng=9)
        q1, q2 = index.server_observations()
        assert set(q1) ^ set(q2)  # they differ in exactly the target cell

    def test_edges_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            PrivateAggregateIndex(
                dataset_2(), ["height"], "blood_pressure",
                edges={"height": [10, 5]},
            )

    def test_values_outside_edges_clamped(self):
        index = PrivateAggregateIndex(
            dataset_2(), ["height"], "blood_pressure",
            edges={"height": [160, 170, 180]},
        )
        # Every record lands somewhere; total count preserved.
        assert index.query({}).count == 10
