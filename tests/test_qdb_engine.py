"""Tests for the statistical database engine and its policies."""

import numpy as np
import pytest

from repro.data import patients
from repro.qdb import (
    Aggregate,
    CamouflageIntervals,
    Comparison,
    NoisePerturbation,
    Query,
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
    TruePredicate,
)


@pytest.fixture
def db(patients_300):
    return StatisticalDatabase(patients_300)


class TestUnprotected:
    def test_exact_answers(self, db, patients_300):
        answer = db.ask("SELECT AVG(blood_pressure) WHERE height > 150")
        assert answer.ok
        truth = patients_300["blood_pressure"][
            patients_300["height"] > 150
        ].mean()
        assert answer.value == pytest.approx(truth)

    def test_history_recorded(self, db):
        db.ask("SELECT COUNT(*)")
        db.ask("SELECT COUNT(*) WHERE height > 170")
        assert db.queries_asked == 2
        assert len(db.history) == 2
        assert all(entry.answered for entry in db.history)


class TestSizeControl:
    def test_small_query_refused(self, patients_300):
        db = StatisticalDatabase(patients_300, [QuerySetSizeControl(5)])
        h = patients_300["height"][0]
        w = patients_300["weight"][0]
        a = patients_300["age"][0]
        answer = db.ask(
            f"SELECT SUM(blood_pressure) WHERE height = {h} "
            f"AND weight = {w} AND age = {a}"
        )
        assert answer.refused
        assert "too small" in answer.reason

    def test_complement_query_refused(self, patients_300):
        """|Q| > n - k is as dangerous as |Q| < k."""
        db = StatisticalDatabase(patients_300, [QuerySetSizeControl(5)])
        answer = db.ask("SELECT COUNT(*)")  # selects all n records
        assert answer.refused
        assert "too large" in answer.reason

    def test_legal_query_answered(self, patients_300):
        db = StatisticalDatabase(patients_300, [QuerySetSizeControl(5)])
        answer = db.ask("SELECT AVG(blood_pressure) WHERE height > 170")
        assert answer.ok

    def test_refusals_counted(self, patients_300):
        db = StatisticalDatabase(patients_300, [QuerySetSizeControl(5)])
        db.ask("SELECT COUNT(*)")
        assert db.queries_refused == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            QuerySetSizeControl(0)


class TestSumAudit:
    def test_difference_attack_blocked(self, patients_300):
        """Q1 and Q2 differing in one record: answering both pins that
        record's value; the audit must refuse the second."""
        db = StatisticalDatabase(patients_300, [SumAuditPolicy()])
        target_age = float(patients_300["age"][0])
        a1 = db.ask(f"SELECT SUM(blood_pressure) WHERE age >= {target_age}")
        # Not guaranteed unique; craft explicit difference instead:
        h = float(patients_300["height"][0])
        w = float(patients_300["weight"][0])
        a2 = db.ask(
            "SELECT SUM(blood_pressure) WHERE height > 0"
        )
        a3 = db.ask(
            f"SELECT SUM(blood_pressure) WHERE NOT (height = {h} "
            f"AND weight = {w} AND age = {patients_300['age'][0]})"
        )
        answered = [a for a in (a1, a2, a3) if a.ok]
        refused = [a for a in (a1, a2, a3) if a.refused]
        assert refused, "the audit must refuse at least one query"

    def test_identical_repeats_allowed(self, patients_300):
        db = StatisticalDatabase(patients_300, [SumAuditPolicy()])
        q = "SELECT SUM(blood_pressure) WHERE height > 170"
        assert db.ask(q).ok
        assert db.ask(q).ok  # re-answering the same span adds nothing

    def test_non_sum_queries_ignored(self, patients_300):
        db = StatisticalDatabase(patients_300, [SumAuditPolicy()])
        assert db.ask("SELECT MEDIAN(blood_pressure) WHERE height > 0").ok

    def test_singleton_query_refused_outright(self, patients_300):
        db = StatisticalDatabase(patients_300, [SumAuditPolicy()])
        h = float(patients_300["height"][0])
        w = float(patients_300["weight"][0])
        a = float(patients_300["age"][0])
        answer = db.ask(
            f"SELECT SUM(blood_pressure) WHERE height = {h} "
            f"AND weight = {w} AND age = {a}"
        )
        # A singleton query-set indicator IS a unit vector.
        if patients_300.group_by(["height", "weight", "age"])[(h, w, a)].size == 1:
            assert answer.refused


class TestPerturbation:
    def test_answers_noisy_but_close(self, patients_300):
        db = StatisticalDatabase(
            patients_300, [NoisePerturbation(sd=5.0)], seed=3
        )
        truth = StatisticalDatabase(patients_300).ask(
            "SELECT SUM(blood_pressure) WHERE height > 170"
        ).value
        answer = db.ask("SELECT SUM(blood_pressure) WHERE height > 170")
        assert answer.value != truth
        assert abs(answer.value - truth) < 25  # 5 sigma

    def test_counts_stay_integral_nonnegative(self, patients_300):
        db = StatisticalDatabase(
            patients_300, [NoisePerturbation(sd=4.0)], seed=4
        )
        answer = db.ask("SELECT COUNT(*) WHERE height > 210")
        assert answer.value >= 0
        assert answer.value == round(answer.value)

    def test_laplace_variant(self, patients_300):
        db = StatisticalDatabase(
            patients_300, [NoisePerturbation(sd=2.0, kind="laplace")], seed=5
        )
        assert db.ask("SELECT AVG(blood_pressure) WHERE height > 160").ok

    def test_validation(self):
        with pytest.raises(ValueError):
            NoisePerturbation(sd=-1)
        with pytest.raises(ValueError):
            NoisePerturbation(kind="cauchy")


class TestCamouflage:
    def test_interval_contains_truth(self, patients_300):
        truth = StatisticalDatabase(patients_300).ask(
            "SELECT AVG(blood_pressure) WHERE height > 170"
        ).value
        db = StatisticalDatabase(patients_300, [CamouflageIntervals(3)])
        answer = db.ask("SELECT AVG(blood_pressure) WHERE height > 170")
        assert answer.value is None
        lo, hi = answer.interval
        assert lo <= truth <= hi

    def test_count_interval(self, patients_300):
        db = StatisticalDatabase(patients_300, [CamouflageIntervals(2)])
        answer = db.ask("SELECT COUNT(*) WHERE height > 170")
        lo, hi = answer.interval
        assert hi - lo == 2

    def test_sum_interval_widens_with_k(self, patients_300):
        narrow = StatisticalDatabase(patients_300, [CamouflageIntervals(1)])
        wide = StatisticalDatabase(patients_300, [CamouflageIntervals(5)])
        q = "SELECT SUM(blood_pressure) WHERE height > 170"
        n = narrow.ask(q).interval
        w = wide.ask(q).interval
        assert (w[1] - w[0]) > (n[1] - n[0])

    def test_unsupported_aggregate_refused(self, patients_300):
        db = StatisticalDatabase(patients_300, [CamouflageIntervals(2)])
        answer = db.ask("SELECT MAX(blood_pressure) WHERE height > 170")
        assert answer.refused


class TestPolicyStacking:
    def test_size_control_runs_before_perturbation(self, patients_300):
        db = StatisticalDatabase(
            patients_300,
            [QuerySetSizeControl(5), NoisePerturbation(2.0)],
        )
        assert db.ask("SELECT COUNT(*)").refused  # size control fires first
        assert db.ask("SELECT AVG(blood_pressure) WHERE height > 170").ok
