"""Observatory stream layer: ring-buffer series, windows, bucket quantiles."""

import math

import pytest

from repro.telemetry.observatory import (
    HistogramSeries,
    Series,
    SeriesStore,
    WindowAggregate,
    quantile_from_buckets,
)


class TestSeries:
    def test_append_and_order(self):
        s = Series("x", capacity=8)
        for step in range(1, 5):
            s.append(step, step * 10.0)
        assert s.samples() == [(1, 10.0), (2, 20.0), (3, 30.0), (4, 40.0)]
        assert len(s) == 4

    def test_ring_eviction_keeps_newest(self):
        s = Series("x", capacity=3)
        for step in range(1, 6):
            s.append(step, float(step))
        assert s.values() == [3.0, 4.0, 5.0]
        assert len(s) == 3

    def test_lifetime_totals_survive_eviction(self):
        s = Series("x", capacity=2)
        for step in range(1, 6):
            s.append(step, 1.0)
        assert s.count == 5
        assert s.total == 5.0
        assert len(s) == 2

    def test_window_slices_most_recent(self):
        s = Series("x", capacity=8)
        for step in range(1, 7):
            s.append(step, float(step))
        w = s.window(3)
        assert w.values == (4.0, 5.0, 6.0)
        assert s.window().count == 6

    def test_since_is_a_tumbling_window(self):
        s = Series("x", capacity=8)
        for step in (1, 3, 5, 7):
            s.append(step, float(step))
        w = s.since(4)
        assert w.steps == (5, 7)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Series("x", capacity=0)


class TestWindowAggregate:
    def test_basic_aggregates(self):
        w = WindowAggregate(steps=(1, 2, 3, 4), values=(2.0, 4.0, 6.0, 8.0))
        assert w.count == 4
        assert w.total == 20.0
        assert w.mean == 5.0
        assert w.last == 8.0
        assert w.max == 8.0
        assert w.delta == 6.0
        assert w.rate == 2.0

    def test_empty_window_is_all_zero(self):
        w = WindowAggregate(steps=(), values=())
        assert (w.count, w.total, w.mean, w.last, w.max, w.delta, w.rate) == (
            0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0
        )

    def test_percentile_is_exact_over_raw_samples(self):
        w = WindowAggregate(
            steps=tuple(range(1, 11)), values=tuple(float(v) for v in range(1, 11))
        )
        assert w.percentile(0.5) == 5.0
        assert w.percentile(0.95) == 10.0
        assert w.aggregate("p50") == 5.0
        assert w.aggregate("percentile", q=0.1) == 1.0

    def test_unknown_aggregate_raises(self):
        w = WindowAggregate(steps=(1,), values=(1.0,))
        with pytest.raises(ValueError, match="unknown window aggregate"):
            w.aggregate("median")


class TestQuantileFromBuckets:
    def test_empty_histogram_is_zero(self):
        assert quantile_from_buckets((0.1,), (0, 0), 0.5) == 0.0

    def test_quantile_is_bucket_upper_bound(self):
        assert quantile_from_buckets((1.0, 2.0, 4.0), (10, 0, 0, 0), 0.99) == 1.0
        assert quantile_from_buckets((1.0, 2.0, 4.0), (5, 4, 1, 0), 0.9) == 2.0

    def test_overflow_bucket_yields_inf(self):
        assert math.isinf(quantile_from_buckets((1.0,), (1, 9), 0.5))

    def test_count_shape_is_checked(self):
        with pytest.raises(ValueError):
            quantile_from_buckets((1.0, 2.0), (1, 2), 0.5)


class TestHistogramSeries:
    def test_window_buckets_difference_cumulative_snapshots(self):
        h = HistogramSeries("lat", bounds=(0.01, 0.1))
        h.append(1, (2, 1, 0))
        h.append(2, (5, 1, 0))
        h.append(3, (5, 4, 1))
        # Last interval: 3 observations in le_0.1, one overflow.
        assert h.window_buckets(1) == (0, 3, 1)
        # Two intervals back adds the 3 early le_0.01 observations.
        assert h.window_buckets(2) == (3, 3, 1)
        # Whole history = the latest cumulative state.
        assert h.window_buckets() == (5, 4, 1)

    def test_windowed_quantile(self):
        h = HistogramSeries("lat", bounds=(0.01, 0.1))
        h.append(1, (0, 0, 0))
        h.append(2, (9, 1, 0))
        assert h.quantile(0.5, window=1) == 0.01
        assert h.quantile(0.99, window=1) == 0.1

    def test_bucket_shape_is_checked(self):
        h = HistogramSeries("lat", bounds=(0.01,))
        with pytest.raises(ValueError):
            h.append(1, (1, 2, 3))


class TestSeriesStore:
    def test_get_or_create_is_idempotent(self):
        store = SeriesStore()
        assert store.series("a") is store.series("a")
        assert store.get("a") is not None
        assert store.get("missing") is None

    def test_names_and_contains(self):
        store = SeriesStore()
        store.series("b")
        store.series("a")
        store.histogram_series("h", bounds=(0.1,))
        assert store.names() == ["a", "b"]
        assert "h" in store
        assert "nope" not in store

    def test_store_capacity_propagates(self):
        store = SeriesStore(capacity=2)
        s = store.series("x")
        for step in range(1, 5):
            s.append(step, float(step))
        assert s.values() == [3.0, 4.0]
