"""Property tests for the word-packing primitives (repro.kernels.packing).

The packed uint64 layout is the substrate every kernel backend computes
on, so these properties are load-bearing: lossless round-trips at ragged
widths, guaranteed-zero padding, exact equivalence with the historical
``np.packbits`` layout, and rng-stream equivalence of batched mask
sampling (which is what keeps batched PIR retrieval byte-identical to
sequential retrieval).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    WORD_BITS,
    WORD_BYTES,
    flip_mask_bits,
    pack_bool_rows,
    pack_bytes_rows,
    popcount_words,
    sample_mask_words,
    tail_mask,
    unpack_bool_rows,
    unpack_bytes_rows,
    words_per_bits,
    words_per_bytes,
    words_to_packbits,
)

# Ragged on purpose: widths straddling word boundaries are the cases a
# padded layout gets wrong first.
sizes = st.tuples(st.integers(0, 40), st.integers(1, 130))


@settings(max_examples=60, deadline=None)
@given(sizes, st.integers(0, 2**32 - 1))
def test_byte_rows_round_trip(shape, seed):
    n, width = shape
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 256, size=(n, width), dtype=np.uint8)
    words = pack_bytes_rows(matrix)
    assert words.dtype == np.uint64
    assert words.shape == (n, words_per_bytes(width))
    np.testing.assert_array_equal(unpack_bytes_rows(words, width), matrix)
    # Padding bytes past the logical width are zero, so word-level XOR
    # and popcount agree with the unpacked ground truth.
    as_bytes = words.view(np.uint8)
    assert not as_bytes[:, width:].any()


@settings(max_examples=60, deadline=None)
@given(sizes, st.integers(0, 2**32 - 1))
def test_bool_rows_round_trip(shape, seed):
    n, n_bits = shape
    rng = np.random.default_rng(seed)
    masks = rng.random((n, n_bits)) < 0.5
    words = pack_bool_rows(masks)
    assert words.dtype == np.uint64
    assert words.shape == (n, words_per_bits(max(1, n_bits)))
    np.testing.assert_array_equal(unpack_bool_rows(words, n_bits), masks)
    # Tail bits past n_bits are zero.
    if n:
        spill = unpack_bool_rows(words, words.shape[1] * WORD_BITS)
        assert not spill[:, n_bits:].any()


@settings(max_examples=60, deadline=None)
@given(sizes, st.integers(0, 2**32 - 1))
def test_words_to_packbits_matches_numpy_layout(shape, seed):
    n, n_bits = shape
    rng = np.random.default_rng(seed)
    masks = rng.random((n, n_bits)) < 0.5
    converted = words_to_packbits(pack_bool_rows(masks), n_bits)
    expected = np.packbits(masks, axis=1) if n_bits else np.zeros(
        (n, 0), dtype=np.uint8
    )
    np.testing.assert_array_equal(converted, expected)


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 200), st.integers(0, 2**32 - 1))
def test_popcount_words_matches_bit_count(n, seed):
    rng = np.random.default_rng(seed)
    words = rng.integers(0, 2**64, size=n, dtype=np.uint64)
    expected = np.array([int(w).bit_count() for w in words])
    np.testing.assert_array_equal(
        popcount_words(words).astype(np.int64), expected
    )


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 4), st.integers(1, 170), st.integers(0, 2**32 - 1))
def test_sample_mask_words_batch_equals_sequential(count, n_bits, seed):
    """One (count, nw) draw consumes the stream like count (1, nw) draws.

    This is the property batched PIR retrieval leans on to stay
    byte-identical to sequential retrieval under a shared generator.
    """
    batched = sample_mask_words(np.random.default_rng(seed), count, n_bits)
    rng = np.random.default_rng(seed)
    sequential = np.vstack(
        [sample_mask_words(rng, 1, n_bits) for _ in range(count)]
    )
    np.testing.assert_array_equal(batched, sequential)
    # Tail bits past n_bits are cleared.
    keep = tail_mask(n_bits)
    assert not (batched[:, -1] & ~keep).any()


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 6), st.integers(1, 170), st.integers(0, 2**32 - 1))
def test_flip_mask_bits_matches_boolean_flip(rows, n_bits, seed):
    rng = np.random.default_rng(seed)
    masks = rng.random((rows, n_bits)) < 0.5
    bits = rng.integers(0, n_bits, size=rows)
    words = pack_bool_rows(masks)
    flip_mask_bits(words, np.arange(rows), bits)
    expected = masks.copy()
    expected[np.arange(rows), bits] ^= True
    np.testing.assert_array_equal(unpack_bool_rows(words, n_bits), expected)


def test_word_constants():
    assert WORD_BITS == 64 and WORD_BYTES == 8
    assert words_per_bits(1) == words_per_bits(64) == 1
    assert words_per_bits(65) == 2
    assert words_per_bytes(1) == words_per_bytes(8) == 1
    assert words_per_bytes(9) == 2
    assert tail_mask(64) == np.uint64(0xFFFFFFFFFFFFFFFF)
    assert tail_mask(1) == np.uint64(1)
