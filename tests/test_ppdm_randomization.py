"""Tests for Agrawal-Srikant randomization and the noise model."""

import numpy as np
import pytest

from repro.ppdm import AgrawalSrikantRandomizer, NoiseModel


class TestNoiseModel:
    def test_gaussian_density_integrates(self):
        model = NoiseModel("gaussian", 2.0)
        xs = np.linspace(-20, 20, 4001)
        mass = np.trapezoid(model.density(xs), xs)
        assert mass == pytest.approx(1.0, abs=1e-3)

    def test_uniform_density(self):
        model = NoiseModel("uniform", 4.0)
        assert model.density(np.array([0.0]))[0] == pytest.approx(0.25)
        assert model.density(np.array([2.1]))[0] == 0.0

    def test_sample_statistics(self):
        model = NoiseModel("gaussian", 3.0)
        sample = model.sample(20000, np.random.default_rng(0))
        assert sample.std() == pytest.approx(3.0, rel=0.05)
        assert sample.mean() == pytest.approx(0.0, abs=0.1)

    def test_uniform_sample_bounds(self):
        model = NoiseModel("uniform", 4.0)
        sample = model.sample(1000, np.random.default_rng(1))
        assert np.all(np.abs(sample) <= 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel("cauchy", 1.0)
        with pytest.raises(ValueError):
            NoiseModel("gaussian", 0.0)


class TestRandomizer:
    def test_noise_models_published(self, patients_300, rng):
        randomizer = AgrawalSrikantRandomizer(0.5)
        randomizer.mask(patients_300, rng)
        assert set(randomizer.noise_models) == {"height", "weight", "age"}
        model = randomizer.noise_models["height"]
        assert model.scale == pytest.approx(
            0.5 * patients_300["height"].std()
        )

    def test_perturbation_matches_model(self, patients_300, rng):
        randomizer = AgrawalSrikantRandomizer(1.0, kind="uniform")
        release = randomizer.mask(patients_300, rng)
        delta = release["height"] - patients_300["height"]
        width = randomizer.noise_models["height"].scale
        assert np.all(np.abs(delta) <= width / 2 + 1e-9)

    def test_categorical_untouched(self, patients_300, rng):
        randomizer = AgrawalSrikantRandomizer(0.5)
        release = randomizer.mask(patients_300, rng)
        assert np.array_equal(release["aids"], patients_300["aids"])

    def test_explicit_columns(self, patients_300, rng):
        randomizer = AgrawalSrikantRandomizer(0.5, columns=["height"])
        release = randomizer.mask(patients_300, rng)
        assert np.array_equal(release["weight"], patients_300["weight"])
        assert list(randomizer.noise_models) == ["height"]
