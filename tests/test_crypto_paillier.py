"""Tests for the Paillier cryptosystem."""

import random

import pytest

from repro.crypto import paillier


@pytest.fixture(scope="module")
def keypair():
    return paillier.generate_keypair(bits=128, rng=random.Random(5))


class TestCorrectness:
    def test_encrypt_decrypt(self, keypair):
        pub, priv = keypair
        rng = random.Random(1)
        for m in (0, 1, 42, pub.n - 1):
            assert paillier.decrypt(priv, paillier.encrypt(pub, m, rng)) == m

    def test_randomized_ciphertexts_differ(self, keypair):
        pub, _ = keypair
        c1 = paillier.encrypt(pub, 7, random.Random(1))
        c2 = paillier.encrypt(pub, 7, random.Random(2))
        assert c1 != c2

    def test_negative_via_signed_decrypt(self, keypair):
        pub, priv = keypair
        c = paillier.encrypt(pub, -5, random.Random(3))
        assert paillier.decrypt_signed(priv, c) == -5


class TestHomomorphism:
    def test_addition(self, keypair):
        pub, priv = keypair
        rng = random.Random(4)
        c = paillier.add(
            pub, paillier.encrypt(pub, 20, rng), paillier.encrypt(pub, 22, rng)
        )
        assert paillier.decrypt(priv, c) == 42

    def test_add_plain(self, keypair):
        pub, priv = keypair
        c = paillier.add_plain(pub, paillier.encrypt(pub, 10, random.Random(5)), 32)
        assert paillier.decrypt(priv, c) == 42

    def test_mul_plain(self, keypair):
        pub, priv = keypair
        c = paillier.mul_plain(pub, paillier.encrypt(pub, 6, random.Random(6)), 7)
        assert paillier.decrypt(priv, c) == 42

    def test_sum_wraps_mod_n(self, keypair):
        pub, priv = keypair
        rng = random.Random(7)
        c = paillier.add(
            pub,
            paillier.encrypt(pub, pub.n - 1, rng),
            paillier.encrypt(pub, 2, rng),
        )
        assert paillier.decrypt(priv, c) == 1

    def test_rerandomize_keeps_plaintext(self, keypair):
        pub, priv = keypair
        c = paillier.encrypt(pub, 99, random.Random(8))
        c2 = paillier.rerandomize(pub, c, random.Random(9))
        assert c2 != c
        assert paillier.decrypt(priv, c2) == 99


def test_keypair_properties():
    pub, priv = paillier.generate_keypair(bits=96, rng=random.Random(11))
    assert pub.n.bit_length() in (95, 96)
    assert pub.n_squared == pub.n * pub.n
    assert priv.public is pub
