"""Tests for randomized response and association-rule hiding."""

import numpy as np
import pytest

from repro.data import market_baskets, patients
from repro.mining import association_rules, itemset_support
from repro.ppdm import (
    RandomizedResponse,
    estimate_proportion,
    hide_rules,
    per_record_posterior,
    randomize_binary,
    rule_is_visible,
    side_effects,
)


class TestRandomizedResponse:
    def test_estimator_unbiased(self):
        rng = np.random.default_rng(0)
        truth = rng.random(20000) < 0.3
        reports = randomize_binary(truth, 0.8, rng)
        est = estimate_proportion(reports, 0.8)
        assert est.proportion == pytest.approx(0.3, abs=0.02)

    def test_variance_shrinks_with_p(self):
        rng = np.random.default_rng(1)
        truth = rng.random(5000) < 0.3
        strong = estimate_proportion(randomize_binary(truth, 0.95, rng), 0.95)
        weak = estimate_proportion(randomize_binary(truth, 0.6, rng), 0.6)
        assert strong.variance < weak.variance

    def test_p_half_rejected(self):
        with pytest.raises(ValueError):
            randomize_binary([True], 0.5)

    def test_posterior_bounds(self):
        post = per_record_posterior(True, 0.8, prior=0.1)
        assert 0.1 < post < 1.0
        assert per_record_posterior(True, 0.5 + 1e-13, 0.1) == pytest.approx(0.1, abs=1e-6)

    def test_masking_method_targets_yn_columns(self):
        pop = patients(200, seed=1)
        release = RandomizedResponse(0.7).mask(pop, np.random.default_rng(2))
        assert set(release["aids"]) <= {"Y", "N"}
        flipped = np.mean(release["aids"] != pop["aids"])
        assert 0.1 < flipped < 0.5

    def test_numeric_columns_untouched(self):
        pop = patients(100, seed=1)
        release = RandomizedResponse(0.7).mask(pop, np.random.default_rng(3))
        assert np.array_equal(release["height"], pop["height"])


class TestRuleHiding:
    @pytest.fixture(scope="class")
    def mined(self):
        tx = market_baskets(300, seed=5)
        rules = association_rules(tx, 0.15, 0.6, max_size=3)
        return tx, rules

    def test_sensitive_rule_hidden(self, mined):
        tx, rules = mined
        sensitive = rules[:1]
        result = hide_rules(tx, sensitive, 0.15, 0.6)
        assert result.all_hidden
        assert not rule_is_visible(result.transactions, sensitive[0], 0.15, 0.6)

    def test_hidden_rule_not_mined_again(self, mined):
        tx, rules = mined
        sensitive = rules[:1]
        result = hide_rules(tx, sensitive, 0.15, 0.6)
        after = association_rules(result.transactions, 0.15, 0.6, max_size=3)
        keys_after = {(r.antecedent, r.consequent) for r in after}
        assert (sensitive[0].antecedent, sensitive[0].consequent) not in keys_after

    def test_transaction_count_preserved(self, mined):
        tx, rules = mined
        result = hide_rules(tx, rules[:1], 0.15, 0.6)
        assert len(result.transactions) == len(tx)

    def test_removals_counted(self, mined):
        tx, rules = mined
        result = hide_rules(tx, rules[:1], 0.15, 0.6)
        removed = sum(len(a) for a in tx) - sum(
            len(a) for a in result.transactions
        )
        assert removed == result.removed_items > 0

    def test_side_effects_reported(self, mined):
        tx, rules = mined
        sensitive = rules[:1]
        result = hide_rules(tx, sensitive, 0.15, 0.6)
        after = association_rules(result.transactions, 0.15, 0.6, max_size=3)
        lost, ghost = side_effects(rules, after, sensitive)
        sens_keys = {(r.antecedent, r.consequent) for r in sensitive}
        assert all((r.antecedent, r.consequent) not in sens_keys for r in lost)

    def test_budget_respected(self, mined):
        tx, rules = mined
        result = hide_rules(tx, rules[:1], 0.15, 0.6, max_removals_per_rule=1)
        assert result.removed_items <= 1

    def test_hiding_nothing(self, mined):
        tx, _ = mined
        result = hide_rules(tx, [], 0.15, 0.6)
        assert result.all_hidden and result.removed_items == 0
