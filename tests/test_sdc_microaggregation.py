"""Tests for MDAV microaggregation."""

import numpy as np
import pytest

from repro.sdc import (
    Microaggregation,
    anonymity_level,
    is_k_anonymous,
    mdav_groups,
    univariate_microaggregation,
)


class TestMdavGroups:
    def test_group_sizes(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(53, 3))
        for k in (2, 3, 5, 10):
            groups = mdav_groups(matrix, k)
            sizes = [g.size for g in groups]
            assert all(k <= s <= 2 * k - 1 for s in sizes)
            assert sum(sizes) == 53

    def test_partition_is_exact(self):
        matrix = np.random.default_rng(1).normal(size=(40, 2))
        groups = mdav_groups(matrix, 4)
        indices = sorted(i for g in groups for i in g)
        assert indices == list(range(40))

    def test_small_n_single_group(self):
        matrix = np.arange(6, dtype=float).reshape(3, 2)
        groups = mdav_groups(matrix, 5)
        assert len(groups) == 1
        assert groups[0].size == 3

    def test_empty(self):
        assert mdav_groups(np.empty((0, 2)), 3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            mdav_groups(np.zeros((5, 1)), 0)

    def test_groups_are_spatially_coherent(self):
        """Two well-separated blobs must not be mixed in one group."""
        rng = np.random.default_rng(2)
        left = rng.normal(0, 0.1, size=(10, 2))
        right = rng.normal(100, 0.1, size=(10, 2))
        matrix = np.vstack([left, right])
        for group in mdav_groups(matrix, 5):
            sides = set(i < 10 for i in group)
            assert len(sides) == 1


class TestMdavGoldenVectors:
    """The vectorized mdav_groups must reproduce the seed implementation
    (setdiff1d pools + full stable sorts) group-for-group, in order."""

    GOLDEN = {
        (0, 53, 3, 4): [
            [13, 29, 38, 24], [46, 28, 18, 33], [15, 39, 45, 31],
            [48, 32, 52, 51], [16, 22, 14, 40], [4, 41, 36, 42],
            [26, 44, 30, 6], [20, 49, 34, 25], [2, 8, 47, 11],
            [23, 17, 35, 3], [7, 1, 0, 37], [27, 50, 5, 10],
            [9, 12, 19, 21, 43],
        ],
        (1, 40, 2, 5): [
            [12, 31, 20, 29, 18], [11, 2, 24, 17, 0], [15, 35, 27, 26, 28],
            [16, 37, 36, 33, 7], [34, 6, 9, 3, 22], [1, 25, 21, 38, 32],
            [5, 30, 14, 4, 19], [8, 10, 13, 23, 39],
        ],
        (2, 30, 4, 3): [
            [16, 0, 24], [6, 12, 29], [7, 25, 3], [14, 8, 15],
            [27, 22, 4], [11, 13, 19], [28, 2, 20], [26, 10, 1],
            [17, 5, 23], [9, 18, 21],
        ],
    }

    @pytest.mark.parametrize("key", sorted(GOLDEN))
    def test_seed_groupings_reproduced(self, key):
        seed, n, dims, k = key
        matrix = np.random.default_rng(seed).normal(size=(n, dims))
        groups = [g.tolist() for g in mdav_groups(matrix, k)]
        assert groups == self.GOLDEN[key]

    @pytest.mark.parametrize("k", [3, 5])
    @pytest.mark.parametrize("boundary", ["2k-1", "2k", "3k-1", "3k"])
    def test_boundary_sizes(self, k, boundary):
        n = {"2k-1": 2 * k - 1, "2k": 2 * k,
             "3k-1": 3 * k - 1, "3k": 3 * k}[boundary]
        matrix = np.random.default_rng(42).normal(size=(n, 2))
        sizes = [g.size for g in mdav_groups(matrix, k)]
        assert sum(sizes) == n
        if n < 2 * k:
            assert sizes == [n]
        else:
            assert all(k <= s <= 2 * k - 1 for s in sizes)
            assert all(s == k for s in sizes[:-1])

    def test_groups_ordered_by_distance_to_anchor(self):
        """Within a group, indices are ordered nearest-first from the
        anchor (the seed's stable-sort contract, kept by argpartition
        plus a stable tie-break)."""
        rng = np.random.default_rng(9)
        matrix = rng.normal(size=(60, 2))
        groups = mdav_groups(matrix, 6)
        points = (matrix - matrix.mean(axis=0)) / matrix.std(axis=0)
        for group in groups[:-1]:
            anchor = points[group[0]]
            d = np.linalg.norm(points[group] - anchor, axis=1)
            assert np.all(np.diff(d) >= -1e-12)


class TestMicroaggregationMasking:
    def test_k_anonymity_guarantee(self, patients_300):
        """Paper Section 2 / [12]: microaggregation with minimum group
        size k on the key attributes guarantees k-anonymity."""
        for k in (3, 5, 10):
            release = Microaggregation(k).mask(patients_300)
            assert is_k_anonymous(
                release, k, ["height", "weight", "age"]
            )

    def test_group_means_preserved(self, patients_300):
        release = Microaggregation(5).mask(patients_300)
        for col in ("height", "weight", "age"):
            assert release[col].mean() == pytest.approx(
                patients_300[col].mean()
            )

    def test_confidential_untouched(self, patients_300):
        release = Microaggregation(5).mask(patients_300)
        assert np.array_equal(
            release["blood_pressure"], patients_300["blood_pressure"]
        )

    def test_explicit_columns(self, patients_300):
        release = Microaggregation(5, columns=["height"]).mask(patients_300)
        assert not np.array_equal(release["height"], patients_300["height"])
        assert np.array_equal(release["weight"], patients_300["weight"])

    def test_no_numeric_qi_is_noop(self):
        from repro.data import Dataset
        ds = Dataset({"city": ["A", "B"]})
        out = Microaggregation(2, columns=[]).mask(ds)
        assert out == ds

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            Microaggregation(0)


class TestUnivariate:
    def test_groups_of_k_consecutive_ranks(self):
        values = np.array([5.0, 1.0, 9.0, 2.0, 8.0, 4.0])
        out = univariate_microaggregation(values, 3)
        # sorted: 1,2,4 | 5,8,9 -> means 7/3 and 22/3
        assert sorted(set(np.round(out, 4))) == [
            pytest.approx(7 / 3, abs=1e-4), pytest.approx(22 / 3, abs=1e-4)
        ]

    def test_mean_preserved(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=101)
        out = univariate_microaggregation(values, 4)
        assert out.mean() == pytest.approx(values.mean())

    def test_small_input_collapses_to_mean(self):
        values = np.array([1.0, 2.0, 3.0])
        out = univariate_microaggregation(values, 5)
        assert np.allclose(out, 2.0)

    def test_empty(self):
        assert univariate_microaggregation([], 3).size == 0
