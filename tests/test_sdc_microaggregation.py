"""Tests for MDAV microaggregation."""

import numpy as np
import pytest

from repro.sdc import (
    Microaggregation,
    anonymity_level,
    is_k_anonymous,
    mdav_groups,
    univariate_microaggregation,
)


class TestMdavGroups:
    def test_group_sizes(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(53, 3))
        for k in (2, 3, 5, 10):
            groups = mdav_groups(matrix, k)
            sizes = [g.size for g in groups]
            assert all(k <= s <= 2 * k - 1 for s in sizes)
            assert sum(sizes) == 53

    def test_partition_is_exact(self):
        matrix = np.random.default_rng(1).normal(size=(40, 2))
        groups = mdav_groups(matrix, 4)
        indices = sorted(i for g in groups for i in g)
        assert indices == list(range(40))

    def test_small_n_single_group(self):
        matrix = np.arange(6, dtype=float).reshape(3, 2)
        groups = mdav_groups(matrix, 5)
        assert len(groups) == 1
        assert groups[0].size == 3

    def test_empty(self):
        assert mdav_groups(np.empty((0, 2)), 3) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            mdav_groups(np.zeros((5, 1)), 0)

    def test_groups_are_spatially_coherent(self):
        """Two well-separated blobs must not be mixed in one group."""
        rng = np.random.default_rng(2)
        left = rng.normal(0, 0.1, size=(10, 2))
        right = rng.normal(100, 0.1, size=(10, 2))
        matrix = np.vstack([left, right])
        for group in mdav_groups(matrix, 5):
            sides = set(i < 10 for i in group)
            assert len(sides) == 1


class TestMicroaggregationMasking:
    def test_k_anonymity_guarantee(self, patients_300):
        """Paper Section 2 / [12]: microaggregation with minimum group
        size k on the key attributes guarantees k-anonymity."""
        for k in (3, 5, 10):
            release = Microaggregation(k).mask(patients_300)
            assert is_k_anonymous(
                release, k, ["height", "weight", "age"]
            )

    def test_group_means_preserved(self, patients_300):
        release = Microaggregation(5).mask(patients_300)
        for col in ("height", "weight", "age"):
            assert release[col].mean() == pytest.approx(
                patients_300[col].mean()
            )

    def test_confidential_untouched(self, patients_300):
        release = Microaggregation(5).mask(patients_300)
        assert np.array_equal(
            release["blood_pressure"], patients_300["blood_pressure"]
        )

    def test_explicit_columns(self, patients_300):
        release = Microaggregation(5, columns=["height"]).mask(patients_300)
        assert not np.array_equal(release["height"], patients_300["height"])
        assert np.array_equal(release["weight"], patients_300["weight"])

    def test_no_numeric_qi_is_noop(self):
        from repro.data import Dataset
        ds = Dataset({"city": ["A", "B"]})
        out = Microaggregation(2, columns=[]).mask(ds)
        assert out == ds

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            Microaggregation(0)


class TestUnivariate:
    def test_groups_of_k_consecutive_ranks(self):
        values = np.array([5.0, 1.0, 9.0, 2.0, 8.0, 4.0])
        out = univariate_microaggregation(values, 3)
        # sorted: 1,2,4 | 5,8,9 -> means 7/3 and 22/3
        assert sorted(set(np.round(out, 4))) == [
            pytest.approx(7 / 3, abs=1e-4), pytest.approx(22 / 3, abs=1e-4)
        ]

    def test_mean_preserved(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=101)
        out = univariate_microaggregation(values, 4)
        assert out.mean() == pytest.approx(values.mean())

    def test_small_input_collapses_to_mean(self):
        values = np.array([1.0, 2.0, 3.0])
        out = univariate_microaggregation(values, 5)
        assert np.allclose(out, 2.0)

    def test_empty(self):
        assert univariate_microaggregation([], 3).size == 0
