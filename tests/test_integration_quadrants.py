"""Integration tests: the paper's six quadrant scenarios (Sections 2-4).

Each test reproduces one in-text demonstration that a pair of privacy
dimensions is independent.
"""

import random

import numpy as np
import pytest

from repro.attacks import (
    extraction_from_release,
    extraction_via_pir_download,
    isolation_attack,
)
from repro.core import (
    owner_privacy_from_transcript,
    respondent_privacy_score,
)
from repro.data import dataset_1, dataset_2, patients
from repro.mining import DecisionTree, accuracy, train_test_split_indices
from repro.pir import PrivateAggregateIndex, TwoServerXorPIR, profile_itpir
from repro.ppdm import AgrawalSrikantRandomizer, reconstruct_univariate
from repro.qdb import QuerySetSizeControl, StatisticalDatabase, tracker_attack
from repro.sdc import (
    Condensation,
    Microaggregation,
    anonymity_level,
    is_k_anonymous,
)
from repro.smc import Transcript, ring_secure_sum


class TestSection2RespondentVsOwner:
    def test_respondent_without_owner(self):
        """Dataset 1 published raw: 3-anonymous (respondent privacy holds)
        yet the company's asset is fully extractable (no owner privacy)."""
        ds1 = dataset_1()
        assert is_k_anonymous(ds1, 3, ["height", "weight"])
        report = extraction_from_release(ds1, ds1, ["height", "weight"])
        assert report.extraction_rate == 1.0

    def test_respondent_and_owner_via_masking(self, patients_300, rng):
        """Masking before release gets both dimensions 'without
        significantly damaging utility': decision trees still work on the
        AS-randomized data via reconstruction; condensation keeps the
        covariance; microaggregation gives k-anonymity."""
        pop = patients_300
        # 1. AS randomization keeps the learning task alive.
        randomizer = AgrawalSrikantRandomizer(0.5, columns=["weight", "age"])
        release = randomizer.mask(pop, np.random.default_rng(0))
        y = np.asarray(
            pop["blood_pressure"] > np.median(pop["blood_pressure"]),
            dtype=object,
        )
        tr, te = train_test_split_indices(pop.n_rows, 0.3, 0)
        x_orig = pop.matrix(["weight", "age"])
        x_rand = release.matrix(["weight", "age"])
        acc_orig = accuracy(
            y[te], DecisionTree(max_depth=4).fit(x_orig[tr], y[tr]).predict(x_orig[te])
        )
        acc_rand = accuracy(
            y[te], DecisionTree(max_depth=4).fit(x_rand[tr], y[tr]).predict(x_rand[te])
        )
        assert acc_rand > 0.55  # still learns
        assert acc_orig >= acc_rand - 0.1
        # 2. Microaggregation on the key attributes -> k-anonymity ([12]).
        masked = Microaggregation(5).mask(pop)
        assert anonymity_level(masked, ["height", "weight", "age"]) >= 5

    def test_owner_without_respondent(self):
        """Dataset 2: releasing one record violates respondent privacy
        (unique key attributes) but not the owner's (the asset is one
        record out of many)."""
        ds2 = dataset_2()
        single = ds2.select(np.array([3]))  # the (160, 110) individual
        # Respondent: that individual is unique on the key attributes.
        assert anonymity_level(ds2, ["height", "weight"]) == 1
        # Owner: a competitor gains 1/10 of the records - asset mostly safe.
        report = extraction_from_release(ds2, single, ["height", "weight"])
        assert report.extraction_rate <= 0.2


class TestSection3RespondentVsUser:
    def test_respondent_without_user(self):
        """Interactive SDC: the owner inspects queries (no user privacy);
        auditing protects respondents from direct isolation but trackers
        remain (known difficult 'since the 1980s')."""
        pop = patients(200, seed=11)
        db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
        # Direct isolation refused (respondent protected from naive query):
        h, w = pop["height"][0], pop["weight"][0]
        direct = db.ask(
            f"SELECT SUM(blood_pressure) WHERE height = {h} AND weight = {w}"
            f" AND age = {pop['age'][0]}"
        )
        if pop.group_by(["height", "weight", "age"])[
            (h, w, pop["age"][0])
        ].size < 5:
            assert direct.refused
        # The owner saw every query: by definition, no user privacy.
        assert db.queries_asked == len(db.history)

    def test_respondent_and_user(self, patients_300):
        """k-Anonymous records behind PIR: no query isolates anyone, and
        the servers learn nothing about the queries."""
        masked = Microaggregation(5).mask(patients_300)
        edges = {
            "height": list(np.linspace(140, 210, 8)),
            "weight": list(np.linspace(30, 140, 8)),
        }
        index = PrivateAggregateIndex(
            masked, ["height", "weight"], "blood_pressure", edges
        )
        report = isolation_attack(index, 300)
        assert len(report.victims) == 0  # respondent privacy holds
        profiling = profile_itpir(TwoServerXorPIR(list(range(64))), 200, 0)
        assert profiling.user_privacy > 0.9  # user privacy holds

    def test_user_without_respondent(self):
        """The paper's COUNT/AVG attack on Dataset 2 through PIR."""
        ds2 = dataset_2()
        index = PrivateAggregateIndex(
            ds2, ["height", "weight"], "blood_pressure",
            edges={"height": [150, 165, 180, 200],
                   "weight": [50, 80, 105, 130]},
        )
        count = index.query({"height": (0, 165), "weight": (105, 1000)})
        assert count.count == 1  # "there is only one individual..."
        assert count.average == pytest.approx(146.0)  # "...average 146"
        # And the servers cannot tell which cells were probed:
        q1, q2 = index.server_observations()
        assert set(q1) ^ set(q2)  # views differ only in the hidden target


class TestSection4OwnerVsUser:
    def test_owner_without_user(self):
        """Crypto PPDM: owner-private, but the computation (and thus the
        'query') is known to every party."""
        values = [120, 250, 310]
        transcript = Transcript()
        total = ring_secure_sum(values, rng=random.Random(1), transcript=transcript)
        assert total == 680
        owner = owner_privacy_from_transcript(
            transcript, {f"P{i}": [v] for i, v in enumerate(values)}
        )
        assert owner == 1.0
        # Every party appears in the transcript - all know the computation.
        parties = {m.sender for m in transcript.messages}
        assert parties == {"P0", "P1", "P2"}

    def test_owner_and_user(self, patients_300, rng):
        """Non-crypto PPDM (condensation) + PIR: the owner's asset is
        masked and the retrieval is private."""
        release = Condensation(14).mask(patients_300, rng)
        extraction = extraction_from_release(
            patients_300, release, ["height", "weight", "age"],
            tolerance_sd=0.15,  # the meter's frozen calibration
        )
        assert extraction.extraction_rate < 0.45
        profiling = profile_itpir(TwoServerXorPIR(list(range(64))), 200, 1)
        assert profiling.user_privacy > 0.9

    def test_user_without_owner(self, patients_300):
        """Unrestricted PIR on original data: the user is private, the
        owner's entire database is (privately!) downloadable."""
        report = extraction_via_pir_download(patients_300)
        assert report.extraction_rate == 1.0
        profiling = profile_itpir(TwoServerXorPIR(list(range(32))), 200, 2)
        assert profiling.user_privacy > 0.9


class TestIndependenceSummary:
    def test_every_quadrant_combination_realized(self, patients_300):
        """The framework's central claim: all pairwise combinations of
        (dimension held / not held) are realizable — shown above; here we
        double-check the two extreme corners."""
        # Nothing held: raw data, plaintext queries.
        raw_score = respondent_privacy_score(
            patients_300, patients_300, ["height", "weight", "age"]
        )
        assert raw_score < 0.1
        # Everything held: the Section 6 stack (masking + PIR) — covered
        # by TestSection3RespondentVsUser.test_respondent_and_user plus
        # the owner side via masking:
        masked = Microaggregation(5).mask(patients_300)
        extraction = extraction_from_release(
            patients_300, masked, ["height", "weight", "age"],
            tolerance_sd=0.15,  # the meter's frozen calibration
        )
        assert extraction.extraction_rate < 0.6
