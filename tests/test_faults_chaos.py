"""The chaos scenario and its CLI entry point."""

import json

import pytest

from repro.cli import main
from repro.faults.chaos import run_chaos
from repro.faults.errors import ChaosError


class TestRunChaos:
    def test_invariants_hold_at_default_seed(self, tmp_path):
        trace = tmp_path / "chaos.jsonl"
        summary = run_chaos(trace, records=80, seed=3)
        assert summary["invariants_held"] > 20
        assert summary["components_degraded"] == [
            "pir", "qdb", "serving", "smc"
        ]
        assert trace.exists()

    def test_replay_is_deterministic(self, tmp_path):
        first = run_chaos(tmp_path / "a.jsonl", records=60, seed=5)
        second = run_chaos(tmp_path / "b.jsonl", records=60, seed=5)
        for key in ("qdb", "pir", "smc", "serving", "invariants_held"):
            assert first[key] == second[key]

    def test_violations_raise_chaos_error(self):
        from repro.faults.chaos import _require

        with pytest.raises(ChaosError, match="chaos invariant violated"):
            _require(False, "demo invariant", "why it broke")


class TestChaosCli:
    def test_cli_prints_summary_and_exits_zero(self, tmp_path, capsys):
        trace = tmp_path / "cli-chaos.jsonl"
        code = main(["faults", "chaos", "--out", str(trace),
                     "--records", "80"])
        assert code == 0
        out = capsys.readouterr().out
        summary = json.loads(out[: out.rindex("}") + 1])
        assert summary["trace"] == str(trace)
        assert "chaos OK" in out
