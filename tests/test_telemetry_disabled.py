"""The disabled fast path: strict no-ops, byte-identical decisions.

Telemetry must be invisible until a session is enabled: the facade hands
out shared singletons (no allocation), the engine and PIR hot loops run
the exact seed code paths, and enabling tracing must not change a single
decision or output byte — only observe them.
"""

import numpy as np
import pytest

from repro.data import patients
from repro.pir import TwoServerXorPIR
from repro.qdb import (
    Aggregate,
    Comparison,
    Not,
    OverlapControl,
    Query,
    StatisticalDatabase,
    SumAuditPolicy,
)
from repro.telemetry import instrument as tele

pytestmark = pytest.mark.usefixtures("telemetry_disabled")


@pytest.fixture
def telemetry_disabled():
    tele.disable()
    tele.reset_metrics()
    yield
    tele.disable()
    tele.reset_metrics()


def _golden_workload(pop, rng, n_queries):
    """The same mixed workload the perf-equivalence golden vectors use."""
    columns = ["height", "weight", "age"]
    aggregates = [
        Aggregate.COUNT, Aggregate.SUM, Aggregate.AVG,
        Aggregate.VARIANCE, Aggregate.STDDEV, Aggregate.MEDIAN,
    ]
    queries = []
    for _ in range(n_queries):
        column = columns[rng.integers(len(columns))]
        op = ["<", "<=", ">", ">=", "=", "!="][rng.integers(6)]
        value = float(np.round(rng.choice(pop[column]), 1))
        predicate = Comparison(column, op, value)
        if rng.random() < 0.3:
            other = columns[rng.integers(len(columns))]
            predicate = predicate & Comparison(
                other, ">", float(np.quantile(pop[other], rng.random()))
            )
        if rng.random() < 0.15:
            predicate = Not(predicate)
        aggregate = aggregates[rng.integers(len(aggregates))]
        column = None if aggregate is Aggregate.COUNT else "blood_pressure"
        queries.append(Query(aggregate, column, predicate))
    return queries


def _golden_session(policies):
    pop = patients(150, seed=42)
    rng = np.random.default_rng(99)
    db = StatisticalDatabase(pop, policies, seed=0)
    answers = [db.ask(q) for q in _golden_workload(pop, rng, 60)]
    refusals = "".join("R" if a.refused else "A" for a in answers)
    checksum = float(
        np.nansum([a.value for a in answers if a.value is not None])
    )
    return refusals, checksum


GOLDEN_OVERLAP = "AAAAARRAARAARAAAAARRRAARAAARAAAARAARARRARRRAARARRARRRAAARRRA"
GOLDEN_SUM_AUDIT = "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAARAAAAARAAR"


class TestNoopFastPath:
    def test_disabled_by_default(self):
        assert not tele.enabled()

    def test_span_returns_shared_singleton(self):
        assert tele.span("a", x=1) is tele.span("b")
        assert tele.span("a") is tele.NOOP_SPAN

    def test_metrics_return_shared_singleton(self):
        assert tele.counter("c") is tele.NOOP_METRIC
        assert tele.gauge("g") is tele.NOOP_METRIC
        assert tele.histogram("h") is tele.NOOP_METRIC

    def test_noop_span_is_inert(self):
        with tele.span("a", x=1) as span:
            span.set("k", "v")
        assert span.attrs == {}
        assert span.duration == 0.0

    def test_noop_metric_records_nothing(self):
        metric = tele.counter("c")
        metric.inc(100)
        metric.observe(0.5)
        metric.set(3)
        assert metric.value == 0

    def test_disabled_run_leaves_no_tracing_footprint(self):
        pop = patients(80, seed=1)
        db = StatisticalDatabase(pop, [SumAuditPolicy()])
        db.ask_batch([
            "SELECT COUNT(*) WHERE height > 170",
            "SELECT SUM(blood_pressure) WHERE weight <= 90",
        ])
        counters = tele.snapshot()["counters"]
        assert "telemetry.spans_started" not in counters
        assert tele.snapshot()["histograms"] == {}
        # Always-on component accounting still aggregates.
        assert counters["qdb.queries_asked"] == 2

    def test_disabled_hot_path_allocates_nothing_in_observatory(self):
        """Per-query work on the disabled path touches no telemetry or
        observatory module: tracemalloc, filtered to those files, must
        see zero allocations once the session state is warm."""
        import tracemalloc

        import repro.telemetry

        package_dir = str(repro.telemetry.__file__).rsplit("/", 1)[0]
        pop = patients(100, seed=4)
        db = StatisticalDatabase(pop, [OverlapControl(40)])
        queries = _golden_workload(pop, np.random.default_rng(7), 40)
        db.ask_batch(queries)  # warm caches, counters, history buffers
        tracemalloc.start()
        try:
            db.ask_batch(queries)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        offenders = [
            trace for trace in snapshot.traces
            if any(frame.filename.startswith(package_dir)
                   for frame in trace.traceback)
        ]
        assert offenders == []


class TestGoldenFingerprintsUnchanged:
    """The PR-2 golden vectors, replayed disabled AND enabled."""

    @pytest.mark.parametrize("enable", [False, True])
    def test_overlap_golden_vector(self, tmp_path, enable):
        if enable:
            with tele.session(tmp_path / "t.jsonl"):
                refusals, checksum = _golden_session([OverlapControl(40)])
        else:
            refusals, checksum = _golden_session([OverlapControl(40)])
        assert refusals == GOLDEN_OVERLAP
        assert checksum == pytest.approx(12866.158211603071, rel=1e-12)

    @pytest.mark.parametrize("enable", [False, True])
    def test_sum_audit_golden_vector(self, tmp_path, enable):
        if enable:
            with tele.session(tmp_path / "t.jsonl"):
                refusals, checksum = _golden_session([SumAuditPolicy()])
        else:
            refusals, checksum = _golden_session([SumAuditPolicy()])
        assert refusals == GOLDEN_SUM_AUDIT
        assert checksum == pytest.approx(63104.77017914514, rel=1e-12)


class TestPirBytesIdentical:
    def test_retrievals_identical_disabled_vs_enabled(self):
        blocks = [bytes([i % 251]) * 32 for i in range(64)]
        plain = TwoServerXorPIR(blocks)
        base = [plain.retrieve(7, 3), *plain.retrieve_batch([1, 9, 33], 5)]
        traced = TwoServerXorPIR(blocks)
        with tele.session():
            seen = [
                traced.retrieve(7, 3), *traced.retrieve_batch([1, 9, 33], 5)
            ]
        assert seen == base
        assert traced.upstream_bits == plain.upstream_bits
        assert traced.downstream_bits == plain.downstream_bits

    def test_counter_migration_keeps_seed_attribute_semantics(self):
        pir = TwoServerXorPIR([b"ab" * 8, b"cd" * 8])
        assert pir.upstream_bits == 0
        pir.retrieve(0, 1)
        assert pir.upstream_bits == 2 * pir.n
        assert pir.downstream_bits == 8 * 2 * pir.block_size
        assert pir.retrievals == 1


class TestMaskCacheCounterMigration:
    def test_read_through_properties_match_seed_counts(self):
        pop = patients(60, seed=2)
        db = StatisticalDatabase(pop, [])
        q = "SELECT COUNT(*) WHERE height > 170"
        db.ask(q)
        db.ask(q)
        db.ask("SELECT COUNT(*) WHERE weight <= 80")
        assert (db.mask_cache_hits, db.mask_cache_misses) == (1, 2)
        assert db.queries_asked == 3
        assert db.queries_refused == 0
        # The same counts flow into the aggregated process snapshot.
        counters = tele.snapshot()["counters"]
        assert counters["qdb.mask_cache_hits"] == 1
        assert counters["qdb.mask_cache_misses"] == 2
