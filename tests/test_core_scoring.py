"""Tests for the empirical Table 2 harness — the headline reproduction."""

import pytest

from repro.core import (
    Grade,
    PrivacyDimension,
    default_technology_classes,
    format_table2,
    score_technologies,
)

R, O, U = (
    PrivacyDimension.RESPONDENT,
    PrivacyDimension.OWNER,
    PrivacyDimension.USER,
)


@pytest.fixture(scope="module")
def comparison():
    return score_technologies(seed=0)


class TestHeadline:
    def test_full_agreement_with_paper(self, comparison):
        """Every one of the 24 Table 2 cells must land on the paper's
        grade under the frozen calibration."""
        assert comparison.agreement == 1.0

    def test_eight_technologies(self, comparison):
        assert len(comparison.assessments) == 8

    def test_row_lookup(self, comparison):
        assert comparison.row("SDC").technology == "SDC"
        with pytest.raises(KeyError):
            comparison.row("nope")


class TestPaperOrderings:
    """The orderings the paper's Section 5 argues for, checked on raw
    scores (stronger than grade equality)."""

    def test_crypto_ppdm_highest_owner_privacy(self, comparison):
        crypto = comparison.row("Crypto PPDM").scores[O]
        for name in ("SDC", "Use-specific non-crypto PPDM",
                     "Generic non-crypto PPDM", "PIR"):
            assert crypto >= comparison.row(name).scores[O]

    def test_ppdm_beats_sdc_on_owner(self, comparison):
        """PPDM is designed for owner privacy; SDC only provides 'some
        level' of it."""
        sdc = comparison.row("SDC").scores[O]
        assert comparison.row("Use-specific non-crypto PPDM").scores[O] > sdc
        assert comparison.row("Generic non-crypto PPDM").scores[O] > sdc

    def test_sdc_beats_ppdm_on_respondent(self, comparison):
        sdc = comparison.row("SDC").scores[R]
        assert sdc > comparison.row("Use-specific non-crypto PPDM").scores[R]
        assert sdc > comparison.row("Generic non-crypto PPDM").scores[R]

    def test_pir_alone_protects_nobody_but_the_user(self, comparison):
        row = comparison.row("PIR")
        assert row.scores[R] < 0.15
        assert row.scores[O] < 0.15
        assert row.scores[U] > 0.9

    def test_no_pir_means_no_user_privacy(self, comparison):
        for name in ("SDC", "Use-specific non-crypto PPDM",
                     "Generic non-crypto PPDM", "Crypto PPDM"):
            assert comparison.row(name).scores[U] == 0.0

    def test_use_specific_pir_weaker_user_privacy_than_generic(self, comparison):
        """Section 5: the query class leaks with use-specific PPDM."""
        specific = comparison.row("Use-specific non-crypto PPDM + PIR").scores[U]
        generic = comparison.row("Generic non-crypto PPDM + PIR").scores[U]
        assert specific < generic

    def test_pir_composition_preserves_masking_grades(self, comparison):
        for base in ("SDC", "Generic non-crypto PPDM"):
            plain = comparison.row(base)
            combined = comparison.row(f"{base} + PIR")
            for dim in (R, O):
                assert combined.grades[dim] is plain.grades[dim]


class TestFormatting:
    def test_format_contains_all_rows(self, comparison):
        text = format_table2(comparison)
        for assessment in comparison.assessments:
            assert assessment.technology in text

    def test_format_shows_agreement(self, comparison):
        assert "cell agreement" in format_table2(comparison)

    def test_format_without_scores(self, comparison):
        text = format_table2(comparison, show_scores=False)
        assert "[0." not in text


class TestDefaults:
    def test_default_classes_cover_paper_rows(self):
        from repro.core import PAPER_TABLE2
        names = {tech.name for tech in default_technology_classes()}
        assert names == set(PAPER_TABLE2)
