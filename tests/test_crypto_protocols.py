"""Tests for RSA, oblivious transfer, commutative cipher and secret sharing."""

import random

import pytest

from repro.crypto import (
    ObliviousTransferReceiver,
    ObliviousTransferSender,
    additive_reconstruct,
    additive_shares,
    commutative,
    rsa,
    shamir_reconstruct,
    shamir_shares,
    transfer,
)


class TestRsa:
    def test_round_trip(self):
        pub, priv = rsa.generate_keypair(bits=128, rng=random.Random(1))
        for m in (0, 1, 12345, pub.n - 1):
            assert rsa.decrypt(priv, rsa.encrypt(pub, m)) == m

    def test_keys_deterministic_by_seed(self):
        a = rsa.generate_keypair(bits=64, rng=random.Random(2))[0]
        b = rsa.generate_keypair(bits=64, rng=random.Random(2))[0]
        assert a.n == b.n


class TestObliviousTransfer:
    def test_chosen_message_delivered(self):
        assert transfer(111, 222, 0, bits=128, seed=3) == 111
        assert transfer(111, 222, 1, bits=128, seed=3) == 222

    def test_invalid_choice_bit(self):
        with pytest.raises(ValueError):
            ObliviousTransferReceiver(2)

    def test_receive_before_request(self):
        receiver = ObliviousTransferReceiver(0)
        with pytest.raises(RuntimeError):
            receiver.receive((1, 2))

    def test_unchosen_branch_is_garbage(self):
        """The receiver's unblinding only decodes the chosen branch."""
        rng = random.Random(5)
        sender = ObliviousTransferSender(10, 20, bits=128, rng=rng)
        receiver = ObliviousTransferReceiver(0, rng=random.Random(6))
        v = receiver.request(sender.offer())
        resp = sender.respond(v)
        n = sender.public.n
        wrong = (resp[1] - receiver._k) % n
        assert wrong != 20  # with overwhelming probability

    def test_message_must_fit_modulus(self):
        with pytest.raises(ValueError, match="fit"):
            ObliviousTransferSender(1 << 200, 0, bits=64)


class TestCommutative:
    @pytest.fixture(scope="class")
    def group(self):
        p = commutative.shared_modulus(64, random.Random(7))
        ka = commutative.generate_key(p, random.Random(8))
        kb = commutative.generate_key(p, random.Random(9))
        return p, ka, kb

    def test_commutes(self, group):
        _, ka, kb = group
        for v in (2, 99, 123456):
            assert ka.encrypt(kb.encrypt(v)) == kb.encrypt(ka.encrypt(v))

    def test_decrypt_inverts(self, group):
        _, ka, _ = group
        assert ka.decrypt(ka.encrypt(777)) == 777

    def test_zero_rejected(self, group):
        p, ka, _ = group
        with pytest.raises(ValueError):
            ka.encrypt(p)  # p % p == 0

    def test_hash_to_group_in_range(self, group):
        p, _, _ = group
        for value in ("alice", 42, ("x", 1)):
            h = commutative.hash_to_group(value, p)
            assert 1 <= h < p

    def test_hash_deterministic(self, group):
        p, _, _ = group
        assert commutative.hash_to_group("bob", p) == commutative.hash_to_group("bob", p)


class TestSecretSharing:
    def test_additive_round_trip(self):
        rng = random.Random(1)
        shares = additive_shares(12345, 5, 1 << 32, rng)
        assert len(shares) == 5
        assert additive_reconstruct(shares, 1 << 32) == 12345

    def test_additive_single_share(self):
        assert additive_shares(7, 1, 100)[0] == 7

    def test_shamir_threshold_reconstructs(self):
        shares = shamir_shares(999, 6, 3, rng=random.Random(2))
        assert shamir_reconstruct(shares[:3]) == 999
        assert shamir_reconstruct(shares[2:5]) == 999
        assert shamir_reconstruct(shares) == 999

    def test_shamir_below_threshold_wrong(self):
        shares = shamir_shares(999, 6, 3, rng=random.Random(3))
        assert shamir_reconstruct(shares[:2]) != 999

    def test_shamir_validation(self):
        with pytest.raises(ValueError):
            shamir_shares(1, 3, 4)
        with pytest.raises(ValueError):
            shamir_reconstruct([])
        with pytest.raises(ValueError, match="distinct"):
            shamir_reconstruct([(1, 5), (1, 6)])
