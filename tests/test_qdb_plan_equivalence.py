"""The plan-compiled path must match the legacy pipeline, decision for
decision.

The query planner (:mod:`repro.plan`) is only allowed to change *how*
the engine reaches a decision — fused audit passes, cached plans,
incremental overlap scans, memmap-backed histories — never the decision
itself.  Randomized workloads are replayed through ``use_plans=True``
and ``use_plans=False`` sessions under every policy stack (including
the stochastic transform policies, whose rng streams must stay aligned),
with injected backend faults, and with the packed history on the memmap
store; every answer, refusal string, interval, counter and audit record
must be identical.  The golden fingerprints from the perf-equivalence
suite are replayed on the plan path so both pipelines cannot drift
together.
"""

import numpy as np
import pytest

from repro.data import Dataset, patients
from repro.faults import Fault, FaultPlan, ReplicatedBackend
from repro.qdb import (
    CamouflageIntervals,
    Degraded,
    NoisePerturbation,
    OverlapControl,
    QuerySetSizeControl,
    RandomSampleQueries,
    Refusal,
    StatisticalDatabase,
    SumAuditPolicy,
)
from tests.test_qdb_perf_equivalence import random_workload, same_value

# Policy stacks are passed as zero-argument factories: stateful policies
# (the sum audit's growing basis, the sampler's rng) must never be
# shared between the two sessions under comparison.
STACKS = {
    "size": lambda: [QuerySetSizeControl(3)],
    "size+overlap": lambda: [QuerySetSizeControl(3), OverlapControl(40)],
    "size+sum-audit": lambda: [QuerySetSizeControl(2), SumAuditPolicy()],
    "audit-trio": lambda: [
        QuerySetSizeControl(3), OverlapControl(45), SumAuditPolicy()
    ],
    "stochastic": lambda: [
        QuerySetSizeControl(3), NoisePerturbation(1.5),
        RandomSampleQueries(0.8, seed=7), CamouflageIntervals(2),
    ],
    "kitchen-sink": lambda: [
        QuerySetSizeControl(3), OverlapControl(60), SumAuditPolicy(),
        NoisePerturbation(1.0), RandomSampleQueries(0.9, seed=7),
        CamouflageIntervals(2),
    ],
}


def assert_plan_matches_legacy(make_plan_db, make_legacy_db, queries):
    """Replay *queries* through both engines; every outcome must match."""
    db_plan, db_legacy = make_plan_db(), make_legacy_db()
    assert db_plan._planner is not None
    assert db_legacy._planner is None
    for query in queries:
        a, b = db_plan.ask(query), db_legacy.ask(query)
        assert type(a) is type(b), (query, a, b)
        assert a.refused == b.refused, (query, a, b)
        assert a.reason == b.reason, (query, a, b)
        assert same_value(a.value, b.value), (query, a, b)
        assert a.interval == b.interval, (query, a, b)
    assert db_plan.queries_asked == db_legacy.queries_asked
    assert db_plan.queries_refused == db_legacy.queries_refused
    assert len(db_plan.history) == len(db_legacy.history)
    assert [e.answered for e in db_plan.history] == [
        e.answered for e in db_legacy.history
    ]
    for ea, eb in zip(db_plan.history, db_legacy.history):
        np.testing.assert_array_equal(ea.mask, eb.mask)
    return db_plan, db_legacy


@pytest.mark.parametrize("stack", sorted(STACKS), ids=sorted(STACKS))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_plan_path_matches_legacy_under_every_stack(stack, seed):
    rng = np.random.default_rng(100 + seed)
    n = int(rng.integers(60, 250))
    pop = patients(n, seed=seed)
    queries = random_workload(pop, rng, 70)
    db_plan, _ = assert_plan_matches_legacy(
        lambda: StatisticalDatabase(pop, STACKS[stack](), seed=0),
        lambda: StatisticalDatabase(pop, STACKS[stack](), seed=0,
                                    use_plans=False),
        queries,
    )
    # The comparison must have exercised the planner, not bypassed it.
    assert db_plan.plan_cache_hits + db_plan.plan_cache_misses > 0


@pytest.mark.parametrize("seed", [3, 4])
def test_ask_batch_matches_legacy(seed):
    rng = np.random.default_rng(200 + seed)
    pop = patients(150, seed=seed)
    queries = random_workload(pop, rng, 40)
    # Repeat shapes so the warm plan cache actually gets hit mid-batch.
    workload = queries + queries[:20]
    db_plan = StatisticalDatabase(
        pop, [QuerySetSizeControl(3), OverlapControl(50), SumAuditPolicy()],
        seed=0,
    )
    db_legacy = StatisticalDatabase(
        pop, [QuerySetSizeControl(3), OverlapControl(50), SumAuditPolicy()],
        seed=0, use_plans=False,
    )
    for a, b in zip(db_plan.ask_batch(workload), db_legacy.ask_batch(workload)):
        assert a.refused == b.refused
        assert a.reason == b.reason
        assert same_value(a.value, b.value)
        assert a.interval == b.interval
    assert db_plan.plan_cache_hits > 0


class TestFaultEquivalence:
    """Injected backend faults degrade both pipelines identically."""

    def _backend(self, data, faults, n_replicas, seed):
        return ReplicatedBackend(
            data, n_replicas=n_replicas,
            plan=FaultPlan(faults, seed=seed), name="qdb",
        )

    def test_failover_degrades_identically(self):
        data = Dataset({"x": np.arange(30.0)})
        faults = [Fault("crash", "qdb.replica:0", after=0)]
        queries = ["SELECT SUM(x) WHERE x > 5", "SELECT AVG(x) WHERE x < 25"]
        db_plan, db_legacy = assert_plan_matches_legacy(
            lambda: StatisticalDatabase(
                self._backend(data, faults, 2, seed=1), policies=[]
            ),
            lambda: StatisticalDatabase(
                self._backend(data, faults, 2, seed=1), policies=[],
                use_plans=False,
            ),
            queries,
        )
        assert db_plan.degraded_answers == db_legacy.degraded_answers == 2
        assert isinstance(db_plan.ask("SELECT SUM(x)"), Degraded)

    def test_blackout_refuses_identically(self):
        data = Dataset({"x": np.arange(20.0)})
        faults = [Fault("crash", "qdb.replica:0", after=0)]
        queries = [
            "SELECT COUNT(*)",  # mask synthesized: survives the blackout
            "SELECT SUM(x) WHERE x > 5",
            "SELECT AVG(x) WHERE x < 12",
        ]
        db_plan, db_legacy = assert_plan_matches_legacy(
            lambda: StatisticalDatabase(
                self._backend(data, faults, 1, seed=0),
                policies=[QuerySetSizeControl(2)],
            ),
            lambda: StatisticalDatabase(
                self._backend(data, faults, 1, seed=0),
                policies=[QuerySetSizeControl(2)], use_plans=False,
            ),
            queries,
        )
        assert db_plan.backend_refusals == db_legacy.backend_refusals == 2
        answer = db_plan.ask("SELECT SUM(x) WHERE x > 1")
        assert isinstance(answer, Refusal)
        assert answer.reason.startswith("backend: ")


class TestMemmapHistoryEquivalence:
    """memmap-backed packed histories decide exactly like RAM ones."""

    @pytest.mark.parametrize("seed", [5, 6])
    def test_memmap_matches_ram_on_the_plan_path(self, seed):
        rng = np.random.default_rng(300 + seed)
        pop = patients(180, seed=seed)
        queries = random_workload(pop, rng, 70)
        policies = lambda: [QuerySetSizeControl(3), OverlapControl(35)]
        db_ram = StatisticalDatabase(pop, policies(), seed=0)
        db_mm = StatisticalDatabase(pop, policies(), seed=0,
                                    history_store="memmap")
        assert db_mm.history.answered_masks.store_kind == "MemmapWordLog"
        for query in queries:
            a, b = db_ram.ask(query), db_mm.ask(query)
            assert a.refused == b.refused, (query, a, b)
            assert a.reason == b.reason, (query, a, b)
            assert same_value(a.value, b.value), (query, a, b)
        assert len(db_ram.history.answered_masks) == len(
            db_mm.history.answered_masks
        )

    def test_memmap_matches_legacy_pipeline(self):
        rng = np.random.default_rng(77)
        pop = patients(150, seed=7)
        queries = random_workload(pop, rng, 60)
        assert_plan_matches_legacy(
            lambda: StatisticalDatabase(
                pop, [OverlapControl(40), SumAuditPolicy()], seed=0,
                history_store="memmap",
            ),
            lambda: StatisticalDatabase(
                pop, [OverlapControl(40), SumAuditPolicy()], seed=0,
                use_plans=False,
            ),
            queries,
        )


class TestGoldenSessionOnPlanPath:
    """The frozen fingerprints replayed through the planner (and memmap).

    These pin the *absolute* decisions: the plan path and the legacy
    path agreeing is not enough if both drift together.
    """

    def _run(self, policies, **db_kwargs):
        pop = patients(150, seed=42)
        rng = np.random.default_rng(99)
        db = StatisticalDatabase(pop, policies, seed=0, **db_kwargs)
        answers = [db.ask(q) for q in random_workload(pop, rng, 60)]
        refusals = "".join("R" if a.refused else "A" for a in answers)
        checksum = float(
            np.nansum([a.value for a in answers if a.value is not None])
        )
        return refusals, checksum

    OVERLAP_GOLDEN = (
        "AAAAARRAARAARAAAAARRRAARAAARAAAARAARARRARRRAARARRARRRAAARRRA"
    )
    SUM_AUDIT_GOLDEN = (
        "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAARAAAAARAAR"
    )

    def test_overlap_golden_vector_via_plans(self):
        refusals, checksum = self._run([OverlapControl(40)])
        assert refusals == self.OVERLAP_GOLDEN
        assert checksum == pytest.approx(12866.158211603071, rel=1e-12)

    def test_overlap_golden_vector_via_memmap_history(self):
        refusals, checksum = self._run(
            [OverlapControl(40)], history_store="memmap"
        )
        assert refusals == self.OVERLAP_GOLDEN
        assert checksum == pytest.approx(12866.158211603071, rel=1e-12)

    def test_sum_audit_golden_vector_via_plans(self):
        refusals, checksum = self._run([SumAuditPolicy()])
        assert refusals == self.SUM_AUDIT_GOLDEN
        assert checksum == pytest.approx(63104.77017914514, rel=1e-12)

    def test_three_policy_fused_stack_is_deterministic(self):
        """The fused audit node answers exactly like two fresh runs."""
        stack = lambda: [
            QuerySetSizeControl(3), OverlapControl(40), SumAuditPolicy()
        ]
        assert self._run(stack()) == self._run(stack())
