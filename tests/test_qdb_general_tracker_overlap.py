"""Tests for the general tracker, overlap control and keyword PIR."""

import numpy as np
import pytest

from repro.data import patients
from repro.pir import KeywordPIR
from repro.qdb import (
    Comparison,
    GeneralTracker,
    OverlapControl,
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
    find_general_tracker,
)


@pytest.fixture(scope="module")
def population():
    return patients(200, seed=11)


def _pin(pop, index):
    return (
        Comparison("height", "=", float(pop["height"][index]))
        & Comparison("weight", "=", float(pop["weight"][index]))
        & Comparison("age", "=", float(pop["age"][index]))
    )


class TestGeneralTracker:
    def test_finds_legal_tracker(self, population):
        db = StatisticalDatabase(population, [QuerySetSizeControl(5)])
        predicate = find_general_tracker(population, db, 5, ["age"])
        assert predicate is not None
        size = int(predicate.mask(population).sum())
        assert 10 <= size <= 190

    def test_counts_arbitrary_predicates(self, population):
        """Any count — even of a singleton — through legal queries only."""
        db = StatisticalDatabase(population, [QuerySetSizeControl(5)])
        tracker = GeneralTracker(
            db, find_general_tracker(population, db, 5, ["age"])
        )
        pred = _pin(population, 0)
        assert tracker.count(pred) == float(pred.mask(population).sum())
        assert not tracker.refused

    def test_population_size_recovered(self, population):
        db = StatisticalDatabase(population, [QuerySetSizeControl(5)])
        tracker = GeneralTracker(
            db, find_general_tracker(population, db, 5, ["age"])
        )
        assert tracker.population_size() == 200

    def test_sums_disclose_confidential_values(self, population):
        db = StatisticalDatabase(population, [QuerySetSizeControl(5)])
        tracker = GeneralTracker(
            db, find_general_tracker(population, db, 5, ["age"])
        )
        pred = _pin(population, 0)
        if float(pred.mask(population).sum()) == 1.0:
            value = tracker.sum("blood_pressure", pred)
            assert value == float(population["blood_pressure"][0])

    def test_audit_stops_general_tracker(self, population):
        db = StatisticalDatabase(
            population, [QuerySetSizeControl(5), SumAuditPolicy()]
        )
        tracker = GeneralTracker(
            db, find_general_tracker(population, db, 5, ["age"])
        )
        pred = _pin(population, 0)
        tracker.count(pred)
        result = tracker.sum("blood_pressure", pred)
        assert tracker.refused or result is None

    def test_no_tracker_in_tiny_database(self):
        pop = patients(6, seed=1)
        db = StatisticalDatabase(pop, [QuerySetSizeControl(3)])
        assert find_general_tracker(pop, db, 3, ["age"]) is None


class TestOverlapControl:
    def test_near_duplicate_refused(self, population):
        db = StatisticalDatabase(population, [OverlapControl(50)])
        assert db.ask("SELECT SUM(blood_pressure) WHERE height > 170").ok
        second = db.ask("SELECT SUM(blood_pressure) WHERE height > 169")
        assert second.refused
        assert "overlaps" in second.reason

    def test_disjoint_queries_allowed(self, population):
        db = StatisticalDatabase(population, [OverlapControl(10)])
        assert db.ask("SELECT COUNT(*) WHERE height > 180").ok
        assert db.ask("SELECT COUNT(*) WHERE height < 160").ok

    def test_refused_queries_not_remembered(self, population):
        db = StatisticalDatabase(
            population, [QuerySetSizeControl(5), OverlapControl(300)]
        )
        db.ask("SELECT COUNT(*)")  # refused by size control
        # The refused query's mask must not block future queries.
        assert db.ask("SELECT COUNT(*) WHERE height > 170").ok

    def test_validation(self):
        with pytest.raises(ValueError):
            OverlapControl(-1)


class TestKeywordPIR:
    @pytest.fixture(scope="class")
    def index(self):
        return KeywordPIR({f"P{i:03d}": i * 10 for i in range(50)})

    def test_hit(self, index):
        assert index.lookup("P007", 1) == 70
        assert index.lookup("P049", 2) == 490
        assert index.lookup("P000", 3) == 0

    def test_miss_returns_none(self, index):
        assert index.lookup("ZZZ", 4) is None
        assert index.lookup("", 5) is None

    def test_logarithmic_retrievals(self):
        pir = KeywordPIR({f"k{i:04d}": i for i in range(256)})
        pir.lookup("k0100", 0)
        # ceil(log2(256)) + 1 = 9 retrievals, hit or miss.
        assert pir.retrievals == 9
        pir.lookup("nope", 1)
        assert pir.retrievals == 18

    def test_round_count_hides_membership(self):
        """Hit and miss cost the same number of retrievals."""
        pir = KeywordPIR({f"k{i}": i for i in range(30)})
        pir.lookup("k5", 0)
        hit_cost = pir.retrievals
        pir.lookup("absent", 1)
        assert pir.retrievals == 2 * hit_cost

    def test_empty_index(self):
        assert KeywordPIR({}).lookup("x") is None

    def test_negative_values(self):
        pir = KeywordPIR({"a": -42})
        assert pir.lookup("a", 0) == -42

    def test_lookup_batch_mixed_hits_and_misses(self, index):
        keys = ["P007", "ZZZ", "P000", "P049", ""]
        assert index.lookup_batch(keys, 6) == [70, None, 0, 490, None]

    def test_lookup_batch_fixed_round_cost(self):
        pir = KeywordPIR({f"k{i:04d}": i for i in range(256)})
        pir.lookup_batch(["k0100", "nope", "k0000"], 0)
        # Each key still pays ceil(log2(256)) + 1 = 9 rounds, batched.
        assert pir.retrievals == 3 * 9

    def test_lookup_batch_empty_inputs(self):
        assert KeywordPIR({}).lookup_batch(["x", "y"]) == [None, None]
        pir = KeywordPIR({"a": 1})
        assert pir.lookup_batch([]) == []
