"""``ask_batch`` must be indistinguishable from sequential ``ask``.

Every policy stack exercised by the integration quadrants (and the rest
of the suite) is replayed twice — once through sequential :meth:`ask`,
once through one :meth:`ask_batch` call — on identically-seeded engines;
answers, refusal bookkeeping and history must agree entry for entry.
"""

import numpy as np
import pytest

from repro.data import patients
from repro.qdb import (
    Aggregate,
    CamouflageIntervals,
    Comparison,
    NoisePerturbation,
    Not,
    OverlapControl,
    Query,
    QuerySetSizeControl,
    RandomSampleQueries,
    StatisticalDatabase,
    SumAuditPolicy,
)

STACKS = {
    "unprotected": lambda: [],
    "size-control": lambda: [QuerySetSizeControl(5)],
    "size+audit": lambda: [QuerySetSizeControl(5), SumAuditPolicy()],
    "size+noise": lambda: [QuerySetSizeControl(5), NoisePerturbation(20.0)],
    "size+sampling": lambda: [QuerySetSizeControl(5), RandomSampleQueries(0.9)],
    "overlap": lambda: [OverlapControl(50)],
    "camouflage": lambda: [CamouflageIntervals(2)],
    "full-stack": lambda: [
        QuerySetSizeControl(3),
        OverlapControl(180),
        SumAuditPolicy(),
        NoisePerturbation(5.0),
    ],
}


@pytest.fixture(scope="module")
def population():
    return patients(200, seed=11)


def workload(pop, rng, n_queries=50):
    """Mixed aggregates over random predicates, with repeats."""
    columns = ["height", "weight", "age"]
    aggregates = [
        Aggregate.COUNT, Aggregate.SUM, Aggregate.AVG, Aggregate.MEDIAN,
    ]
    predicates = []
    for _ in range(n_queries // 3):
        column = columns[rng.integers(len(columns))]
        op = ["<", "<=", ">", ">="][rng.integers(4)]
        value = float(np.round(rng.choice(pop[column]), 1))
        predicate = Comparison(column, op, value)
        if rng.random() < 0.2:
            predicate = Not(predicate)
        predicates.append(predicate)
    queries = []
    for _ in range(n_queries):
        aggregate = aggregates[rng.integers(len(aggregates))]
        column = None if aggregate is Aggregate.COUNT else "blood_pressure"
        queries.append(
            Query(aggregate, column, predicates[rng.integers(len(predicates))])
        )
    return queries


def same_value(x, y):
    if x is None or y is None:
        return x is y
    return x == y or (np.isnan(x) and np.isnan(y))


@pytest.mark.parametrize("stack", sorted(STACKS))
def test_batch_equals_sequential(stack, population):
    queries = workload(population, np.random.default_rng(7))
    db_seq = StatisticalDatabase(population, STACKS[stack](), seed=3)
    db_batch = StatisticalDatabase(population, STACKS[stack](), seed=3)
    sequential = [db_seq.ask(q) for q in queries]
    batched = db_batch.ask_batch(queries)
    assert len(batched) == len(sequential)
    for a, b in zip(batched, sequential):
        assert a.refused == b.refused, (a, b)
        assert a.reason == b.reason, (a, b)
        assert same_value(a.value, b.value), (a, b)
        assert a.interval == b.interval, (a, b)
    # Refusal bookkeeping and the audit trail match exactly.
    assert db_batch.queries_asked == db_seq.queries_asked == len(queries)
    assert db_batch.queries_refused == db_seq.queries_refused
    assert len(db_batch.history) == len(db_seq.history)
    assert [e.answered for e in db_batch.history] == [
        e.answered for e in db_seq.history
    ]
    assert len(db_batch.history.answered_masks) == len(
        db_seq.history.answered_masks
    )


def test_batch_accepts_strings_and_queries(population):
    db = StatisticalDatabase(population, [QuerySetSizeControl(5)])
    answers = db.ask_batch([
        "SELECT COUNT(*) WHERE height > 170",
        Query(Aggregate.AVG, "blood_pressure", Comparison("height", ">", 170.0)),
    ])
    assert all(a.ok for a in answers)
    assert db.queries_asked == 2


def test_batch_shares_masks_across_repeated_predicates(population):
    db = StatisticalDatabase(population)
    q = "SELECT COUNT(*) WHERE height > 170"
    db.ask_batch([q] * 10)
    assert db.mask_cache_misses == 1
    assert db.mask_cache_hits == 9


def test_empty_batch(population):
    db = StatisticalDatabase(population)
    assert db.ask_batch([]) == []
    assert db.queries_asked == 0


def test_interleaved_batch_and_ask_share_state(population):
    """A batch continues the same audit session as sequential asks."""
    db = StatisticalDatabase(population, [OverlapControl(50)])
    first = db.ask("SELECT SUM(blood_pressure) WHERE height > 170")
    assert first.ok
    batch = db.ask_batch(["SELECT SUM(blood_pressure) WHERE height > 169"])
    assert batch[0].refused  # overlaps the sequentially answered query
    assert "overlaps" in batch[0].reason
