"""Tests for disclosure-risk measures."""

import numpy as np
import pytest

from repro.sdc import (
    IdentityMasking,
    Microaggregation,
    UncorrelatedNoise,
    assess_risk,
    class_linkage_rate,
    distance_linkage_rate,
    interval_disclosure_rate,
    unique_interval_disclosure_rate,
    uniqueness_rate,
)


class TestDistanceLinkage:
    def test_identity_release_fully_linkable(self, patients_300):
        rate = distance_linkage_rate(
            patients_300, patients_300, ["height", "weight", "age"]
        )
        assert rate > 0.95

    def test_k_anonymous_release_caps_at_1_over_k(self, patients_300):
        release = Microaggregation(5).mask(patients_300)
        rate = distance_linkage_rate(
            patients_300, release, ["height", "weight", "age"]
        )
        assert rate == pytest.approx(1 / 5, abs=0.06)

    def test_noise_reduces_linkage(self, patients_300, rng):
        release = UncorrelatedNoise(1.0).mask(patients_300, rng)
        rate = distance_linkage_rate(
            patients_300, release, ["height", "weight", "age"]
        )
        assert rate < 0.3

    def test_intruder_noise_lowers_success(self, patients_300):
        exact = distance_linkage_rate(
            patients_300, patients_300, ["height", "weight"], 0.0
        )
        fuzzy = distance_linkage_rate(
            patients_300, patients_300, ["height", "weight"], 1.0
        )
        assert fuzzy < exact

    def test_misaligned_rejected(self, patients_300):
        with pytest.raises(ValueError, match="row-aligned"):
            distance_linkage_rate(
                patients_300, patients_300.select(np.arange(10))
            )

    def test_empty(self):
        from repro.data import Dataset
        empty = Dataset.from_rows(["a"], [])
        assert distance_linkage_rate(empty, empty, ["a"]) == 0.0


class TestClassLinkage:
    def test_unique_records(self, ds2):
        assert class_linkage_rate(ds2, ["height", "weight"]) == pytest.approx(
            7 / 10  # 7 classes (5 singletons, one pair, one triple) / 10
        )

    def test_k_anonymous(self, ds1):
        rate = class_linkage_rate(ds1, ["height", "weight"])
        assert rate == pytest.approx(3 / 10)  # 3 classes / 10 records


class TestUniqueness:
    def test_dataset_2(self, ds2):
        assert uniqueness_rate(ds2, ["height", "weight"]) == pytest.approx(0.5)

    def test_dataset_1(self, ds1):
        assert uniqueness_rate(ds1, ["height", "weight"]) == 0.0


class TestIntervalDisclosure:
    def test_identity_is_total(self, patients_300):
        assert interval_disclosure_rate(
            patients_300, patients_300, ["height", "weight"]
        ) == 1.0

    def test_heavy_noise_low(self, patients_300, rng):
        release = UncorrelatedNoise(2.0).mask(patients_300, rng)
        rate = interval_disclosure_rate(
            patients_300, release, ["height", "weight"], 10.0
        )
        assert rate < 0.2

    def test_unique_variant_zero_for_k_anonymous(self, patients_300):
        """k-Anonymous releases defeat interval re-identification: no
        released key combination is unique."""
        release = Microaggregation(5).mask(patients_300)
        rate = unique_interval_disclosure_rate(
            patients_300, release, ["height", "weight", "age"]
        )
        assert rate == 0.0

    def test_unique_variant_positive_for_noise(self, patients_300, rng):
        release = UncorrelatedNoise(0.3).mask(patients_300, rng)
        rate = unique_interval_disclosure_rate(
            patients_300, release, ["height", "weight", "age"]
        )
        assert rate > 0.2


class TestAssessRisk:
    def test_report_fields(self, patients_300, rng):
        release = UncorrelatedNoise(0.5).mask(patients_300, rng)
        report = assess_risk(patients_300, release,
                             ["height", "weight", "age"])
        assert 0 <= report.linkage_rate <= 1
        assert 0 <= report.respondent_privacy <= 1

    def test_identity_release_no_privacy(self, patients_300):
        report = assess_risk(
            patients_300, IdentityMasking().mask(patients_300),
            ["height", "weight", "age"],
        )
        assert report.respondent_privacy < 0.05
