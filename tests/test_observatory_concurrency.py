"""Exactness of the telemetry substrate under concurrent load (ISSUE 8).

The resident observatory service hangs multiple writer threads off one
process-wide substrate: engine threads fold counters, the tracer fans
span records out to subscribers, and the observatory appends to series
while HTTP threads read windows.  These tests pin the properties the
service relies on:

- counter folds are exact (no lost increments) under N threads;
- series window aggregates over concurrently-appended samples equal the
  order-independent reductions of the inputs;
- a trace captured under concurrent emission replays to the *identical*
  alert set — the capture sink and the observatory subscribe under the
  same emit lock, so replay sees the same total record order live saw.
"""

import threading

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.telemetry import MetricsRegistry, instrument
from repro.telemetry.observatory import Observatory, replay_trace
from repro.telemetry.observatory.stream import SeriesStore

N_THREADS = 8


def _run_threads(worker, n=N_THREADS):
    """Run *worker(tid)* on *n* threads released by a shared barrier."""
    barrier = threading.Barrier(n)
    errors = []

    def wrapped(tid):
        try:
            barrier.wait()
            worker(tid)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(tid,)) for tid in range(n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors


class TestRegistryConcurrency:
    def test_counter_folds_are_exact(self):
        reg = MetricsRegistry(owner="t", standalone=True)
        per_thread = 5000

        def worker(tid):
            counter = reg.counter("hits")
            for _ in range(per_thread):
                counter.inc()

        _run_threads(worker)
        assert reg.counter("hits").value == N_THREADS * per_thread

    def test_mixed_increment_sizes_are_exact(self):
        reg = MetricsRegistry(owner="t", standalone=True)

        def worker(tid):
            for _ in range(1000):
                reg.counter("bytes").inc(tid + 1)

        _run_threads(worker)
        expected = 1000 * sum(range(1, N_THREADS + 1))
        assert reg.counter("bytes").value == expected


class TestSeriesConcurrency:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        values=st.lists(
            st.integers(min_value=-1000, max_value=1000),
            min_size=1,
            max_size=200,
        )
    )
    def test_window_aggregates_are_exact(self, values):
        # Integer-valued floats sum exactly in any order, so the
        # aggregates must equal the order-independent reductions no
        # matter how the scheduler interleaved the appends.
        store = SeriesStore()
        chunks = [values[tid::N_THREADS] for tid in range(N_THREADS)]

        def worker(tid):
            series = store.series("s")
            for i, value in enumerate(chunks[tid]):
                series.append(i + 1, float(value))

        _run_threads(worker)
        window = store.series("s").window(None)
        assert window.count == len(values)
        assert window.total == float(sum(values))
        assert window.aggregate("max") == float(max(values))
        count, total = store.series("s").window_reduce("total", None)
        assert (count, total) == (len(values), float(sum(values)))


class TestConcurrentCaptureReplay:
    def test_replay_of_concurrent_capture_rederives_alerts(self, tmp_path):
        # Eight threads hammer the tracer with refusal-heavy query spans;
        # whatever alerts the live observatory derived from that
        # interleaving, replaying the capture must derive the same ones
        # at the same steps — capture sink and observatory subscribe
        # under the same emit lock, so they saw one total order.
        path = tmp_path / "concurrent.jsonl"
        observatory = Observatory()
        with instrument.session(path) as tracer:
            observatory.attach(tracer)

            def worker(tid):
                for i in range(25):
                    refused = (i % 2 == 0) or tid == 0
                    with instrument.span(
                        "qdb.query",
                        session=f"user-{tid}",
                        refused=refused,
                        query_set_size=3 if refused else 40,
                    ):
                        pass

            _run_threads(worker)
            live = [a for a in observatory.alerts if a.source == "span"]
            observatory.detach()

        assert live, "refusal-heavy load should have fired at least one rule"
        replayed = replay_trace(path)
        replayed_alerts = [
            a for a in replayed.alerts if a.source == "span"
        ]
        assert replayed_alerts == live
        assert replayed.step == N_THREADS * 25
