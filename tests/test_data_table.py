"""Tests for the Dataset tabular substrate."""

import numpy as np
import pytest

from repro.data import AttributeRole, Dataset, Schema


@pytest.fixture
def small():
    return Dataset(
        {
            "a": [1.0, 2.0, 3.0],
            "b": ["x", "y", "x"],
            "c": [10, 20, 30],
        },
        schema=Schema({"a": AttributeRole.QUASI_IDENTIFIER,
                       "c": AttributeRole.CONFIDENTIAL}),
    )


class TestConstruction:
    def test_shape(self, small):
        assert small.n_rows == 3
        assert small.n_columns == 3
        assert small.column_names == ("a", "b", "c")

    def test_numeric_coercion(self, small):
        assert small.column("c").dtype == np.float64
        assert small.is_numeric("a")
        assert not small.is_numeric("b")

    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            Dataset({"a": [1, 2], "b": [1, 2, 3]})

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Dataset({"a": np.zeros((2, 2))})

    def test_from_rows_round_trip(self, small):
        rebuilt = Dataset.from_rows(small.column_names, small.to_rows())
        assert rebuilt.to_rows() == small.to_rows()

    def test_from_rows_mismatched_width(self):
        with pytest.raises(ValueError, match="one value per column"):
            Dataset.from_rows(["a", "b"], [(1,)])

    def test_from_matrix(self):
        ds = Dataset.from_matrix(np.arange(6).reshape(3, 2))
        assert ds.column_names == ("x0", "x1")
        assert ds.n_rows == 3

    def test_from_matrix_name_mismatch(self):
        with pytest.raises(ValueError, match="one name"):
            Dataset.from_matrix(np.zeros((2, 2)), names=["only"])

    def test_empty_dataset(self):
        ds = Dataset.from_rows(["a", "b"], [])
        assert ds.n_rows == 0
        assert len(ds) == 0


class TestAccess:
    def test_unknown_column(self, small):
        with pytest.raises(KeyError, match="no column named"):
            small.column("zzz")

    def test_getitem(self, small):
        assert np.array_equal(small["a"], [1.0, 2.0, 3.0])

    def test_row(self, small):
        assert small.row(1) == (2.0, "y", 20.0)

    def test_roles(self, small):
        assert small.role("a") is AttributeRole.QUASI_IDENTIFIER
        assert small.role("b") is AttributeRole.NON_CONFIDENTIAL
        assert small.quasi_identifiers == ("a",)
        assert small.confidential_attributes == ("c",)

    def test_role_unknown_column(self, small):
        with pytest.raises(KeyError):
            small.role("zzz")


class TestOperations:
    def test_project_preserves_schema(self, small):
        proj = small.project(["a"])
        assert proj.column_names == ("a",)
        assert proj.quasi_identifiers == ("a",)

    def test_project_unknown(self, small):
        with pytest.raises(KeyError, match="unknown columns"):
            small.project(["a", "zzz"])

    def test_drop(self, small):
        assert small.drop(["b"]).column_names == ("a", "c")

    def test_select_mask(self, small):
        sel = small.select(np.array([True, False, True]))
        assert sel.n_rows == 2
        assert list(sel["b"]) == ["x", "x"]

    def test_take_order(self, small):
        taken = small.take([2, 0])
        assert list(taken["a"]) == [3.0, 1.0]

    def test_with_column_replaces(self, small):
        new = small.with_column("a", [9.0, 9.0, 9.0])
        assert new["a"][0] == 9.0
        assert small["a"][0] == 1.0  # original untouched

    def test_rename(self, small):
        renamed = small.rename({"a": "alpha"})
        assert "alpha" in renamed
        assert renamed.quasi_identifiers == ("alpha",)

    def test_vstack(self, small):
        stacked = small.vstack(small)
        assert stacked.n_rows == 6

    def test_vstack_mismatch(self, small):
        with pytest.raises(ValueError, match="share column names"):
            small.vstack(small.project(["a"]))

    def test_group_by(self, small):
        groups = small.group_by(["b"])
        assert set(groups) == {("x",), ("y",)}
        assert list(groups[("x",)]) == [0, 2]

    def test_copy_independent(self, small):
        dup = small.copy()
        dup.column("a")[0] = 99.0
        assert small["a"][0] == 1.0

    def test_equality(self, small):
        assert small == small.copy()
        assert small != small.drop(["b"])


class TestNumericViews:
    def test_matrix(self, small):
        m = small.matrix(["a", "c"])
        assert m.shape == (3, 2)
        assert m[1, 1] == 20.0

    def test_matrix_rejects_categorical(self, small):
        with pytest.raises(TypeError, match="non-numeric"):
            small.matrix(["b"])

    def test_matrix_default_all_numeric(self, small):
        assert small.matrix().shape == (3, 2)

    def test_describe(self, small):
        d = small.describe()
        assert d["a"]["mean"] == pytest.approx(2.0)
        assert "b" not in d
