"""Tests for the multi-release intersection (composition) attack."""

import pytest

from repro.attacks import intersection_attack
from repro.data import Dataset, patients
from repro.sdc import (
    Microaggregation,
    MondrianKAnonymizer,
    anonymity_level,
)

QI = ["height", "weight", "age"]


class TestIntersectionAttack:
    def test_two_kanonymous_releases_compose_to_reidentify(self, patients_300):
        """Both releases 5-anonymous, yet their composition pins many
        respondents uniquely."""
        release_a = Microaggregation(5).mask(patients_300)
        release_b = MondrianKAnonymizer(5).mask(patients_300)
        assert anonymity_level(release_a, QI) >= 5
        assert anonymity_level(release_b, QI) >= 5
        report = intersection_attack(release_a, release_b, QI, QI)
        assert report.min_class_a >= 5
        assert report.min_class_b >= 5
        assert report.reidentified_rate > 0.1
        assert report.mean_intersection_size < 5

    def test_same_release_twice_is_harmless(self, patients_300):
        release = Microaggregation(5).mask(patients_300)
        report = intersection_attack(release, release, QI, QI)
        assert report.singletons_after_intersection == 0
        assert report.mean_intersection_size >= 5

    def test_misaligned_rejected(self, patients_300):
        import numpy as np
        short = patients_300.select(np.arange(10))
        with pytest.raises(ValueError):
            intersection_attack(patients_300, short, QI, QI)

    def test_empty(self):
        empty = Dataset.from_rows(["a"], [])
        report = intersection_attack(empty, empty, ["a"], ["a"])
        assert report.reidentified_rate == 0.0

    def test_hand_built_example(self):
        """Classes {1,2},{3,4} vs {1,3},{2,4}: every intersection is a
        singleton."""
        a = Dataset({"g": ["x", "x", "y", "y"]})
        b = Dataset({"g": ["p", "q", "p", "q"]})
        report = intersection_attack(a, b, ["g"], ["g"])
        assert report.reidentified_rate == 1.0
