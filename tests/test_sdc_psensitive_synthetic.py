"""Tests for p-sensitive enforcement and the synthetic-copula release."""

import numpy as np
import pytest

from repro.attacks import homogeneity_attack
from repro.data import AttributeRole, Dataset, Schema, patients
from repro.sdc import (
    Microaggregation,
    PSensitiveMicroaggregation,
    SyntheticRelease,
    anonymity_level,
    fit_copula,
    is_p_sensitive_k_anonymous,
    merge_to_p_sensitive,
    sample_copula,
    sensitivity_level,
)

QI = ["height", "weight", "age"]


class TestPSensitiveMicroaggregation:
    def test_achieves_both_properties(self, patients_300):
        release = PSensitiveMicroaggregation(
            k=5, p=2, confidential=["aids"]
        ).mask(patients_300)
        assert anonymity_level(release, QI) >= 5
        assert sensitivity_level(release, ["aids"], QI) >= 2
        assert is_p_sensitive_k_anonymous(
            release, 2, 5, ["aids"], QI
        )

    def test_removes_homogeneity_victims(self, patients_300):
        plain = Microaggregation(5).mask(patients_300)
        sensitive = PSensitiveMicroaggregation(
            5, 2, confidential=["aids"]
        ).mask(patients_300)
        before = homogeneity_attack(plain, "aids", QI).victims
        after = homogeneity_attack(sensitive, "aids", QI).victims
        assert before > 0
        assert after == 0

    def test_unachievable_p_rejected(self):
        data = Dataset(
            {"x": [1.0, 2.0, 3.0, 4.0], "c": ["a", "a", "a", "a"]},
            schema=Schema({"x": AttributeRole.QUASI_IDENTIFIER,
                           "c": AttributeRole.CONFIDENTIAL}),
        )
        with pytest.raises(ValueError, match="unachievable"):
            PSensitiveMicroaggregation(2, 2).mask(data)

    def test_needs_confidential(self):
        data = Dataset({"x": [1.0, 2.0]},
                       schema=Schema({"x": AttributeRole.QUASI_IDENTIFIER}))
        with pytest.raises(ValueError, match="confidential"):
            PSensitiveMicroaggregation(1, 1).mask(data)

    def test_validation(self):
        with pytest.raises(ValueError):
            PSensitiveMicroaggregation(0, 1)
        with pytest.raises(ValueError):
            PSensitiveMicroaggregation(1, 0)


class TestMergeHelper:
    def test_merging_preserves_partition(self, patients_300):
        from repro.sdc import mdav_groups
        matrix = patients_300.matrix(QI)
        groups = mdav_groups(matrix, 5)
        merged = merge_to_p_sensitive(
            patients_300, groups, ["aids"], 2, matrix
        )
        indices = sorted(i for g in merged for i in g)
        assert indices == list(range(patients_300.n_rows))

    def test_p_one_is_noop(self, patients_300):
        from repro.sdc import mdav_groups
        matrix = patients_300.matrix(QI)
        groups = mdav_groups(matrix, 5)
        merged = merge_to_p_sensitive(
            patients_300, groups, ["aids"], 1, matrix
        )
        assert len(merged) == len(groups)


class TestSyntheticRelease:
    def test_no_original_record_survives(self, patients_300, rng):
        release = SyntheticRelease().mask(patients_300, rng)
        overlap = np.mean(
            [
                np.any(np.all(
                    patients_300.matrix(QI) == release.matrix(QI)[i], axis=1
                ))
                for i in range(release.n_rows)
            ]
        )
        assert overlap < 0.05

    def test_correlations_preserved(self, patients_300, rng):
        release = SyntheticRelease().mask(patients_300, rng)
        corr_orig = np.corrcoef(patients_300.matrix(QI), rowvar=False)
        corr_rel = np.corrcoef(release.matrix(QI), rowvar=False)
        assert np.abs(corr_orig - corr_rel).max() < 0.15

    def test_marginals_preserved(self, patients_300, rng):
        release = SyntheticRelease().mask(patients_300, rng)
        for col in QI:
            for q in (0.25, 0.5, 0.75):
                assert np.quantile(release[col], q) == pytest.approx(
                    np.quantile(patients_300[col], q),
                    abs=0.2 * patients_300[col].std(),
                )

    def test_values_within_observed_range(self, patients_300, rng):
        release = SyntheticRelease().mask(patients_300, rng)
        for col in QI:
            assert release[col].min() >= patients_300[col].min() - 1e-9
            assert release[col].max() <= patients_300[col].max() + 1e-9

    def test_confidential_untouched(self, patients_300, rng):
        release = SyntheticRelease().mask(patients_300, rng)
        assert np.array_equal(
            release["blood_pressure"], patients_300["blood_pressure"]
        )

    def test_tiny_dataset_passthrough(self, rng):
        data = Dataset({"x": [1.0]})
        assert SyntheticRelease(columns=["x"]).mask(data, rng) == data

    def test_copula_round_trip_statistics(self, rng):
        x = rng.multivariate_normal(
            [0, 0], [[1, 0.8], [0.8, 1]], size=800
        )
        sorted_values, corr = fit_copula(x)
        sample = sample_copula(sorted_values, corr, 800, rng)
        assert np.corrcoef(sample, rowvar=False)[0, 1] == pytest.approx(
            0.8, abs=0.1
        )


class TestHomogeneityAttack:
    def test_counts_constant_classes(self):
        data = Dataset(
            {
                "zip": ["A", "A", "B", "B"],
                "d": ["flu", "flu", "flu", "cancer"],
            },
        )
        report = homogeneity_attack(data, "d", ["zip"])
        assert report.victims == 2
        assert report.homogeneous_classes == 1
        assert report.disclosure_rate == 0.5

    def test_diverse_release_safe(self):
        data = Dataset(
            {"zip": ["A", "A"], "d": ["flu", "cancer"]},
        )
        assert homogeneity_attack(data, "d", ["zip"]).victims == 0
