"""Tests for information-theoretic PIR."""

import numpy as np
import pytest

from repro.pir import SquareSchemePIR, TwoServerXorPIR


class TestTwoServerXor:
    @pytest.fixture(scope="class")
    def pir(self):
        return TwoServerXorPIR(list(range(0, 500, 7)))

    def test_every_index_retrievable(self, pir):
        for i in range(pir.n):
            assert pir.retrieve_int(i, i) == i * 7

    def test_negative_integers(self):
        pir = TwoServerXorPIR([-5, 10, -300])
        assert pir.retrieve_int(0, 1) == -5
        assert pir.retrieve_int(2, 2) == -300

    def test_bytes_blocks(self):
        pir = TwoServerXorPIR([b"alpha", b"beta", b"gamma"])
        assert pir.retrieve(1, 0).rstrip(b"\0") == b"beta"

    def test_out_of_range(self, pir):
        with pytest.raises(IndexError):
            pir.retrieve(pir.n)

    def test_queries_differ_in_exactly_target(self, pir):
        pir.retrieve(13, 3)
        s1, s2 = map(set, pir.last_queries)
        assert s1 ^ s2 == {13}

    def test_single_server_view_independent_of_target(self):
        """The marginal distribution of server 1's query set must not
        depend on the retrieved index: compare inclusion frequencies."""
        pir = TwoServerXorPIR(list(range(16)))
        rng = np.random.default_rng(0)
        freq_a = np.zeros(16)
        freq_b = np.zeros(16)
        trials = 400
        for t in range(trials):
            pir.retrieve(0, rng)
            for i in pir.last_queries[0]:
                freq_a[i] += 1
            pir.retrieve(7, rng)
            for i in pir.last_queries[0]:
                freq_b[i] += 1
        # Both should hover around 1/2 inclusion for every index.
        assert np.abs(freq_a / trials - 0.5).max() < 0.12
        assert np.abs(freq_b / trials - 0.5).max() < 0.12

    def test_communication_counters(self, pir):
        before = pir.upstream_bits
        pir.retrieve(0, 0)
        assert pir.upstream_bits == before + 2 * pir.n


class TestSquareScheme:
    def test_correctness(self):
        pir = SquareSchemePIR(list(range(100, 150)))
        for i in (0, 7, 23, 49):
            assert pir.retrieve_int(i, i) == 100 + i

    def test_upstream_sublinear(self):
        n = 400
        linear = TwoServerXorPIR(list(range(n)))
        square = SquareSchemePIR(list(range(n)))
        linear.retrieve(5, 0)
        square.retrieve(5, 0)
        assert square.upstream_bits < linear.upstream_bits / 5

    def test_non_square_n(self):
        pir = SquareSchemePIR(list(range(7)))  # 3x3 grid with padding
        for i in range(7):
            assert pir.retrieve_int(i, i) == i

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            SquareSchemePIR([1, 2]).retrieve(2)
