"""Tests for information-theoretic PIR."""

import numpy as np
import pytest

from repro.pir import SquareSchemePIR, TwoServerXorPIR


class TestTwoServerXor:
    @pytest.fixture(scope="class")
    def pir(self):
        return TwoServerXorPIR(list(range(0, 500, 7)))

    def test_every_index_retrievable(self, pir):
        for i in range(pir.n):
            assert pir.retrieve_int(i, i) == i * 7

    def test_negative_integers(self):
        pir = TwoServerXorPIR([-5, 10, -300])
        assert pir.retrieve_int(0, 1) == -5
        assert pir.retrieve_int(2, 2) == -300

    def test_bytes_blocks(self):
        pir = TwoServerXorPIR([b"alpha", b"beta", b"gamma"])
        assert pir.retrieve(1, 0).rstrip(b"\0") == b"beta"

    def test_out_of_range(self, pir):
        with pytest.raises(IndexError):
            pir.retrieve(pir.n)

    def test_queries_differ_in_exactly_target(self, pir):
        pir.retrieve(13, 3)
        s1, s2 = map(set, pir.last_queries)
        assert s1 ^ s2 == {13}

    def test_single_server_view_independent_of_target(self):
        """The marginal distribution of server 1's query set must not
        depend on the retrieved index: compare inclusion frequencies."""
        pir = TwoServerXorPIR(list(range(16)))
        rng = np.random.default_rng(0)
        freq_a = np.zeros(16)
        freq_b = np.zeros(16)
        trials = 400
        for t in range(trials):
            pir.retrieve(0, rng)
            for i in pir.last_queries[0]:
                freq_a[i] += 1
            pir.retrieve(7, rng)
            for i in pir.last_queries[0]:
                freq_b[i] += 1
        # Both should hover around 1/2 inclusion for every index.
        assert np.abs(freq_a / trials - 0.5).max() < 0.12
        assert np.abs(freq_b / trials - 0.5).max() < 0.12

    def test_communication_counters(self, pir):
        before = pir.upstream_bits
        pir.retrieve(0, 0)
        assert pir.upstream_bits == before + 2 * pir.n


class TestBatchRetrieval:
    INDICES = [3, 77, 127, 0, 42, 127, 9]

    @pytest.mark.parametrize("scheme_cls", [TwoServerXorPIR, SquareSchemePIR])
    def test_batch_equals_sequential_byte_for_byte(self, scheme_cls):
        pir = scheme_cls(list(range(128)))
        # Same master seed: sequential calls consume the rng stream exactly
        # as the single batch call does, so payloads must be identical.
        rng_seq = np.random.default_rng(99)
        sequential = [pir.retrieve(i, rng_seq) for i in self.INDICES]
        batched = pir.retrieve_batch(self.INDICES, np.random.default_rng(99))
        assert batched == sequential

    def test_batch_int_decoding(self):
        pir = TwoServerXorPIR(list(range(0, 500, 7)))
        idx = [0, 5, 71, 33]
        assert pir.retrieve_batch_int(idx, 4) == [7 * i for i in idx]

    def test_empty_batch(self):
        pir = TwoServerXorPIR(list(range(8)))
        assert pir.retrieve_batch([], 0) == []

    def test_batch_out_of_range(self):
        pir = TwoServerXorPIR(list(range(8)))
        with pytest.raises(IndexError):
            pir.retrieve_batch([2, 8], 0)
        with pytest.raises(IndexError):
            pir.retrieve_batch([-1], 0)

    def test_batch_accounting_matches_sequential(self):
        seq = TwoServerXorPIR(list(range(64)))
        bat = TwoServerXorPIR(list(range(64)))
        for i in (1, 2, 3):
            seq.retrieve(i, i)
        bat.retrieve_batch([1, 2, 3], 0)
        assert bat.upstream_bits == seq.upstream_bits
        assert bat.downstream_bits == seq.downstream_bits

    def test_batch_views_differ_in_exactly_each_target(self):
        pir = TwoServerXorPIR(list(range(32)))
        idx = [5, 0, 31, 5]
        pir.retrieve_batch(idx, 1)
        views = pir.last_batch_queries
        assert len(views) == len(idx)
        for (q1, q2), i in zip(views, idx):
            assert set(q1) ^ set(q2) == {i}
        assert pir.last_queries == views[-1]

    def test_square_batch_views_are_column_queries(self):
        pir = SquareSchemePIR(list(range(49)))
        idx = [3, 44]
        pir.retrieve_batch(idx, 2)
        for (q1, q2), i in zip(pir.last_batch_queries, idx):
            assert set(q1) ^ set(q2) == {i % pir.cols}


class TestConstructionErrors:
    @pytest.mark.parametrize("scheme_cls", [TwoServerXorPIR, SquareSchemePIR])
    def test_empty_database_rejected(self, scheme_cls):
        with pytest.raises(ValueError, match="at least one block"):
            scheme_cls([])

    def test_oversized_int_raises_value_error(self):
        with pytest.raises(ValueError, match="does not fit"):
            TwoServerXorPIR([1, 2 ** 100])

    def test_int_fits_when_bytes_widen_the_blocks(self):
        # A 16-byte bytes block widens the common width, so 2**100 fits.
        pir = TwoServerXorPIR([b"x" * 16, 2 ** 100])
        assert pir.retrieve_int(1, 0) == 2 ** 100

    def test_no_per_byte_python_loops(self):
        """The kernel contract: answers come from vectorized numpy ops."""
        import inspect
        from repro.pir import itpir
        source = inspect.getsource(itpir)
        assert "for j in range(size)" not in source
        assert "acc[j] ^=" not in source


class TestSquareScheme:
    def test_correctness(self):
        pir = SquareSchemePIR(list(range(100, 150)))
        for i in (0, 7, 23, 49):
            assert pir.retrieve_int(i, i) == 100 + i

    def test_upstream_sublinear(self):
        n = 400
        linear = TwoServerXorPIR(list(range(n)))
        square = SquareSchemePIR(list(range(n)))
        linear.retrieve(5, 0)
        square.retrieve(5, 0)
        assert square.upstream_bits < linear.upstream_bits / 5

    def test_non_square_n(self):
        pir = SquareSchemePIR(list(range(7)))  # 3x3 grid with padding
        for i in range(7):
            assert pir.retrieve_int(i, i) == i

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            SquareSchemePIR([1, 2]).retrieve(2)
