"""Tests for the query AST and the SQL-ish parser."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.qdb import (
    Aggregate,
    Comparison,
    Not,
    ParseError,
    Query,
    TruePredicate,
    parse_predicate,
    parse_query,
)


class TestPredicates:
    def test_comparison_mask(self, ds2):
        mask = Comparison("height", "<", 165).mask(ds2)
        assert list(np.flatnonzero(mask)) == [3, 9]

    def test_equality_on_categorical(self, ds2):
        mask = Comparison("aids", "=", "Y").mask(ds2)
        assert mask.sum() == 3

    def test_ordering_on_categorical_rejected(self, ds2):
        with pytest.raises(TypeError):
            Comparison("aids", "<", "Y").mask(ds2)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            Comparison("x", "~", 1)

    def test_boolean_algebra(self, ds2):
        p = Comparison("height", "<", 165) & Comparison("weight", ">", 105)
        assert p.mask(ds2).sum() == 1
        q = Comparison("height", "<", 160) | Comparison("height", ">", 185)
        assert q.mask(ds2).sum() == 2
        assert (~q).mask(ds2).sum() == 8

    def test_true_predicate(self, ds2):
        assert TruePredicate().mask(ds2).all()


class TestQueryEvaluation:
    def test_count(self, ds2):
        q = Query(Aggregate.COUNT, None, Comparison("height", "<", 165))
        assert q.evaluate(ds2) == 2.0

    def test_aggregates(self, ds2):
        pred = TruePredicate()
        values = ds2["blood_pressure"]
        assert Query(Aggregate.SUM, "blood_pressure", pred).evaluate(ds2) == values.sum()
        assert Query(Aggregate.AVG, "blood_pressure", pred).evaluate(ds2) == pytest.approx(values.mean())
        assert Query(Aggregate.MIN, "blood_pressure", pred).evaluate(ds2) == values.min()
        assert Query(Aggregate.MAX, "blood_pressure", pred).evaluate(ds2) == values.max()
        assert Query(Aggregate.MEDIAN, "blood_pressure", pred).evaluate(ds2) == np.median(values)

    def test_empty_selection_nan(self, ds2):
        q = Query(Aggregate.AVG, "blood_pressure", Comparison("height", ">", 999))
        assert np.isnan(q.evaluate(ds2))

    def test_non_count_requires_column(self):
        with pytest.raises(ValueError):
            Query(Aggregate.AVG, None, TruePredicate())

    def test_query_set(self, ds2):
        q = Query(Aggregate.COUNT, None, Comparison("weight", ">", 105))
        assert list(q.query_set(ds2)) == [3]

    def test_str_round_trippable(self, ds2):
        q = Query(
            Aggregate.AVG, "blood_pressure",
            Comparison("height", "<", 165) & Comparison("weight", ">", 105),
        )
        reparsed = parse_query(str(q))
        assert reparsed.evaluate(ds2) == q.evaluate(ds2)


class TestParser:
    def test_paper_queries(self, ds2):
        q1 = parse_query(
            "SELECT COUNT(*) FROM Dataset2 WHERE height < 165 AND weight > 105"
        )
        q2 = parse_query(
            "SELECT AVG(blood_pressure) FROM Dataset2 "
            "WHERE height < 165 AND weight > 105"
        )
        assert q1.evaluate(ds2) == 1.0
        assert q2.evaluate(ds2) == 146.0

    def test_case_insensitive_keywords(self, ds2):
        q = parse_query("select count(*) where height < 165")
        assert q.evaluate(ds2) == 2.0

    def test_precedence_not_and_or(self, ds2):
        q = parse_query(
            "SELECT COUNT(*) WHERE NOT height < 165 AND weight > 100 "
            "OR aids = 'Y'"
        )
        manual = (
            (~Comparison("height", "<", 165) & Comparison("weight", ">", 100))
            | Comparison("aids", "=", "Y")
        )
        assert q.evaluate(ds2) == float(manual.mask(ds2).sum())

    def test_parentheses(self, ds2):
        q = parse_query(
            "SELECT COUNT(*) WHERE NOT (height < 165 OR weight > 100)"
        )
        assert q.evaluate(ds2) == float(
            (~(Comparison("height", "<", 165)
               | Comparison("weight", ">", 100))).mask(ds2).sum()
        )

    def test_quoted_strings(self, ds2):
        q = parse_query("SELECT COUNT(*) WHERE aids = 'Y'")
        assert q.evaluate(ds2) == 3.0
        q2 = parse_query('SELECT COUNT(*) WHERE aids = "N"')
        assert q2.evaluate(ds2) == 7.0

    def test_bareword_literal(self, ds2):
        q = parse_query("SELECT COUNT(*) WHERE aids = Y")
        assert q.evaluate(ds2) == 3.0

    def test_without_from_or_where(self, ds2):
        assert parse_query("SELECT COUNT(*)").evaluate(ds2) == 10.0

    def test_parse_predicate_helper(self, ds2):
        p = parse_predicate("height >= 180 AND aids = 'N'")
        assert p.mask(ds2).sum() == 2

    @pytest.mark.parametrize("bad", [
        "",
        "SELECT",
        "SELECT FOO(*)",
        "SELECT COUNT(*) WHERE",
        "SELECT COUNT(*) WHERE height <",
        "SELECT COUNT(*) WHERE height < 10 trailing",
        "SELECT COUNT(*) WHERE (height < 10",
        "SELECT COUNT *",
    ])
    def test_malformed_queries(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad)
