"""Tests for information-loss measures."""

import numpy as np
import pytest

from repro.sdc import (
    Condensation,
    IdentityMasking,
    Microaggregation,
    RecordSuppression,
    UncorrelatedNoise,
    assess_utility,
    correlation_discrepancy,
    covariance_discrepancy,
    il1s,
    mean_discrepancy,
    quantile_distortion,
)


class TestIl1s:
    def test_zero_for_identity(self, patients_300):
        assert il1s(patients_300, patients_300) == 0.0

    def test_grows_with_noise(self, patients_300):
        low = UncorrelatedNoise(0.2).mask(patients_300, np.random.default_rng(1))
        high = UncorrelatedNoise(1.0).mask(patients_300, np.random.default_rng(1))
        assert il1s(patients_300, low) < il1s(patients_300, high)

    def test_misaligned_rejected(self, patients_300):
        short = patients_300.select(np.arange(10))
        with pytest.raises(ValueError):
            il1s(patients_300, short, ["height"])


class TestMoments:
    def test_mean_discrepancy_zero_for_microagg(self, patients_300):
        release = Microaggregation(5).mask(patients_300)
        assert mean_discrepancy(
            patients_300, release, ["height", "weight"]
        ) == pytest.approx(0.0, abs=1e-9)

    def test_condensation_keeps_covariance(self, patients_300, rng):
        release = Condensation(10).mask(patients_300, rng)
        noise = UncorrelatedNoise(1.0).mask(
            patients_300, np.random.default_rng(2)
        )
        cols = ["height", "weight", "age"]
        assert covariance_discrepancy(patients_300, release, cols) < (
            covariance_discrepancy(patients_300, noise, cols)
        )

    def test_correlation_discrepancy_range(self, patients_300, rng):
        release = UncorrelatedNoise(0.8).mask(patients_300, rng)
        d = correlation_discrepancy(patients_300, release,
                                    ["height", "weight", "age"])
        assert 0 < d < 1

    def test_single_column_correlation_zero(self, patients_300):
        assert correlation_discrepancy(
            patients_300, patients_300, ["height"]
        ) == 0.0


class TestQuantiles:
    def test_rankswap_preserves_quantiles(self, patients_300, rng):
        from repro.sdc import RankSwap
        release = RankSwap(15).mask(patients_300, rng)
        assert quantile_distortion(
            patients_300, release, ["height", "weight"]
        ) == pytest.approx(0.0, abs=1e-9)

    def test_shifted_data_distorts(self, patients_300):
        shifted = patients_300.with_column(
            "height", patients_300["height"] + 50
        )
        assert quantile_distortion(patients_300, shifted, ["height"]) > 1


class TestDistinguishability:
    QI = ["height", "weight", "age"]

    def test_bounded(self, patients_300):
        from repro.sdc import distinguishability
        value = distinguishability(patients_300, patients_300, self.QI)
        assert 0.5 <= value <= 1.0

    def test_identity_near_chance(self, patients_300):
        from repro.sdc import distinguishability
        value = distinguishability(patients_300, patients_300, self.QI)
        assert value < 0.65  # finite-sample baseline band

    def test_variance_inflating_noise_detected(self, patients_300):
        from repro.sdc import distinguishability
        noisy = UncorrelatedNoise(1.5).mask(
            patients_300, np.random.default_rng(1)
        )
        baseline = distinguishability(patients_300, patients_300, self.QI)
        detected = distinguishability(patients_300, noisy, self.QI)
        assert detected > baseline + 0.05

    def test_rank_swap_stays_indistinguishable(self, patients_300):
        """Rank swapping preserves marginals exactly, so the propensity
        discriminator stays near its baseline."""
        from repro.sdc import RankSwap, distinguishability
        swapped = RankSwap(15).mask(patients_300, np.random.default_rng(2))
        noisy = UncorrelatedNoise(1.5).mask(
            patients_300, np.random.default_rng(2)
        )
        assert distinguishability(patients_300, swapped, self.QI) < (
            distinguishability(patients_300, noisy, self.QI)
        )

    def test_no_common_columns(self, patients_300):
        from repro.sdc import distinguishability
        assert distinguishability(
            patients_300, patients_300.project(["aids"]), None
        ) == 0.5


class TestReport:
    def test_identity_scores_one(self, patients_300):
        report = assess_utility(patients_300, patients_300)
        assert report.utility_score == pytest.approx(1.0)

    def test_suppressed_release_il1s_nan(self, patients_300):
        release = RecordSuppression(2).mask(patients_300)
        report = assess_utility(patients_300, release,
                                ["height", "weight"])
        assert np.isnan(report.il1s)

    def test_utility_ordering(self, patients_300):
        gentle = UncorrelatedNoise(0.1).mask(
            patients_300, np.random.default_rng(3)
        )
        brutal = UncorrelatedNoise(2.0).mask(
            patients_300, np.random.default_rng(3)
        )
        assert (
            assess_utility(patients_300, gentle).utility_score
            > assess_utility(patients_300, brutal).utility_score
        )
