"""Fault-tolerant secure sum: faulty channels, retries, crash fallback."""

import pytest

from repro.faults import (
    Fault,
    FaultPlan,
    FaultyChannel,
    resilient_secure_sum,
)
from repro.faults.errors import MessageDropped, PartyCrashed
from repro.faults.retry import RetryPolicy
from repro.smc import ring_secure_sum
from repro.smc.party import Transcript, plaintext_exposure


class TestFaultyChannel:
    def test_empty_plan_is_transparent(self):
        """Without faults the channel is a plain recording channel."""
        transcript = Transcript()
        channel = FaultyChannel(FaultPlan(), transcript)
        total = ring_secure_sum([10, 20, 30], rng=0, channel=channel)
        assert total == 60
        assert len(transcript.messages) > 0

    def test_drop_fault_raises_message_dropped(self):
        plan = FaultPlan([Fault("drop", "smc.party:P1")], seed=0)
        channel = FaultyChannel(plan)
        channel.send("P0", "P1", "mask", 5)  # P0 is not faulted
        with pytest.raises(MessageDropped):
            channel.send("P1", "P2", "partial", 7)
        assert channel._c_dropped.value == 1

    def test_crash_counts_messages_not_rounds(self):
        plan = FaultPlan([Fault("crash", "smc.party:P1", after=2)], seed=0)
        channel = FaultyChannel(plan)
        channel.send("P1", "P2", "a", 1)
        channel.send("P1", "P2", "b", 2)
        with pytest.raises(PartyCrashed):
            channel.send("P1", "P2", "c", 3)

    def test_corrupt_fault_mutates_integer_payloads(self):
        plan = FaultPlan([Fault("corrupt", "smc.party:P0", bits=4)], seed=3)
        channel = FaultyChannel(plan, modulus=1 << 16)
        delivered = channel.send("P0", "P1", "mask", 1234)
        assert delivered != 1234 and 0 <= delivered < (1 << 16)
        assert channel._c_corrupted.value == 1


class TestResilientSecureSum:
    def test_healthy_plan_runs_ring_once(self):
        outcome = resilient_secure_sum([3, 5, 9, 4], rng=0)
        assert (outcome.value, outcome.protocol) == (21, "ring-sum")
        assert not outcome.degraded and outcome.attempts == 1

    def test_crashed_party_excluded_and_logged(self):
        plan = FaultPlan([Fault("crash", "smc.party:P2", after=0)], seed=2)
        outcome = resilient_secure_sum([3, 5, 9, 4], plan=plan, rng=0)
        assert outcome.degraded
        assert outcome.excluded == ("P2",)
        assert outcome.protocol == "shares-sum"
        assert outcome.value == 3 + 5 + 4  # the crashed value is lost

    def test_fallback_preserves_survivor_privacy(self):
        """No survivor's input appears in the degraded transcript."""
        values = [31, 57, 90, 44]
        plan = FaultPlan([Fault("crash", "smc.party:P1", after=0)], seed=2)
        transcript = Transcript()
        outcome = resilient_secure_sum(values, plan=plan, rng=0,
                                       transcript=transcript)
        assert outcome.degraded
        survivors = {f"P{i}": [float(v)] for i, v in enumerate(values)
                     if i != 1}
        assert plaintext_exposure(transcript, survivors) == 0.0

    def test_pure_message_loss_is_surfaced_not_masked(self):
        """p=1 drops never identify a crash, so there is no principled
        exclusion — the failure propagates instead of silently degrading."""
        plan = FaultPlan([Fault("drop", "smc.party:P1")], seed=0)
        with pytest.raises(MessageDropped):
            resilient_secure_sum([1, 2, 3], plan=plan, rng=0)

    def test_too_few_survivors_propagates_crash(self):
        plan = FaultPlan([
            Fault("crash", "smc.party:P0", after=0),
            Fault("crash", "smc.party:P1", after=0),
        ], seed=0)
        with pytest.raises(PartyCrashed):
            resilient_secure_sum([1, 2, 3], plan=plan, rng=0,
                                 retry=RetryPolicy(max_attempts=2))

    @pytest.mark.parametrize("seed", [0, 7, 11, 42])
    def test_transient_faults_are_deterministic(self, seed):
        """Whatever a lossy plan does — succeed, degrade, or fail — a
        copy of the plan replays the exact same outcome."""
        plan = FaultPlan([Fault("drop", "smc.party:P0", probability=0.5)],
                         seed=seed)

        def run(p):
            try:
                return ("ok", resilient_secure_sum([7, 8, 9], plan=p, rng=0))
            except MessageDropped as exc:
                return ("dropped", str(exc))

        assert run(plan.copy()) == run(plan.copy())

    def test_simulated_time_accumulates_without_sleeping(self):
        plan = FaultPlan([Fault("delay", "smc.party:P0", delay=0.04)],
                         seed=0)
        outcome = resilient_secure_sum([2, 4, 6], plan=plan, rng=0)
        assert outcome.value == 12
        assert outcome.simulated_seconds > 0.0
