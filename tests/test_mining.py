"""Tests for the mining substrate (trees, Apriori, naive Bayes, metrics)."""

import numpy as np
import pytest

from repro.data import market_baskets, patients
from repro.mining import (
    DecisionTree,
    GaussianNaiveBayes,
    accuracy,
    association_rules,
    confusion_counts,
    f1_score,
    fit_from_distributions,
    frequent_itemsets,
    itemset_support,
    train_test_split_indices,
)


class TestDecisionTree:
    @pytest.fixture(scope="class")
    def xor_free_problem(self):
        """A cleanly separable 2-D problem."""
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=(400, 2))
        y = np.asarray(x[:, 0] + x[:, 1] > 10, dtype=object)
        return x, y

    def test_separable_problem_learned(self, xor_free_problem):
        x, y = xor_free_problem
        tree = DecisionTree(max_depth=6).fit(x, y)
        assert accuracy(y, tree.predict(x)) > 0.9

    def test_generalizes(self, xor_free_problem):
        x, y = xor_free_problem
        tr, te = train_test_split_indices(len(y), 0.25, 0)
        tree = DecisionTree(max_depth=6).fit(x[tr], y[tr])
        assert accuracy(y[te], tree.predict(x[te])) > 0.85

    def test_depth_limit(self, xor_free_problem):
        x, y = xor_free_problem
        tree = DecisionTree(max_depth=2).fit(x, y)
        assert tree.depth() <= 2

    def test_pure_node_is_leaf(self):
        x = np.zeros((20, 1))
        y = np.asarray(["a"] * 20, dtype=object)
        tree = DecisionTree().fit(x, y)
        assert tree.depth() == 0
        assert all(tree.predict(np.zeros((3, 1))) == "a")

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 1)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((3, 2)), ["a", "b"])

    def test_fit_from_distributions(self):
        """The AS 'ByClass' route: reconstruct per class, then train."""
        from repro.ppdm import NoiseModel, reconstruct_univariate
        rng = np.random.default_rng(1)
        lo = rng.normal(0, 1, 300)
        hi = rng.normal(8, 1, 300)
        model = NoiseModel("gaussian", 1.0)
        dist_lo = reconstruct_univariate(lo + model.sample(300, rng), model, bins=30)
        dist_hi = reconstruct_univariate(hi + model.sample(300, rng), model, bins=30)
        tree = fit_from_distributions(
            {"lo": (dist_lo, 300), "hi": (dist_hi, 300)},
            samples_per_class=300, rng=2, max_depth=3,
        )
        x_test = np.array([[0.0], [8.0]])
        pred = tree.predict(x_test)
        assert pred[0] == "lo" and pred[1] == "hi"


class TestApriori:
    @pytest.fixture(scope="class")
    def tx(self):
        return market_baskets(300, seed=3)

    def test_support_counts(self):
        tx = [frozenset("ab"), frozenset("bc"), frozenset("abc")]
        assert itemset_support(tx, {"b"}) == 1.0
        assert itemset_support(tx, {"a", "b"}) == pytest.approx(2 / 3)
        assert itemset_support([], {"a"}) == 0.0

    def test_apriori_monotonicity(self, tx):
        frequent = frequent_itemsets(tx, 0.1, max_size=3)
        for itemset, support in frequent.items():
            for item in itemset:
                subset = itemset - {item}
                if subset:
                    assert frequent[subset] >= support - 1e-12

    def test_planted_pair_found(self, tx):
        frequent = frequent_itemsets(tx, 0.15, max_size=2)
        assert frozenset({"i0", "i1"}) in frequent

    def test_rules_meet_thresholds(self, tx):
        rules = association_rules(tx, 0.12, 0.55, max_size=3)
        assert rules
        for rule in rules:
            assert rule.support >= 0.12
            assert rule.confidence >= 0.55

    def test_rule_confidence_consistent(self, tx):
        rules = association_rules(tx, 0.12, 0.55, max_size=3)
        rule = rules[0]
        sup_all = itemset_support(tx, rule.itemset)
        sup_ant = itemset_support(tx, rule.antecedent)
        assert rule.confidence == pytest.approx(sup_all / sup_ant)

    def test_min_support_validation(self, tx):
        with pytest.raises(ValueError):
            frequent_itemsets(tx, 0.0)

    def test_rule_str(self, tx):
        rule = association_rules(tx, 0.12, 0.55)[0]
        assert "->" in str(rule)


class TestNaiveBayes:
    def test_learns_patients_signal(self, patients_300):
        x = patients_300.matrix(["weight", "age"])
        y = np.asarray(
            patients_300["blood_pressure"]
            > np.median(patients_300["blood_pressure"]),
            dtype=object,
        )
        tr, te = train_test_split_indices(300, 0.3, 1)
        model = GaussianNaiveBayes().fit(x[tr], y[tr])
        assert accuracy(y[te], model.predict(x[te])) > 0.6

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().predict(np.zeros((1, 1)))


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(["a", "b"], ["a", "a"]) == 0.5
        assert accuracy([], []) == 0.0

    def test_accuracy_shape_check(self):
        with pytest.raises(ValueError):
            accuracy(["a"], ["a", "b"])

    def test_confusion_and_f1(self):
        y_true = ["p", "p", "n", "n"]
        y_pred = ["p", "n", "p", "n"]
        assert confusion_counts(y_true, y_pred, "p") == (1, 1, 1, 1)
        assert f1_score(y_true, y_pred, "p") == pytest.approx(0.5)

    def test_f1_degenerate(self):
        assert f1_score(["n"], ["n"], positive="p") == 0.0

    def test_split_partitions(self):
        tr, te = train_test_split_indices(100, 0.3, 0)
        assert len(tr) == 70 and len(te) == 30
        assert sorted(np.concatenate([tr, te])) == list(range(100))

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split_indices(10, 1.5)
