"""Property-based tests (hypothesis) for core invariants."""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.crypto import (
    invmod,
    paillier,
    shamir_reconstruct,
    shamir_shares,
)
from repro.crypto.secret_sharing import additive_reconstruct, additive_shares
from repro.data import Dataset
from repro.pir import TwoServerXorPIR
from repro.sdc import (
    Microaggregation,
    anonymity_level,
    is_k_anonymous,
    mdav_groups,
    rank_swap_column,
    univariate_microaggregation,
)
from repro.smc import ring_secure_sum

# A module-level Paillier key so each example doesn't regenerate primes.
_PUB, _PRIV = paillier.generate_keypair(bits=96, rng=random.Random(99))

_slow = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestCryptoProperties:
    @given(
        m1=st.integers(min_value=0, max_value=10**9),
        m2=st.integers(min_value=0, max_value=10**9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_paillier_homomorphism(self, m1, m2, seed):
        rng = random.Random(seed)
        c = paillier.add(
            _PUB,
            paillier.encrypt(_PUB, m1, rng),
            paillier.encrypt(_PUB, m2, rng),
        )
        assert paillier.decrypt(_PRIV, c) == (m1 + m2) % _PUB.n

    @given(
        m=st.integers(min_value=0, max_value=10**9),
        k=st.integers(min_value=0, max_value=10**4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_paillier_scalar_mult(self, m, k, seed):
        c = paillier.mul_plain(
            _PUB, paillier.encrypt(_PUB, m, random.Random(seed)), k
        )
        assert paillier.decrypt(_PRIV, c) == (m * k) % _PUB.n

    @given(
        secret=st.integers(min_value=0, max_value=2**64),
        n=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    @_slow
    def test_shamir_any_threshold_subset(self, secret, n, seed, data):
        t = data.draw(st.integers(min_value=1, max_value=n))
        shares = shamir_shares(secret, n, t, rng=random.Random(seed))
        subset = data.draw(
            st.permutations(shares).map(lambda p: p[:t])
        )
        assert shamir_reconstruct(subset) == secret

    @given(
        secret=st.integers(min_value=0, max_value=2**32),
        n=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_additive_sharing(self, secret, n, seed):
        shares = additive_shares(secret, n, 1 << 40, random.Random(seed))
        assert additive_reconstruct(shares, 1 << 40) == secret % (1 << 40)

    @given(
        a=st.integers(min_value=1, max_value=10**6),
        p=st.sampled_from([10007, 104729, (1 << 31) - 1]),
    )
    @_slow
    def test_invmod_property(self, a, p):
        assert a % p == 0 or a * invmod(a, p) % p == 1


class TestSecureSumProperties:
    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=2**32),
            min_size=3, max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_ring_sum_correct(self, values, seed):
        assert ring_secure_sum(values, rng=random.Random(seed)) == sum(values)


class TestPIRProperties:
    @given(
        records=st.lists(
            st.integers(min_value=-(2**31), max_value=2**31),
            min_size=1, max_size=40,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    @_slow
    def test_itpir_retrieves_any_index(self, records, seed, data):
        pir = TwoServerXorPIR(records)
        index = data.draw(st.integers(min_value=0, max_value=len(records) - 1))
        assert pir.retrieve_int(index, seed) == records[index]

    @given(
        records=st.lists(
            st.integers(min_value=-(2**31), max_value=2**31),
            min_size=1, max_size=40,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    @_slow
    def test_itpir_batch_equals_sequential(self, records, seed, data):
        """retrieve_batch is byte-identical to sequential retrieve calls
        under the same rng stream, for any database and index list."""
        indices = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(records) - 1),
            min_size=1, max_size=10,
        ))
        batched = TwoServerXorPIR(records).retrieve_batch(
            indices, np.random.default_rng(seed))
        single = TwoServerXorPIR(records)
        rng = np.random.default_rng(seed)
        assert batched == [single.retrieve(i, rng) for i in indices]


class TestSdcProperties:
    @given(
        n=st.integers(min_value=4, max_value=80),
        k=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_mdav_group_size_invariant(self, n, k, seed):
        matrix = np.random.default_rng(seed).normal(size=(n, 2))
        groups = mdav_groups(matrix, k)
        sizes = [g.size for g in groups]
        assert sum(sizes) == n
        if n >= 2 * k:
            assert all(k <= s <= 2 * k - 1 for s in sizes)

    @given(
        n=st.integers(min_value=6, max_value=60),
        k=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_microaggregation_always_k_anonymous(self, n, k, seed):
        """The [12] theorem as a property: for any data, microaggregating
        the key attributes yields a k-anonymous release (when n >= k)."""
        rng = np.random.default_rng(seed)
        data = Dataset({"a": rng.normal(size=n), "b": rng.normal(size=n)})
        release = Microaggregation(k, columns=["a", "b"]).mask(data)
        if n >= k:
            assert is_k_anonymous(release, min(k, n), ["a", "b"])

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=60,
        ),
        window=st.floats(min_value=1.0, max_value=50.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_rank_swap_preserves_multiset(self, values, window, seed):
        swapped = rank_swap_column(
            values, window, np.random.default_rng(seed)
        )
        assert sorted(swapped) == sorted(values)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=60,
        ),
        k=st.integers(min_value=1, max_value=8),
    )
    @_slow
    def test_univariate_microagg_preserves_mean(self, values, k):
        out = univariate_microaggregation(values, k)
        np.testing.assert_allclose(
            np.mean(out), np.mean(values), rtol=1e-9, atol=1e-6
        )

    @given(
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_anonymity_level_bounds(self, n, seed):
        rng = np.random.default_rng(seed)
        data = Dataset({"a": rng.integers(0, 4, size=n).astype(float)})
        level = anonymity_level(data, ["a"])
        assert 1 <= level <= n


class TestParserProperties:
    @given(
        col=st.sampled_from(["height", "weight", "blood_pressure"]),
        op=st.sampled_from(["<", "<=", ">", ">=", "=", "!="]),
        value=st.integers(min_value=0, max_value=300),
        agg=st.sampled_from(["COUNT", "SUM", "AVG", "MIN", "MAX"]),
    )
    @_slow
    def test_parse_str_round_trip(self, col, op, value, agg):
        from repro.qdb import parse_query
        target = "*" if agg == "COUNT" else "blood_pressure"
        text = f"SELECT {agg}({target}) WHERE {col} {op} {value}"
        query = parse_query(text)
        assert parse_query(str(query)) == query


class TestPramProperties:
    @given(
        counts=st.lists(st.integers(min_value=1, max_value=50),
                        min_size=2, max_size=6),
        retention=st.floats(min_value=0.05, max_value=0.99),
    )
    @_slow
    def test_invariant_matrix_property(self, counts, retention):
        """t P = t for every column composition and retention level."""
        from repro.sdc import invariant_matrix
        column = [f"v{i}" for i, c in enumerate(counts) for _ in range(c)]
        m = invariant_matrix(column, retention)
        total = sum(counts)
        t = np.array([
            column.count(v) / total for v in m.values
        ])
        assert np.allclose(t @ m.matrix, t, atol=1e-9)
        assert np.allclose(m.matrix.sum(axis=1), 1.0)
        assert np.all(m.matrix >= -1e-12)


class TestKeywordPirProperties:
    @given(
        mapping=st.dictionaries(
            st.text(alphabet="abcdef", min_size=1, max_size=8),
            st.integers(min_value=-(2**40), max_value=2**40),
            min_size=1, max_size=24,
        ),
        seed=st.integers(min_value=0, max_value=2**16),
        data=st.data(),
    )
    @_slow
    def test_lookup_hits_and_misses(self, mapping, seed, data):
        from repro.pir import KeywordPIR
        pir = KeywordPIR(mapping)
        key = data.draw(st.sampled_from(sorted(mapping)))
        assert pir.lookup(key, seed) == mapping[key]
        absent = key + "zz"
        if absent not in mapping:
            assert pir.lookup(absent, seed + 1) is None


class TestIntersectionProperties:
    @given(
        labels_a=st.lists(st.integers(min_value=0, max_value=3),
                          min_size=2, max_size=40),
        data=st.data(),
    )
    @_slow
    def test_self_intersection_never_reidentifies_beyond_singletons(
        self, labels_a, data
    ):
        """Intersecting a release with itself re-identifies exactly its
        own singletons — composition adds nothing."""
        from repro.attacks import intersection_attack
        from repro.sdc import uniqueness_rate
        release = Dataset({"g": [float(v) for v in labels_a]})
        report = intersection_attack(release, release, ["g"], ["g"])
        assert report.reidentified_rate == pytest.approx(
            uniqueness_rate(release, ["g"])
        )


class TestTabularProperties:
    @given(
        n=st.integers(min_value=20, max_value=120),
        n_rows=st.integers(min_value=2, max_value=5),
        n_cols=st.integers(min_value=2, max_value=5),
        threshold=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_complementary_suppression_always_safe(
        self, n, n_rows, n_cols, threshold, seed
    ):
        """For any random contingency table, after complementary
        suppression the margin attack recovers nothing."""
        from repro.qdb import margin_reconstruction_attack, protect_table
        rng = np.random.default_rng(seed)
        data = Dataset({
            "r": rng.integers(0, n_rows, size=n).astype(float),
            "c": rng.integers(0, n_cols, size=n).astype(float),
        })
        table = protect_table(data, "r", "c", threshold)
        assert margin_reconstruction_attack(table) == {}

    @given(
        n=st.integers(min_value=10, max_value=80),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @_slow
    def test_margins_never_suppressed(self, n, seed):
        """Published margins always equal the true totals."""
        from repro.qdb import protect_table
        rng = np.random.default_rng(seed)
        data = Dataset({
            "r": rng.integers(0, 3, size=n).astype(float),
            "c": rng.integers(0, 3, size=n).astype(float),
        })
        table = protect_table(data, "r", "c", 3)
        assert table.row_margins.sum() == n
        assert table.col_margins.sum() == n
