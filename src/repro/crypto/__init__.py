"""Cryptographic substrate: number theory, Paillier, RSA, OT, sharing."""

from . import commutative, numbertheory, oblivious_transfer, paillier, rsa, secret_sharing
from .commutative import CommutativeKey, generate_key, hash_to_group, shared_modulus
from .numbertheory import (
    crt_pair,
    egcd,
    invmod,
    is_probable_prime,
    lcm,
    random_coprime,
    random_prime,
    random_safe_prime,
)
from .oblivious_transfer import (
    ObliviousTransferReceiver,
    ObliviousTransferSender,
    transfer,
)
from .paillier import (
    PaillierPrivateKey,
    PaillierPublicKey,
)
from .rsa import RsaPrivateKey, RsaPublicKey
from .secret_sharing import (
    DEFAULT_PRIME,
    additive_reconstruct,
    additive_shares,
    shamir_reconstruct,
    shamir_shares,
)

__all__ = [
    "CommutativeKey",
    "DEFAULT_PRIME",
    "ObliviousTransferReceiver",
    "ObliviousTransferSender",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "RsaPrivateKey",
    "RsaPublicKey",
    "additive_reconstruct",
    "additive_shares",
    "commutative",
    "crt_pair",
    "egcd",
    "generate_key",
    "hash_to_group",
    "invmod",
    "is_probable_prime",
    "lcm",
    "numbertheory",
    "oblivious_transfer",
    "paillier",
    "random_coprime",
    "random_prime",
    "random_safe_prime",
    "rsa",
    "secret_sharing",
    "shamir_reconstruct",
    "shamir_shares",
    "shared_modulus",
    "transfer",
]
