"""Secret sharing: additive (mod m) and Shamir threshold shares.

Additive sharing is the basis of the secure-sum protocol; Shamir sharing
provides (t, n)-threshold reconstruction used by robust variants of the
crypto-PPDM protocols in :mod:`repro.smc`.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .numbertheory import invmod

#: A 127-bit Mersenne prime; the default Shamir field.
DEFAULT_PRIME = (1 << 127) - 1


def additive_shares(
    secret: int, n_shares: int, modulus: int, rng: random.Random | None = None
) -> list[int]:
    """Split *secret* into *n_shares* values summing to it mod *modulus*."""
    if n_shares < 1:
        raise ValueError("need at least one share")
    rng = rng or random.Random()
    shares = [rng.randrange(modulus) for _ in range(n_shares - 1)]
    shares.append((secret - sum(shares)) % modulus)
    return shares


def additive_reconstruct(shares: Sequence[int], modulus: int) -> int:
    """Recombine additive shares."""
    return sum(shares) % modulus


def _eval_poly(coeffs: Sequence[int], x: int, prime: int) -> int:
    result = 0
    for c in reversed(coeffs):
        result = (result * x + c) % prime
    return result


def shamir_shares(
    secret: int,
    n_shares: int,
    threshold: int,
    prime: int = DEFAULT_PRIME,
    rng: random.Random | None = None,
) -> list[tuple[int, int]]:
    """Split *secret* into ``(x, y)`` points; any *threshold* reconstruct it."""
    if not 1 <= threshold <= n_shares:
        raise ValueError("need 1 <= threshold <= n_shares")
    if not 0 <= secret < prime:
        raise ValueError("secret must be in [0, prime)")
    rng = rng or random.Random()
    coeffs = [secret] + [rng.randrange(prime) for _ in range(threshold - 1)]
    return [(x, _eval_poly(coeffs, x, prime)) for x in range(1, n_shares + 1)]


def shamir_reconstruct(
    shares: Sequence[tuple[int, int]], prime: int = DEFAULT_PRIME
) -> int:
    """Lagrange-interpolate the secret (value at x = 0) from *shares*."""
    if not shares:
        raise ValueError("need at least one share")
    xs = [x for x, _ in shares]
    if len(set(xs)) != len(xs):
        raise ValueError("shares must have distinct x coordinates")
    secret = 0
    for i, (xi, yi) in enumerate(shares):
        num, den = 1, 1
        for j, (xj, _) in enumerate(shares):
            if i == j:
                continue
            num = num * (-xj) % prime
            den = den * (xi - xj) % prime
        secret = (secret + yi * num * invmod(den, prime)) % prime
    return secret
