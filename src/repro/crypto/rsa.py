"""Textbook RSA, used as a building block for oblivious transfer.

This is *textbook* (unpadded) RSA: sufficient for the Even–Goldreich–Lempel
oblivious-transfer construction simulated here, not for production use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .numbertheory import invmod, random_prime


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key (n, d)."""

    public: RsaPublicKey
    d: int


def generate_keypair(
    bits: int = 256, e: int = 65537, rng: random.Random | None = None
) -> tuple[RsaPublicKey, RsaPrivateKey]:
    """Generate an RSA keypair with an *bits*-bit modulus."""
    rng = rng or random.Random(4721)
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = invmod(e, phi)
        except ValueError:
            continue
        public = RsaPublicKey(p * q, e)
        return public, RsaPrivateKey(public, d)


def encrypt(public: RsaPublicKey, message: int) -> int:
    """Raw RSA encryption m^e mod n."""
    return pow(message % public.n, public.e, public.n)


def decrypt(private: RsaPrivateKey, ciphertext: int) -> int:
    """Raw RSA decryption c^d mod n."""
    return pow(ciphertext % private.public.n, private.d, private.public.n)
