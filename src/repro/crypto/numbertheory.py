"""Number-theoretic primitives for the cryptographic substrate.

Everything the Paillier cryptosystem, RSA-based oblivious transfer, the
SRA commutative cipher and Shamir secret sharing need: extended gcd,
modular inverses, Miller–Rabin primality testing and prime generation.

These primitives back a *simulation* of cryptographic protocols used to
measure what protocol transcripts reveal; randomness therefore comes from a
seedable :class:`random.Random` so experiments are reproducible.  Key sizes
default to small-but-meaningful values (256–512 bits) to keep laptop-scale
benchmarks fast.
"""

from __future__ import annotations

import random

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def invmod(a: int, m: int) -> int:
    """Modular inverse of *a* modulo *m*; raises if it does not exist."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m} (gcd={g})")
    return x % m


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> int:
    """Chinese remainder for two coprime moduli: x ≡ r1 (m1), x ≡ r2 (m2)."""
    g, p, _ = egcd(m1, m2)
    if g != 1:
        raise ValueError("moduli must be coprime")
    return (r1 + (r2 - r1) * p % m2 * m1) % (m1 * m2)


def is_probable_prime(n: int, rounds: int = 32, rng: random.Random | None = None) -> bool:
    """Miller–Rabin primality test (probabilistic, error ≤ 4^-rounds)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0xC0FFEE ^ n)
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """Return a random prime with exactly *bits* bits."""
    if bits < 3:
        raise ValueError("need at least 3 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> int:
    """Return a safe prime p = 2q + 1 with *bits* bits (q also prime)."""
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return p


def random_coprime(n: int, rng: random.Random) -> int:
    """Return a uniform element of (Z/nZ)*."""
    while True:
        candidate = rng.randrange(2, n)
        if egcd(candidate, n)[0] == 1:
            return candidate


def lcm(a: int, b: int) -> int:
    """Least common multiple."""
    return a // egcd(a, b)[0] * b
