"""SRA / Pohlig–Hellman commutative encryption.

Exponentiation ciphers over a shared safe prime commute:
``E_a(E_b(x)) == E_b(E_a(x))``.  This property powers the private
set-intersection protocol of :mod:`repro.smc.set_intersection`, which the
paper's Section 4 uses as an example of cryptographic PPDM (owner privacy
without user privacy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .numbertheory import egcd, invmod, random_safe_prime


def shared_modulus(bits: int = 128, rng: random.Random | None = None) -> int:
    """Generate a safe prime all parties agree on."""
    rng = rng or random.Random(193)
    return random_safe_prime(bits, rng)


@dataclass(frozen=True)
class CommutativeKey:
    """A private exponent for the shared safe-prime group."""

    p: int
    exponent: int

    def encrypt(self, value: int) -> int:
        """Encrypt *value* (must be in [1, p))."""
        v = value % self.p
        if v == 0:
            raise ValueError("0 is not encryptable in the multiplicative group")
        return pow(v, self.exponent, self.p)

    def decrypt(self, value: int) -> int:
        """Invert :meth:`encrypt`."""
        inverse = invmod(self.exponent, self.p - 1)
        return pow(value % self.p, inverse, self.p)


def generate_key(p: int, rng: random.Random | None = None) -> CommutativeKey:
    """Pick a random exponent coprime with p - 1."""
    rng = rng or random.Random()
    while True:
        e = rng.randrange(3, p - 1)
        if egcd(e, p - 1)[0] == 1:
            return CommutativeKey(p, e)


def hash_to_group(value: object, p: int) -> int:
    """Deterministically map an arbitrary value into [1, p).

    Uses Python's stable-for-a-process ``hash`` of the ``repr`` digest via
    SHA-256 so results are stable across processes.
    """
    import hashlib

    digest = hashlib.sha256(repr(value).encode()).digest()
    return int.from_bytes(digest, "big") % (p - 1) + 1
