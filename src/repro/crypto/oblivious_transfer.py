"""1-out-of-2 oblivious transfer (Even–Goldreich–Lempel).

The sender holds two messages; the receiver learns exactly one of them and
the sender does not learn which.  OT is the classical foundation of the
secure two-party computations the paper groups under *crypto PPDM*
(Lindell–Pinkas [18,19]); :mod:`repro.smc.millionaires` builds on it.

Protocol (RSA-based):

1. Sender publishes an RSA key and two random group elements x0, x1.
2. Receiver picks choice bit b and random k, sends v = x_b + Enc(k).
3. Sender computes k_i = Dec(v - x_i) for i in {0, 1} and returns
   m_i + k_i; only the chosen branch decodes for the receiver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from . import rsa


@dataclass
class ObliviousTransferSender:
    """The sender side of a 1-of-2 OT, holding messages ``(m0, m1)``."""

    m0: int
    m1: int
    bits: int = 256
    rng: random.Random = field(default_factory=lambda: random.Random(8))

    def __post_init__(self) -> None:
        self.public, self._private = rsa.generate_keypair(self.bits, rng=self.rng)
        n = self.public.n
        if not (0 <= self.m0 < n and 0 <= self.m1 < n):
            raise ValueError("messages must fit in the RSA modulus")
        self.x0 = self.rng.randrange(n)
        self.x1 = self.rng.randrange(n)

    def offer(self) -> tuple[rsa.RsaPublicKey, int, int]:
        """First flow: public key and the two random elements."""
        return self.public, self.x0, self.x1

    def respond(self, v: int) -> tuple[int, int]:
        """Second flow: blinded messages ``(m0 + k0, m1 + k1) mod n``."""
        n = self.public.n
        k0 = rsa.decrypt(self._private, (v - self.x0) % n)
        k1 = rsa.decrypt(self._private, (v - self.x1) % n)
        return (self.m0 + k0) % n, (self.m1 + k1) % n


@dataclass
class ObliviousTransferReceiver:
    """The receiver side, holding choice bit ``b``."""

    b: int
    rng: random.Random = field(default_factory=lambda: random.Random(9))

    def __post_init__(self) -> None:
        if self.b not in (0, 1):
            raise ValueError("choice bit must be 0 or 1")
        self._k: int | None = None
        self._public: rsa.RsaPublicKey | None = None

    def request(self, offer: tuple[rsa.RsaPublicKey, int, int]) -> int:
        """Blind the chosen element with a fresh secret ``k``."""
        public, x0, x1 = offer
        self._public = public
        self._k = self.rng.randrange(public.n)
        x_b = (x0, x1)[self.b]
        return (x_b + rsa.encrypt(public, self._k)) % public.n

    def receive(self, response: tuple[int, int]) -> int:
        """Unblind the chosen branch."""
        if self._k is None or self._public is None:
            raise RuntimeError("request() must run before receive()")
        return (response[self.b] - self._k) % self._public.n


def transfer(m0: int, m1: int, choice: int, bits: int = 256,
             seed: int = 0) -> int:
    """Run a complete 1-of-2 OT locally and return the chosen message."""
    rng = random.Random(seed)
    sender = ObliviousTransferSender(m0, m1, bits=bits, rng=rng)
    receiver = ObliviousTransferReceiver(choice, rng=random.Random(seed + 1))
    v = receiver.request(sender.offer())
    return receiver.receive(sender.respond(v))
