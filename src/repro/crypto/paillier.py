"""Paillier additively homomorphic public-key encryption.

Paillier encryption is the workhorse of single-server computational PIR
(:mod:`repro.pir.cpir`) and of several secure-computation protocols
(:mod:`repro.smc`): ciphertexts can be *added* and *scaled by plaintext
constants* without the secret key.

Standard scheme (simplified g = n + 1 variant):

* key: n = p*q, λ = lcm(p-1, q-1), μ = λ^{-1} mod n
* Enc(m; r) = (1 + n)^m * r^n  mod n²
* Dec(c)    = L(c^λ mod n²) * μ mod n,   L(u) = (u - 1) / n
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .numbertheory import invmod, lcm, random_coprime, random_prime


@dataclass(frozen=True)
class PaillierPublicKey:
    """Paillier public key (the modulus)."""

    n: int

    @property
    def n_squared(self) -> int:
        """Ciphertext modulus n²."""
        return self.n * self.n

    @property
    def plaintext_space(self) -> int:
        """Plaintexts live in Z_n."""
        return self.n


@dataclass(frozen=True)
class PaillierPrivateKey:
    """Paillier private key (Carmichael value and its inverse)."""

    public: PaillierPublicKey
    lam: int
    mu: int


def generate_keypair(
    bits: int = 256, rng: random.Random | None = None
) -> tuple[PaillierPublicKey, PaillierPrivateKey]:
    """Generate a Paillier keypair with an *bits*-bit modulus."""
    rng = rng or random.Random(2007)
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p != q:
            break
    n = p * q
    lam = lcm(p - 1, q - 1)
    public = PaillierPublicKey(n)
    mu = invmod(lam, n)
    return public, PaillierPrivateKey(public, lam, mu)


def encrypt(
    public: PaillierPublicKey, message: int, rng: random.Random | None = None
) -> int:
    """Encrypt *message* (reduced mod n) under *public*."""
    rng = rng or random.Random()
    n, n2 = public.n, public.n_squared
    m = message % n
    r = random_coprime(n, rng)
    # (1 + n)^m = 1 + m*n  (mod n^2), which avoids a full modexp.
    return (1 + m * n) % n2 * pow(r, n, n2) % n2


def decrypt(private: PaillierPrivateKey, ciphertext: int) -> int:
    """Decrypt *ciphertext*; result is in [0, n)."""
    n, n2 = private.public.n, private.public.n_squared
    u = pow(ciphertext, private.lam, n2)
    ell = (u - 1) // n
    return ell * private.mu % n


def decrypt_signed(private: PaillierPrivateKey, ciphertext: int) -> int:
    """Decrypt, mapping the upper half of Z_n to negative integers."""
    n = private.public.n
    value = decrypt(private, ciphertext)
    return value - n if value > n // 2 else value


def add(public: PaillierPublicKey, c1: int, c2: int) -> int:
    """Homomorphic addition: Dec(add(c1, c2)) = m1 + m2 mod n."""
    return c1 * c2 % public.n_squared


def add_plain(public: PaillierPublicKey, c: int, k: int) -> int:
    """Homomorphic addition of a plaintext constant."""
    n, n2 = public.n, public.n_squared
    return c * ((1 + (k % n) * n) % n2) % n2


def mul_plain(public: PaillierPublicKey, c: int, k: int) -> int:
    """Homomorphic multiplication by a plaintext constant."""
    return pow(c, k % public.n, public.n_squared)


def encrypt_zero(public: PaillierPublicKey, rng: random.Random | None = None) -> int:
    """A fresh encryption of zero (useful for re-randomization)."""
    return encrypt(public, 0, rng)


def rerandomize(
    public: PaillierPublicKey, c: int, rng: random.Random | None = None
) -> int:
    """Refresh the randomness of *c* without changing the plaintext."""
    return add(public, c, encrypt_zero(public, rng))
