"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``table1``
    Print the paper's Table 1 and its anonymity analysis.
``table2``
    Run the empirical technology scoring and print the comparison.
``recommend R,O,U``
    Print the Section 6 deployment recommendation for the requested
    privacy dimensions (any of ``respondent``, ``owner``, ``user``).
``mask <csv> --method ... --k ...``
    Mask a CSV file and write the release next to it.
``tracker``
    Demonstrate the Schlörer tracker against a synthetic database.
``attack-pir``
    Run the Section 3 COUNT/AVG attack on Dataset 2.
``qdb explain "<query>" --policies size:5,overlap:40,sum-audit``
    Render the query's compiled plan before and after the optimizer
    passes (fused audit checks, pruned no-ops); ``--pir-demo`` adds the
    coalesced PIR fetch plan for a Section 3 range batch.
``telemetry report <trace.jsonl>``
    Summarize a captured trace: latency table, slowest spans, refusals.
``telemetry dashboard``
    Render the privacy-meter dashboard beside live operational metrics.
``telemetry smoke``
    Run the instrumented S1/S3a scenario and validate its capture
    against the span schema (the CI drift gate).
``faults chaos``
    Run the scripted chaos scenario: byzantine PIR replicas, crashed
    SMC parties and failing qdb backends, asserting the privacy
    invariants hold under fire (the ``make chaos`` gate).
``observe [trace.jsonl]``
    The privacy observatory: replay a captured trace (``--follow``
    narrates each alert as it fires, ``--limit N`` caps the narration)
    or run the live instrumented scenario, then render per-dimension
    posture meters beside the fired alerts.  ``--smoke`` validates the
    committed golden trace (the ``make observe-smoke`` gate);
    ``--metrics-out`` exports the metrics snapshot as OpenMetrics text
    or JSONL.
``observe serve``
    Boot the resident observatory service: an HTTP server exposing the
    OpenMetrics scrape (``/metrics``), the live SSE event stream
    (``/events``), per-session timelines (``/sessions``), and
    one-call incident bundles (``/incident``).  ``--load`` drives the
    deterministic concurrent load generator once at startup;
    ``--smoke`` runs the full end-to-end gate (``make
    observe-serve-smoke``): concurrent zipfian load with an injected
    tracker cohort must produce the tracker-probe alert over real
    HTTP/SSE and a verifying incident bundle.
``observe http://host:port``
    Follow a running service's SSE stream: alerts are narrated as they
    fire (``--follow`` adds posture points, ``--limit N`` disconnects
    after N alerts); Ctrl-C exits cleanly.
``serve``
    Boot the sharded serving runtime with the observatory service's
    HTTP surface on top: consistent-hash session routing, bounded
    per-shard queues, token-bucket admission, and the shared
    cross-shard audit view.  ``--load`` drives the concurrent load
    generator (runtime mode, split-tracker cohort) once at startup;
    ``--smoke`` runs the full gate (``make serve-smoke``): the
    cross-shard split tracker must be refused and its tracker-probe
    alert must arrive over real HTTP/SSE.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _cmd_table1(_args: argparse.Namespace) -> int:
    from .data import dataset_1, dataset_2, format_table_1
    from .sdc import anonymity_level

    print(format_table_1())
    print()
    print(f"Dataset 1 anonymity level: {anonymity_level(dataset_1())}")
    print(f"Dataset 2 anonymity level: {anonymity_level(dataset_2())}")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .core import format_table2, score_technologies

    comparison = score_technologies(seed=args.seed)
    print(format_table2(comparison))
    return 0 if comparison.agreement == 1.0 else 1


def _parse_dimensions(spec: str):
    from .core import PrivacyDimension

    alias = {
        "r": PrivacyDimension.RESPONDENT,
        "respondent": PrivacyDimension.RESPONDENT,
        "o": PrivacyDimension.OWNER,
        "owner": PrivacyDimension.OWNER,
        "u": PrivacyDimension.USER,
        "user": PrivacyDimension.USER,
    }
    dims = set()
    for token in spec.split(","):
        token = token.strip().lower()
        if token not in alias:
            raise SystemExit(
                f"unknown dimension {token!r}; use respondent/owner/user"
            )
        dims.add(alias[token])
    return dims


def _cmd_recommend(args: argparse.Namespace) -> int:
    from .core import recommend

    for rec in recommend(_parse_dimensions(args.dimensions)):
        print(f"* {rec.description}")
        print(f"  {rec.rationale}")
    return 0


_METHODS = {
    "microaggregation": lambda a: _sdc().Microaggregation(a.k),
    "mondrian": lambda a: _sdc().MondrianKAnonymizer(a.k),
    "condensation": lambda a: _sdc().Condensation(a.k),
    "noise": lambda a: _sdc().UncorrelatedNoise(a.scale),
    "rankswap": lambda a: _sdc().RankSwap(a.scale * 100),
    "pram": lambda a: _sdc().Pram(1.0 - a.scale),
}


def _sdc():
    from . import sdc

    return sdc


def _cmd_mask(args: argparse.Namespace) -> int:
    from .data import read_csv, write_csv
    from .sdc import assess_risk, assess_utility

    source = Path(args.csv)
    data = read_csv(source)
    method = _METHODS[args.method](args)
    release = method.mask(data, np.random.default_rng(args.seed))
    target = source.with_name(f"{source.stem}.masked{source.suffix}")
    write_csv(release, target)
    print(f"wrote {target} ({release.n_rows} rows) using {method.name}")
    numeric = [
        c for c in data.numeric_columns()
        if c in release.column_names and release.is_numeric(c)
    ]
    if numeric and release.n_rows == data.n_rows:
        risk = assess_risk(data, release, numeric)
        utility = assess_utility(data, release, numeric)
        print(f"linkage risk {risk.linkage_rate:.3f}, "
              f"IL1s {utility.il1s:.3f}")
    return 0


def _cmd_tracker(args: argparse.Namespace) -> int:
    from .data import patients
    from .qdb import (
        QuerySetSizeControl,
        StatisticalDatabase,
        tracker_attack,
    )
    from .sdc import equivalence_classes

    pop = patients(args.records, seed=args.seed)
    unique = [
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
        and (pop["height"] == pop["height"][cls.indices[0]]).sum() >= 6
    ]
    if not unique:
        print("no trackable unique target in this population")
        return 1
    db = StatisticalDatabase(pop, [QuerySetSizeControl(5)])
    result = tracker_attack(
        db, pop, unique[0], ["height", "weight"], "blood_pressure"
    )
    print(f"target record #{unique[0]}")
    print(f"tracker succeeded: {result.succeeded}")
    if result.succeeded:
        print(f"inferred blood pressure {result.inferred_value:.0f} "
              f"(truth {result.true_value:.0f}) "
              f"in {result.queries_asked} size-controlled queries")
    return 0 if result.succeeded else 1


def _cmd_scoreboard(args: argparse.Namespace) -> int:
    from .core import masking_scoreboard
    from .data import patients
    from .sdc import (
        Condensation,
        IdentityMasking,
        Microaggregation,
        MondrianKAnonymizer,
        RankSwap,
        SyntheticRelease,
        UncorrelatedNoise,
    )

    population = patients(args.records, seed=args.seed).drop(["patient_id"])
    methods = [
        IdentityMasking(),
        Microaggregation(5),
        MondrianKAnonymizer(5),
        Condensation(14),
        SyntheticRelease(),
        UncorrelatedNoise(0.5),
        RankSwap(15),
    ]
    for assessment in masking_scoreboard(
        methods, population, with_pir=args.pir, seed=args.seed
    ):
        print(assessment.summary())
    return 0


def _cmd_attack_pir(_args: argparse.Namespace) -> int:
    from .attacks import isolation_attack
    from .data import dataset_2
    from .pir import PrivateAggregateIndex

    ds2 = dataset_2()
    index = PrivateAggregateIndex(
        ds2, ["height", "weight"], "blood_pressure",
        edges={"height": [150, 165, 180, 200], "weight": [50, 80, 105, 130]},
    )
    result = index.query({"height": (0, 165), "weight": (105, 1000)})
    print("SELECT COUNT(*)             WHERE height < 165 AND weight > 105 "
          f"-> {result.count}")
    print("SELECT AVG(blood_pressure)  WHERE height < 165 AND weight > 105 "
          f"-> {result.average:.0f}")
    sweep = isolation_attack(index, ds2.n_rows)
    print(f"full sweep: {len(sweep.victims)}/{sweep.population} respondents "
          "isolated while the PIR servers learned nothing")
    return 0


def _parse_policy_stack(spec: str):
    from .qdb import (
        CamouflageIntervals,
        NoisePerturbation,
        OverlapControl,
        QuerySetSizeControl,
        RandomSampleQueries,
        SumAuditPolicy,
    )

    factories = {
        "size": lambda arg: QuerySetSizeControl(int(arg or 5)),
        "overlap": lambda arg: OverlapControl(int(arg or 40)),
        "sum-audit": lambda arg: SumAuditPolicy(),
        "noise": lambda arg: NoisePerturbation(float(arg or 1.0)),
        "sample": lambda arg: RandomSampleQueries(float(arg or 0.9)),
        "camouflage": lambda arg: CamouflageIntervals(int(arg or 2)),
    }
    policies = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, _, arg = token.partition(":")
        if name not in factories:
            raise SystemExit(
                f"unknown policy {name!r}; choose from "
                f"{', '.join(sorted(factories))} (e.g. size:5,overlap:40)"
            )
        policies.append(factories[name](arg))
    return policies


def _cmd_qdb(args: argparse.Namespace) -> int:
    return _QDB_COMMANDS[args.qdb_command](args)


def _cmd_qdb_explain(args: argparse.Namespace) -> int:
    from .data import patients
    from .qdb import ParseError, StatisticalDatabase

    pop = patients(args.records, seed=args.seed)
    db = StatisticalDatabase(pop, _parse_policy_stack(args.policies))
    try:
        print(db.explain(args.query))
    except ParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.pir_demo:
        from .data import dataset_2
        from .pir import PrivateAggregateIndex

        index = PrivateAggregateIndex(
            dataset_2(), ["height", "weight"], "blood_pressure",
            edges={"height": [150, 165, 180, 200],
                   "weight": [50, 80, 105, 130]},
        )
        print()
        print("-- PIR fetch coalescing (Section 3 grid, 2-query batch) --")
        print(index.explain_plan([
            {"height": (0, 165), "weight": (105, 1000)},
            {"height": (0, 165)},
        ]))
    return 0


_QDB_COMMANDS = {
    "explain": _cmd_qdb_explain,
}


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from .telemetry import SpanSchemaError

    try:
        return _TELEMETRY_COMMANDS[args.telemetry_command](args)
    except (SpanSchemaError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_telemetry_report(args: argparse.Namespace) -> int:
    from .telemetry import load_trace

    report = load_trace(args.trace, validate=not args.no_validate)
    print(report.format(top=args.top))
    return 0


def _cmd_telemetry_dashboard(args: argparse.Namespace) -> int:
    from .core import assess_masking
    from .data import patients
    from .sdc import Microaggregation, RankSwap, UncorrelatedNoise
    from .telemetry import instrument as tele
    from .telemetry import render_dashboard

    population = patients(args.records, seed=args.seed).drop(["patient_id"])
    methods = [Microaggregation(5), UncorrelatedNoise(0.5), RankSwap(15)]
    with tele.session():
        assessments = [
            assess_masking(m, population, with_pir=args.pir, seed=args.seed)
            for m in methods
        ]
        snapshot = tele.snapshot()
    print(render_dashboard(assessments, snapshot))
    return 0


def _cmd_telemetry_smoke(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from .telemetry import SmokeError, run_smoke

    trace = args.out or str(
        Path(tempfile.gettempdir()) / "repro-telemetry-smoke.jsonl"
    )
    try:
        summary = run_smoke(trace, records=args.records, seed=args.seed)
    except SmokeError as exc:
        print(f"telemetry smoke FAILED: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True))
    print("telemetry smoke OK")
    return 0


_TELEMETRY_COMMANDS = {
    "report": _cmd_telemetry_report,
    "dashboard": _cmd_telemetry_dashboard,
    "smoke": _cmd_telemetry_smoke,
}


def _cmd_faults(args: argparse.Namespace) -> int:
    return _FAULTS_COMMANDS[args.faults_command](args)


def _cmd_faults_chaos(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from .faults import ChaosError, run_chaos
    from .telemetry import SpanSchemaError

    trace = args.out or str(
        Path(tempfile.gettempdir()) / "repro-faults-chaos.jsonl"
    )
    try:
        summary = run_chaos(trace, records=args.records, seed=args.seed,
                            f=args.f)
    except (ChaosError, SpanSchemaError) as exc:
        print(f"chaos FAILED: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True))
    print(f"chaos OK: {summary['invariants_held']} invariants held, "
          f"{summary['degradation_decisions']} degradation decisions "
          f"logged to {summary['trace']}")
    return 0


_FAULTS_COMMANDS = {
    "chaos": _cmd_faults_chaos,
}


def _export_metrics(args: argparse.Namespace) -> None:
    from .telemetry import instrument as tele
    from .telemetry.observatory import render_openmetrics, write_snapshot_jsonl

    snapshot = tele.snapshot()
    if args.metrics_format == "openmetrics":
        Path(args.metrics_out).write_text(
            render_openmetrics(snapshot), encoding="utf-8"
        )
    else:
        write_snapshot_jsonl(snapshot, args.metrics_out)
    print(f"metrics snapshot ({args.metrics_format}) -> {args.metrics_out}")


def _cmd_observe(args: argparse.Namespace) -> int:
    try:
        return _observe_dispatch(args)
    except KeyboardInterrupt:
        # A follow/serve session is normally ended by Ctrl-C; exit the
        # way interactive unix tools do — a clean line, no traceback.
        print("\ninterrupted", file=sys.stderr)
        return 130


def _observe_dispatch(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from .telemetry import SpanSchemaError
    from .telemetry.observatory import replay_trace
    from .telemetry.observatory.smoke import (
        ObserveSmokeError,
        run_observe_smoke,
    )

    if args.trace == "serve":
        return _observe_serve(args)
    if args.trace is not None and args.trace.startswith(("http://",
                                                         "https://")):
        return _observe_follow_sse(args)

    if args.smoke:
        try:
            summary = run_observe_smoke(args.trace)
        except (ObserveSmokeError, SpanSchemaError) as exc:
            print(f"observe smoke FAILED: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(summary, indent=2, sort_keys=True))
        print("observe smoke OK")
        return 0

    trace = args.trace
    if trace is None:
        # Live mode: run the instrumented attack scenario, capture it,
        # then read the observatory state back off the capture — the
        # same path `--follow` replays, so what you watch is exactly
        # what a later forensic replay will re-derive.
        from .telemetry import SmokeError, run_smoke

        trace = args.out or str(
            Path(tempfile.gettempdir()) / "repro-observe.jsonl"
        )
        try:
            run_smoke(trace, records=args.records, seed=args.seed)
        except SmokeError as exc:
            print(f"observe scenario FAILED: {exc}", file=sys.stderr)
            return 1
        print(f"live scenario captured -> {trace}\n")

    narrated = 0

    def narrate(alert, record):
        nonlocal narrated
        if args.limit is not None and narrated >= args.limit:
            return
        narrated += 1
        print(f"  step {alert.step:>5d}  [{alert.severity:<8s}] "
              f"{alert.name} ({alert.dimension}): {alert.detail}")
        if args.limit is not None and narrated == args.limit:
            print(f"  ... narration capped at --limit {args.limit}")

    try:
        observatory = replay_trace(
            trace, on_alert=narrate if args.follow else None
        )
    except (SpanSchemaError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.follow:
        print()
    print(observatory.render(title=f"privacy observatory — {trace}"))
    if args.metrics_out:
        print()
        _export_metrics(args)
    return 0


def _observe_serve(args: argparse.Namespace) -> int:
    import json
    import threading
    import time

    from .telemetry import instrument
    from .telemetry.observatory.service import (
        LoadGenerator,
        ObservatoryService,
        ServeSmokeError,
        create_server,
        run_serve_smoke,
    )

    if args.smoke:
        try:
            summary = run_serve_smoke(
                records=args.records, seed=args.seed, profile=args.profile
            )
        except ServeSmokeError as exc:
            print(f"observe serve smoke FAILED: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(summary, indent=2, sort_keys=True))
        print("observe serve smoke OK")
        return 0

    service = ObservatoryService()
    server = create_server(service, port=args.port)
    host, port = server.server_address[:2]
    server_thread = threading.Thread(
        target=server.serve_forever, name="observatory-http", daemon=True
    )
    with instrument.session(args.out) as tracer:
        service.attach(tracer)
        server_thread.start()
        print(f"observatory service listening on http://{host}:{port}")
        print("endpoints: /  /metrics  /events  /sessions  /incident")
        try:
            if args.load:
                generator = LoadGenerator(
                    records=args.records, seed=args.seed,
                    profile=args.profile,
                )
                report = generator.run()
                print(f"load generator done: {report['ops']} ops, "
                      f"{report['refusals']} refusals, "
                      f"cohort {report['cohort']}")
            print("Ctrl-C to stop")
            while True:
                time.sleep(1)
        finally:
            service.close()
            server.shutdown()
            server.server_close()


def _observe_follow_sse(args: argparse.Namespace) -> int:
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    url = args.trace.rstrip("/") + "/events"
    print(f"following {url} (Ctrl-C to stop)")
    alerts = 0
    event_type = data = None
    try:
        stream = urlopen(url)
    except (URLError, OSError) as exc:
        print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
        return 1
    with stream as response:
        for raw in response:
            line = raw.decode("utf-8").rstrip("\n")
            if line.startswith(":"):
                continue
            if line.startswith("event: "):
                event_type = line[len("event: "):]
            elif line.startswith("data: "):
                data = line[len("data: "):]
            elif not line:
                if event_type is not None and data is not None:
                    payload = json.loads(data)
                    if event_type == "hello":
                        print(f"connected: schema {payload['schema']}, "
                              f"step {payload['step']}, watching "
                              f"{', '.join(payload['series'])}")
                    elif event_type == "alert":
                        print(f"  step {payload.get('step', 0):>5d}  "
                              f"[{payload.get('severity', '?'):<8s}] "
                              f"{payload.get('alert', '?')} "
                              f"({payload.get('dimension', '?')}): "
                              f"{payload.get('detail', '')}")
                        alerts += 1
                        if args.limit is not None and alerts >= args.limit:
                            print(f"--limit {args.limit} reached, "
                                  f"disconnecting")
                            return 0
                    elif event_type == "point" and args.follow:
                        posture = payload["posture"]
                        meters = "  ".join(
                            f"{dim}={score:.2f}"
                            for dim, score in sorted(posture.items())
                        )
                        print(f"  step {payload['step']:>5d}  {meters}")
                    elif event_type == "bye":
                        print("service closed the stream (bye)")
                        return 0
                event_type = data = None
    print("stream ended")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    try:
        return _serve_dispatch(args)
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130


def _serve_dispatch(args: argparse.Namespace) -> int:
    import json
    import threading
    import time

    from .data import patients
    from .serving import ServingRuntime
    from .serving.smoke import ServingSmokeError, run_serving_smoke
    from .telemetry import instrument
    from .telemetry.observatory.service import (
        LoadGenerator,
        ObservatoryService,
        create_server,
    )

    if args.trace_smoke:
        from .serving.smoke import run_trace_smoke

        try:
            summary = run_trace_smoke(
                records=args.records, seed=args.seed, shards=args.shards,
                out=args.out,
            )
        except ServingSmokeError as exc:
            print(f"trace smoke FAILED: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(summary, indent=2, sort_keys=True))
        print("trace smoke OK")
        return 0

    if args.smoke:
        try:
            summary = run_serving_smoke(
                records=args.records, seed=args.seed, shards=args.shards,
                profile=args.profile,
            )
        except ServingSmokeError as exc:
            print(f"serve smoke FAILED: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(summary, indent=2, sort_keys=True))
        print("serve smoke OK")
        return 0

    pop = patients(args.records, seed=args.seed)
    runtime = ServingRuntime(
        pop, shards=args.shards, sum_audit=True,
        queue_depth=args.queue_depth,
        session_rate=args.session_rate, session_burst=args.session_burst,
        pir_values=[int(v) for v in pop["blood_pressure"][:16]],
    )
    service = ObservatoryService()
    server = create_server(service, port=args.port)
    host, port = server.server_address[:2]
    server_thread = threading.Thread(
        target=server.serve_forever, name="serving-http", daemon=True
    )
    with instrument.session(args.out) as tracer:
        service.attach(tracer)
        server_thread.start()
        stats = runtime.stats()
        print(f"serving runtime up: {stats['n_shards']} shards, "
              f"queue depth {stats['queue_depth']}, "
              f"shared cross-shard audit")
        print(f"observatory listening on http://{host}:{port}")
        print("endpoints: /  /metrics  /events  /sessions  /incident")
        try:
            if args.load:
                generator = LoadGenerator(
                    records=args.records, seed=args.seed,
                    profile=args.profile, runtime=runtime,
                )
                report = generator.run()
                runtime.drain()
                print(f"load generator done: {report['ops']} ops, "
                      f"{report['refusals']} refusals, "
                      f"cohort {report['cohort']}")
            print("Ctrl-C to stop")
            while True:
                time.sleep(1)
        finally:
            runtime.close()
            service.close()
            server.shutdown()
            server.server_close()


def _cmd_trace(args: argparse.Namespace) -> int:
    """Reconstruct one request's causal waterfall from a JSONL capture."""
    import json

    from .telemetry import requesttrace
    from .telemetry.report import read_trace

    spans = read_trace(args.capture, validate=not args.no_validate)
    requests = requesttrace.request_records(spans)
    if args.list or args.trace_id is None:
        if not requests:
            print(f"no serving.request spans in {args.capture}",
                  file=sys.stderr)
            return 1
        for record in requests:
            attrs = record["attrs"]
            wall = sum(
                float(attrs.get(f"stage_{s}_seconds", 0.0))
                for s in requesttrace.TRACE_STAGES
            )
            print(f"{attrs.get('trace_id')}  {attrs.get('kind', '?'):<4s} "
                  f"{wall * 1e3:8.3f} ms  session={attrs.get('session')} "
                  f"shard={attrs.get('shard')} "
                  f"outcome={attrs.get('outcome')}")
        return 0
    info = requesttrace.waterfall(spans, args.trace_id)
    if info is None:
        print(f"trace id {args.trace_id!r} not found in {args.capture} "
              f"(try --list)", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
    else:
        print(requesttrace.format_waterfall(spans, args.trace_id))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile a short serving burst with the sampling profiler."""
    from pathlib import Path

    from .data import patients
    from .serving import ServingRuntime
    from .telemetry.profiler import (
        SamplingProfiler,
        render_folded,
        top_frames,
    )

    queries = (
        "SELECT COUNT(*) WHERE height > 170",
        "SELECT AVG(blood_pressure) WHERE height <= 175",
        "SELECT COUNT(*) WHERE weight <= 80",
    )
    pop = patients(args.records, seed=args.seed)
    pir_values = [int(v) for v in pop["blood_pressure"][:16]]
    sessions = [f"profiled-{i}" for i in range(8)]
    profiler = SamplingProfiler(hz=args.hz)
    with profiler:
        runtime = ServingRuntime(
            pop, shards=args.shards, sum_audit=False,
            pir_values=pir_values,
        )
        try:
            for op in range(args.ops):
                session = sessions[op % len(sessions)]
                if op % 4 == 3:
                    runtime.retrieve_batch_int(
                        session, [op % 16, (op + 5) % 16], seed=op,
                    )
                else:
                    runtime.ask(session, queries[op % len(queries)])
        finally:
            runtime.close()
    lines = profiler.folded()
    print(f"profile: {profiler.sample_count} samples at {profiler.hz} Hz, "
          f"{len(lines)} distinct stacks over {args.ops} serving ops")
    if args.out:
        Path(args.out).write_text(render_folded(lines), encoding="utf-8")
        print(f"folded stacks (flamegraph-ready) -> {args.out}")
    print(f"hottest frames (top {args.top}):")
    for frame, count in top_frames(lines, args.top):
        print(f"  {count:>6d}  {frame}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse CLI."""
    from .envdoc import env_knob_epilog

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Three-dimensional database privacy framework "
                    "(Domingo-Ferrer, SDM@VLDB 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    # One generated epilog (repro.envdoc) for every command whose
    # behaviour REPRO_* knobs change — the same table the README embeds.
    knob_epilog = env_knob_epilog()

    sub.add_parser("table1", help="print the paper's Table 1")

    p2 = sub.add_parser("table2", help="empirical Table 2 scoring")
    p2.add_argument("--seed", type=int, default=0)

    pr = sub.add_parser("recommend", help="Section 6 deployment advice")
    pr.add_argument("dimensions",
                    help="comma-separated: respondent,owner,user (or r,o,u)")

    pm = sub.add_parser("mask", help="mask a CSV file")
    pm.add_argument("csv")
    pm.add_argument("--method", choices=sorted(_METHODS), required=True)
    pm.add_argument("--k", type=int, default=5,
                    help="group size for k-based methods")
    pm.add_argument("--scale", type=float, default=0.5,
                    help="noise scale / swap window / PRAM flip rate")
    pm.add_argument("--seed", type=int, default=0)

    pt = sub.add_parser("tracker", help="run the Schlörer tracker demo")
    pt.add_argument("--records", type=int, default=250)
    pt.add_argument("--seed", type=int, default=3)

    sub.add_parser("attack-pir", help="the Section 3 COUNT/AVG attack")

    pq = sub.add_parser("qdb", help="statistical-database tools")
    qdb_sub = pq.add_subparsers(dest="qdb_command", required=True)
    qe = qdb_sub.add_parser(
        "explain", help="render a query's plan pre/post optimization",
        epilog=knob_epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    qe.add_argument("query",
                    help='e.g. "SELECT SUM(blood_pressure) WHERE height > 170"')
    qe.add_argument("--policies", default="size:5,overlap:40,sum-audit",
                    help="comma-separated stack: size:K, overlap:R, "
                         "sum-audit, noise:SD, sample:F, camouflage:K")
    qe.add_argument("--records", type=int, default=300)
    qe.add_argument("--seed", type=int, default=0)
    qe.add_argument("--pir-demo", action="store_true",
                    help="also show PIR fetch coalescing on the Section 3 grid")

    ps = sub.add_parser(
        "scoreboard", help="score masking methods on the three dimensions"
    )
    ps.add_argument("--records", type=int, default=300)
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--pir", action="store_true",
                    help="model a PIR front-end for the user dimension")

    ptel = sub.add_parser("telemetry", help="observability consumers")
    tel_sub = ptel.add_subparsers(dest="telemetry_command", required=True)

    tr = tel_sub.add_parser("report", help="summarize a JSONL trace")
    tr.add_argument("trace", help="path to a telemetry JSONL capture")
    tr.add_argument("--top", type=int, default=10,
                    help="slowest spans to list")
    tr.add_argument("--no-validate", action="store_true",
                    help="skip span-schema validation")

    td = tel_sub.add_parser(
        "dashboard", help="privacy meters + operational metrics"
    )
    td.add_argument("--records", type=int, default=300)
    td.add_argument("--seed", type=int, default=0)
    td.add_argument("--pir", action="store_true",
                    help="model a PIR front-end for the user dimension")

    tk = tel_sub.add_parser(
        "smoke", help="instrumented S1/S3a scenario + schema gate"
    )
    tk.add_argument("--out", default=None,
                    help="trace path (default: a temp file)")
    tk.add_argument("--records", type=int, default=150)
    tk.add_argument("--seed", type=int, default=3)

    po = sub.add_parser(
        "observe", help="privacy observatory: replay, posture, alerts",
        epilog=knob_epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    po.add_argument("trace", nargs="?", default=None,
                    help="JSONL trace to replay, 'serve' to boot the "
                         "resident service, or an http(s):// service URL "
                         "to follow its SSE stream (default: run the "
                         "live instrumented scenario)")
    po.add_argument("--follow", action="store_true",
                    help="narrate each alert as the replay reaches it "
                         "(SSE mode: also print posture points)")
    po.add_argument("--limit", type=int, default=None,
                    help="cap narrated alerts (SSE mode: disconnect "
                         "after N alerts)")
    po.add_argument("--smoke", action="store_true",
                    help="validate the committed golden trace and exit "
                         "(serve mode: run the end-to-end HTTP/SSE gate)")
    po.add_argument("--out", default=None,
                    help="live-mode trace path (default: a temp file)")
    po.add_argument("--records", type=int, default=150)
    po.add_argument("--seed", type=int, default=3)
    po.add_argument("--port", type=int, default=0,
                    help="serve mode: TCP port (default: ephemeral)")
    po.add_argument("--load", action="store_true",
                    help="serve mode: drive the scripted concurrent load "
                         "generator once at startup")
    po.add_argument("--profile",
                    choices=("mixed", "audit-heavy", "pir-heavy"),
                    default="mixed",
                    help="load-generator traffic profile")
    po.add_argument("--metrics-out", default=None,
                    help="export the process metrics snapshot to this path")
    po.add_argument("--metrics-format",
                    choices=("openmetrics", "jsonl"), default="openmetrics")

    pv = sub.add_parser(
        "serve", help="boot the sharded serving runtime + observatory HTTP",
        epilog=knob_epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    pv.add_argument("--smoke", action="store_true",
                    help="run the end-to-end serving gate and exit "
                         "(runtime + loadgen + observatory over HTTP)")
    pv.add_argument("--trace-smoke", action="store_true",
                    help="run the request-tracing gate and exit: full "
                         "stack over HTTP/SSE, then reconstruct complete "
                         "7-stage waterfalls from the JSONL capture")
    pv.add_argument("--shards", type=int, default=None,
                    help="shard count (default: REPRO_SERVING_SHARDS or 4)")
    pv.add_argument("--queue-depth", type=int, default=None,
                    help="per-shard ingress queue bound "
                         "(default: REPRO_SERVING_QUEUE_DEPTH or 64)")
    pv.add_argument("--session-rate", type=float, default=None,
                    help="token-bucket refill rate per session "
                         "(default: rate limiting disabled)")
    pv.add_argument("--session-burst", type=float, default=None,
                    help="token-bucket burst per session")
    pv.add_argument("--load", action="store_true",
                    help="drive the concurrent load generator (runtime "
                         "mode, split-tracker cohort) once at startup")
    pv.add_argument("--profile",
                    choices=("mixed", "audit-heavy", "pir-heavy"),
                    default="mixed",
                    help="load-generator traffic profile")
    pv.add_argument("--records", type=int, default=150)
    pv.add_argument("--seed", type=int, default=3)
    pv.add_argument("--port", type=int, default=0,
                    help="TCP port for the observatory (default: ephemeral)")
    pv.add_argument("--out", default=None,
                    help="also capture the trace to this JSONL path")

    ptr = sub.add_parser(
        "trace", help="reconstruct a request waterfall from a capture",
        epilog=knob_epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ptr.add_argument("trace_id", nargs="?", default=None,
                     help="trace id to reconstruct (omit to list all "
                          "traced requests in the capture)")
    ptr.add_argument("--capture", required=True,
                     help="telemetry JSONL capture to read")
    ptr.add_argument("--list", action="store_true",
                     help="list traced requests instead of one waterfall")
    ptr.add_argument("--json", action="store_true",
                     help="emit the waterfall as JSON instead of ASCII")
    ptr.add_argument("--no-validate", action="store_true",
                     help="skip span-schema validation")

    ppr = sub.add_parser(
        "profile", help="sample a short serving burst into folded stacks",
        epilog=knob_epilog,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ppr.add_argument("--hz", type=float, default=97.0,
                     help="sampling rate (default: 97 Hz, off the 100 Hz "
                          "beat of periodic work)")
    ppr.add_argument("--records", type=int, default=150)
    ppr.add_argument("--seed", type=int, default=3)
    ppr.add_argument("--shards", type=int, default=None,
                     help="shard count (default: REPRO_SERVING_SHARDS or 4)")
    ppr.add_argument("--ops", type=int, default=2000,
                     help="serving operations to drive under the profiler")
    ppr.add_argument("--out", default=None,
                     help="write flamegraph-ready folded stacks here")
    ppr.add_argument("--top", type=int, default=20,
                     help="hottest leaf frames to print")

    pf = sub.add_parser("faults", help="fault injection and chaos runs")
    fl_sub = pf.add_subparsers(dest="faults_command", required=True)
    fc = fl_sub.add_parser(
        "chaos", help="scripted failure scenario + privacy-invariant gate"
    )
    fc.add_argument("--out", default=None,
                    help="trace path (default: a temp file)")
    fc.add_argument("--records", type=int, default=120)
    fc.add_argument("--seed", type=int, default=3)
    fc.add_argument("--f", type=int, default=1,
                    help="byzantine replicas to tolerate (2f+1 groups)")
    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "recommend": _cmd_recommend,
    "mask": _cmd_mask,
    "tracker": _cmd_tracker,
    "attack-pir": _cmd_attack_pir,
    "scoreboard": _cmd_scoreboard,
    "qdb": _cmd_qdb,
    "telemetry": _cmd_telemetry,
    "faults": _cmd_faults,
    "observe": _cmd_observe,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
