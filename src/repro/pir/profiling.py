"""Query profiling: the user-privacy meter.

The paper motivates user privacy with the 2006 AOL incident: a server that
sees queries in the clear can profile and re-identify its users.  The
adversary here is the *server*: given its view of a retrieval protocol, it
guesses which record the user asked for.  User privacy is scored by how
little the guess beats chance:

    score = 1 - max(0, (success - 1/n) / (1 - 1/n))

A plaintext server guesses with success 1 (score 0); an honest PIR server's
view is independent of the target, so success ~ 1/n (score ~ 1).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..sdc.base import resolve_rng
from ..telemetry import instrument as tele
from .itpir import TwoServerXorPIR


@dataclass(frozen=True)
class ProfilingReport:
    """Outcome of a query-profiling experiment."""

    n_records: int
    trials: int
    successes: int

    @property
    def success_rate(self) -> float:
        """Empirical guessing success of the server."""
        return self.successes / self.trials if self.trials else 0.0

    @property
    def user_privacy(self) -> float:
        """Advantage-normalized privacy score in [0, 1]."""
        if self.n_records <= 1:
            return 0.0
        chance = 1.0 / self.n_records
        advantage = max(0.0, self.success_rate - chance) / (1.0 - chance)
        return 1.0 - advantage


def profile_plaintext_retrieval(
    n_records: int, trials: int = 200, rng: np.random.Generator | int | None = 0
) -> ProfilingReport:
    """Baseline: the server sees the requested index directly."""
    rng = resolve_rng(rng)
    successes = 0
    for _ in range(trials):
        target = int(rng.integers(n_records))
        observed = target  # the query IS the index
        successes += observed == target
    return ProfilingReport(n_records, trials, successes)


def profile_itpir(
    pir: TwoServerXorPIR,
    trials: int = 200,
    rng: np.random.Generator | int | None = 0,
    server: int = 0,
) -> ProfilingReport:
    """Adversarial server against the two-server XOR scheme.

    The server's view is a uniformly random subset of indices, independent
    of the target.  Its best strategy is still a uniform guess over the
    whole database (guessing inside the subset does no better: the target
    is in the subset with probability exactly 1/2 regardless of i).  We let
    the adversary guess uniformly from its observed subset when non-empty —
    an aggressive strategy whose measured success still hovers at chance.

    All trial retrievals run as one ``retrieve_batch``; the adversary then
    replays the per-query server views from ``last_batch_queries``.
    """
    rng = resolve_rng(rng)
    if trials <= 0:
        return ProfilingReport(pir.n, 0, 0)

    def _experiment() -> ProfilingReport:
        targets = [int(rng.integers(pir.n)) for _ in range(trials)]
        pir.retrieve_batch(targets, rng)
        successes = 0
        for target, views in zip(targets, pir.last_batch_queries):
            view = views[server]
            if view:
                guess = int(rng.choice(view))
            else:
                guess = int(rng.integers(pir.n))
            successes += guess == target
        return ProfilingReport(pir.n, trials, successes)

    if not tele.enabled():
        return _experiment()
    with tele.span(
        "pir.profile", scheme=pir.scheme, n=pir.n, trials=trials
    ) as span:
        report = _experiment()
        span.set("successes", report.successes)
        span.set("user_privacy", report.user_privacy)
    return report


def profile_custom(
    n_records: int,
    run_query: Callable[[int, np.random.Generator], object],
    server_guess: Callable[[object, np.random.Generator], int],
    trials: int = 200,
    rng: np.random.Generator | int | None = 0,
) -> ProfilingReport:
    """Generic profiling loop for any retrieval mechanism.

    ``run_query(target, rng)`` executes a retrieval and returns the
    server's view; ``server_guess(view, rng)`` is the adversary.
    """
    rng = resolve_rng(rng)
    successes = 0
    for _ in range(trials):
        target = int(rng.integers(n_records))
        view = run_query(target, rng)
        successes += int(server_guess(view, rng)) == target
    return ProfilingReport(n_records, trials, successes)
