"""PIR-SQL bridge: private statistical queries over a cell grid.

Section 3 of the paper imagines PIR protocols for statistical queries:

    SELECT COUNT(*)             FROM Dataset2 WHERE height < 165 AND weight > 105
    SELECT AVG(blood_pressure)  FROM Dataset2 WHERE height < 165 AND weight > 105

This module realizes them: the server publishes a *public* grid over the
predicate attributes and serves, via PIR, per-cell aggregates
``(COUNT, SUM(value))`` packed into fixed-width blocks.  The client
resolves its private range predicate to grid cells locally and PIR-fetches
each cell, so the server learns only how many cells were touched, never
which — user privacy by construction, while respondent privacy depends
entirely on the underlying data (the paper's point: PIR over unmasked
records enables the COUNT=1 / AVG re-identification attack).
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from .itpir import TwoServerXorPIR

_SCALE = 100  # fixed-point scale for sums


def _pack(count: int, total: float) -> bytes:
    return int(count).to_bytes(8, "big", signed=True) + int(
        round(total * _SCALE)
    ).to_bytes(12, "big", signed=True)


def _unpack(block: bytes) -> tuple[int, float]:
    count = int.from_bytes(block[:8], "big", signed=True)
    total = int.from_bytes(block[8:20], "big", signed=True) / _SCALE
    return count, total


@dataclass(frozen=True)
class AggregateResult:
    """Result of a private aggregate query."""

    count: int
    total: float

    @property
    def average(self) -> float:
        """SUM / COUNT (NaN for an empty selection)."""
        if self.count == 0:
            return float("nan")
        return self.total / self.count


class PrivateAggregateIndex:
    """A PIR-served grid of (COUNT, SUM) aggregates.

    Threat model: the grid servers are the PIR servers (two,
    non-colluding, honest-but-curious); they learn that *some* cells
    were fetched and how many, but not which — the predicate stays
    private.  Note the inversion the paper builds on: this protects the
    *user*, while the aggregates themselves get no query-set-size
    control, so respondent privacy is out of scope here (the Section 3
    COUNT/AVG isolation attack in ``repro.attacks`` exploits exactly
    that).  Failure behaviour: the raw schemes' — a corrupted retrieval
    yields a wrong aggregate silently.

    Parameters
    ----------
    data:
        The underlying microdata.
    group_columns:
        Numeric predicate attributes spanning the grid.
    value_column:
        Numeric attribute whose per-cell SUM is stored (enables AVG).
    edges:
        Mapping column -> strictly increasing bin edges.  Edges are public
        metadata.  Values outside the edges are clamped into the first or
        last bin.
    """

    def __init__(
        self,
        data: Dataset,
        group_columns: Sequence[str],
        value_column: str,
        edges: Mapping[str, Sequence[float]],
    ):
        self.group_columns = list(group_columns)
        self.value_column = value_column
        if not data.is_numeric(value_column):
            raise TypeError(
                f"value column {value_column!r} must be numeric to serve "
                "SUM/AVG aggregates"
            )
        for column in self.group_columns:
            if not data.is_numeric(column):
                raise TypeError(
                    f"grid column {column!r} must be numeric (bin edges "
                    "are numeric intervals)"
                )
        self.edges = {c: np.asarray(edges[c], dtype=np.float64) for c in group_columns}
        for c in self.group_columns:
            if self.edges[c].size < 2 or np.any(np.diff(self.edges[c]) <= 0):
                raise ValueError(f"edges for {c!r} must be increasing, length >= 2")
        self._dims = tuple(self.edges[c].size - 1 for c in self.group_columns)
        counts = np.zeros(self._dims, dtype=np.int64)
        totals = np.zeros(self._dims, dtype=np.float64)
        values = data.column(value_column)
        coords = []
        for c in self.group_columns:
            col = data.column(c)
            idx = np.clip(
                np.searchsorted(self.edges[c], col, side="right") - 1,
                0,
                self.edges[c].size - 2,
            )
            coords.append(idx)
        for i in range(data.n_rows):
            cell = tuple(int(coord[i]) for coord in coords)
            counts[cell] += 1
            totals[cell] += float(values[i])
        blocks = [
            _pack(int(c), float(t))
            for c, t in zip(counts.reshape(-1), totals.reshape(-1))
        ]
        self._pir = TwoServerXorPIR(blocks)
        self.cells_fetched = 0

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self._dims))

    def _cells_for_ranges(
        self, ranges: Mapping[str, tuple[float, float]]
    ) -> list[int]:
        """Flat indices of every cell fully inside the given ranges.

        A range is a half-open interval [lo, hi); unspecified columns match
        everything.  Cells straddling a range boundary are excluded — the
        client should pick predicate bounds on the published edges for
        exact answers (as in the paper's attack).
        """
        per_dim: list[list[int]] = []
        for c, size in zip(self.group_columns, self._dims):
            if c in ranges:
                lo, hi = ranges[c]
                e = self.edges[c]
                keep = [
                    j for j in range(size)
                    if e[j] >= lo and e[j + 1] <= hi
                ]
            else:
                keep = list(range(size))
            per_dim.append(keep)
        flat: list[int] = []
        for combo in itertools.product(*per_dim):
            idx = 0
            for d, j in enumerate(combo):
                idx = idx * self._dims[d] + j
            flat.append(idx)
        return flat

    def query(
        self,
        ranges: Mapping[str, tuple[float, float]],
        rng: np.random.Generator | int | None = 0,
    ) -> AggregateResult:
        """Privately evaluate COUNT and SUM over the range predicate."""
        unknown = set(ranges) - set(self.group_columns)
        if unknown:
            raise KeyError(f"predicate on non-grid columns: {sorted(unknown)}")
        count, total = 0, 0.0
        cells = self._cells_for_ranges(ranges)
        # One batched PIR round-trip for the whole predicate.
        for raw in self._pir.retrieve_batch(cells, rng):
            c, t = _unpack(raw)
            count += c
            total += t
        self.cells_fetched += len(cells)
        return AggregateResult(count, total)

    def server_observations(self) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        """What the servers saw on the most recent fetch (for leakage tests)."""
        return self._pir.last_queries
