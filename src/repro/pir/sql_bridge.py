"""PIR-SQL bridge: private statistical queries over a cell grid.

Section 3 of the paper imagines PIR protocols for statistical queries:

    SELECT COUNT(*)             FROM Dataset2 WHERE height < 165 AND weight > 105
    SELECT AVG(blood_pressure)  FROM Dataset2 WHERE height < 165 AND weight > 105

This module realizes them: the server publishes a *public* grid over the
predicate attributes and serves, via PIR, per-cell aggregates
``(COUNT, SUM(value))`` packed into fixed-width blocks.  The client
resolves its private range predicate to grid cells locally and PIR-fetches
each cell, so the server learns only how many cells were touched, never
which — user privacy by construction, while respondent privacy depends
entirely on the underlying data (the paper's point: PIR over unmasked
records enables the COUNT=1 / AVG re-identification attack).
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from ..plan import AnswerSink, FusedPirFetch, Plan, PirFetch
from ..plan import explain as explain_plans
from ..plan import optimize
from .itpir import TwoServerXorPIR

_SCALE = 100  # fixed-point scale for sums


def _pack(count: int, total: float) -> bytes:
    return int(count).to_bytes(8, "big", signed=True) + int(
        round(total * _SCALE)
    ).to_bytes(12, "big", signed=True)


def _unpack(block: bytes) -> tuple[int, float]:
    count = int.from_bytes(block[:8], "big", signed=True)
    total = int.from_bytes(block[8:20], "big", signed=True) / _SCALE
    return count, total


@dataclass(frozen=True)
class AggregateResult:
    """Result of a private aggregate query."""

    count: int
    total: float

    @property
    def average(self) -> float:
        """SUM / COUNT (NaN for an empty selection)."""
        if self.count == 0:
            return float("nan")
        return self.total / self.count


class PrivateAggregateIndex:
    """A PIR-served grid of (COUNT, SUM) aggregates.

    Threat model: the grid servers are the PIR servers (two,
    non-colluding, honest-but-curious); they learn that *some* cells
    were fetched and how many, but not which — the predicate stays
    private.  Note the inversion the paper builds on: this protects the
    *user*, while the aggregates themselves get no query-set-size
    control, so respondent privacy is out of scope here (the Section 3
    COUNT/AVG isolation attack in ``repro.attacks`` exploits exactly
    that).  Failure behaviour: the raw schemes' — a corrupted retrieval
    yields a wrong aggregate silently.

    Parameters
    ----------
    data:
        The underlying microdata.
    group_columns:
        Numeric predicate attributes spanning the grid.
    value_column:
        Numeric attribute whose per-cell SUM is stored (enables AVG).
    edges:
        Mapping column -> strictly increasing bin edges.  Edges are public
        metadata.  Values outside the edges are clamped into the first or
        last bin.
    """

    def __init__(
        self,
        data: Dataset,
        group_columns: Sequence[str],
        value_column: str,
        edges: Mapping[str, Sequence[float]],
    ):
        self.group_columns = list(group_columns)
        self.value_column = value_column
        if not data.is_numeric(value_column):
            raise TypeError(
                f"value column {value_column!r} must be numeric to serve "
                "SUM/AVG aggregates"
            )
        for column in self.group_columns:
            if not data.is_numeric(column):
                raise TypeError(
                    f"grid column {column!r} must be numeric (bin edges "
                    "are numeric intervals)"
                )
        self.edges = {c: np.asarray(edges[c], dtype=np.float64) for c in group_columns}
        for c in self.group_columns:
            if self.edges[c].size < 2 or np.any(np.diff(self.edges[c]) <= 0):
                raise ValueError(f"edges for {c!r} must be increasing, length >= 2")
        self._dims = tuple(self.edges[c].size - 1 for c in self.group_columns)
        counts = np.zeros(self._dims, dtype=np.int64)
        totals = np.zeros(self._dims, dtype=np.float64)
        values = data.column(value_column)
        coords = []
        for c in self.group_columns:
            col = data.column(c)
            idx = np.clip(
                np.searchsorted(self.edges[c], col, side="right") - 1,
                0,
                self.edges[c].size - 2,
            )
            coords.append(idx)
        for i in range(data.n_rows):
            cell = tuple(int(coord[i]) for coord in coords)
            counts[cell] += 1
            totals[cell] += float(values[i])
        blocks = [
            _pack(int(c), float(t))
            for c, t in zip(counts.reshape(-1), totals.reshape(-1))
        ]
        self._pir = TwoServerXorPIR(blocks)
        self.cells_fetched = 0
        self.blocks_fetched = 0

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        return int(np.prod(self._dims))

    def _cells_for_ranges(
        self, ranges: Mapping[str, tuple[float, float]]
    ) -> list[int]:
        """Flat indices of every cell fully inside the given ranges.

        A range is a half-open interval [lo, hi); unspecified columns match
        everything.  Cells straddling a range boundary are excluded — the
        client should pick predicate bounds on the published edges for
        exact answers (as in the paper's attack).
        """
        per_dim: list[list[int]] = []
        for c, size in zip(self.group_columns, self._dims):
            if c in ranges:
                lo, hi = ranges[c]
                e = self.edges[c]
                keep = [
                    j for j in range(size)
                    if e[j] >= lo and e[j + 1] <= hi
                ]
            else:
                keep = list(range(size))
            per_dim.append(keep)
        flat: list[int] = []
        for combo in itertools.product(*per_dim):
            idx = 0
            for d, j in enumerate(combo):
                idx = idx * self._dims[d] + j
            flat.append(idx)
        return flat

    def _describe_ranges(
        self, ranges: Mapping[str, tuple[float, float]]
    ) -> str:
        if not ranges:
            return "TRUE"
        return " AND ".join(
            f"{lo:g} <= {c} < {hi:g}" for c, (lo, hi) in sorted(ranges.items())
        )

    def compile_plan(
        self, ranges_list: Sequence[Mapping[str, tuple[float, float]]]
    ) -> Plan:
        """Compile a batch of range predicates into a PIR fetch plan.

        One :class:`~repro.plan.PirFetch` node per predicate (its blocks
        are the grid cells the predicate resolves to, in scan order);
        the optimizer coalesces them into a single deduplicated
        :class:`~repro.plan.FusedPirFetch` when the batch shares cells.
        """
        nodes: list = []
        for ranges in ranges_list:
            unknown = set(ranges) - set(self.group_columns)
            if unknown:
                raise KeyError(
                    f"predicate on non-grid columns: {sorted(unknown)}"
                )
            nodes.append(PirFetch(
                tuple(self._cells_for_ranges(ranges)),
                source=self._describe_ranges(ranges),
            ))
        nodes.append(AnswerSink())
        return Plan(
            title=f"PIR aggregate batch ({len(ranges_list)} queries)",
            nodes=tuple(nodes),
        )

    def explain_plan(
        self, ranges_list: Sequence[Mapping[str, tuple[float, float]]]
    ) -> str:
        """Render the batch's fetch plan pre/post optimization."""
        before = self.compile_plan(ranges_list)
        return explain_plans(before, optimize(before))

    def _sum_cells(self, raws, positions) -> AggregateResult:
        count, total = 0, 0.0
        for pos in positions:
            c, t = _unpack(raws[pos])
            count += c
            total += t
        return AggregateResult(count, total)

    def query(
        self,
        ranges: Mapping[str, tuple[float, float]],
        rng: np.random.Generator | int | None = 0,
    ) -> AggregateResult:
        """Privately evaluate COUNT and SUM over the range predicate.

        Compiled through the plan IR: a single-predicate plan holds one
        fetch node, so the optimizer leaves it alone and the execution —
        one ``retrieve_batch`` over the predicate's cells in scan order —
        is bit-identical to the pre-plan path (same cells, same rng
        stream, same traffic accounting).
        """
        plan = optimize(self.compile_plan([ranges]))
        (fetch,) = (
            n for n in plan.nodes if isinstance(n, (PirFetch, FusedPirFetch))
        )
        raws = self._pir.retrieve_batch(list(fetch.blocks), rng)
        self.cells_fetched += len(fetch.blocks)
        self.blocks_fetched += len(fetch.blocks)
        return self._sum_cells(raws, range(len(fetch.blocks)))

    def query_batch(
        self,
        ranges_list: Sequence[Mapping[str, tuple[float, float]]],
        rng: np.random.Generator | int | None = 0,
    ) -> list[AggregateResult]:
        """Evaluate a batch of range predicates in one coalesced PIR round.

        The optimizer's ``coalesce-pir-fetches`` pass deduplicates cells
        shared across predicates, so the servers serve each distinct cell
        once (``blocks_fetched``) however many predicates requested it
        (``cells_fetched``).  Per-predicate results equal sequential
        :meth:`query` calls exactly — PIR reconstruction is exact for
        every retrieved index regardless of the randomness consumed —
        though the randomness stream differs from sequential calls.
        """
        if not ranges_list:
            return []
        plan = optimize(self.compile_plan(ranges_list))
        fetches = [
            n for n in plan.nodes if isinstance(n, (PirFetch, FusedPirFetch))
        ]
        if len(fetches) == 1 and isinstance(fetches[0], FusedPirFetch):
            fused = fetches[0]
            raws = self._pir.retrieve_batch(list(fused.blocks), rng)
            self.cells_fetched += fused.requested
            self.blocks_fetched += len(fused.blocks)
            return [self._sum_cells(raws, route) for route in fused.routing]
        # A single-predicate batch (or all-empty fetches): no fusion.
        results = []
        for fetch in fetches:
            raws = self._pir.retrieve_batch(list(fetch.blocks), rng)
            self.cells_fetched += len(fetch.blocks)
            self.blocks_fetched += len(fetch.blocks)
            results.append(self._sum_cells(raws, range(len(fetch.blocks))))
        return results

    def server_observations(self) -> tuple[tuple[int, ...], tuple[int, ...]] | None:
        """What the servers saw on the most recent fetch (for leakage tests)."""
        return self._pir.last_queries
