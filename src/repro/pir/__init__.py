"""User privacy: private information retrieval and query profiling."""

from .cpir import LinearCPIR, MatrixCPIR
from .keyword import KeywordPIR
from .log_attack import (
    LogAttackReport,
    QueryLog,
    UserProfile,
    log_matching_attack,
    make_user_population,
    run_search_sessions,
)
from .itpir import (
    MultiServerXorPIR,
    PIRAnswer,
    SquareSchemePIR,
    TwoServerXorPIR,
)
from .profiling import (
    ProfilingReport,
    profile_custom,
    profile_itpir,
    profile_plaintext_retrieval,
)
from .sql_bridge import AggregateResult, PrivateAggregateIndex

__all__ = [
    "AggregateResult",
    "KeywordPIR",
    "LogAttackReport",
    "LinearCPIR",
    "MultiServerXorPIR",
    "MatrixCPIR",
    "PIRAnswer",
    "PrivateAggregateIndex",
    "ProfilingReport",
    "QueryLog",
    "SquareSchemePIR",
    "TwoServerXorPIR",
    "UserProfile",
    "log_matching_attack",
    "make_user_population",
    "profile_custom",
    "profile_itpir",
    "profile_plaintext_retrieval",
    "run_search_sessions",
]
