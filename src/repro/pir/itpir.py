"""Information-theoretic private information retrieval (Chor et al. [8]).

Two non-colluding servers hold the same database of fixed-size blocks; the
client retrieves block ``i`` while each server's view (a uniformly random
subset of indices) is statistically independent of ``i``.

Two schemes are provided:

* :class:`TwoServerXorPIR` — the basic linear scheme: the client sends a
  random index-set S to server 1 and S Δ {i} to server 2; each server
  answers with the XOR of the selected blocks; XOR of the answers is
  block i.  Communication O(n) bits upstream.
* :class:`SquareSchemePIR` — the classical O(√n) refinement: the database
  is arranged as a √n x √n matrix; the client runs the basic scheme on
  *columns* and receives whole-column XORs, cutting upstream cost to
  O(√n) per server.

Both implementations count communication so the scaling benchmark (A2 in
DESIGN.md) can regenerate cost curves.

The compute layer is the word-level kernel tier (:mod:`repro.kernels`):
each server holds its replica in a :class:`~repro.kernels.BlockStore`
whose blocks are bit-packed into ``uint64`` words, query masks are drawn
directly as packed words (one generator call, 64 fair coins per word),
a single answer is one word-level XOR fold, and batched answers are one
GF(2) matrix product dispatched to the active backend (compiled C,
numba, or pure numpy — see :func:`repro.kernels.get_backend`).  Any
scheme also accepts a ready-made store, including a memory-mapped
:class:`~repro.kernels.MemmapBlockStore`, so databases larger than RAM
retrieve through the same code path (the store's RAM budget chunks the
batched scan).  ``retrieve_batch`` consumes the rng stream exactly as
the equivalent sequence of ``retrieve`` calls would, so batched results
are byte-identical to sequential ones under the same seed.

Threat model (shared by every scheme here): servers are
honest-but-curious and **non-colluding** — privacy is information-
theoretic against any tolerated coalition, but there is *zero* answer
integrity or availability tolerance: a server that lies flips the
reconstructed XOR silently, and a server that does not answer leaves
nothing reconstructable.  Deployments that need byzantine/crash
tolerance wrap a scheme in
:class:`repro.faults.ResilientXorPIR` (2f+1 replica groups, majority
vote); ``tests/test_failure_injection.py`` demonstrates the raw
schemes' silent-corruption behaviour.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..kernels import (
    ArrayBlockStore,
    BlockStore,
    flip_mask_bits,
    get_backend,
    gf2_matmul_store,
    sample_mask_words,
    unpack_bool_rows,
    xor_fold_store,
)
from ..sdc.base import resolve_rng
from ..telemetry import instrument as tele
from ..telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class PIRAnswer:
    """One server's reply plus the query it saw (for leakage analysis)."""

    server: int
    query_indices: tuple[int, ...]
    payload: bytes


def _normalize_blocks(blocks: Sequence[bytes | int]) -> np.ndarray:
    """Encode heterogeneous blocks into one ``(n, width)`` uint8 matrix.

    Bytes blocks are right-padded with NUL to the common width (at least 8
    bytes); integer blocks are big-endian two's-complement at that width.
    An integer that does not fit the common width raises ``ValueError``.
    """
    width = 8
    for b in blocks:
        if isinstance(b, (bytes, bytearray)):
            width = max(width, len(b))
    db = np.zeros((len(blocks), width), dtype=np.uint8)
    for i, b in enumerate(blocks):
        if isinstance(b, (bytes, bytearray)):
            if len(b):
                db[i, : len(b)] = np.frombuffer(bytes(b), dtype=np.uint8)
        else:
            try:
                raw = int(b).to_bytes(width, "big", signed=True)
            except OverflowError:
                raise ValueError(
                    f"integer block {b!r} does not fit the common block "
                    f"width of {width} bytes"
                ) from None
            db[i] = np.frombuffer(raw, dtype=np.uint8)
    return db


def _as_store(blocks: Sequence[bytes | int] | BlockStore) -> BlockStore:
    """Coerce a scheme's ``blocks`` argument into a non-empty store."""
    if isinstance(blocks, BlockStore):
        store = blocks
    elif isinstance(blocks, np.ndarray):
        store = ArrayBlockStore(blocks)
    else:
        store = ArrayBlockStore(_normalize_blocks(blocks))
    if store.n == 0:
        raise ValueError("PIR database must contain at least one block")
    return store


def _xor_payloads(payloads: Sequence[bytes]) -> bytes:
    """Client-side combine: bytewise XOR of equal-length payloads."""
    acc = np.frombuffer(payloads[0], dtype=np.uint8).copy()
    for payload in payloads[1:]:
        acc ^= np.frombuffer(payload, dtype=np.uint8)
    return acc.tobytes()


def _word_mask_indices(words: np.ndarray, n_bits: int) -> tuple[int, ...]:
    """Sorted index tuple of the set bits in one packed mask row."""
    bits = unpack_bool_rows(words.reshape(1, -1), n_bits)[0]
    return tuple(np.flatnonzero(bits).tolist())


def _masks_to_queries(
    words: np.ndarray, n_bits: int
) -> tuple[tuple[int, ...], ...]:
    """Per-query sorted index tuples from a (B, nw) packed query matrix."""
    bits = unpack_bool_rows(words, n_bits)
    return tuple(tuple(np.flatnonzero(row).tolist()) for row in bits)


class _BatchViewMixin:
    """Lazy per-query server views for the most recent ``retrieve_batch``.

    Materializing index tuples for every query in a large batch costs more
    than answering the batch itself, so the packed query matrices are
    kept and converted only when ``last_batch_queries`` is actually read
    (leakage tests, profiling adversaries).
    """

    _batch_masks: tuple[np.ndarray, ...] | None = None
    _batch_mask_bits: int = 0
    _batch_queries_cache: tuple[tuple[tuple[int, ...], ...], ...] | None = None

    def _set_batch_masks(self, per_server_words: Sequence[np.ndarray],
                         n_bits: int) -> None:
        """Record one (B, nw) packed matrix per server; update last_queries."""
        self._batch_masks = tuple(per_server_words)
        self._batch_mask_bits = int(n_bits)
        self._batch_queries_cache = None
        self.last_queries = tuple(
            _word_mask_indices(words[-1], n_bits)
            for words in self._batch_masks
        )

    @property
    def last_batch_queries(
        self,
    ) -> tuple[tuple[tuple[int, ...], ...], ...] | None:
        """Per-query tuple of per-server index views of the last batch."""
        if self._batch_masks is None:
            return None
        if self._batch_queries_cache is None:
            per_server = [
                _masks_to_queries(words, self._batch_mask_bits)
                for words in self._batch_masks
            ]
            self._batch_queries_cache = tuple(zip(*per_server))
        return self._batch_queries_cache


class _Server:
    """A PIR server answering from its private block-store replica."""

    def __init__(self, store: BlockStore):
        self._store = store
        # Backend-owned caches (e.g. the uint8 reference backend's
        # unpacked float bit matrix, keyed by dtype so a dtype policy
        # change re-keys instead of poisoning the cache).
        self._state: dict = {}

    @property
    def _db(self) -> np.ndarray:
        """Writable uint8 view of this replica (shared with the packed
        words, so corruption through it is visible to every kernel)."""
        return self._store.blocks_u8

    def answer(self, server_id: int, indices: Sequence[int]) -> PIRAnswer:
        """XOR of the requested blocks (one word-level fold)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size:
            words = xor_fold_store(self._store, idx)
            payload = words.view(np.uint8)[: self._store.width].tobytes()
        else:
            payload = bytes(self._store.width)
        return PIRAnswer(server_id, tuple(int(i) for i in indices), payload)

    def answer_batch(self, mask_words: np.ndarray) -> np.ndarray:
        """Answer every query of a (B, nw) packed query matrix at once.

        Returns a ``(B, n_words * 8)`` uint8 matrix (the word-padded
        payload bytes) whose row b is the XOR of the blocks selected by
        mask b — one GF(2) matrix product on the active kernel backend,
        chunked automatically when the store carries a RAM budget.
        """
        words = gf2_matmul_store(mask_words, self._store, state=self._state)
        return words.view(np.uint8)


class _XorPIRScheme(_BatchViewMixin):
    """Shared accounting, telemetry, and integer codecs for XOR schemes.

    Every scheme funnels its communication tally through :meth:`_traffic`,
    which feeds a per-instance telemetry registry (attached to the process
    registry, so benchmark snapshots see aggregate totals).  The public
    ``retrieve`` / ``retrieve_batch`` entry points add spans and latency
    histograms when telemetry is enabled and are plain pass-throughs when
    it is not; subclasses implement ``_retrieve_one`` / ``_retrieve_many``.
    """

    #: Short scheme tag used for span attributes and registry ownership.
    scheme = "xor"

    def _init_accounting(self) -> None:
        """Create the per-instance traffic counters (call from __init__)."""
        self.metrics = MetricsRegistry(owner=f"pir.{self.scheme}")
        self._c_upstream = self.metrics.counter("pir.upstream_bits")
        self._c_downstream = self.metrics.counter("pir.downstream_bits")
        self._c_retrievals = self.metrics.counter("pir.retrievals")

    @property
    def upstream_bits(self) -> int:
        """Total client-to-server communication so far, in bits."""
        return self._c_upstream.value

    @property
    def downstream_bits(self) -> int:
        """Total server-to-client communication so far, in bits."""
        return self._c_downstream.value

    @property
    def retrievals(self) -> int:
        """Number of block retrievals performed (batched ones included)."""
        return self._c_retrievals.value

    def _traffic(self, up: int, down: int, queries: int = 1) -> None:
        """Account *queries* retrievals costing *up*/*down* bits."""
        self._c_upstream.inc(up)
        self._c_downstream.inc(down)
        self._c_retrievals.inc(queries)

    def retrieve(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> bytes:
        """Privately retrieve block *index*."""
        if not tele.enabled():
            return self._retrieve_one(index, rng)
        with tele.span(
            "pir.retrieve", scheme=self.scheme, n=self.n, block=int(index)
        ) as span:
            block = self._retrieve_one(index, rng)
        tele.histogram("pir.retrieve_seconds").observe(span.duration)
        return block

    def retrieve_batch(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[bytes]:
        """Privately retrieve many blocks with one query matrix per server.

        Equivalent — byte for byte, under the same rng — to calling
        :meth:`retrieve` once per index, but each server computes all of
        its answers in a single vectorized pass.
        """
        if not tele.enabled():
            return self._retrieve_many(indices, rng)
        # Per-index lists are not span-schema scalars, so the batch span
        # carries an access-profile summary instead: the modal block, its
        # multiplicity, and the support size.  The observatory's skew
        # detector reads these to spot isolation-attack probing.
        tally: dict[int, int] = {}
        for index in indices:
            index = int(index)
            tally[index] = tally.get(index, 0) + 1
        top_block = max(sorted(tally), key=tally.get) if tally else -1
        with tele.span(
            "pir.retrieve_batch",
            scheme=self.scheme,
            n=self.n,
            n_queries=len(indices),
            top_block=top_block,
            top_count=tally.get(top_block, 0),
            distinct_blocks=len(tally),
        ) as span:
            blocks = self._retrieve_many(indices, rng)
        tele.histogram("pir.batch_seconds").observe(span.duration)
        return blocks

    def retrieve_int(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> int:
        """Retrieve a block and decode it as a signed integer."""
        return int.from_bytes(self.retrieve(index, rng), "big", signed=True)

    def retrieve_batch_int(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[int]:
        """Batched retrieval decoded as signed integers."""
        return [
            int.from_bytes(b, "big", signed=True)
            for b in self.retrieve_batch(indices, rng)
        ]

    def _check_indices(self, idx: np.ndarray, bound: int) -> None:
        if idx.size and not (0 <= idx.min() and idx.max() < bound):
            bad = idx[(idx < 0) | (idx >= bound)][0]
            raise IndexError(f"index {bad} out of range [0, {bound})")


class TwoServerXorPIR(_XorPIRScheme):
    """The basic two-server XOR scheme of Chor–Goldreich–Kushilevitz–Sudan.

    Threat model: the two servers do not collude; each sees a uniformly
    random index set independent of the target.  Failure behaviour: none
    — a corrupted or missing answer silently corrupts (or prevents) the
    XOR reconstruction; see the module docstring for the resilient
    wrapper.

    Parameters
    ----------
    blocks:
        Database records, as ``bytes`` or signed integers (encoded to a
        common width), or a prepared :class:`~repro.kernels.BlockStore`
        (e.g. a memory-mapped store for databases exceeding RAM).  Must
        be non-empty.
    """

    scheme = "two-server"

    def __init__(self, blocks: Sequence[bytes | int] | BlockStore):
        self._store = _as_store(blocks)
        self.n = int(self._store.n)
        # Each server holds its own replica (they are distinct machines;
        # a byzantine server corrupting its copy must not affect the other).
        self._servers = (
            _Server(self._store.replica()), _Server(self._store.replica())
        )
        self.last_queries: tuple[tuple[int, ...], tuple[int, ...]] | None = None
        self._init_accounting()

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return int(self._store.width)

    def _retrieve_one(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> bytes:
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        rng = resolve_rng(rng)
        words1 = sample_mask_words(rng, 1, self.n)
        words2 = words1.copy()
        flip_mask_bits(words2, np.zeros(1, dtype=np.intp),
                       np.asarray([index]))
        a1 = self._servers[0].answer(0, _word_mask_indices(words1, self.n))
        a2 = self._servers[1].answer(1, _word_mask_indices(words2, self.n))
        self.last_queries = (a1.query_indices, a2.query_indices)
        # One characteristic bit-vector up per server; payloads back.
        self._traffic(2 * self.n, 8 * (len(a1.payload) + len(a2.payload)))
        return _xor_payloads([a1.payload, a2.payload])

    def _retrieve_many(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[bytes]:
        idx = np.asarray(indices, dtype=np.intp).reshape(-1)
        self._check_indices(idx, self.n)
        if idx.size == 0:
            return []
        rng = resolve_rng(rng)
        words1 = sample_mask_words(rng, idx.size, self.n)
        words2 = words1.copy()
        flip_mask_bits(words2, np.arange(idx.size), idx)
        a1 = self._servers[0].answer_batch(words1)
        a2 = self._servers[1].answer_batch(words2)
        self._set_batch_masks((words1, words2), self.n)
        self._traffic(
            idx.size * 2 * self.n,
            idx.size * 8 * 2 * self.block_size,
            queries=int(idx.size),
        )
        combined = a1 ^ a2
        size = self.block_size
        return [combined[b, :size].tobytes() for b in range(idx.size)]


class MultiServerXorPIR(_XorPIRScheme):
    """k-server XOR PIR with (k-1)-collusion resistance.

    Generalizes the two-server scheme: the client picks k-1 independent
    uniformly random index sets S_1 .. S_{k-1} and sends server k the set
    ``S_1 Δ ... Δ S_{k-1} Δ {i}``; XOR of all answers is block i.  Any
    coalition of at most k-1 servers sees jointly uniform sets independent
    of the target (each proper subset misses at least one random mask).

    Threat model: privacy holds against up to k-1 colluding
    honest-but-curious servers.  Failure behaviour: none — collusion
    resistance buys no integrity; every server's answer enters the XOR,
    so one byzantine server corrupts the block silently.
    """

    scheme = "multi-server"

    def __init__(self, blocks: Sequence[bytes | int] | BlockStore,
                 n_servers: int = 3):
        if n_servers < 2:
            raise ValueError("need at least 2 servers")
        self._store = _as_store(blocks)
        self.n = int(self._store.n)
        self.n_servers = n_servers
        self._servers = tuple(
            _Server(self._store.replica()) for _ in range(n_servers)
        )
        self.last_queries: tuple[tuple[int, ...], ...] | None = None
        self._init_accounting()

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return int(self._store.width)

    def _query_masks(
        self, indices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """(B, n_servers, nw) packed query words for a batch of targets."""
        from ..kernels import tail_mask, words_per_bits

        batch = int(indices.size)
        nw = words_per_bits(self.n)
        masks = np.empty((batch, self.n_servers, nw), dtype=np.uint64)
        draw = rng.integers(
            0, 0xFFFFFFFFFFFFFFFF, size=(batch, self.n_servers - 1, nw),
            dtype=np.uint64, endpoint=True,
        )
        draw[..., -1] &= tail_mask(self.n)
        masks[:, :-1] = draw
        combined = np.bitwise_xor.reduce(draw, axis=1)
        flip_mask_bits(combined, np.arange(batch), indices)
        masks[:, -1] = combined
        return masks

    def _retrieve_one(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> bytes:
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        rng = resolve_rng(rng)
        masks = self._query_masks(np.asarray([index], dtype=np.intp), rng)[0]
        answers = [
            server.answer(sid, _word_mask_indices(masks[sid], self.n))
            for sid, server in enumerate(self._servers)
        ]
        self.last_queries = tuple(a.query_indices for a in answers)
        self._traffic(
            self.n_servers * self.n,
            8 * sum(len(a.payload) for a in answers),
        )
        return _xor_payloads([a.payload for a in answers])

    def _retrieve_many(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[bytes]:
        idx = np.asarray(indices, dtype=np.intp).reshape(-1)
        self._check_indices(idx, self.n)
        if idx.size == 0:
            return []
        rng = resolve_rng(rng)
        masks = self._query_masks(idx, rng)
        result = self._servers[0].answer_batch(
            np.ascontiguousarray(masks[:, 0])
        )
        for sid in range(1, self.n_servers):
            result = result ^ self._servers[sid].answer_batch(
                np.ascontiguousarray(masks[:, sid])
            )
        self._set_batch_masks(
            tuple(masks[:, sid] for sid in range(self.n_servers)), self.n
        )
        self._traffic(
            idx.size * self.n_servers * self.n,
            idx.size * 8 * self.n_servers * self.block_size,
            queries=int(idx.size),
        )
        size = self.block_size
        return [result[b, :size].tobytes() for b in range(idx.size)]


class SquareSchemePIR(_XorPIRScheme):
    """Two-server scheme with O(√n) upstream communication.

    The database is laid out as an r x c matrix (r = c = ceil(√n)); the
    client retrieves the *column* containing the target using the XOR
    trick across columns, receiving per-row XORs from which it extracts
    the target cell.

    Threat model and failure behaviour match :class:`TwoServerXorPIR`:
    two non-colluding honest-but-curious servers, no integrity, no
    availability tolerance.  A prepared block store is materialized into
    the √n x √n grid, so this scheme always answers from RAM.
    """

    scheme = "square"

    def __init__(self, blocks: Sequence[bytes | int] | BlockStore):
        from ..kernels import pack_bytes_rows

        source = _as_store(blocks)
        db = source.blocks_u8
        self.n = int(source.n)
        self.cols = int(np.ceil(np.sqrt(self.n)))
        self.rows = int(np.ceil(self.n / self.cols))
        width = int(source.width)
        # (rows, cols, width) grid, zero-padded past index n.
        grid = np.zeros((self.rows * self.cols, width), dtype=np.uint8)
        grid[: self.n] = db
        self._grid = grid.reshape(self.rows, self.cols, width)
        # Word-packed mirrors: per-cell words for single (column-gather)
        # answers, and a column-major flattening for batched GF(2) matmul
        # (one row per column holding that column's blocks end to end).
        self._grid_words = pack_bytes_rows(grid).reshape(
            self.rows, self.cols, -1
        )
        self._by_column_words = pack_bytes_rows(
            self._grid.transpose(1, 0, 2).reshape(self.cols, -1)
        )
        self._column_state: dict = {}
        self.last_queries: tuple[tuple[int, ...], tuple[int, ...]] | None = None
        self._init_accounting()

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return int(self._grid.shape[2])

    def _answer(self, columns: np.ndarray) -> np.ndarray:
        """One server's reply: per-row XOR over the selected columns."""
        if columns.size:
            folded = np.bitwise_xor.reduce(
                self._grid_words[:, columns, :], axis=1
            )
            return folded.view(np.uint8)[:, : self.block_size]
        return np.zeros((self.rows, self.block_size), dtype=np.uint8)

    def _answer_batch(self, mask_words: np.ndarray) -> np.ndarray:
        """(B, nw) packed column queries -> (B, rows, block_size) replies."""
        words = get_backend().gf2_matmul(
            mask_words, self._by_column_words, self.cols,
            state=self._column_state, key="columns",
        )
        flat = words.view(np.uint8)[:, : self.rows * self.block_size]
        return flat.reshape(mask_words.shape[0], self.rows, self.block_size)

    def _retrieve_one(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> bytes:
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        rng = resolve_rng(rng)
        row, col = divmod(index, self.cols)
        words1 = sample_mask_words(rng, 1, self.cols)
        words2 = words1.copy()
        flip_mask_bits(words2, np.zeros(1, dtype=np.intp), np.asarray([col]))
        bits = unpack_bool_rows(np.vstack([words1, words2]), self.cols)
        c1 = np.flatnonzero(bits[0])
        c2 = np.flatnonzero(bits[1])
        a1 = self._answer(c1)
        a2 = self._answer(c2)
        self.last_queries = (
            tuple(c1.tolist()), tuple(c2.tolist())
        )
        self._traffic(2 * self.cols, 8 * self.block_size * 2 * self.rows)
        return np.bitwise_xor(a1[row], a2[row]).tobytes()

    def _retrieve_many(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[bytes]:
        idx = np.asarray(indices, dtype=np.intp).reshape(-1)
        self._check_indices(idx, self.n)
        if idx.size == 0:
            return []
        rng = resolve_rng(rng)
        rows, cols = np.divmod(idx, self.cols)
        words1 = sample_mask_words(rng, idx.size, self.cols)
        words2 = words1.copy()
        flip_mask_bits(words2, np.arange(idx.size), cols)
        a1 = self._answer_batch(words1)
        a2 = self._answer_batch(words2)
        self._set_batch_masks((words1, words2), self.cols)
        self._traffic(
            idx.size * 2 * self.cols,
            idx.size * 8 * self.block_size * 2 * self.rows,
            queries=int(idx.size),
        )
        combined = np.bitwise_xor(a1, a2)
        return [combined[b, rows[b]].tobytes() for b in range(idx.size)]
