"""Information-theoretic private information retrieval (Chor et al. [8]).

Two non-colluding servers hold the same database of fixed-size blocks; the
client retrieves block ``i`` while each server's view (a uniformly random
subset of indices) is statistically independent of ``i``.

Two schemes are provided:

* :class:`TwoServerXorPIR` — the basic linear scheme: the client sends a
  random index-set S to server 1 and S Δ {i} to server 2; each server
  answers with the XOR of the selected blocks; XOR of the answers is
  block i.  Communication O(n) bits upstream.
* :class:`SquareSchemePIR` — the classical O(√n) refinement: the database
  is arranged as a √n x √n matrix; the client runs the basic scheme on
  *columns* and receives whole-column XORs, cutting upstream cost to
  O(√n) per server.

Both implementations count communication so the scaling benchmark (A2 in
DESIGN.md) can regenerate cost curves.

The compute layer is fully vectorized: each server stores its replica as
a single ``np.uint8`` matrix of shape ``(n, block_size)``, a single
answer is one fancy-indexed ``np.bitwise_xor.reduce``, and batched
answers are one GF(2) matrix product over the bit-unpacked database.
``retrieve_batch`` consumes the rng stream exactly as the equivalent
sequence of ``retrieve`` calls would, so batched results are
byte-identical to sequential ones under the same seed.

Threat model (shared by every scheme here): servers are
honest-but-curious and **non-colluding** — privacy is information-
theoretic against any tolerated coalition, but there is *zero* answer
integrity or availability tolerance: a server that lies flips the
reconstructed XOR silently, and a server that does not answer leaves
nothing reconstructable.  Deployments that need byzantine/crash
tolerance wrap a scheme in
:class:`repro.faults.ResilientXorPIR` (2f+1 replica groups, majority
vote); ``tests/test_failure_injection.py`` demonstrates the raw
schemes' silent-corruption behaviour.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..sdc.base import resolve_rng
from ..telemetry import instrument as tele
from ..telemetry.registry import MetricsRegistry


@dataclass(frozen=True)
class PIRAnswer:
    """One server's reply plus the query it saw (for leakage analysis)."""

    server: int
    query_indices: tuple[int, ...]
    payload: bytes


def _normalize_blocks(blocks: Sequence[bytes | int]) -> np.ndarray:
    """Encode heterogeneous blocks into one ``(n, width)`` uint8 matrix.

    Bytes blocks are right-padded with NUL to the common width (at least 8
    bytes); integer blocks are big-endian two's-complement at that width.
    An integer that does not fit the common width raises ``ValueError``.
    """
    width = 8
    for b in blocks:
        if isinstance(b, (bytes, bytearray)):
            width = max(width, len(b))
    db = np.zeros((len(blocks), width), dtype=np.uint8)
    for i, b in enumerate(blocks):
        if isinstance(b, (bytes, bytearray)):
            if len(b):
                db[i, : len(b)] = np.frombuffer(bytes(b), dtype=np.uint8)
        else:
            try:
                raw = int(b).to_bytes(width, "big", signed=True)
            except OverflowError:
                raise ValueError(
                    f"integer block {b!r} does not fit the common block "
                    f"width of {width} bytes"
                ) from None
            db[i] = np.frombuffer(raw, dtype=np.uint8)
    return db


def _require_nonempty(db: np.ndarray) -> np.ndarray:
    if db.shape[0] == 0:
        raise ValueError("PIR database must contain at least one block")
    return db


def _xor_payloads(payloads: Sequence[bytes]) -> bytes:
    """Client-side combine: bytewise XOR of equal-length payloads."""
    acc = np.frombuffer(payloads[0], dtype=np.uint8).copy()
    for payload in payloads[1:]:
        acc ^= np.frombuffer(payload, dtype=np.uint8)
    return acc.tobytes()


def _masks_to_queries(masks: np.ndarray) -> tuple[tuple[int, ...], ...]:
    """Per-query sorted index tuples from a (B, n) boolean query matrix."""
    return tuple(tuple(np.flatnonzero(m).tolist()) for m in masks)


class _BatchViewMixin:
    """Lazy per-query server views for the most recent ``retrieve_batch``.

    Materializing index tuples for every query in a large batch costs more
    than answering the batch itself, so the boolean query matrices are
    kept and converted only when ``last_batch_queries`` is actually read
    (leakage tests, profiling adversaries).
    """

    _batch_masks: tuple[np.ndarray, ...] | None = None
    _batch_queries_cache: tuple[tuple[tuple[int, ...], ...], ...] | None = None

    def _set_batch_masks(self, per_server_masks: Sequence[np.ndarray]) -> None:
        """Record one (B, n) boolean matrix per server; update last_queries."""
        self._batch_masks = tuple(per_server_masks)
        self._batch_queries_cache = None
        self.last_queries = tuple(
            tuple(np.flatnonzero(m[-1]).tolist()) for m in self._batch_masks
        )

    @property
    def last_batch_queries(
        self,
    ) -> tuple[tuple[tuple[int, ...], ...], ...] | None:
        """Per-query tuple of per-server index views of the last batch."""
        if self._batch_masks is None:
            return None
        if self._batch_queries_cache is None:
            per_server = [_masks_to_queries(m) for m in self._batch_masks]
            self._batch_queries_cache = tuple(zip(*per_server))
        return self._batch_queries_cache


class _Server:
    """A PIR server holding the block database as a uint8 matrix."""

    def __init__(self, db: np.ndarray):
        self._db = db
        # Bit-unpacked replica for batched GF(2) matmul answers; built
        # lazily on the first batch so single-shot use pays nothing.
        self._bits: np.ndarray | None = None

    def answer(self, server_id: int, indices: Sequence[int]) -> PIRAnswer:
        """XOR of the requested blocks (one vectorized reduce)."""
        idx = np.asarray(indices, dtype=np.intp)
        if idx.size:
            payload = np.bitwise_xor.reduce(self._db[idx], axis=0).tobytes()
        else:
            payload = bytes(self._db.shape[1])
        return PIRAnswer(server_id, tuple(int(i) for i in indices), payload)

    def answer_batch(self, masks: np.ndarray) -> np.ndarray:
        """Answer every query of a (B, n) boolean matrix at once.

        Returns a ``(B, block_size)`` uint8 matrix whose row b is the XOR
        of the blocks selected by ``masks[b]`` — computed as one GF(2)
        matrix product (bit-count parity) over the unpacked database.
        """
        if self._bits is None:
            # Bit counts are bounded by n, so float32 stays exact for any
            # database below 2**24 blocks (and is ~2x faster in BLAS).
            dtype = np.float32 if self._db.shape[0] < 2**24 else np.float64
            self._bits = np.unpackbits(self._db, axis=1).astype(dtype)
        counts = masks.astype(self._bits.dtype) @ self._bits
        bits = (counts.astype(np.int64) & np.int64(1)).astype(np.uint8)
        return np.packbits(bits, axis=1)


class _XorPIRScheme(_BatchViewMixin):
    """Shared accounting, telemetry, and integer codecs for XOR schemes.

    Every scheme funnels its communication tally through :meth:`_traffic`,
    which feeds a per-instance telemetry registry (attached to the process
    registry, so benchmark snapshots see aggregate totals).  The public
    ``retrieve`` / ``retrieve_batch`` entry points add spans and latency
    histograms when telemetry is enabled and are plain pass-throughs when
    it is not; subclasses implement ``_retrieve_one`` / ``_retrieve_many``.
    """

    #: Short scheme tag used for span attributes and registry ownership.
    scheme = "xor"

    def _init_accounting(self) -> None:
        """Create the per-instance traffic counters (call from __init__)."""
        self.metrics = MetricsRegistry(owner=f"pir.{self.scheme}")
        self._c_upstream = self.metrics.counter("pir.upstream_bits")
        self._c_downstream = self.metrics.counter("pir.downstream_bits")
        self._c_retrievals = self.metrics.counter("pir.retrievals")

    @property
    def upstream_bits(self) -> int:
        """Total client-to-server communication so far, in bits."""
        return self._c_upstream.value

    @property
    def downstream_bits(self) -> int:
        """Total server-to-client communication so far, in bits."""
        return self._c_downstream.value

    @property
    def retrievals(self) -> int:
        """Number of block retrievals performed (batched ones included)."""
        return self._c_retrievals.value

    def _traffic(self, up: int, down: int, queries: int = 1) -> None:
        """Account *queries* retrievals costing *up*/*down* bits."""
        self._c_upstream.inc(up)
        self._c_downstream.inc(down)
        self._c_retrievals.inc(queries)

    def retrieve(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> bytes:
        """Privately retrieve block *index*."""
        if not tele.enabled():
            return self._retrieve_one(index, rng)
        with tele.span(
            "pir.retrieve", scheme=self.scheme, n=self.n, block=int(index)
        ) as span:
            block = self._retrieve_one(index, rng)
        tele.histogram("pir.retrieve_seconds").observe(span.duration)
        return block

    def retrieve_batch(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[bytes]:
        """Privately retrieve many blocks with one query matrix per server.

        Equivalent — byte for byte, under the same rng — to calling
        :meth:`retrieve` once per index, but each server computes all of
        its answers in a single vectorized pass.
        """
        if not tele.enabled():
            return self._retrieve_many(indices, rng)
        # Per-index lists are not span-schema scalars, so the batch span
        # carries an access-profile summary instead: the modal block, its
        # multiplicity, and the support size.  The observatory's skew
        # detector reads these to spot isolation-attack probing.
        tally: dict[int, int] = {}
        for index in indices:
            index = int(index)
            tally[index] = tally.get(index, 0) + 1
        top_block = max(sorted(tally), key=tally.get) if tally else -1
        with tele.span(
            "pir.retrieve_batch",
            scheme=self.scheme,
            n=self.n,
            n_queries=len(indices),
            top_block=top_block,
            top_count=tally.get(top_block, 0),
            distinct_blocks=len(tally),
        ) as span:
            blocks = self._retrieve_many(indices, rng)
        tele.histogram("pir.batch_seconds").observe(span.duration)
        return blocks

    def retrieve_int(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> int:
        """Retrieve a block and decode it as a signed integer."""
        return int.from_bytes(self.retrieve(index, rng), "big", signed=True)

    def retrieve_batch_int(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[int]:
        """Batched retrieval decoded as signed integers."""
        return [
            int.from_bytes(b, "big", signed=True)
            for b in self.retrieve_batch(indices, rng)
        ]


class TwoServerXorPIR(_XorPIRScheme):
    """The basic two-server XOR scheme of Chor–Goldreich–Kushilevitz–Sudan.

    Threat model: the two servers do not collude; each sees a uniformly
    random index set independent of the target.  Failure behaviour: none
    — a corrupted or missing answer silently corrupts (or prevents) the
    XOR reconstruction; see the module docstring for the resilient
    wrapper.

    Parameters
    ----------
    blocks:
        Database records, as ``bytes`` or signed integers (encoded to a
        common width).  Must be non-empty.
    """

    scheme = "two-server"

    def __init__(self, blocks: Sequence[bytes | int]):
        self._db = _require_nonempty(_normalize_blocks(blocks))
        self.n = int(self._db.shape[0])
        # Each server holds its own replica (they are distinct machines;
        # a byzantine server corrupting its copy must not affect the other).
        self._servers = (_Server(self._db.copy()), _Server(self._db.copy()))
        self.last_queries: tuple[tuple[int, ...], tuple[int, ...]] | None = None
        self._init_accounting()

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return int(self._db.shape[1])

    def _retrieve_one(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> bytes:
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        rng = resolve_rng(rng)
        mask1 = rng.random(self.n) < 0.5
        mask2 = mask1.copy()
        mask2[index] = ~mask2[index]
        a1 = self._servers[0].answer(0, np.flatnonzero(mask1))
        a2 = self._servers[1].answer(1, np.flatnonzero(mask2))
        self.last_queries = (a1.query_indices, a2.query_indices)
        # One characteristic bit-vector up per server; payloads back.
        self._traffic(2 * self.n, 8 * (len(a1.payload) + len(a2.payload)))
        return _xor_payloads([a1.payload, a2.payload])

    def _retrieve_many(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[bytes]:
        idx = np.asarray(indices, dtype=np.intp).reshape(-1)
        if idx.size and not (0 <= idx.min() and idx.max() < self.n):
            bad = idx[(idx < 0) | (idx >= self.n)][0]
            raise IndexError(f"index {bad} out of range [0, {self.n})")
        if idx.size == 0:
            return []
        rng = resolve_rng(rng)
        masks1 = rng.random((idx.size, self.n)) < 0.5
        masks2 = masks1.copy()
        rows = np.arange(idx.size)
        masks2[rows, idx] = ~masks2[rows, idx]
        a1 = self._servers[0].answer_batch(masks1)
        a2 = self._servers[1].answer_batch(masks2)
        self._set_batch_masks((masks1, masks2))
        self._traffic(
            idx.size * 2 * self.n,
            idx.size * 8 * 2 * self.block_size,
            queries=int(idx.size),
        )
        return [row.tobytes() for row in np.bitwise_xor(a1, a2)]


class MultiServerXorPIR(_XorPIRScheme):
    """k-server XOR PIR with (k-1)-collusion resistance.

    Generalizes the two-server scheme: the client picks k-1 independent
    uniformly random index sets S_1 .. S_{k-1} and sends server k the set
    ``S_1 Δ ... Δ S_{k-1} Δ {i}``; XOR of all answers is block i.  Any
    coalition of at most k-1 servers sees jointly uniform sets independent
    of the target (each proper subset misses at least one random mask).

    Threat model: privacy holds against up to k-1 colluding
    honest-but-curious servers.  Failure behaviour: none — collusion
    resistance buys no integrity; every server's answer enters the XOR,
    so one byzantine server corrupts the block silently.
    """

    scheme = "multi-server"

    def __init__(self, blocks: Sequence[bytes | int], n_servers: int = 3):
        if n_servers < 2:
            raise ValueError("need at least 2 servers")
        self._db = _require_nonempty(_normalize_blocks(blocks))
        self.n = int(self._db.shape[0])
        self.n_servers = n_servers
        self._servers = tuple(
            _Server(self._db.copy()) for _ in range(n_servers)
        )
        self.last_queries: tuple[tuple[int, ...], ...] | None = None
        self._init_accounting()

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return int(self._db.shape[1])

    def _query_masks(
        self, indices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """(B, n_servers, n) boolean query matrix for a batch of targets."""
        batch = indices.size
        masks = np.empty((batch, self.n_servers, self.n), dtype=bool)
        masks[:, :-1] = rng.random((batch, self.n_servers - 1, self.n)) < 0.5
        combined = np.logical_xor.reduce(masks[:, :-1], axis=1)
        rows = np.arange(batch)
        combined[rows, indices] = ~combined[rows, indices]
        masks[:, -1] = combined
        return masks

    def _retrieve_one(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> bytes:
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        rng = resolve_rng(rng)
        masks = self._query_masks(np.asarray([index], dtype=np.intp), rng)[0]
        answers = [
            server.answer(sid, np.flatnonzero(masks[sid]))
            for sid, server in enumerate(self._servers)
        ]
        self.last_queries = tuple(a.query_indices for a in answers)
        self._traffic(
            self.n_servers * self.n,
            8 * sum(len(a.payload) for a in answers),
        )
        return _xor_payloads([a.payload for a in answers])

    def _retrieve_many(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[bytes]:
        idx = np.asarray(indices, dtype=np.intp).reshape(-1)
        if idx.size and not (0 <= idx.min() and idx.max() < self.n):
            bad = idx[(idx < 0) | (idx >= self.n)][0]
            raise IndexError(f"index {bad} out of range [0, {self.n})")
        if idx.size == 0:
            return []
        rng = resolve_rng(rng)
        masks = self._query_masks(idx, rng)
        result = self._servers[0].answer_batch(masks[:, 0])
        for sid in range(1, self.n_servers):
            result ^= self._servers[sid].answer_batch(masks[:, sid])
        self._set_batch_masks(
            tuple(masks[:, sid] for sid in range(self.n_servers))
        )
        self._traffic(
            idx.size * self.n_servers * self.n,
            idx.size * 8 * self.n_servers * self.block_size,
            queries=int(idx.size),
        )
        return [row.tobytes() for row in result]


class SquareSchemePIR(_XorPIRScheme):
    """Two-server scheme with O(√n) upstream communication.

    The database is laid out as an r x c matrix (r = c = ceil(√n)); the
    client retrieves the *column* containing the target using the XOR
    trick across columns, receiving per-row XORs from which it extracts
    the target cell.

    Threat model and failure behaviour match :class:`TwoServerXorPIR`:
    two non-colluding honest-but-curious servers, no integrity, no
    availability tolerance.
    """

    scheme = "square"

    def __init__(self, blocks: Sequence[bytes | int]):
        db = _require_nonempty(_normalize_blocks(blocks))
        self.n = int(db.shape[0])
        self.cols = int(np.ceil(np.sqrt(self.n)))
        self.rows = int(np.ceil(self.n / self.cols))
        width = int(db.shape[1])
        # (rows, cols, width) grid, zero-padded past index n.
        grid = np.zeros((self.rows * self.cols, width), dtype=np.uint8)
        grid[: self.n] = db
        self._grid = grid.reshape(self.rows, self.cols, width)
        # Column-major flattening for batched GF(2) matmul answers.
        self._by_column = np.ascontiguousarray(
            self._grid.transpose(1, 0, 2).reshape(self.cols, -1)
        )
        self._column_bits: np.ndarray | None = None
        self.last_queries: tuple[tuple[int, ...], tuple[int, ...]] | None = None
        self._init_accounting()

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return int(self._grid.shape[2])

    def _answer(self, columns: np.ndarray) -> np.ndarray:
        """One server's reply: per-row XOR over the selected columns."""
        if columns.size:
            return np.bitwise_xor.reduce(self._grid[:, columns, :], axis=1)
        return np.zeros((self.rows, self.block_size), dtype=np.uint8)

    def _answer_batch(self, masks: np.ndarray) -> np.ndarray:
        """(B, cols) boolean query matrix -> (B, rows, block_size) replies."""
        if self._column_bits is None:
            dtype = np.float32 if self.cols < 2**24 else np.float64
            self._column_bits = np.unpackbits(
                self._by_column, axis=1
            ).astype(dtype)
        counts = masks.astype(self._column_bits.dtype) @ self._column_bits
        bits = (counts.astype(np.int64) & np.int64(1)).astype(np.uint8)
        return np.packbits(bits, axis=1).reshape(
            masks.shape[0], self.rows, self.block_size
        )

    def _retrieve_one(
        self, index: int, rng: np.random.Generator | int | None = None
    ) -> bytes:
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        rng = resolve_rng(rng)
        row, col = divmod(index, self.cols)
        mask1 = rng.random(self.cols) < 0.5
        mask2 = mask1.copy()
        mask2[col] = ~mask2[col]
        c1 = np.flatnonzero(mask1)
        c2 = np.flatnonzero(mask2)
        a1 = self._answer(c1)
        a2 = self._answer(c2)
        self.last_queries = (
            tuple(c1.tolist()), tuple(c2.tolist())
        )
        self._traffic(2 * self.cols, 8 * self.block_size * 2 * self.rows)
        return np.bitwise_xor(a1[row], a2[row]).tobytes()

    def _retrieve_many(
        self,
        indices: Sequence[int],
        rng: np.random.Generator | int | None = None,
    ) -> list[bytes]:
        idx = np.asarray(indices, dtype=np.intp).reshape(-1)
        if idx.size and not (0 <= idx.min() and idx.max() < self.n):
            bad = idx[(idx < 0) | (idx >= self.n)][0]
            raise IndexError(f"index {bad} out of range [0, {self.n})")
        if idx.size == 0:
            return []
        rng = resolve_rng(rng)
        rows, cols = np.divmod(idx, self.cols)
        masks1 = rng.random((idx.size, self.cols)) < 0.5
        masks2 = masks1.copy()
        order = np.arange(idx.size)
        masks2[order, cols] = ~masks2[order, cols]
        a1 = self._answer_batch(masks1)
        a2 = self._answer_batch(masks2)
        self._set_batch_masks((masks1, masks2))
        self._traffic(
            idx.size * 2 * self.cols,
            idx.size * 8 * self.block_size * 2 * self.rows,
            queries=int(idx.size),
        )
        combined = np.bitwise_xor(a1, a2)
        return [combined[b, rows[b]].tobytes() for b in range(idx.size)]
