"""Information-theoretic private information retrieval (Chor et al. [8]).

Two non-colluding servers hold the same database of fixed-size blocks; the
client retrieves block ``i`` while each server's view (a uniformly random
subset of indices) is statistically independent of ``i``.

Two schemes are provided:

* :class:`TwoServerXorPIR` — the basic linear scheme: the client sends a
  random index-set S to server 1 and S Δ {i} to server 2; each server
  answers with the XOR of the selected blocks; XOR of the answers is
  block i.  Communication O(n) bits upstream.
* :class:`SquareSchemePIR` — the classical O(√n) refinement: the database
  is arranged as a √n x √n matrix; the client runs the basic scheme on
  *columns* and receives whole-column XORs, cutting upstream cost to
  O(√n) per server.

Both implementations count communication so the scaling benchmark (A2 in
DESIGN.md) can regenerate cost curves.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..sdc.base import resolve_rng


@dataclass(frozen=True)
class PIRAnswer:
    """One server's reply plus the query it saw (for leakage analysis)."""

    server: int
    query_indices: tuple[int, ...]
    payload: bytes


class _Server:
    """A PIR server holding the block database."""

    def __init__(self, blocks: list[bytes]):
        self._blocks = blocks

    def answer(self, server_id: int, indices: Sequence[int]) -> PIRAnswer:
        """XOR of the requested blocks."""
        size = len(self._blocks[0]) if self._blocks else 0
        acc = bytearray(size)
        for i in indices:
            block = self._blocks[i]
            for j in range(size):
                acc[j] ^= block[j]
        return PIRAnswer(server_id, tuple(int(i) for i in indices), bytes(acc))


def _normalize_blocks(blocks: Sequence[bytes | int]) -> list[bytes]:
    out: list[bytes] = []
    width = 8
    for b in blocks:
        if isinstance(b, bytes):
            width = max(width, len(b))
    for b in blocks:
        if isinstance(b, bytes):
            out.append(b.ljust(width, b"\0"))
        else:
            out.append(int(b).to_bytes(width, "big", signed=True))
    return out


class TwoServerXorPIR:
    """The basic two-server XOR scheme of Chor–Goldreich–Kushilevitz–Sudan.

    Parameters
    ----------
    blocks:
        Database records, as ``bytes`` or signed integers (encoded to a
        common width).
    """

    def __init__(self, blocks: Sequence[bytes | int]):
        self._blocks = _normalize_blocks(blocks)
        self.n = len(self._blocks)
        # Each server holds its own replica (they are distinct machines;
        # a byzantine server corrupting its copy must not affect the other).
        self._servers = (_Server(list(self._blocks)), _Server(list(self._blocks)))
        self.last_queries: tuple[tuple[int, ...], tuple[int, ...]] | None = None
        self.upstream_bits = 0
        self.downstream_bits = 0

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return len(self._blocks[0]) if self._blocks else 0

    def retrieve(self, index: int, rng: np.random.Generator | int | None = None) -> bytes:
        """Privately retrieve block *index*."""
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        rng = resolve_rng(rng)
        subset = rng.random(self.n) < 0.5
        s1 = set(np.flatnonzero(subset).tolist())
        s2 = set(s1)
        s2 ^= {index}
        a1 = self._servers[0].answer(0, sorted(s1))
        a2 = self._servers[1].answer(1, sorted(s2))
        self.last_queries = (a1.query_indices, a2.query_indices)
        self.upstream_bits += 2 * self.n  # one characteristic bit-vector each
        self.downstream_bits += 8 * (len(a1.payload) + len(a2.payload))
        return bytes(x ^ y for x, y in zip(a1.payload, a2.payload))

    def retrieve_int(self, index: int, rng: np.random.Generator | int | None = None) -> int:
        """Retrieve a block and decode it as a signed integer."""
        return int.from_bytes(self.retrieve(index, rng), "big", signed=True)


class MultiServerXorPIR:
    """k-server XOR PIR with (k-1)-collusion resistance.

    Generalizes the two-server scheme: the client picks k-1 independent
    uniformly random index sets S_1 .. S_{k-1} and sends server k the set
    ``S_1 Δ ... Δ S_{k-1} Δ {i}``; XOR of all answers is block i.  Any
    coalition of at most k-1 servers sees jointly uniform sets independent
    of the target (each proper subset misses at least one random mask).
    """

    def __init__(self, blocks: Sequence[bytes | int], n_servers: int = 3):
        if n_servers < 2:
            raise ValueError("need at least 2 servers")
        self._blocks = _normalize_blocks(blocks)
        self.n = len(self._blocks)
        self.n_servers = n_servers
        self._servers = tuple(
            _Server(list(self._blocks)) for _ in range(n_servers)
        )
        self.last_queries: tuple[tuple[int, ...], ...] | None = None
        self.upstream_bits = 0
        self.downstream_bits = 0

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return len(self._blocks[0]) if self._blocks else 0

    def retrieve(self, index: int, rng: np.random.Generator | int | None = None) -> bytes:
        """Privately retrieve block *index*."""
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        rng = resolve_rng(rng)
        sets: list[set[int]] = []
        combined: set[int] = {index}
        for _ in range(self.n_servers - 1):
            subset = set(np.flatnonzero(rng.random(self.n) < 0.5).tolist())
            sets.append(subset)
            combined ^= subset
        sets.append(combined)
        answers = [
            server.answer(sid, sorted(s))
            for sid, (server, s) in enumerate(zip(self._servers, sets))
        ]
        self.last_queries = tuple(a.query_indices for a in answers)
        self.upstream_bits += self.n_servers * self.n
        self.downstream_bits += 8 * sum(len(a.payload) for a in answers)
        result = bytearray(self.block_size)
        for answer in answers:
            for j, byte in enumerate(answer.payload):
                result[j] ^= byte
        return bytes(result)

    def retrieve_int(self, index: int, rng: np.random.Generator | int | None = None) -> int:
        """Retrieve a block and decode it as a signed integer."""
        return int.from_bytes(self.retrieve(index, rng), "big", signed=True)


class SquareSchemePIR:
    """Two-server scheme with O(√n) upstream communication.

    The database is laid out as an r x c matrix (r = c = ceil(√n)); the
    client retrieves the *column* containing the target using the XOR
    trick across columns, receiving per-row XORs from which it extracts
    the target cell.
    """

    def __init__(self, blocks: Sequence[bytes | int]):
        self._blocks = _normalize_blocks(blocks)
        self.n = len(self._blocks)
        self.cols = int(np.ceil(np.sqrt(max(self.n, 1))))
        self.rows = int(np.ceil(self.n / max(self.cols, 1)))
        self.upstream_bits = 0
        self.downstream_bits = 0
        self.last_queries: tuple[tuple[int, ...], tuple[int, ...]] | None = None

    @property
    def block_size(self) -> int:
        """Bytes per block."""
        return len(self._blocks[0]) if self._blocks else 0

    def _cell(self, row: int, col: int) -> bytes:
        idx = row * self.cols + col
        if idx < self.n:
            return self._blocks[idx]
        return b"\0" * self.block_size

    def _answer(self, columns: Sequence[int]) -> list[bytes]:
        size = self.block_size
        out = []
        for row in range(self.rows):
            acc = bytearray(size)
            for col in columns:
                cell = self._cell(row, col)
                for j in range(size):
                    acc[j] ^= cell[j]
            out.append(bytes(acc))
        return out

    def retrieve(self, index: int, rng: np.random.Generator | int | None = None) -> bytes:
        """Privately retrieve block *index*."""
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        rng = resolve_rng(rng)
        row, col = divmod(index, self.cols)
        subset = rng.random(self.cols) < 0.5
        s1 = set(np.flatnonzero(subset).tolist())
        s2 = set(s1)
        s2 ^= {col}
        a1 = self._answer(sorted(s1))
        a2 = self._answer(sorted(s2))
        self.last_queries = (tuple(sorted(s1)), tuple(sorted(s2)))
        self.upstream_bits += 2 * self.cols
        self.downstream_bits += 8 * self.block_size * 2 * self.rows
        return bytes(x ^ y for x, y in zip(a1[row], a2[row]))

    def retrieve_int(self, index: int, rng: np.random.Generator | int | None = None) -> int:
        """Retrieve a block and decode it as a signed integer."""
        return int.from_bytes(self.retrieve(index, rng), "big", signed=True)
