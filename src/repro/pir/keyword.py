"""Keyword PIR (Chor–Gilboa–Naor style, via private binary search).

Plain PIR retrieves by *position*; real lookups are by *key* (a patient
id, a word).  The classical reduction: the server publishes only the
database size; the client binary-searches the key-sorted database with
O(log n) positional PIR retrievals, each fetching a (key, value) block —
the servers see only the usual random-looking PIR queries, never the key.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from ..sdc.base import resolve_rng
from ..telemetry import instrument as tele
from ..telemetry.registry import MetricsRegistry
from .itpir import TwoServerXorPIR

_KEY_BYTES = 24
_VALUE_BYTES = 16


def _pack(key: str, value: int) -> bytes:
    key_bytes = key.encode()[:_KEY_BYTES].ljust(_KEY_BYTES, b"\0")
    return key_bytes + int(value).to_bytes(_VALUE_BYTES, "big", signed=True)


def _unpack(block: bytes) -> tuple[str, int]:
    key = block[:_KEY_BYTES].rstrip(b"\0").decode()
    value = int.from_bytes(
        block[_KEY_BYTES:_KEY_BYTES + _VALUE_BYTES], "big", signed=True
    )
    return key, value


class KeywordPIR:
    """Private lookups by key over a two-server PIR database.

    Threat model: the wrapped :class:`TwoServerXorPIR`'s — two
    non-colluding honest-but-curious servers; each binary-search probe
    is an ordinary PIR retrieval, so servers learn the number of probes
    (public: ceil(log2 n)) but not the key.  Failure behaviour: none of
    its own — a corrupted retrieval mis-steers the binary search to a
    wrong or absent key, silently, exactly as the underlying scheme's
    corruption propagates.

    Parameters
    ----------
    mapping:
        key -> integer value.  Keys are sorted at build time; the sorted
        *order* (but not the keys) is what binary search exploits.
    """

    def __init__(self, mapping: Mapping[str, int]):
        items = sorted(mapping.items())
        self._keys = [k for k, _ in items]
        # An empty directory has no PIR database (every lookup misses).
        self._pir = (
            TwoServerXorPIR([_pack(k, v) for k, v in items]) if items else None
        )
        self.n = len(items)
        self.metrics = MetricsRegistry(owner="pir.keyword")
        self._c_lookups = self.metrics.counter("pir.keyword_lookups")
        self._c_retrievals = self.metrics.counter("pir.keyword_retrievals")

    @property
    def retrievals(self) -> int:
        """Total positional PIR retrievals issued so far."""
        return self._c_retrievals.value

    @property
    def lookups(self) -> int:
        """Total keyword lookups served so far."""
        return self._c_lookups.value

    def lookup(
        self, key: str, rng: np.random.Generator | int | None = None
    ) -> int | None:
        """Privately fetch the value for *key* (None when absent).

        Performs ceil(log2 n) + 1 positional PIR retrievals regardless of
        hit or miss, so even the *number* of rounds leaks nothing about
        whether the key exists.
        """
        return self.lookup_batch([key], rng)[0]

    def lookup_batch(
        self,
        keys: Sequence[str],
        rng: np.random.Generator | int | None = None,
    ) -> list[int | None]:
        """Privately fetch many keys, binary-searching them in lockstep.

        Every round issues one ``retrieve_batch`` covering all keys'
        probes, so the per-round Python overhead is paid once per round
        instead of once per key per round.  Each key still performs the
        fixed ceil(log2 n) + 1 rounds of :meth:`lookup`.
        """
        if self.n == 0:
            self._c_lookups.inc(len(keys))
            return [None] * len(keys)
        if not keys:
            return []
        self._c_lookups.inc(len(keys))
        if not tele.enabled():
            return self._lookup_batch(keys, rng)
        rounds = max(1, int(np.ceil(np.log2(self.n))) + 1)
        with tele.span(
            "pir.keyword_lookup_batch", n_keys=len(keys), rounds=rounds
        ) as span:
            found = self._lookup_batch(keys, rng)
            span.set("hits", sum(v is not None for v in found))
        tele.histogram("pir.keyword_lookup_seconds").observe(span.duration)
        return found

    def _lookup_batch(
        self,
        keys: Sequence[str],
        rng: np.random.Generator | int | None = None,
    ) -> list[int | None]:
        rng = resolve_rng(rng)
        batch = len(keys)
        lo = np.zeros(batch, dtype=np.intp)
        hi = np.full(batch, self.n - 1, dtype=np.intp)
        found: list[int | None] = [None] * batch
        # Fixed number of rounds: ceil(log2(n)) + 1.
        rounds = max(1, int(np.ceil(np.log2(self.n))) + 1)
        for _ in range(rounds):
            mid = (lo + hi) // 2
            blocks = self._pir.retrieve_batch(mid, rng)
            self._c_retrievals.inc(batch)
            for j, raw in enumerate(blocks):
                block_key, value = _unpack(raw)
                if block_key == keys[j]:
                    found[j] = value
                    # Keep issuing dummy retrievals to fix the round count.
                    lo[j] = hi[j] = mid[j]
                elif block_key < keys[j]:
                    lo[j] = min(mid[j] + 1, self.n - 1)
                else:
                    hi[j] = max(mid[j] - 1, 0)
        return found

    @property
    def upstream_bits(self) -> int:
        """Total client-to-server communication so far."""
        return self._pir.upstream_bits if self._pir is not None else 0

    @property
    def downstream_bits(self) -> int:
        """Total server-to-client communication so far."""
        return self._pir.downstream_bits if self._pir is not None else 0

    def server_view(self):
        """The servers' most recent query pair (for leakage tests)."""
        return self._pir.last_queries if self._pir is not None else None
