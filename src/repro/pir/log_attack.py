"""Query-log re-identification — the AOL scenario (paper, Section 1).

"the most rapidly growing concern is the privacy of the queries submitted
by users (especially after scandals like the August 2006 disclosure by
the AOL search engine of 36 million queries made by users)."

This module simulates that scenario end to end:

* a population of users, each with a topical *interest profile*;
* a search server logging (pseudonymous) query streams;
* an adversary holding background knowledge of some users' interests who
  matches pseudonymous logs back to identities (what journalists did to
  AOL user 4417749);
* the PIR counterfactual: the same workload through PIR leaves the
  server with no per-user topic information, so matching collapses to
  chance.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..sdc.base import resolve_rng


@dataclass(frozen=True)
class UserProfile:
    """A user's interest distribution over query topics."""

    name: str
    topic_weights: np.ndarray

    def sample_queries(
        self, n: int, rng: np.random.Generator
    ) -> list[int]:
        """Draw n topic-ids according to the profile."""
        return rng.choice(
            self.topic_weights.size, size=n, p=self.topic_weights
        ).tolist()


def make_user_population(
    n_users: int,
    n_topics: int = 20,
    concentration: float = 0.15,
    seed: int | np.random.Generator | None = 0,
) -> list[UserProfile]:
    """Generate users with distinctive Dirichlet interest profiles.

    Low *concentration* makes profiles peaky (each user has a few pet
    topics) — the regime in which histories are identifying, as with the
    AOL logs.
    """
    rng = resolve_rng(seed)
    return [
        UserProfile(
            name=f"user-{i:04d}",
            topic_weights=rng.dirichlet(np.full(n_topics, concentration)),
        )
        for i in range(n_users)
    ]


@dataclass
class QueryLog:
    """The server's view: pseudonym -> sequence of observed topics.

    A plaintext server logs every query topic.  A PIR server observes
    only the random-looking retrieval messages, so its 'log' per
    pseudonym is empty of topic information.
    """

    entries: dict[str, list[int]] = field(default_factory=dict)

    def record(self, pseudonym: str, topic: int | None) -> None:
        """Log one query (topic is None under PIR)."""
        history = self.entries.setdefault(pseudonym, [])
        if topic is not None:
            history.append(topic)

    def histogram(self, pseudonym: str, n_topics: int) -> np.ndarray:
        """Normalized topic histogram of one pseudonymous history."""
        counts = np.zeros(n_topics)
        for topic in self.entries.get(pseudonym, []):
            counts[topic] += 1
        total = counts.sum()
        return counts / total if total else np.full(n_topics, 1.0 / n_topics)


def run_search_sessions(
    users: Sequence[UserProfile],
    queries_per_user: int = 40,
    use_pir: bool = False,
    seed: int | np.random.Generator | None = 0,
) -> QueryLog:
    """Simulate every user querying the server under pseudonyms.

    With ``use_pir`` the server cannot see topics; the log records the
    session activity but no content.
    """
    rng = resolve_rng(seed)
    log = QueryLog()
    for i, user in enumerate(users):
        pseudonym = f"anon-{i:04d}"
        for topic in user.sample_queries(queries_per_user, rng):
            log.record(pseudonym, None if use_pir else topic)
    return log


@dataclass(frozen=True)
class LogAttackReport:
    """Outcome of the log-matching adversary."""

    n_users: int
    correct_matches: int

    @property
    def reidentification_rate(self) -> float:
        """Fraction of pseudonymous histories matched to the right user."""
        return self.correct_matches / self.n_users if self.n_users else 0.0

    @property
    def chance_rate(self) -> float:
        """Expected success of blind guessing."""
        return 1.0 / self.n_users if self.n_users else 0.0


def log_matching_attack(
    log: QueryLog,
    known_profiles: Sequence[UserProfile],
    seed: int | np.random.Generator | None = 0,
) -> LogAttackReport:
    """Match each pseudonymous history to the closest known profile.

    The adversary scores each (history, profile) pair by the
    log-likelihood of the history under the profile and takes the argmax
    — the statistically optimal matcher for this generative model.
    Pseudonym ``anon-i`` truly belongs to ``known_profiles[i]``.
    """
    rng = resolve_rng(seed)
    n_topics = known_profiles[0].topic_weights.size
    correct = 0
    log_weights = np.log(np.vstack([
        np.clip(p.topic_weights, 1e-12, None) for p in known_profiles
    ]))
    for i in range(len(known_profiles)):
        pseudonym = f"anon-{i:04d}"
        history = log.entries.get(pseudonym, [])
        if history:
            counts = np.bincount(history, minlength=n_topics)
            scores = log_weights @ counts
            guess = int(np.argmax(scores))
        else:
            guess = int(rng.integers(len(known_profiles)))
        correct += guess == i
    return LogAttackReport(len(known_profiles), correct)
