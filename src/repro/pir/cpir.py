"""Single-server computational PIR on Paillier.

With a single server, information-theoretic privacy is impossible (the
server would have to send the whole database), but *computational* privacy
is achievable (Kushilevitz–Ostrovsky; the single-database schemes surveyed
by Aguilar–Deswarte [6], which the paper cites): the client sends an
encrypted selection vector; under Paillier the server can evaluate
``Enc(sum_j e_j * x_j) = Enc(x_i)`` without learning i.

Two layouts:

* :class:`LinearCPIR` — one ciphertext per record upstream.
* :class:`MatrixCPIR` — records in an r x c matrix; the client selects a
  row with c = O(√n) ciphertexts and receives the encrypted row,
  decrypting only the wanted column client-side.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..crypto import paillier


class LinearCPIR:
    """Computational PIR with a full encrypted selection vector.

    Threat model: a *single* honest-but-curious server; privacy is
    computational (Paillier/DCRA), so it holds only against a
    polynomially bounded server — the trade against the IT schemes'
    non-collusion assumption.  Failure behaviour: none — the server
    returns one ciphertext, and a malformed or malicious one decrypts
    to an arbitrary wrong record without detection.
    """

    def __init__(
        self,
        records: Sequence[int],
        key_bits: int = 192,
        rng: random.Random | None = None,
    ):
        self._records = [int(r) for r in records]
        self.n = len(self._records)
        self._rng = rng or random.Random(61)
        self.public, self._private = paillier.generate_keypair(key_bits, self._rng)
        self.upstream_ciphertexts = 0
        self.downstream_ciphertexts = 0
        self.last_query_length: int | None = None

    def _server_eval(self, selection: Sequence[int]) -> int:
        acc = paillier.encrypt(self.public, 0, self._rng)
        for cipher, record in zip(selection, self._records):
            term = paillier.mul_plain(self.public, cipher, record)
            acc = paillier.add(self.public, acc, term)
        return acc

    def retrieve(self, index: int) -> int:
        """Privately retrieve record *index*."""
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        selection = [
            paillier.encrypt(self.public, 1 if j == index else 0, self._rng)
            for j in range(self.n)
        ]
        self.upstream_ciphertexts += self.n
        self.last_query_length = self.n
        answer = self._server_eval(selection)
        self.downstream_ciphertexts += 1
        return paillier.decrypt_signed(self._private, answer)


class MatrixCPIR:
    """Computational PIR with O(√n) upstream ciphertexts.

    Threat model and failure behaviour match :class:`LinearCPIR` (single
    computationally bounded server, no integrity); only the
    communication layout differs.
    """

    def __init__(
        self,
        records: Sequence[int],
        key_bits: int = 192,
        rng: random.Random | None = None,
    ):
        import math

        self._records = [int(r) for r in records]
        self.n = len(self._records)
        self.cols = max(1, int(math.isqrt(max(self.n, 1))))
        self.rows = -(-self.n // self.cols)
        self._rng = rng or random.Random(67)
        self.public, self._private = paillier.generate_keypair(key_bits, self._rng)
        self.upstream_ciphertexts = 0
        self.downstream_ciphertexts = 0

    def _cell(self, row: int, col: int) -> int:
        idx = row * self.cols + col
        return self._records[idx] if idx < self.n else 0

    def retrieve(self, index: int) -> int:
        """Privately retrieve record *index*."""
        if not 0 <= index < self.n:
            raise IndexError(f"index {index} out of range [0, {self.n})")
        row, col = divmod(index, self.cols)
        # Row-selection vector of length `rows`.
        selection = [
            paillier.encrypt(self.public, 1 if r == row else 0, self._rng)
            for r in range(self.rows)
        ]
        self.upstream_ciphertexts += self.rows
        # Server returns one ciphertext per column: Enc(matrix[row][c]).
        answer = []
        for c in range(self.cols):
            acc = paillier.encrypt(self.public, 0, self._rng)
            for r in range(self.rows):
                term = paillier.mul_plain(
                    self.public, selection[r], self._cell(r, c)
                )
                acc = paillier.add(self.public, acc, term)
            answer.append(acc)
        self.downstream_ciphertexts += self.cols
        return paillier.decrypt_signed(self._private, answer[col])
