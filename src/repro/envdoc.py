"""The single source of truth for ``REPRO_*`` environment knobs.

Every environment variable that changes the library's behaviour is
declared here, once, as data.  The CLI help epilogs
(``repro serve --help``, ``repro observe --help``,
``repro qdb explain --help``) and the README's configuration section
all render :func:`render_env_table` from this module, so a knob cannot
exist without being documented — ``tests/test_envdoc.py`` greps the
source tree for ``REPRO_*`` reads and fails if one is missing from
:data:`ENV_KNOBS`, and fails again if the README's table drifts from
the rendered one.

>>> "REPRO_KERNELS" in render_env_table()
True
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ENV_KNOBS", "EnvKnob", "env_knob_epilog", "render_env_table"]


@dataclass(frozen=True)
class EnvKnob:
    """One documented environment variable."""

    name: str
    component: str
    values: str
    default: str
    description: str


#: Every behaviour-changing ``REPRO_*`` variable, in display order.
ENV_KNOBS: tuple[EnvKnob, ...] = (
    EnvKnob(
        "REPRO_KERNELS", "kernels", "cext|numba|uint64|uint8",
        "auto-probe",
        "Force the GF(2)/popcount kernel backend instead of probing "
        "cext -> numba -> uint64 -> uint8.",
    ),
    EnvKnob(
        "REPRO_KERNELS_CACHE", "kernels", "directory",
        "<tempdir>/repro-kernels",
        "Build/cache directory for the compiled C extension.",
    ),
    EnvKnob(
        "REPRO_QDB_HISTORY_STORE", "qdb", "ram|memmap", "ram",
        "Backing store for packed query-history masks (memmap spills "
        "to disk for out-of-core histories).",
    ),
    EnvKnob(
        "REPRO_QDB_HISTORY_BUDGET", "qdb", "bytes", "unbounded",
        "RAM ceiling for the memmap history's hot window; older mask "
        "blocks are evicted to disk past it.",
    ),
    EnvKnob(
        "REPRO_QDB_OVERLAP_CHUNK", "qdb", "rows", "2048",
        "History rows per chunk in the overlap-control review sweep "
        "(bounds peak memory of the packed AND+popcount pass).",
    ),
    EnvKnob(
        "REPRO_SERVING_SHARDS", "serving", "count >= 1", "4",
        "Default shard count for ServingRuntime / `repro serve` when "
        "no explicit value is given.",
    ),
    EnvKnob(
        "REPRO_SERVING_QUEUE_DEPTH", "serving", "count >= 1", "64",
        "Default per-shard ingress queue bound; a full queue yields "
        "typed 'admission: shard ingress queue full' refusals.",
    ),
    EnvKnob(
        "REPRO_TRACE_SAMPLE", "telemetry", "count >= 1", "1",
        "Trace-context sampling: materialise a request trace for every "
        "Nth request per session (1 traces everything; sequence numbers "
        "still advance for sampled-out requests, keeping ids stable).",
    ),
    EnvKnob(
        "REPRO_PROFILE_HZ", "telemetry", "samples/sec", "0 (off)",
        "Continuous-profiler sampling rate for the background stack "
        "sampler; 0 or unset keeps the profiler a strict no-op.",
    ),
)


def render_env_table() -> str:
    """The aligned plain-text knob table shared by CLI help and README."""
    headers = ("variable", "component", "values", "default")
    rows = [
        (knob.name, knob.component, knob.values, knob.default)
        for knob in ENV_KNOBS
    ]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for knob, row in zip(ENV_KNOBS, rows):
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
        lines.append(f"{'':{widths[0]}}    {knob.description}")
    return "\n".join(lines)


def env_knob_epilog() -> str:
    """The table wrapped for an argparse ``epilog``."""
    return (
        "environment variables (all REPRO_* knobs; the table is "
        "generated from repro.envdoc):\n\n" + render_env_table()
    )
