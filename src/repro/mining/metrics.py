"""Evaluation metrics for the mining substrate."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def accuracy(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of matching labels."""
    t = np.asarray(y_true)
    p = np.asarray(y_pred)
    if t.shape != p.shape:
        raise ValueError("label arrays must have the same shape")
    if t.size == 0:
        return 0.0
    return float((t == p).mean())


def confusion_counts(y_true: Sequence, y_pred: Sequence, positive) -> tuple[int, int, int, int]:
    """Return (tp, fp, fn, tn) for a binary task with the given positive label."""
    t = np.asarray(y_true) == positive
    p = np.asarray(y_pred) == positive
    tp = int((t & p).sum())
    fp = int((~t & p).sum())
    fn = int((t & ~p).sum())
    tn = int((~t & ~p).sum())
    return tp, fp, fn, tn


def f1_score(y_true: Sequence, y_pred: Sequence, positive) -> float:
    """Harmonic mean of precision and recall for the positive label."""
    tp, fp, fn, _ = confusion_counts(y_true, y_pred, positive)
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom else 0.0


def train_test_split_indices(
    n: int, test_fraction: float = 0.3, rng: np.random.Generator | int | None = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled train/test index split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    perm = gen.permutation(n)
    cut = int(round(n * (1.0 - test_fraction)))
    return perm[:cut], perm[cut:]
