"""Apriori frequent-itemset and association-rule mining.

The substrate for association-rule hiding (Verykios et al. [25], cited by
the paper as use-specific non-crypto PPDM): transactions are sets of item
labels; Apriori enumerates frequent itemsets level-wise and derives rules
``antecedent -> consequent`` above support and confidence thresholds.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from itertools import combinations


@dataclass(frozen=True)
class AssociationRule:
    """An association rule with its support and confidence."""

    antecedent: frozenset[str]
    consequent: frozenset[str]
    support: float
    confidence: float

    @property
    def itemset(self) -> frozenset[str]:
        """Union of antecedent and consequent."""
        return self.antecedent | self.consequent

    def __str__(self) -> str:
        lhs = ",".join(sorted(self.antecedent))
        rhs = ",".join(sorted(self.consequent))
        return f"{{{lhs}}} -> {{{rhs}}} (sup={self.support:.3f}, conf={self.confidence:.3f})"


def itemset_support(
    transactions: Sequence[frozenset[str]], itemset: Iterable[str]
) -> float:
    """Fraction of transactions containing every item of *itemset*."""
    if not transactions:
        return 0.0
    target = frozenset(itemset)
    hits = sum(1 for t in transactions if target <= t)
    return hits / len(transactions)


def frequent_itemsets(
    transactions: Sequence[frozenset[str]],
    min_support: float,
    max_size: int = 4,
) -> dict[frozenset[str], float]:
    """Level-wise Apriori enumeration of frequent itemsets."""
    if not 0.0 < min_support <= 1.0:
        raise ValueError("min_support must be in (0, 1]")
    n = len(transactions)
    if n == 0:
        return {}
    # Level 1.
    counts: dict[frozenset[str], int] = {}
    for t in transactions:
        for item in t:
            key = frozenset([item])
            counts[key] = counts.get(key, 0) + 1
    frequent: dict[frozenset[str], float] = {
        s: c / n for s, c in counts.items() if c / n >= min_support
    }
    current = [s for s in frequent if len(s) == 1]
    size = 1
    while current and size < max_size:
        size += 1
        # Candidate generation: join pairs sharing size-2 items.
        items = sorted({item for s in current for item in s})
        candidates = set()
        current_set = set(current)
        for combo in combinations(items, size):
            cand = frozenset(combo)
            # Apriori pruning: all (size-1)-subsets must be frequent.
            if all(
                frozenset(sub) in current_set
                for sub in combinations(combo, size - 1)
            ):
                candidates.add(cand)
        level: list[frozenset[str]] = []
        for cand in candidates:
            sup = itemset_support(transactions, cand)
            if sup >= min_support:
                frequent[cand] = sup
                level.append(cand)
        current = level
    return frequent


def association_rules(
    transactions: Sequence[frozenset[str]],
    min_support: float,
    min_confidence: float,
    max_size: int = 4,
) -> list[AssociationRule]:
    """Mine rules above the support and confidence thresholds."""
    frequent = frequent_itemsets(transactions, min_support, max_size)
    rules: list[AssociationRule] = []
    for itemset, support in frequent.items():
        if len(itemset) < 2:
            continue
        for r in range(1, len(itemset)):
            for antecedent in combinations(sorted(itemset), r):
                ant = frozenset(antecedent)
                ant_support = frequent.get(ant)
                if ant_support is None:
                    ant_support = itemset_support(transactions, ant)
                if ant_support == 0:
                    continue
                confidence = support / ant_support
                if confidence >= min_confidence:
                    rules.append(
                        AssociationRule(ant, itemset - ant, support, confidence)
                    )
    rules.sort(key=lambda rule: (-rule.confidence, -rule.support, str(rule)))
    return rules
