"""Gaussian naive Bayes classifier.

A second plaintext learner used to check that masked releases (noise,
condensation, microaggregation) still support "a variety of analyses", as
the paper claims for condensation [1].
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np


@dataclass
class GaussianNaiveBayes:
    """Per-class independent Gaussians with shared prior estimation."""

    var_floor: float = 1e-9
    _classes: np.ndarray | None = field(default=None, repr=False)
    _priors: np.ndarray | None = field(default=None, repr=False)
    _means: np.ndarray | None = field(default=None, repr=False)
    _vars: np.ndarray | None = field(default=None, repr=False)

    def fit(self, features: np.ndarray, labels: Sequence) -> "GaussianNaiveBayes":
        """Estimate per-class means/variances and priors."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels)
        self._classes = np.unique(y)
        n_classes, d = self._classes.size, x.shape[1]
        self._priors = np.empty(n_classes)
        self._means = np.empty((n_classes, d))
        self._vars = np.empty((n_classes, d))
        for idx, cls in enumerate(self._classes):
            block = x[y == cls]
            self._priors[idx] = block.shape[0] / x.shape[0]
            self._means[idx] = block.mean(axis=0)
            self._vars[idx] = block.var(axis=0) + self.var_floor
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict the MAP class for each row."""
        if self._classes is None:
            raise RuntimeError("fit() must run before predict()")
        x = np.asarray(features, dtype=np.float64)
        scores = np.empty((x.shape[0], self._classes.size))
        for idx in range(self._classes.size):
            z = (x - self._means[idx]) ** 2 / self._vars[idx]
            log_like = -0.5 * (z + np.log(2.0 * np.pi * self._vars[idx])).sum(axis=1)
            scores[:, idx] = log_like + np.log(self._priors[idx])
        return self._classes[np.argmax(scores, axis=1)]
