"""Decision-tree classifier (ID3/C4.5-style, numeric thresholds).

The Agrawal–Srikant experiment [5] that the paper cites trains
decision-tree classifiers on reconstructed distributions; this module
provides the tree both for plaintext training and for training *by class
on reconstructed per-class distributions* (``fit_from_distributions``),
mirroring the "ByClass" variant of [5].
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..ppdm.reconstruction import ReconstructedDistribution


def _entropy(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    p = counts / labels.size
    return float(-(p * np.log2(p)).sum())


@dataclass
class TreeNode:
    """A node of the decision tree."""

    prediction: object = None
    feature: int | None = None
    threshold: float | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """True for terminal nodes."""
        return self.feature is None


@dataclass
class DecisionTree:
    """A binary decision tree on numeric features.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split:
        Do not split nodes smaller than this.
    """

    max_depth: int = 6
    min_samples_split: int = 10
    _root: TreeNode | None = field(default=None, repr=False)

    def fit(self, features: np.ndarray, labels: Sequence) -> "DecisionTree":
        """Train on a (n, d) feature matrix and n labels."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels)
        if x.ndim != 2 or x.shape[0] != y.shape[0]:
            raise ValueError("features must be (n, d) aligned with labels")
        self._root = self._build(x, y, depth=0)
        return self

    def _majority(self, y: np.ndarray):
        values, counts = np.unique(y, return_counts=True)
        return values[int(np.argmax(counts))]

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        base = _entropy(y)
        best_gain, best = 0.0, None
        n = y.shape[0]
        for j in range(x.shape[1]):
            order = np.argsort(x[:, j], kind="stable")
            xs, ys = x[order, j], y[order]
            # Candidate thresholds: midpoints between distinct consecutive values.
            distinct = np.flatnonzero(np.diff(xs) > 0)
            if distinct.size == 0:
                continue
            # Cap candidates for speed on large nodes.
            if distinct.size > 32:
                distinct = distinct[np.linspace(0, distinct.size - 1, 32, dtype=int)]
            for cut in distinct:
                thr = (xs[cut] + xs[cut + 1]) / 2.0
                left, right = ys[: cut + 1], ys[cut + 1:]
                gain = base - (
                    left.size / n * _entropy(left)
                    + right.size / n * _entropy(right)
                )
                if gain > best_gain:
                    best_gain, best = gain, (j, thr)
        return best

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> TreeNode:
        if (
            depth >= self.max_depth
            or y.shape[0] < self.min_samples_split
            or np.unique(y).size == 1
        ):
            return TreeNode(prediction=self._majority(y))
        split = self._best_split(x, y)
        if split is None:
            return TreeNode(prediction=self._majority(y))
        j, thr = split
        mask = x[:, j] <= thr
        if mask.all() or not mask.any():
            return TreeNode(prediction=self._majority(y))
        return TreeNode(
            prediction=self._majority(y),
            feature=j,
            threshold=thr,
            left=self._build(x[mask], y[mask], depth + 1),
            right=self._build(x[~mask], y[~mask], depth + 1),
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict labels for a (n, d) feature matrix."""
        if self._root is None:
            raise RuntimeError("fit() must run before predict()")
        x = np.asarray(features, dtype=np.float64)
        out = np.empty(x.shape[0], dtype=object)
        for i in range(x.shape[0]):
            node = self._root
            while not node.is_leaf:
                node = node.left if x[i, node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: TreeNode | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        if self._root is None:
            return 0
        return walk(self._root)


def fit_from_distributions(
    per_class: dict[object, tuple[ReconstructedDistribution, int]],
    samples_per_class: int = 400,
    rng: np.random.Generator | int | None = 0,
    **tree_kwargs,
) -> DecisionTree:
    """Train a tree from reconstructed per-class univariate distributions.

    ``per_class`` maps class label -> (joint/univariate reconstruction,
    class count).  Synthetic training points are drawn from each
    reconstructed distribution in proportion to the class counts — the
    "ByClass" reconstruction-then-train route of Agrawal–Srikant [5].
    """
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
    xs, ys = [], []
    total = sum(count for _, count in per_class.values())
    for label, (dist, count) in per_class.items():
        n = max(1, int(round(samples_per_class * count / max(total, 1))))
        flat = dist.probabilities.reshape(-1)
        flat = flat / flat.sum()
        cells = rng.choice(flat.size, size=n, p=flat)
        grid_shape = dist.probabilities.shape
        points = np.empty((n, dist.n_dims))
        for d in range(dist.n_dims):
            idx = np.unravel_index(cells, grid_shape)[d]
            edges = dist.edges[d]
            lo, hi = edges[idx], edges[idx + 1]
            points[:, d] = rng.uniform(lo, hi)
        xs.append(points)
        ys.extend([label] * n)
    features = np.vstack(xs)
    labels = np.asarray(ys, dtype=object)
    return DecisionTree(**tree_kwargs).fit(features, labels)
