"""Data-mining substrate: trees, rules, naive Bayes and metrics."""

from .apriori import (
    AssociationRule,
    association_rules,
    frequent_itemsets,
    itemset_support,
)
from .decision_tree import DecisionTree, TreeNode, fit_from_distributions
from .metrics import accuracy, confusion_counts, f1_score, train_test_split_indices
from .naive_bayes import GaussianNaiveBayes

__all__ = [
    "AssociationRule",
    "DecisionTree",
    "GaussianNaiveBayes",
    "TreeNode",
    "accuracy",
    "association_rules",
    "confusion_counts",
    "f1_score",
    "fit_from_distributions",
    "frequent_itemsets",
    "itemset_support",
    "train_test_split_indices",
]
