"""Distribution reconstruction from randomized data (Agrawal–Srikant [5]).

Given randomized values ``w_i = x_i + y_i`` where the noise density ``f_Y``
is public, the Bayesian iterative algorithm of [5] recovers the original
distribution ``f_X`` on a discretized grid:

    p^{t+1}(a)  =  (1/n) * sum_i  f_Y(w_i - a) p^t(a)
                                  -----------------------
                                  sum_b f_Y(w_i - b) p^t(b)

(an EM fixed point).  The univariate version powers the decision-tree
training of [5]; the *multivariate* version over a product grid is what
the disclosure analysis of Domingo-Ferrer–Sebé–Castellà [11] exploits:
in high dimensions the reconstructed joint histogram pins individual
records into rare cells.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .randomization import NoiseModel


@dataclass(frozen=True)
class ReconstructedDistribution:
    """A discretized estimate of an original (possibly joint) distribution."""

    edges: tuple[np.ndarray, ...]
    probabilities: np.ndarray
    iterations: int

    @property
    def n_dims(self) -> int:
        """Dimensionality of the grid."""
        return len(self.edges)

    def centers(self, dim: int = 0) -> np.ndarray:
        """Bin centres along *dim*."""
        e = self.edges[dim]
        return (e[:-1] + e[1:]) / 2.0

    def cell_index(self, point: Sequence[float]) -> tuple[int, ...]:
        """Grid cell containing *point* (clipped to the grid)."""
        idx = []
        for d, e in enumerate(self.edges):
            j = int(np.searchsorted(e, point[d], side="right")) - 1
            idx.append(min(max(j, 0), len(e) - 2))
        return tuple(idx)

    def marginal(self, dim: int) -> np.ndarray:
        """Marginal probability vector along *dim*."""
        axes = tuple(i for i in range(self.n_dims) if i != dim)
        return self.probabilities.sum(axis=axes) if axes else self.probabilities


def _grid_edges(
    values: np.ndarray, bins: int, padding: float
) -> np.ndarray:
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo if hi > lo else 1.0
    return np.linspace(lo - padding * span, hi + padding * span, bins + 1)


def reconstruct_univariate(
    randomized: Sequence[float],
    noise: NoiseModel,
    bins: int = 50,
    max_iter: int = 200,
    tol: float = 1e-6,
) -> ReconstructedDistribution:
    """Reconstruct a one-dimensional original distribution."""
    w = np.asarray(randomized, dtype=np.float64)
    if w.size == 0:
        raise ValueError("cannot reconstruct from an empty sample")
    edges = _grid_edges(w, bins, padding=0.05)
    centers = (edges[:-1] + edges[1:]) / 2.0
    # Likelihood matrix L[i, a] = f_Y(w_i - center_a), fixed across iterations.
    likelihood = noise.density(w[:, None] - centers[None, :])
    p = np.full(bins, 1.0 / bins)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        weighted = likelihood * p[None, :]
        denom = weighted.sum(axis=1, keepdims=True)
        denom[denom == 0] = 1e-300
        posterior = weighted / denom
        new_p = posterior.mean(axis=0)
        if np.abs(new_p - p).max() < tol:
            p = new_p
            break
        p = new_p
    return ReconstructedDistribution((edges,), p, iterations)


def reconstruct_joint(
    randomized: np.ndarray,
    noises: Sequence[NoiseModel],
    bins: int = 6,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> ReconstructedDistribution:
    """Reconstruct a joint distribution over a product grid.

    ``randomized`` is (n, d); noise is independent per dimension, so the
    joint noise density factorizes.  Grid size is ``bins ** d`` — keep
    ``d * log(bins)`` modest (the attack of [11] already bites at d = 4–8).
    """
    w = np.asarray(randomized, dtype=np.float64)
    if w.ndim != 2:
        raise ValueError("randomized must be a 2-D array (records x dims)")
    n, d = w.shape
    if len(noises) != d:
        raise ValueError("one noise model per dimension is required")
    edges = tuple(_grid_edges(w[:, j], bins, padding=0.05) for j in range(d))
    centers = [(e[:-1] + e[1:]) / 2.0 for e in edges]
    # Per-dimension likelihood factors, combined into L[i, cell].
    factors = [
        noises[j].density(w[:, j][:, None] - centers[j][None, :])
        for j in range(d)
    ]
    n_cells = bins ** d
    likelihood = np.ones((n, n_cells))
    # Enumerate cells in C-order of a d-dim grid.
    for j in range(d):
        reps_inner = bins ** (d - 1 - j)
        reps_outer = bins ** j
        tiled = np.tile(np.repeat(np.arange(bins), reps_inner), reps_outer)
        likelihood *= factors[j][:, tiled]
    p = np.full(n_cells, 1.0 / n_cells)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        weighted = likelihood * p[None, :]
        denom = weighted.sum(axis=1, keepdims=True)
        denom[denom == 0] = 1e-300
        posterior = weighted / denom
        new_p = posterior.mean(axis=0)
        if np.abs(new_p - p).max() < tol:
            p = new_p
            break
        p = new_p
    return ReconstructedDistribution(edges, p.reshape((bins,) * d), iterations)


def posterior_cells(
    randomized: np.ndarray,
    noises: Sequence[NoiseModel],
    dist: ReconstructedDistribution,
) -> list[tuple[tuple[int, ...], float]]:
    """MAP cell (and its posterior probability) for each randomized record.

    This is the record-level step of the [11] disclosure analysis: once the
    joint distribution is reconstructed, each randomized record can be
    assigned the grid cell it most likely came from.
    """
    w = np.asarray(randomized, dtype=np.float64)
    d = w.shape[1]
    bins = dist.probabilities.shape[0]
    centers = [dist.centers(j) for j in range(d)]
    flat_p = dist.probabilities.reshape(-1)
    results = []
    for i in range(w.shape[0]):
        like = np.ones(flat_p.shape[0])
        for j in range(d):
            f = noises[j].density(w[i, j] - centers[j])
            reps_inner = bins ** (d - 1 - j)
            reps_outer = bins ** j
            tiled = np.tile(np.repeat(np.arange(bins), reps_inner), reps_outer)
            like *= f[tiled]
        post = like * flat_p
        total = post.sum()
        if total <= 0:
            results.append((tuple([0] * d), 0.0))
            continue
        post /= total
        best = int(np.argmax(post))
        cell = np.unravel_index(best, dist.probabilities.shape)
        results.append((tuple(int(c) for c in cell), float(post[best])))
    return results


def reconstruction_error(
    original: Sequence[float],
    dist: ReconstructedDistribution,
) -> float:
    """Total-variation distance between the true sample histogram and the
    reconstructed univariate distribution (0 = perfect reconstruction)."""
    x = np.asarray(original, dtype=np.float64)
    counts, _ = np.histogram(x, bins=dist.edges[0])
    truth = counts / max(counts.sum(), 1)
    return float(0.5 * np.abs(truth - dist.probabilities).sum())
