"""Agrawal–Srikant value randomization [5].

The data owner perturbs each numeric value with additive noise drawn from a
*publicly known* distribution before releasing it.  Because the noise
distribution is known, the *distribution* of the original data can be
reconstructed (:mod:`repro.ppdm.reconstruction`) and used to train, e.g.,
decision-tree classifiers — the owner shares analytical value without
sharing the data themselves (owner privacy).

The paper uses this method three times: as the canonical masking route to
respondent + owner privacy (Section 2), as the cautionary tale of [11]
(high-dimensional reconstruction can disclose respondents), and as the
"use-specific non-crypto PPDM" row of Table 2.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from ..sdc.base import MaskingMethod, quasi_identifier_columns, resolve_rng


@dataclass(frozen=True)
class NoiseModel:
    """The public description of the randomizing distribution.

    Gaussian (``kind="gaussian"``) or uniform on [-width/2, width/2]
    (``kind="uniform"``), per Agrawal–Srikant.
    """

    kind: str
    scale: float

    def __post_init__(self):
        if self.kind not in ("gaussian", "uniform"):
            raise ValueError("kind must be 'gaussian' or 'uniform'")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw n noise values."""
        if self.kind == "gaussian":
            return rng.normal(0.0, self.scale, n)
        return rng.uniform(-self.scale / 2.0, self.scale / 2.0, n)

    def density(self, delta: np.ndarray) -> np.ndarray:
        """Noise density evaluated at *delta* (vectorized)."""
        delta = np.asarray(delta, dtype=np.float64)
        if self.kind == "gaussian":
            z = delta / self.scale
            return np.exp(-0.5 * z * z) / (self.scale * np.sqrt(2.0 * np.pi))
        inside = np.abs(delta) <= self.scale / 2.0
        return np.where(inside, 1.0 / self.scale, 0.0)


class AgrawalSrikantRandomizer(MaskingMethod):
    """Randomize numeric columns with a publicly known noise model.

    Parameters
    ----------
    relative_scale:
        Noise scale as a fraction of each column's standard deviation.
    kind:
        ``"gaussian"`` or ``"uniform"``.
    columns:
        Columns to randomize (default: schema quasi-identifiers, falling
        back to all numeric columns).

    After :meth:`mask`, :attr:`noise_models` maps each randomized column to
    the exact :class:`NoiseModel` used — this is the public knowledge the
    reconstruction algorithm (and the attacker of [11]) consumes.
    """

    def __init__(
        self,
        relative_scale: float = 1.0,
        kind: str = "gaussian",
        columns: Sequence[str] | None = None,
    ):
        self.relative_scale = float(relative_scale)
        self.kind = kind
        self.columns = columns
        self.noise_models: dict[str, NoiseModel] = {}
        self.name = f"agrawal-srikant({kind},s={relative_scale:g})"

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        out = data.copy()
        self.noise_models = {}
        for name in quasi_identifier_columns(data, self.columns):
            if not data.is_numeric(name):
                continue
            col = data.column(name)
            sd = col.std() if col.std() > 0 else 1.0
            model = NoiseModel(self.kind, self.relative_scale * sd)
            self.noise_models[name] = model
            out = out.with_column(name, col + model.sample(col.size, rng))
        return out
