"""Randomized response (Warner; Du–Zhan [13]).

Each respondent (or, as the paper's footnote 1 argues, more realistically
the *data owner* on the respondents' behalf) reports the true binary value
with probability ``p`` and its complement with probability ``1 - p``.  The
aggregate true proportion remains estimable:

    pi_hat = (lambda_hat + p - 1) / (2p - 1)

where ``lambda_hat`` is the observed "yes" proportion.  Related-question
and unrelated-question designs reduce to the same estimator.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from ..sdc.base import MaskingMethod, resolve_rng


@dataclass(frozen=True)
class RandomizedResponseEstimate:
    """Unbiased estimate of a true proportion from randomized reports."""

    proportion: float
    variance: float

    @property
    def std_error(self) -> float:
        """Standard error of the estimate."""
        return float(np.sqrt(max(self.variance, 0.0)))


def randomize_binary(
    values: Sequence[bool] | np.ndarray,
    p_truth: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Warner mechanism: report the truth w.p. ``p_truth``, else flip."""
    if not 0.0 <= p_truth <= 1.0:
        raise ValueError("p_truth must be in [0, 1]")
    if abs(p_truth - 0.5) < 1e-12:
        raise ValueError("p_truth = 1/2 destroys all information")
    rng = resolve_rng(rng)
    truth = np.asarray(values, dtype=bool)
    flip = rng.random(truth.shape[0]) >= p_truth
    return np.where(flip, ~truth, truth)


def estimate_proportion(
    reports: Sequence[bool] | np.ndarray, p_truth: float
) -> RandomizedResponseEstimate:
    """Invert the Warner mechanism to estimate the true 'yes' proportion."""
    reports = np.asarray(reports, dtype=bool)
    n = reports.shape[0]
    if n == 0:
        raise ValueError("no reports")
    lam = float(reports.mean())
    denom = 2.0 * p_truth - 1.0
    pi_hat = (lam + p_truth - 1.0) / denom
    variance = lam * (1.0 - lam) / (n * denom * denom)
    return RandomizedResponseEstimate(
        proportion=float(np.clip(pi_hat, 0.0, 1.0)), variance=variance
    )


def per_record_posterior(report: bool, p_truth: float, prior: float) -> float:
    """P(true value = yes | report), the record-level leakage of RR.

    Used by the respondent-privacy meter: the closer this stays to the
    prior, the better the mechanism protects individual respondents.
    """
    like_yes = p_truth if report else 1.0 - p_truth
    like_no = 1.0 - p_truth if report else p_truth
    denom = like_yes * prior + like_no * (1.0 - prior)
    if denom == 0:
        return prior
    return like_yes * prior / denom


class RandomizedResponse(MaskingMethod):
    """Masking method applying Warner randomization to Y/N columns.

    Columns listed in *columns* (default: all object columns whose values
    are within {"Y", "N"}) are randomized; the mechanism parameter is kept
    on the instance so analysts can unbias their estimates.
    """

    def __init__(self, p_truth: float = 0.75, columns: Sequence[str] | None = None):
        if abs(p_truth - 0.5) < 1e-12:
            raise ValueError("p_truth = 1/2 destroys all information")
        self.p_truth = float(p_truth)
        self.columns = columns
        self.name = f"randomized-response(p={p_truth:g})"

    def _target_columns(self, data: Dataset) -> list[str]:
        if self.columns is not None:
            return list(self.columns)
        targets = []
        for name in data.column_names:
            if data.is_numeric(name):
                continue
            values = set(data.column(name))
            if values <= {"Y", "N"} and values:
                targets.append(name)
        return targets

    def mask(self, data: Dataset, rng: np.random.Generator | None = None) -> Dataset:
        rng = resolve_rng(rng)
        out = data.copy()
        for name in self._target_columns(data):
            truth = data.column(name) == "Y"
            randomized = randomize_binary(truth, self.p_truth, rng)
            out = out.with_column(
                name, np.where(randomized, "Y", "N").astype(object)
            )
        return out
