"""Association-rule hiding (Verykios et al. [25]).

Use-specific non-crypto PPDM: the owner wants to release transaction data
that still supports association-rule mining, *except* for a designated set
of sensitive rules, which must fall below the mining thresholds.  The
classic sanitization strategy implemented here lowers a sensitive rule's
support (and hence confidence) by removing one item of the rule from
carefully chosen supporting transactions until the rule drops below
``min_support`` or its confidence below ``min_confidence``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..mining.apriori import AssociationRule, itemset_support
from ..sdc.base import resolve_rng


@dataclass(frozen=True)
class HidingResult:
    """Outcome of a sanitization run."""

    transactions: list[frozenset[str]]
    removed_items: int
    hidden_rules: tuple[AssociationRule, ...]
    failed_rules: tuple[AssociationRule, ...]

    @property
    def all_hidden(self) -> bool:
        """True when every sensitive rule fell below the thresholds."""
        return not self.failed_rules


def rule_is_visible(
    transactions: Sequence[frozenset[str]],
    rule: AssociationRule,
    min_support: float,
    min_confidence: float,
) -> bool:
    """Would Apriori at these thresholds still report *rule*?"""
    support = itemset_support(transactions, rule.itemset)
    if support < min_support:
        return False
    ant = itemset_support(transactions, rule.antecedent)
    if ant == 0:
        return False
    return support / ant >= min_confidence


def hide_rules(
    transactions: Sequence[frozenset[str]],
    sensitive: Sequence[AssociationRule],
    min_support: float,
    min_confidence: float,
    rng: np.random.Generator | int | None = 0,
    max_removals_per_rule: int | None = None,
) -> HidingResult:
    """Sanitize *transactions* so every sensitive rule is hidden.

    Greedy support-reduction: while a rule is visible, pick a supporting
    transaction (largest first, to spare small baskets) and delete from it
    one item of the rule's *consequent* (which lowers support and
    confidence simultaneously).
    """
    rng = resolve_rng(rng)
    sanitized = [set(t) for t in transactions]
    removed = 0
    hidden: list[AssociationRule] = []
    failed: list[AssociationRule] = []
    for rule in sensitive:
        budget = (
            max_removals_per_rule
            if max_removals_per_rule is not None
            else len(sanitized)
        )
        spent = 0
        while (
            rule_is_visible(
                [frozenset(t) for t in sanitized], rule, min_support, min_confidence
            )
            and spent < budget
        ):
            supporting = [
                i for i, t in enumerate(sanitized) if rule.itemset <= t
            ]
            if not supporting:
                break
            # Largest supporting basket loses one consequent item.
            victim = max(supporting, key=lambda i: len(sanitized[i]))
            item = sorted(rule.consequent & sanitized[victim])[0]
            sanitized[victim].discard(item)
            removed += 1
            spent += 1
        final = [frozenset(t) for t in sanitized]
        if rule_is_visible(final, rule, min_support, min_confidence):
            failed.append(rule)
        else:
            hidden.append(rule)
    return HidingResult(
        transactions=[frozenset(t) for t in sanitized],
        removed_items=removed,
        hidden_rules=tuple(hidden),
        failed_rules=tuple(failed),
    )


def side_effects(
    before: Sequence[AssociationRule],
    after: Sequence[AssociationRule],
    sensitive: Sequence[AssociationRule],
) -> tuple[list[AssociationRule], list[AssociationRule]]:
    """Collateral damage of sanitization.

    Returns ``(lost, ghost)``: non-sensitive rules that disappeared, and
    rules that newly appeared.  Rule identity is (antecedent, consequent).
    """
    def key(rule: AssociationRule) -> tuple:
        return (tuple(sorted(rule.antecedent)), tuple(sorted(rule.consequent)))

    sensitive_keys = {key(r) for r in sensitive}
    before_keys = {key(r): r for r in before}
    after_keys = {key(r): r for r in after}
    lost = [
        rule for k, rule in before_keys.items()
        if k not in after_keys and k not in sensitive_keys
    ]
    ghost = [rule for k, rule in after_keys.items() if k not in before_keys]
    return lost, ghost
