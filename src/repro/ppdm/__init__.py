"""Owner-privacy methods: non-cryptographic privacy-preserving data mining."""

from .association_hiding import (
    HidingResult,
    hide_rules,
    rule_is_visible,
    side_effects,
)
from .randomization import AgrawalSrikantRandomizer, NoiseModel
from .randomized_response import (
    RandomizedResponse,
    RandomizedResponseEstimate,
    estimate_proportion,
    per_record_posterior,
    randomize_binary,
)
from .reconstruction import (
    ReconstructedDistribution,
    posterior_cells,
    reconstruct_joint,
    reconstruct_univariate,
    reconstruction_error,
)

__all__ = [
    "AgrawalSrikantRandomizer",
    "HidingResult",
    "NoiseModel",
    "RandomizedResponse",
    "RandomizedResponseEstimate",
    "ReconstructedDistribution",
    "estimate_proportion",
    "hide_rules",
    "per_record_posterior",
    "posterior_cells",
    "randomize_binary",
    "reconstruct_joint",
    "reconstruct_univariate",
    "reconstruction_error",
    "rule_is_visible",
    "side_effects",
]
