"""Pluggable GF(2) kernel backends and the import-time selection registry.

Four backends implement one small contract (:class:`KernelBackend`):

``cext``
    Runtime-compiled C (:mod:`repro.kernels.cext`) — branchless,
    query-tiled word loops; the fastest tier wherever a C compiler
    exists.
``numba``
    The same loops JIT-compiled by numba, when numba happens to be
    importable (:mod:`repro.kernels.numba_backend`).  Never a
    dependency.
``uint64``
    Pure numpy on packed uint64 words — tiled select/XOR-reduce matmul
    and vectorized popcounts.  Always available; the portable floor.
``uint8``
    The pre-kernel-tier reference: byte matrices, ``np.unpackbits``
    float GEMM parity, table popcounts.  Kept verbatim so every faster
    backend can be property-tested bit-identical against it; never
    auto-selected.

Selection happens lazily on first use: the ``REPRO_KERNELS`` environment
variable names a backend explicitly (including ``uint8``), otherwise the
auto order is ``cext`` → ``numba`` → ``uint64``.  The chosen backend is
recorded once in the telemetry process registry (counter
``kernels.backend.<name>``) so benchmark snapshots and the observatory
can attribute perf numbers to the compute tier that produced them.

All backends are *stateless* except for explicit per-caller cache dicts
threaded through ``gf2_matmul(state=...)`` — the uint8 reference uses
that to key its unpacked float-bit matrix by dtype (the cache-poisoning
fix: a dtype policy change re-keys instead of silently reusing the first
matrix).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from .packing import popcount_words, unpack_bool_rows

__all__ = [
    "KernelBackend",
    "Uint64Backend",
    "Uint8ReferenceBackend",
    "available_backends",
    "backend_info",
    "float_dtype_for",
    "get_backend",
    "set_backend",
    "use_backend",
]

#: Probe order when no backend is requested explicitly.  ``uint8`` is
#: deliberately absent: the reference tier must be asked for by name.
AUTO_ORDER = ("cext", "numba", "uint64")


def float_dtype_for(n_rows: int) -> type:
    """BLAS dtype for the uint8 reference GEMM.

    Bit counts are bounded by the database size, so float32 stays exact
    below 2**24 rows (and is ~2x faster); larger databases need float64
    mantissas.  Module-level so tests can monkeypatch the policy and
    verify the cache re-keys.
    """
    return np.float32 if n_rows < 2**24 else np.float64


class KernelBackend:
    """The kernel contract every backend implements.

    All inputs and outputs are packed: databases are ``(n, W)`` uint64
    word matrices (64 database bits per element), masks are little-bit-
    order ``(B, nw)`` word matrices (see :mod:`repro.kernels.packing`).
    Implementations must be *bit-identical* to
    :class:`Uint8ReferenceBackend` — that equivalence, not speed, is the
    correctness bar, and ``tests/test_kernels_backends.py`` enforces it
    across schemes, faulty wrappers, and audit policy stacks.
    """

    name = "abstract"

    def xor_fold(self, db_words: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """XOR of the database rows named by *idx*: a ``(W,)`` word row."""
        raise NotImplementedError

    def gf2_matmul(self, mask_words: np.ndarray, db_words: np.ndarray,
                   n_rows: int, *, state: dict | None = None,
                   key: str = "all") -> np.ndarray:
        """GF(2) product: row b of the result XORs the database rows
        selected by mask b.  *n_rows* bounds the mask bits consulted;
        *state*/*key* let callers own a persistent cache dict."""
        raise NotImplementedError

    def overlap_counts(self, rows: np.ndarray,
                       cand: np.ndarray) -> np.ndarray:
        """``popcount(rows[r] & cand)`` for every packed row, as int64."""
        raise NotImplementedError


class Uint64Backend(KernelBackend):
    """Pure-numpy word backend: always importable, no compilation."""

    name = "uint64"

    #: Target bytes for the per-tile (B, T, W) select temporary; tiles
    #: keep the working set inside L2/L3 instead of streaming 8x the
    #: database through RAM.
    TILE_BYTES = 1 << 22

    def xor_fold(self, db_words: np.ndarray, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.intp)
        if idx.size == 0:
            return np.zeros(db_words.shape[1], dtype=np.uint64)
        return np.bitwise_xor.reduce(db_words[idx], axis=0)

    def gf2_matmul(self, mask_words: np.ndarray, db_words: np.ndarray,
                   n_rows: int, *, state: dict | None = None,
                   key: str = "all") -> np.ndarray:
        n_rows = int(n_rows)
        bq = int(mask_words.shape[0])
        w = int(db_words.shape[1])
        acc = np.zeros((bq, w), dtype=np.uint64)
        if bq == 0 or n_rows == 0:
            return acc
        bits = unpack_bool_rows(mask_words, n_rows)
        tile = max(64, min(n_rows, self.TILE_BYTES // max(1, bq * w * 8)))
        zero = np.uint64(0)
        for start in range(0, n_rows, tile):
            stop = min(start + tile, n_rows)
            chunk = np.ascontiguousarray(db_words[start:stop])
            selected = np.where(
                bits[:, start:stop, None], chunk[None, :, :], zero
            )
            acc ^= np.bitwise_xor.reduce(selected, axis=1)
        return acc

    def overlap_counts(self, rows: np.ndarray,
                       cand: np.ndarray) -> np.ndarray:
        if rows.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        return popcount_words(rows & cand).sum(axis=1, dtype=np.int64)


class Uint8ReferenceBackend(KernelBackend):
    """The byte-matrix reference pipeline, frozen for equivalence tests.

    ``gf2_matmul`` is the original batched-PIR answer path: unpack the
    byte database to a float bit matrix, count selected bits per output
    position with one GEMM, take parity, repack.  ``overlap_counts`` is
    the original table-lookup popcount.  Both operate on the packed word
    inputs via byte views, so the reference accepts exactly the same
    arguments as the fast backends.
    """

    name = "uint8"

    _POPCOUNT_TABLE = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1
    ).sum(axis=1).astype(np.uint8)

    def xor_fold(self, db_words: np.ndarray, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.intp)
        db_u8 = np.ascontiguousarray(db_words, dtype=np.uint64).view(np.uint8)
        if idx.size == 0:
            return np.zeros(db_words.shape[1], dtype=np.uint64)
        folded = np.bitwise_xor.reduce(db_u8[idx], axis=0)
        return np.ascontiguousarray(folded).view(np.uint64)

    def gf2_matmul(self, mask_words: np.ndarray, db_words: np.ndarray,
                   n_rows: int, *, state: dict | None = None,
                   key: str = "all") -> np.ndarray:
        n_rows = int(n_rows)
        w = int(db_words.shape[1])
        if mask_words.shape[0] == 0 or n_rows == 0:
            return np.zeros((int(mask_words.shape[0]), w), dtype=np.uint64)
        dtype = np.dtype(float_dtype_for(n_rows))
        cache = state.setdefault("uint8_bits", {}) if state is not None else {}
        bits = cache.get((key, dtype.name))
        if bits is None:
            db_u8 = np.ascontiguousarray(
                db_words, dtype=np.uint64
            ).view(np.uint8)
            bits = np.unpackbits(db_u8, axis=1).astype(dtype)
            cache[(key, dtype.name)] = bits
        masks = unpack_bool_rows(mask_words, n_rows)
        counts = masks.astype(dtype) @ bits
        parity = (counts.astype(np.int64) & np.int64(1)).astype(np.uint8)
        packed = np.ascontiguousarray(np.packbits(parity, axis=1))
        return packed.view(np.uint64)

    def overlap_counts(self, rows: np.ndarray,
                       cand: np.ndarray) -> np.ndarray:
        if rows.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        rows_u8 = np.ascontiguousarray(rows, dtype=np.uint64).view(np.uint8)
        cand_u8 = np.ascontiguousarray(cand, dtype=np.uint64).view(np.uint8)
        return self._POPCOUNT_TABLE[rows_u8 & cand_u8].sum(
            axis=-1, dtype=np.int64
        )


def _make_cext() -> KernelBackend | None:
    from . import cext

    return cext.make_backend()


def _make_numba() -> KernelBackend | None:
    from . import numba_backend

    return numba_backend.make_backend()


_FACTORIES = {
    "cext": _make_cext,
    "numba": _make_numba,
    "uint64": Uint64Backend,
    "uint8": Uint8ReferenceBackend,
}

# Probe results: name -> backend instance, or None when unavailable.
_probed: dict[str, KernelBackend | None] = {}
_active: KernelBackend | None = None
_recorded: set[str] = set()
_ENV_VAR = "REPRO_KERNELS"


def _probe(name: str) -> KernelBackend | None:
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"choose from {sorted(_FACTORIES)}"
        )
    if name not in _probed:
        try:
            _probed[name] = _FACTORIES[name]()
        except Exception:
            _probed[name] = None
    return _probed[name]


def _record_selection(name: str) -> None:
    """Count the selection in the telemetry process registry, once."""
    if name in _recorded:
        return
    _recorded.add(name)
    try:
        from ..telemetry.registry import MetricsRegistry

        MetricsRegistry(owner="kernels").counter(
            f"kernels.backend.{name}"
        ).inc()
    except Exception:  # pragma: no cover - telemetry must never break compute
        pass


def available_backends() -> tuple[str, ...]:
    """Names of the backends that actually work on this machine."""
    return tuple(
        name for name in (*AUTO_ORDER, "uint8") if _probe(name) is not None
    )


def get_backend() -> KernelBackend:
    """The active backend, resolving it on first use.

    Resolution honours ``REPRO_KERNELS=<name>`` (an unavailable explicit
    request is an error, not a silent fallback — benchmark comparability
    depends on knowing which tier ran), then walks :data:`AUTO_ORDER`.
    """
    global _active
    if _active is None:
        requested = os.environ.get(_ENV_VAR, "").strip().lower()
        if requested:
            backend = _probe(requested)
            if backend is None:
                raise RuntimeError(
                    f"{_ENV_VAR}={requested!r} was requested but that "
                    f"backend is unavailable on this machine "
                    f"(available: {', '.join(available_backends())})"
                )
            _active = backend
        else:
            for name in AUTO_ORDER:
                backend = _probe(name)
                if backend is not None:
                    _active = backend
                    break
            else:  # pragma: no cover - uint64 always constructs
                raise RuntimeError("no kernel backend available")
        _record_selection(_active.name)
    return _active


def set_backend(name: str) -> KernelBackend:
    """Force the active backend by name (including ``uint8``)."""
    global _active
    backend = _probe(name)
    if backend is None:
        raise RuntimeError(
            f"kernel backend {name!r} is unavailable on this machine "
            f"(available: {', '.join(available_backends())})"
        )
    _active = backend
    _record_selection(backend.name)
    return backend


@contextmanager
def use_backend(name: str):
    """Temporarily switch the active backend (tests, A/B timing)."""
    global _active
    previous = _active
    backend = set_backend(name)
    try:
        yield backend
    finally:
        _active = previous


def backend_info() -> dict[str, str]:
    """Attribution record for benchmark files: backend + numpy version."""
    return {"name": get_backend().name, "numpy": np.__version__}
