"""Optional numba-JIT backend: the same word-level loops as the C
extension, compiled by LLVM at first call when :mod:`numba` happens to
be installed.

numba is *never* a dependency of this repo — the probe checks for the
module before importing it, every decorator failure is swallowed, and
machines without numba (or with a broken numba) simply use the C or
numpy backends.  The loops mirror :mod:`repro.kernels.cext` (branchless
mask stretch, query tiling) so the two fast backends stay one review
apart, and outputs are bit-identical to every other backend by the
property suite in ``tests/test_kernels_backends.py``.
"""

from __future__ import annotations

import importlib.util

import numpy as np

#: Queries per database pass, matching cext.QUERY_TILE.
QUERY_TILE = 4


def _compile_kernels():
    """Build the jitted kernel trio; raises when numba can't deliver."""
    from numba import njit  # guarded by find_spec in make_backend

    @njit(cache=False, fastmath=False)
    def gf2_matmul(masks, db, out, n_rows):  # pragma: no cover - jitted
        bq = masks.shape[0]
        nw = masks.shape[1]
        w = db.shape[1]
        for b0 in range(0, bq, QUERY_TILE):
            bt = min(b0 + QUERY_TILE, bq)
            for b in range(b0, bt):
                for k in range(w):
                    out[b, k] = np.uint64(0)
            for i in range(n_rows):
                wi = i >> 6
                sh = np.uint64(i & 63)
                for b in range(b0, bt):
                    bit = (masks[b, wi] >> sh) & np.uint64(1)
                    keep = np.uint64(0) - bit
                    for k in range(w):
                        out[b, k] ^= db[i, k] & keep
        return out

    @njit(cache=False, fastmath=False)
    def xor_fold(db, idx, out):  # pragma: no cover - jitted
        w = db.shape[1]
        for k in range(w):
            out[k] = np.uint64(0)
        for t in range(idx.shape[0]):
            row = idx[t]
            for k in range(w):
                out[k] ^= db[row, k]
        return out

    @njit(cache=False, fastmath=False)
    def overlap_counts(rows, cand, out):  # pragma: no cover - jitted
        nw = rows.shape[1]
        for r in range(rows.shape[0]):
            acc = np.int64(0)
            for k in range(nw):
                x = rows[r, k] & cand[k]
                # SWAR popcount; numba has no vectorized bit_count.
                x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
                x = (x & np.uint64(0x3333333333333333)) + (
                    (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
                )
                x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
                acc += np.int64(
                    (x * np.uint64(0x0101010101010101)) >> np.uint64(56)
                )
            out[r] = acc
        return out

    return gf2_matmul, xor_fold, overlap_counts


class NumbaBackend:
    """JIT-compiled word kernels (only constructed when numba imports)."""

    name = "numba"

    def __init__(self):
        self._gf2_matmul, self._xor_fold, self._overlap = _compile_kernels()

    def xor_fold(self, db_words: np.ndarray, idx: np.ndarray) -> np.ndarray:
        words = np.ascontiguousarray(db_words, dtype=np.uint64)
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        out = np.zeros(words.shape[1], dtype=np.uint64)
        if idx.size:
            self._xor_fold(words, idx, out)
        return out

    def gf2_matmul(self, mask_words: np.ndarray, db_words: np.ndarray,
                   n_rows: int, *, state: dict | None = None,
                   key: str = "all") -> np.ndarray:
        masks = np.ascontiguousarray(mask_words, dtype=np.uint64)
        words = np.ascontiguousarray(db_words, dtype=np.uint64)
        out = np.empty((masks.shape[0], words.shape[1]), dtype=np.uint64)
        if masks.shape[0]:
            self._gf2_matmul(masks, words, out, int(n_rows))
        return out

    def overlap_counts(self, rows: np.ndarray,
                       cand: np.ndarray) -> np.ndarray:
        rows = np.ascontiguousarray(rows, dtype=np.uint64)
        cand = np.ascontiguousarray(cand, dtype=np.uint64)
        out = np.empty(rows.shape[0], dtype=np.int64)
        if rows.shape[0]:
            self._overlap(rows, cand, out)
        return out


def make_backend() -> NumbaBackend | None:
    """Probe hook: a jitted backend when numba is importable and working."""
    if importlib.util.find_spec("numba") is None:
        return None
    try:
        backend = NumbaBackend()
        # Exercise each kernel once so JIT failures surface at probe time,
        # not mid-retrieval.
        db = np.arange(8, dtype=np.uint64).reshape(4, 2)
        masks = np.array([[0b1010]], dtype=np.uint64)
        backend.gf2_matmul(masks, db, 4)
        backend.xor_fold(db, np.array([0, 2], dtype=np.int64))
        backend.overlap_counts(masks, np.array([0b0110], dtype=np.uint64))
        return backend
    except Exception:  # pragma: no cover - depends on local numba health
        return None
