"""Word-level GF(2) compute tier (ROADMAP item 3).

Everything performance-critical in this repo — XOR-PIR answering, the
audit engine's overlap popcounts — reduces to GF(2) linear algebra, and
this package is where that algebra runs at word width: databases and
query masks are bit-packed into ``uint64`` matrices
(:mod:`~repro.kernels.packing`), the kernels themselves come from a
pluggable backend registry (:mod:`~repro.kernels.backends`: runtime-
compiled C → numba JIT → pure numpy, with the historical uint8 pipeline
frozen as the bit-identical reference), and block databases can live
in RAM or in memory-mapped files larger than RAM
(:mod:`~repro.kernels.blockstore`).

The package adds **zero** hard dependencies: numpy is the only import
that must succeed, the C backend needs nothing but a ``cc`` on PATH at
first use, and numba is probed, never required.

Typical consumers::

    from repro.kernels import get_backend, pack_bool_rows

    be = get_backend()                      # cext/numba/uint64, auto
    answers = be.gf2_matmul(mask_words, db_words, n)

    from repro.kernels import MemmapBlockStore, gf2_matmul_store
    store = MemmapBlockStore("db.npy", ram_budget=64 << 20)
    answers = gf2_matmul_store(mask_words, store)   # chunked scan
"""

from .backends import (
    AUTO_ORDER,
    KernelBackend,
    Uint8ReferenceBackend,
    Uint64Backend,
    available_backends,
    backend_info,
    float_dtype_for,
    get_backend,
    set_backend,
    use_backend,
)
from .blockstore import (
    ArrayBlockStore,
    BlockStore,
    MemmapBlockStore,
    gf2_matmul_store,
    xor_fold_store,
)
from .wordlog import (
    MemmapWordLog,
    RamWordLog,
    WordLogStore,
)
from .packing import (
    WORD_BITS,
    WORD_BYTES,
    flip_mask_bits,
    pack_bool_rows,
    pack_bytes_rows,
    popcount_words,
    sample_mask_words,
    tail_mask,
    unpack_bool_rows,
    unpack_bytes_rows,
    words_per_bits,
    words_per_bytes,
    words_to_packbits,
)

__all__ = [
    "AUTO_ORDER",
    "ArrayBlockStore",
    "BlockStore",
    "KernelBackend",
    "MemmapBlockStore",
    "MemmapWordLog",
    "RamWordLog",
    "Uint8ReferenceBackend",
    "Uint64Backend",
    "WordLogStore",
    "WORD_BITS",
    "WORD_BYTES",
    "available_backends",
    "backend_info",
    "flip_mask_bits",
    "float_dtype_for",
    "get_backend",
    "gf2_matmul_store",
    "pack_bool_rows",
    "pack_bytes_rows",
    "popcount_words",
    "sample_mask_words",
    "set_backend",
    "tail_mask",
    "unpack_bool_rows",
    "unpack_bytes_rows",
    "use_backend",
    "words_per_bits",
    "words_per_bytes",
    "words_to_packbits",
    "xor_fold_store",
]
