"""Bit-packing primitives for the word-level GF(2) kernel tier.

Everything in :mod:`repro.kernels` computes on ``np.uint64`` words:

* **byte matrices** — a PIR block database ``(n, width)`` uint8 is padded
  to a multiple of 8 bytes and reinterpreted as ``(n, W)`` uint64, so an
  XOR over blocks processes 64 bits per operation instead of 8;
* **bit masks** — a boolean query mask of length ``n_bits`` packs into
  ``ceil(n_bits / 64)`` words with *little* bit order: bit ``i`` of the
  mask is bit ``i & 63`` of word ``i >> 6``.  That layout is what the
  compiled and JIT backends index with two shifts, and it makes the
  packed representation of ``n`` independent masks a dense ``(B, nw)``
  matrix.

The byte-matrix view relies on native little-endian word order (every
platform this repo targets); the pack/unpack pair is a symmetric
reinterpretation either way, so round-trips are exact regardless.

Ragged shapes are first-class: widths that are not a multiple of 8 and
bit counts that are not a multiple of 64 round-trip losslessly (the
hypothesis suite in ``tests/test_kernels_packing.py`` pins this), and
the padding bits/bytes are guaranteed zero so popcounts and parities
computed on packed words match the unpacked ground truth.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64
WORD_BYTES = 8

#: Per-byte bit reversal, for converting little-bit-order packed bytes to
#: the big-bit-order ``np.packbits`` default layout (and back).
BYTE_BITREV = np.array(
    [int(f"{b:08b}"[::-1], 2) for b in range(256)], dtype=np.uint8
)


def words_per_bits(n_bits: int) -> int:
    """Words needed to hold *n_bits* mask bits."""
    return (int(n_bits) + WORD_BITS - 1) // WORD_BITS


def words_per_bytes(width: int) -> int:
    """Words needed to hold *width* bytes per row."""
    return (int(width) + WORD_BYTES - 1) // WORD_BYTES


def tail_mask(n_bits: int) -> np.uint64:
    """Keep-mask for the last word of an *n_bits* packed row."""
    used = int(n_bits) % WORD_BITS
    if used == 0:
        return np.uint64(0xFFFFFFFFFFFFFFFF)
    return np.uint64((1 << used) - 1)


def pack_bytes_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(n, width)`` uint8 matrix into ``(n, W)`` uint64 words.

    The width is zero-padded up to a multiple of 8 bytes; the result is a
    fresh contiguous array (never a view), so mutating it does not alias
    the input.
    """
    matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D (n, width) byte matrix")
    n, width = matrix.shape
    nw = words_per_bytes(max(width, 1))
    padded = np.zeros((n, nw * WORD_BYTES), dtype=np.uint8)
    padded[:, :width] = matrix
    return padded.view(np.uint64)


def unpack_bytes_rows(words: np.ndarray, width: int) -> np.ndarray:
    """Recover the ``(n, width)`` uint8 matrix behind packed words."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return words.view(np.uint8)[:, :width]


def pack_bool_rows(masks: np.ndarray) -> np.ndarray:
    """Pack ``(B, n_bits)`` boolean masks into ``(B, nw)`` uint64 words."""
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError("expected a 2-D (B, n_bits) mask matrix")
    n_bits = masks.shape[1]
    nw = words_per_bits(max(n_bits, 1))
    if n_bits < nw * WORD_BITS:
        padded = np.zeros((masks.shape[0], nw * WORD_BITS), dtype=bool)
        padded[:, :n_bits] = masks
        masks = padded
    packed = np.packbits(masks, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view(np.uint64)


def unpack_bool_rows(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Recover ``(B, n_bits)`` boolean masks from packed words."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    raw = np.unpackbits(words.view(np.uint8), axis=1, bitorder="little")
    return raw[:, :n_bits].astype(bool)


def words_to_packbits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Little-order mask words -> the big-bit-order ``np.packbits`` bytes.

    Byte ``j`` holds bits ``8j .. 8j+7`` in both layouts; only the bit
    order within each byte differs, so the conversion is one table
    lookup plus a slice to ``ceil(n_bits / 8)`` bytes.
    """
    n_bytes = (int(n_bits) + 7) // 8
    return BYTE_BITREV[np.ascontiguousarray(words, dtype=np.uint64)
                       .view(np.uint8)][..., :n_bytes]


if hasattr(np, "bitwise_count"):
    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of uint64 words (numpy >= 2 native)."""
        return np.bitwise_count(words)
else:  # pragma: no cover - numpy < 2.0 fallback
    _M1 = np.uint64(0x5555555555555555)
    _M2 = np.uint64(0x3333333333333333)
    _M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    _H01 = np.uint64(0x0101010101010101)

    def popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of uint64 words (SWAR shift-mask)."""
        x = np.asarray(words, dtype=np.uint64).copy()
        x -= (x >> np.uint64(1)) & _M1
        x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
        x = (x + (x >> np.uint64(4))) & _M4
        return ((x * _H01) >> np.uint64(56)).astype(np.uint8)


def sample_mask_words(
    rng: np.random.Generator, count: int, n_bits: int
) -> np.ndarray:
    """*count* uniformly random packed masks over *n_bits* positions.

    Each bit is an independent fair coin — the same marginal the schemes
    previously drew via ``rng.random(n) < 0.5`` — but sampled as whole
    64-bit words straight off the generator, which is what makes query
    generation disappear from the batch-retrieval profile.  Drawing
    ``(count, nw)`` words in one call consumes the generator stream
    exactly like ``count`` successive ``(1, nw)`` calls, so batched
    retrieval stays byte-identical to sequential retrieval under the
    same seed.  Tail bits past ``n_bits`` are cleared.
    """
    nw = words_per_bits(max(int(n_bits), 1))
    words = rng.integers(
        0, 0xFFFFFFFFFFFFFFFF, size=(int(count), nw),
        dtype=np.uint64, endpoint=True,
    )
    words[:, -1] &= tail_mask(n_bits)
    return words


def flip_mask_bits(words: np.ndarray, rows: np.ndarray,
                   bits: np.ndarray) -> None:
    """In-place flip of ``words[rows[k], bits[k]]`` for every k."""
    rows = np.asarray(rows, dtype=np.intp)
    bits = np.asarray(bits, dtype=np.intp)
    np.bitwise_xor.at(
        words, (rows, bits >> 6),
        np.uint64(1) << (bits & 63).astype(np.uint64),
    )
