"""Block stores: the storage layer under the word kernels.

A :class:`BlockStore` owns one PIR block database in the packed layout
every backend consumes — an ``(n, W)`` uint64 word matrix whose byte
view exposes the original ``(n, width)`` uint8 blocks (zero-padded to a
word multiple).  Two implementations:

:class:`ArrayBlockStore`
    An in-RAM padded buffer.  ``blocks_u8`` and ``words`` are two views
    of the *same* memory, so tests (and byzantine-corruption demos) that
    poke bytes through ``_db`` are seen by the word kernels immediately.

:class:`MemmapBlockStore`
    The same layout in an ``.npy`` file via ``np.lib.format``
    memory-mapping, plus a JSON sidecar carrying the logical geometry.
    Databases can exceed RAM: an optional ``ram_budget`` bounds how many
    rows a full-scan kernel touches per pass (``chunk_rows``, always a
    multiple of 64 so mask word slices stay aligned), and
    :func:`gf2_matmul_store` accumulates chunk answers with XOR.
    ``replica()`` reopens the file copy-on-write (``mmap_mode="c"``), so
    each PIR server gets a mutable private replica at zero copy cost and
    byzantine corruption never reaches the canonical file.

The stores are deliberately dumb — no answering logic — so the PIR
server layer, the faults layer (:class:`repro.faults.ResilientXorPIR`
accepts a store wherever it accepts blocks) and the observatory
instrument retrieval identically whatever the storage tier.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .backends import KernelBackend, get_backend
from .packing import WORD_BYTES, words_per_bytes

__all__ = [
    "ArrayBlockStore",
    "BlockStore",
    "MemmapBlockStore",
    "gf2_matmul_store",
    "xor_fold_store",
]

_META_VERSION = 1


class BlockStore:
    """Common geometry and access contract for packed block databases."""

    #: Number of blocks.
    n: int
    #: Logical bytes per block (before word padding).
    width: int
    #: uint64 words per row (``ceil(width / 8)``).
    n_words: int

    @property
    def words(self) -> np.ndarray:
        """The ``(n, n_words)`` uint64 matrix the kernels compute on."""
        raise NotImplementedError

    @property
    def blocks_u8(self) -> np.ndarray:
        """Writable ``(n, width)`` uint8 view sharing memory with words."""
        raise NotImplementedError

    @property
    def chunk_rows(self) -> int:
        """Rows a full-scan kernel may hold in RAM at once (64-aligned);
        ``>= n`` means unchunked."""
        return self.n

    def replica(self) -> "BlockStore":
        """An independent mutable copy for one PIR server."""
        raise NotImplementedError

    def _pad_and_adopt(self, matrix: np.ndarray) -> np.ndarray:
        """Shared constructor helper: the padded backing buffer."""
        matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D (n, width) block matrix")
        n, width = matrix.shape
        if width == 0:
            raise ValueError("blocks must be at least one byte wide")
        self.n = int(n)
        self.width = int(width)
        self.n_words = words_per_bytes(width)
        buf = np.zeros((n, self.n_words * WORD_BYTES), dtype=np.uint8)
        buf[:, :width] = matrix
        return buf


class ArrayBlockStore(BlockStore):
    """In-RAM store over a padded uint8 buffer (copies its input)."""

    def __init__(self, blocks: np.ndarray):
        self._buf = self._pad_and_adopt(blocks)

    @property
    def words(self) -> np.ndarray:
        return self._buf.view(np.uint64)

    @property
    def blocks_u8(self) -> np.ndarray:
        return self._buf[:, : self.width]

    def replica(self) -> "ArrayBlockStore":
        return ArrayBlockStore(self.blocks_u8)


def _budget_chunk_rows(n: int, n_words: int, ram_budget: int | None) -> int:
    if ram_budget is None:
        return n
    row_bytes = n_words * WORD_BYTES
    rows = max(1, int(ram_budget) // max(1, row_bytes))
    # Chunks must start on word boundaries of the query masks: 64 rows
    # of database = one mask word.
    return max(64, (rows // 64) * 64)


class MemmapBlockStore(BlockStore):
    """A block database memory-mapped from an ``.npy`` file.

    Parameters
    ----------
    path:
        The ``.npy`` file written by :meth:`create` (its ``.meta.json``
        sidecar must sit next to it).
    mode:
        numpy memmap mode — ``"r+"`` (default) maps shared-writable,
        ``"c"`` copy-on-write (mutations stay in RAM), ``"r"`` read-only.
    ram_budget:
        Optional bytes of database a full-scan kernel may hold per pass;
        see :attr:`chunk_rows`.
    """

    def __init__(self, path: str | Path, mode: str = "r+",
                 ram_budget: int | None = None):
        self.path = Path(path)
        meta = json.loads(self._meta_path(self.path).read_text())
        if meta.get("version") != _META_VERSION:
            raise ValueError(
                f"unsupported block-store meta version {meta.get('version')}"
            )
        self.mode = mode
        self.ram_budget = ram_budget
        self.n = int(meta["n"])
        self.width = int(meta["width"])
        self.n_words = words_per_bytes(self.width)
        self._buf = np.lib.format.open_memmap(str(self.path), mode=mode)
        expected = (self.n, self.n_words * WORD_BYTES)
        if self._buf.dtype != np.uint8 or self._buf.shape != expected:
            raise ValueError(
                f"block-store file {self.path} has shape "
                f"{self._buf.shape}/{self._buf.dtype}, expected "
                f"{expected}/uint8"
            )

    @staticmethod
    def _meta_path(path: Path) -> Path:
        return path.with_name(path.name + ".meta.json")

    @classmethod
    def create(cls, path: str | Path, blocks: np.ndarray,
               ram_budget: int | None = None) -> "MemmapBlockStore":
        """Write *blocks* (an ``(n, width)`` uint8 matrix) as a new store.

        The file holds the word-padded layout so mapping it back needs no
        repacking; the sidecar records the logical geometry.
        """
        path = Path(path)
        blocks = np.ascontiguousarray(blocks, dtype=np.uint8)
        if blocks.ndim != 2 or blocks.shape[1] == 0:
            raise ValueError("expected a non-degenerate (n, width) matrix")
        n, width = blocks.shape
        n_words = words_per_bytes(width)
        out = np.lib.format.open_memmap(
            str(path), mode="w+", dtype=np.uint8,
            shape=(n, n_words * WORD_BYTES),
        )
        out[:, :width] = blocks
        if width < n_words * WORD_BYTES:
            out[:, width:] = 0
        out.flush()
        del out
        cls._meta_path(path).write_text(json.dumps(
            {"version": _META_VERSION, "n": int(n), "width": int(width)}
        ) + "\n")
        return cls(path, mode="r+", ram_budget=ram_budget)

    @property
    def words(self) -> np.ndarray:
        return self._buf.view(np.uint64)

    @property
    def blocks_u8(self) -> np.ndarray:
        return self._buf[:, : self.width]

    @property
    def chunk_rows(self) -> int:
        return _budget_chunk_rows(self.n, self.n_words, self.ram_budget)

    def replica(self) -> "MemmapBlockStore":
        """A copy-on-write mapping of the same file: servers may corrupt
        their replica freely without touching the canonical database."""
        return MemmapBlockStore(self.path, mode="c",
                                ram_budget=self.ram_budget)


def xor_fold_store(store: BlockStore, idx: np.ndarray,
                   backend: KernelBackend | None = None) -> np.ndarray:
    """Single-answer kernel over a store: XOR of the rows named by *idx*.

    Row gathers touch only the requested pages, so memmap stores serve
    single retrievals without scanning (the OS pages rows in on demand);
    no chunking is needed.
    """
    be = backend if backend is not None else get_backend()
    return be.xor_fold(store.words, idx)


def gf2_matmul_store(mask_words: np.ndarray, store: BlockStore, *,
                     state: dict | None = None,
                     backend: KernelBackend | None = None) -> np.ndarray:
    """Batched-answer kernel over a store, honouring its RAM budget.

    Unchunked stores get one backend call over the whole word matrix.
    Budgeted stores are scanned in ``chunk_rows`` slices; because chunks
    are 64-row aligned, each slice pairs with a contiguous run of mask
    words, and the per-chunk partial answers combine by XOR (GF(2)
    addition is associative over any row partition).
    """
    be = backend if backend is not None else get_backend()
    n = store.n
    chunk = store.chunk_rows
    if chunk >= n:
        return be.gf2_matmul(mask_words, store.words, n,
                             state=state, key="all")
    acc = np.zeros((int(mask_words.shape[0]), store.n_words),
                   dtype=np.uint64)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        sub = np.ascontiguousarray(
            mask_words[:, start >> 6: (stop + 63) >> 6]
        )
        acc ^= be.gf2_matmul(sub, store.words[start:stop], stop - start,
                             state=state, key=f"rows{start}")
    return acc
