"""Runtime-compiled C kernels: the fastest GF(2) backend when a C
compiler is present.

The three hot loops — GF(2) parity matmul, XOR fold, and AND+popcount —
are tiny, dependency-free C functions compiled once per source revision
with whatever ``cc``/``gcc`` the machine has, cached as a shared object
keyed by the source hash, and loaded through :mod:`ctypes`.  No build
system, no wheels, no install step; when anything in the chain is
missing (compiler, writable cache dir, dlopen) the probe returns
``None`` and the registry falls through to the numpy backends.

Design notes on the matmul, the kernel the ≥4x batch-retrieval gate
rides on:

* **branchless row selection** — the naive ``if (bit) acc ^= row``
  mispredicts half the time on uniformly random PIR masks, which is the
  worst case for a branch predictor; instead the bit is stretched to a
  full word (``0 - bit`` is all-ones or all-zeros) and ANDed in
  unconditionally, turning the loop into straight-line XOR/AND streams.
* **query tiling** — each pass over the database serves ``QT = 4``
  queries, so every database row fetched from memory is reused four
  times; the database stream, not the flops, is the bottleneck at
  n = 65536.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

#: Queries served per database pass; must match the C source below.
QUERY_TILE = 4

_C_SOURCE = r"""
#include <stdint.h>

#define QT 4

/* out[b] = GF(2) sum (XOR) of db rows whose mask bit is set.
   masks: bq x nw little-bit-order uint64 words; db: n x w uint64 words. */
void gf2_matmul(const uint64_t *masks, const uint64_t *db, uint64_t *out,
                long long bq, long long n, long long nw, long long w)
{
    for (long long b0 = 0; b0 < bq; b0 += QT) {
        long long bt = (b0 + QT < bq) ? b0 + QT : bq;
        for (long long b = b0; b < bt; b++)
            for (long long k = 0; k < w; k++)
                out[b * w + k] = 0;
        for (long long i = 0; i < n; i++) {
            const uint64_t *row = db + i * w;
            const long long wi = i >> 6;
            const uint64_t sh = (uint64_t)(i & 63);
            for (long long b = b0; b < bt; b++) {
                /* all-ones when the bit is set, all-zeros otherwise */
                const uint64_t keep =
                    (uint64_t)0 - ((masks[b * nw + wi] >> sh) & 1u);
                uint64_t *acc = out + b * w;
                for (long long k = 0; k < w; k++)
                    acc[k] ^= row[k] & keep;
            }
        }
    }
}

/* out = XOR of the db rows named by idx. */
void xor_fold(const uint64_t *db, const int64_t *idx, long long nidx,
              long long w, uint64_t *out)
{
    for (long long k = 0; k < w; k++)
        out[k] = 0;
    for (long long t = 0; t < nidx; t++) {
        const uint64_t *row = db + idx[t] * w;
        for (long long k = 0; k < w; k++)
            out[k] ^= row[k];
    }
}

/* out[r] = popcount(rows[r] & cand), one intersection size per row. */
void overlap_popcount(const uint64_t *rows, const uint64_t *cand,
                      long long h, long long nw, int64_t *out)
{
    for (long long r = 0; r < h; r++) {
        const uint64_t *row = rows + r * nw;
        long long acc = 0;
        for (long long k = 0; k < nw; k++)
            acc += __builtin_popcountll(row[k] & cand[k]);
        out[r] = acc;
    }
}
"""

_U64 = ctypes.POINTER(ctypes.c_uint64)
_I64 = ctypes.POINTER(ctypes.c_int64)
_LL = ctypes.c_longlong


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-kernels"


def _find_compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def build_library() -> ctypes.CDLL | None:
    """Compile (or reuse) the kernel shared object; None when impossible."""
    compiler = _find_compiler()
    if compiler is None:
        return None
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    try:
        cache = _cache_dir()
        cache.mkdir(parents=True, exist_ok=True)
        so_path = cache / f"gf2-{digest}.so"
        if not so_path.exists():
            src_path = cache / f"gf2-{digest}.c"
            src_path.write_text(_C_SOURCE)
            # -march=native is a measurable win but not universally
            # accepted (e.g. some cross toolchains); retry without it.
            for extra in (["-O3", "-march=native", "-funroll-loops"],
                          ["-O3", "-funroll-loops"], ["-O2"]):
                scratch = cache / f".gf2-{digest}.{os.getpid()}.so"
                result = subprocess.run(
                    [compiler, *extra, "-shared", "-fPIC",
                     str(src_path), "-o", str(scratch)],
                    capture_output=True, timeout=120,
                )
                if result.returncode == 0:
                    os.replace(scratch, so_path)  # atomic vs other builders
                    break
            else:
                return None
        lib = ctypes.CDLL(str(so_path))
    except (OSError, subprocess.SubprocessError):
        return None
    lib.gf2_matmul.argtypes = [_U64, _U64, _U64, _LL, _LL, _LL, _LL]
    lib.gf2_matmul.restype = None
    lib.xor_fold.argtypes = [_U64, _I64, _LL, _LL, _U64]
    lib.xor_fold.restype = None
    lib.overlap_popcount.argtypes = [_U64, _U64, _LL, _LL, _I64]
    lib.overlap_popcount.restype = None
    return lib


def _ptr(array: np.ndarray, kind) -> object:
    return array.ctypes.data_as(kind)


class CExtBackend:
    """ctypes front-end over the compiled GF(2) kernels."""

    name = "cext"

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib

    def xor_fold(self, db_words: np.ndarray, idx: np.ndarray) -> np.ndarray:
        words = np.ascontiguousarray(db_words, dtype=np.uint64)
        idx = np.ascontiguousarray(idx, dtype=np.int64)
        out = np.zeros(words.shape[1], dtype=np.uint64)
        if idx.size:
            self._lib.xor_fold(
                _ptr(words, _U64), _ptr(idx, _I64),
                int(idx.size), int(words.shape[1]), _ptr(out, _U64),
            )
        return out

    def gf2_matmul(self, mask_words: np.ndarray, db_words: np.ndarray,
                   n_rows: int, *, state: dict | None = None,
                   key: str = "all") -> np.ndarray:
        masks = np.ascontiguousarray(mask_words, dtype=np.uint64)
        words = np.ascontiguousarray(db_words, dtype=np.uint64)
        bq, nw = masks.shape
        w = int(words.shape[1])
        out = np.empty((bq, w), dtype=np.uint64)
        if bq:
            self._lib.gf2_matmul(
                _ptr(masks, _U64), _ptr(words, _U64), _ptr(out, _U64),
                int(bq), int(n_rows), int(nw), w,
            )
        return out

    def overlap_counts(self, rows: np.ndarray,
                       cand: np.ndarray) -> np.ndarray:
        rows = np.ascontiguousarray(rows, dtype=np.uint64)
        cand = np.ascontiguousarray(cand, dtype=np.uint64)
        out = np.empty(rows.shape[0], dtype=np.int64)
        if rows.shape[0]:
            self._lib.overlap_popcount(
                _ptr(rows, _U64), _ptr(cand, _U64),
                int(rows.shape[0]), int(rows.shape[1]), _ptr(out, _I64),
            )
        return out


def make_backend() -> CExtBackend | None:
    """Probe hook for the registry: a backend, or None when unbuildable."""
    lib = build_library()
    return CExtBackend(lib) if lib is not None else None
