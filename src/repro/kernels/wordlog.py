"""Append-only word-row logs: the storage tier under packed histories.

:mod:`~repro.kernels.blockstore` covers *fixed* block databases; query
histories are different — they only ever grow, one packed ``uint64``
row per answered query — so they get their own store contract here.  A
:class:`WordLogStore` owns a ``(size, n_words)`` uint64 matrix with
amortized-doubling appends and serves the one kernel the audit layer
needs: ``overlap_counts`` (AND + popcount of a packed candidate against
a row range) on the active backend.

Two implementations mirror the block-store split:

:class:`RamWordLog`
    The in-RAM buffer the engine has always used (the default).

:class:`MemmapWordLog`
    The same layout in an ``.npy`` file via ``np.lib.format``
    memory-mapping, grown by rewriting into a doubled file, so a long
    interactive session's audit trail can exceed RAM.  An optional
    ``ram_budget`` bounds how many history rows one ``overlap_counts``
    call touches per pass (the block stores' 64-aligned chunking rule
    does not apply: each *row* here is one whole query set, so any row
    boundary is a valid split).  Files live in a private temp directory
    removed when the log is garbage collected, or in a caller-supplied
    ``directory`` that the caller owns.

Both are consumed through :class:`repro.qdb.engine.PackedMaskLog`,
which keeps popcounts and layout logic unchanged and only delegates
storage — memmap-backed histories are decision-identical to RAM ones.
"""

from __future__ import annotations

import shutil
import tempfile
import weakref
from pathlib import Path

import numpy as np

from .backends import get_backend
from .packing import WORD_BYTES

__all__ = [
    "MemmapWordLog",
    "RamWordLog",
    "WordLogStore",
]


class WordLogStore:
    """Contract shared by the word-row log implementations."""

    #: uint64 words per row.
    n_words: int

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def rows(self) -> np.ndarray:
        """The ``(len(self), n_words)`` uint64 rows appended so far."""
        raise NotImplementedError

    def append(self, row: np.ndarray) -> None:
        """Append one packed uint64 row."""
        raise NotImplementedError

    def overlap_counts(self, packed: np.ndarray,
                       start: int, stop: int) -> np.ndarray:
        """``popcount(rows[r] & packed)`` for ``r`` in ``[start, stop)``."""
        raise NotImplementedError


class RamWordLog(WordLogStore):
    """Amortized-doubling in-RAM uint64 row matrix (the default tier)."""

    def __init__(self, n_words: int, initial_capacity: int = 64):
        self.n_words = int(n_words)
        self._rows = np.zeros(
            (max(1, int(initial_capacity)), self.n_words), dtype=np.uint64
        )
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def rows(self) -> np.ndarray:
        return self._rows[: self._size]

    def append(self, row: np.ndarray) -> None:
        if self._size == self._rows.shape[0]:
            self._rows = np.vstack([self._rows, np.zeros_like(self._rows)])
        self._rows[self._size] = row
        self._size += 1

    def overlap_counts(self, packed: np.ndarray,
                       start: int, stop: int) -> np.ndarray:
        return get_backend().overlap_counts(self._rows[start:stop], packed)


class MemmapWordLog(WordLogStore):
    """A word-row log memory-mapped from an ``.npy`` file.

    Appends write through the mapping; growth rewrites the live prefix
    into a new file of doubled capacity (amortized O(1) per append, and
    the file never holds stale generations — the old one is unlinked).

    Parameters
    ----------
    n_words:
        uint64 words per row.
    initial_capacity:
        Rows pre-allocated in the first backing file.
    directory:
        Where the backing files live.  ``None`` (default) creates a
        private temp directory removed when the log is collected; a
        caller-supplied directory is left in place.
    ram_budget:
        Optional bytes of history one :meth:`overlap_counts` call may
        hold in RAM per pass; scans larger ranges in row chunks.
    """

    def __init__(self, n_words: int, initial_capacity: int = 64,
                 directory: str | Path | None = None,
                 ram_budget: int | None = None):
        if ram_budget is not None and int(ram_budget) <= 0:
            raise ValueError(
                f"ram_budget must be a positive byte count, got {ram_budget!r}"
            )
        self.n_words = int(n_words)
        self.ram_budget = None if ram_budget is None else int(ram_budget)
        self._capacity = max(1, int(initial_capacity))
        self._size = 0
        self._generation = 0
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-qdb-history-")
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, directory, ignore_errors=True
            )
        self._dir = Path(directory)
        self._map = self._open(self._capacity)

    def _path(self, generation: int) -> Path:
        return self._dir / f"wordlog-gen{generation}.npy"

    def _open(self, capacity: int) -> np.ndarray:
        return np.lib.format.open_memmap(
            str(self._path(self._generation)), mode="w+",
            dtype=np.uint64, shape=(capacity, self.n_words),
        )

    def __len__(self) -> int:
        return self._size

    @property
    def rows(self) -> np.ndarray:
        return self._map[: self._size]

    @property
    def chunk_rows(self) -> int:
        """History rows one scan pass may hold in RAM (>= len: unchunked)."""
        if self.ram_budget is None:
            return max(1, self._size)
        row_bytes = self.n_words * WORD_BYTES
        return max(1, self.ram_budget // max(1, row_bytes))

    def append(self, row: np.ndarray) -> None:
        if self._size == self._capacity:
            old_map, old_path = self._map, self._path(self._generation)
            self._generation += 1
            self._capacity *= 2
            new_map = self._open(self._capacity)
            new_map[: self._size] = old_map[: self._size]
            del old_map
            old_path.unlink(missing_ok=True)
            self._map = new_map
        self._map[self._size] = row
        self._size += 1

    def overlap_counts(self, packed: np.ndarray,
                       start: int, stop: int) -> np.ndarray:
        be = get_backend()
        chunk = self.chunk_rows
        if stop - start <= chunk:
            return be.overlap_counts(
                np.ascontiguousarray(self._map[start:stop]), packed
            )
        parts = [
            be.overlap_counts(
                np.ascontiguousarray(self._map[s: min(s + chunk, stop)]),
                packed,
            )
            for s in range(start, stop, chunk)
        ]
        return np.concatenate(parts)
