"""The Section 6 guideline engine.

The paper closes with "lessons learned which can be used as guidelines to
simultaneous fulfillment of the three privacy dimensions".  Given the set
of dimensions a deployment must protect, :func:`recommend` returns the
paper-consistent technology stacks, each with the rationale quoted from
the relevant section.
"""

from __future__ import annotations

from dataclasses import dataclass

from .composition import Mechanism, check_stack
from .dimensions import PrivacyDimension


@dataclass(frozen=True)
class Recommendation:
    """One recommended deployment stack."""

    mechanisms: tuple[Mechanism, ...]
    rationale: str

    @property
    def description(self) -> str:
        """Human-readable stack."""
        return " + ".join(m.value for m in self.mechanisms)


_R = PrivacyDimension.RESPONDENT
_O = PrivacyDimension.OWNER
_U = PrivacyDimension.USER

_RULES: list[tuple[frozenset[PrivacyDimension], tuple[Mechanism, ...], str]] = [
    (
        frozenset({_R}),
        (Mechanism.QUERY_CONTROL,),
        "Respondent privacy alone over an interactive interface: query "
        "control (size control plus auditing) — but beware trackers and "
        "note this forecloses user privacy later.",
    ),
    (
        frozenset({_R}),
        (Mechanism.DATA_MASKING,),
        "Respondent privacy by release: mask to k-anonymity "
        "(microaggregation, recoding or suppression).",
    ),
    (
        frozenset({_O}),
        (Mechanism.CRYPTO_PPDM,),
        "Owner privacy among co-operating owners: cryptographic PPDM "
        "(secure multiparty computation) reveals only the result.",
    ),
    (
        frozenset({_O}),
        (Mechanism.NON_CRYPTO_PPDM,),
        "Owner privacy by release: non-crypto PPDM masking (randomization "
        "or condensation).",
    ),
    (
        frozenset({_U}),
        (Mechanism.PIR,),
        "User privacy alone (public, non-confidential data — e.g. a search "
        "engine): PIR is all that is needed.",
    ),
    (
        frozenset({_R, _O}),
        (Mechanism.DATA_MASKING,),
        "k-Anonymity-grade masking of the key attributes protects "
        "respondents and, by distorting the asset, the owner too "
        "(Section 2: condensation/microaggregation).",
    ),
    (
        frozenset({_R, _U}),
        (Mechanism.DATA_MASKING, Mechanism.PIR),
        "Section 3: if the records are k-anonymous, no query can "
        "jeopardize respondent privacy, so PIR can be afforded.",
    ),
    (
        frozenset({_O, _U}),
        (Mechanism.NON_CRYPTO_PPDM, Mechanism.PIR),
        "Section 4: non-crypto PPDM is non-interactive, so the owner need "
        "not see the queries — PIR-compatible.  Crypto PPDM is not.",
    ),
    (
        frozenset({_R, _O, _U}),
        (Mechanism.DATA_MASKING, Mechanism.PIR),
        "Section 6: k-anonymize (via microaggregation-condensation, "
        "recoding, suppression) and add a PIR protocol for user queries — "
        "the paper's route to all three dimensions.",
    ),
]


def recommend(required: set[PrivacyDimension]) -> list[Recommendation]:
    """Stacks satisfying *required*, most specific first.

    Every returned stack passes :func:`repro.core.composition.check_stack`
    and covers at least the requested dimensions.
    """
    if not required:
        raise ValueError("at least one privacy dimension must be required")
    required = frozenset(required)
    out = []
    for covers, mechanisms, rationale in _RULES:
        if covers == required:
            report = check_stack(list(mechanisms))
            if report.valid and required <= report.covered:
                out.append(Recommendation(mechanisms, rationale))
    if out:
        return out
    # No exact rule: fall back to superset rules (still valid stacks).
    for covers, mechanisms, rationale in _RULES:
        if required <= covers:
            report = check_stack(list(mechanisms))
            if report.valid and required <= report.covered:
                out.append(Recommendation(mechanisms, rationale))
    return out
