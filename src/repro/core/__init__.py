"""The three-dimensional privacy framework (the paper's contribution)."""

from .assessment import MaskingAssessment, assess_masking, masking_scoreboard
from .composition import (
    CONTRIBUTES,
    INCOMPATIBLE,
    Mechanism,
    StackReport,
    check_stack,
    full_coverage_stacks,
)
from .dimensions import (
    GRADE_THRESHOLDS,
    Grade,
    PAPER_TABLE2,
    PrivacyDimension,
    grade_from_score,
)
from .guidelines import Recommendation, recommend
from .report import full_report
from .meters import (
    EXTRACTION_TOLERANCE_SD,
    INTERVAL_PCT,
    owner_privacy_from_release,
    owner_privacy_from_transcript,
    respondent_privacy_score,
    user_privacy_from_posterior,
    user_privacy_plaintext,
    user_privacy_use_specific,
)
from .pipelines import (
    HippocraticPipeline,
    KAnonymousPIRPipeline,
    PipelineAudit,
)
from .scoring import Table2Comparison, format_table2, score_technologies
from .technologies import (
    CryptoPPDM,
    EmpiricalAssessment,
    GenericPPDM,
    GenericPPDMPlusPIR,
    PIRTechnology,
    SDCPlusPIR,
    SDCTechnology,
    TechnologyClass,
    UseSpecificPPDM,
    UseSpecificPPDMPlusPIR,
    default_technology_classes,
)

__all__ = [
    "CONTRIBUTES",
    "CryptoPPDM",
    "EXTRACTION_TOLERANCE_SD",
    "EmpiricalAssessment",
    "GRADE_THRESHOLDS",
    "GenericPPDM",
    "GenericPPDMPlusPIR",
    "Grade",
    "HippocraticPipeline",
    "INCOMPATIBLE",
    "INTERVAL_PCT",
    "KAnonymousPIRPipeline",
    "MaskingAssessment",
    "Mechanism",
    "PAPER_TABLE2",
    "PIRTechnology",
    "PipelineAudit",
    "PrivacyDimension",
    "Recommendation",
    "SDCPlusPIR",
    "SDCTechnology",
    "StackReport",
    "Table2Comparison",
    "TechnologyClass",
    "UseSpecificPPDM",
    "UseSpecificPPDMPlusPIR",
    "assess_masking",
    "check_stack",
    "default_technology_classes",
    "format_table2",
    "full_report",
    "full_coverage_stacks",
    "grade_from_score",
    "masking_scoreboard",
    "owner_privacy_from_release",
    "owner_privacy_from_transcript",
    "recommend",
    "respondent_privacy_score",
    "score_technologies",
    "user_privacy_from_posterior",
    "user_privacy_plaintext",
    "user_privacy_use_specific",
]
