"""Score any masking method on the three privacy dimensions.

:mod:`repro.core.technologies` evaluates the paper's eight *classes*;
this module generalizes the same meters to arbitrary
:class:`~repro.sdc.base.MaskingMethod` instances, so a practitioner can
put their own masking configuration on the Table 2 scale — with or
without a PIR front-end — plus the utility figures Section 6 says must be
weighed against privacy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from ..pir.itpir import TwoServerXorPIR
from ..pir.profiling import profile_itpir
from ..sdc.base import MaskingMethod
from ..sdc.utility import UtilityReport, assess_utility
from .dimensions import Grade, PrivacyDimension, grade_from_score
from .meters import (
    owner_privacy_from_release,
    respondent_privacy_score,
    user_privacy_plaintext,
)


@dataclass(frozen=True)
class MaskingAssessment:
    """Three-dimensional scores plus utility for one masking deployment."""

    method_name: str
    with_pir: bool
    scores: dict[PrivacyDimension, float]
    utility: UtilityReport

    @property
    def grades(self) -> dict[PrivacyDimension, Grade]:
        """Scores on the paper's ordinal scale."""
        return {d: grade_from_score(s) for d, s in self.scores.items()}

    def summary(self) -> str:
        """One-line report string."""
        r = self.scores[PrivacyDimension.RESPONDENT]
        o = self.scores[PrivacyDimension.OWNER]
        u = self.scores[PrivacyDimension.USER]
        il = self.utility.il1s
        return (
            f"{self.method_name:30s} R={r:.2f}({self.grades[PrivacyDimension.RESPONDENT]}) "
            f"O={o:.2f}({self.grades[PrivacyDimension.OWNER]}) "
            f"U={u:.2f}({self.grades[PrivacyDimension.USER]}) IL1s={il:.3f}"
        )


def assess_masking(
    method: MaskingMethod,
    population: Dataset,
    with_pir: bool = False,
    seed: int = 0,
    profiling_trials: int = 120,
) -> MaskingAssessment:
    """Deploy *method* on *population* and run the three meters.

    ``with_pir = True`` models serving the release through two-server PIR
    (lifting the user dimension without changing the other two — the
    paper's composition result).
    """
    release = method.mask(population, np.random.default_rng(seed))
    qi = [
        c for c in population.quasi_identifiers if population.is_numeric(c)
    ] or list(population.numeric_columns())
    respondent = respondent_privacy_score(population, release, qi, rng=seed)
    owner = owner_privacy_from_release(population, release, qi)
    if with_pir:
        pir = TwoServerXorPIR(list(range(max(release.n_rows, 8))))
        user = profile_itpir(pir, profiling_trials, seed).user_privacy
    else:
        user = user_privacy_plaintext()
    utility = assess_utility(population, release, qi)
    return MaskingAssessment(
        method_name=method.name + (" + PIR" if with_pir else ""),
        with_pir=with_pir,
        scores={
            PrivacyDimension.RESPONDENT: respondent,
            PrivacyDimension.OWNER: owner,
            PrivacyDimension.USER: user,
        },
        utility=utility,
    )


def masking_scoreboard(
    methods: list[MaskingMethod],
    population: Dataset,
    with_pir: bool = False,
    seed: int = 0,
) -> list[MaskingAssessment]:
    """Assess several methods on the same population, sorted by
    respondent-privacy score (descending)."""
    assessments = [
        assess_masking(m, population, with_pir=with_pir, seed=seed)
        for m in methods
    ]
    assessments.sort(
        key=lambda a: -a.scores[PrivacyDimension.RESPONDENT]
    )
    return assessments
