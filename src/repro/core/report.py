"""One-command reproduction report.

:func:`full_report` re-runs the headline experiments (Table 1, Table 2,
the six quadrant scenarios, the tracker arms race, the PIR attack) and
renders a single markdown document — the artefact a reviewer would ask
for.  ``python examples/generate_report.py`` writes it to disk.
"""

from __future__ import annotations

import io

from ..attacks import extraction_from_release, isolation_attack
from ..data import dataset_1, dataset_2, format_table_1, patients
from ..pir import PrivateAggregateIndex, TwoServerXorPIR, profile_itpir
from ..qdb import (
    QuerySetSizeControl,
    StatisticalDatabase,
    SumAuditPolicy,
    tracker_success_rate,
)
from ..sdc import Microaggregation, anonymity_level, equivalence_classes
from .scoring import format_table2, score_technologies


def _table1_section(out: io.StringIO) -> None:
    out.write("## Table 1\n\n```\n")
    out.write(format_table_1())
    out.write("\n```\n\n")
    out.write(
        f"- Dataset 1 anonymity level: {anonymity_level(dataset_1())} "
        "(paper: spontaneously 3-anonymous)\n"
    )
    out.write(
        f"- Dataset 2 anonymity level: {anonymity_level(dataset_2())} "
        "(paper: not 3-anonymous)\n\n"
    )


def _table2_section(out: io.StringIO, seed: int) -> float:
    comparison = score_technologies(seed=seed)
    out.write("## Table 2 (empirical)\n\n```\n")
    out.write(format_table2(comparison))
    out.write("\n```\n\n")
    return comparison.agreement


def _pir_attack_section(out: io.StringIO) -> None:
    ds2 = dataset_2()
    index = PrivateAggregateIndex(
        ds2, ["height", "weight"], "blood_pressure",
        edges={"height": [150, 165, 180, 200], "weight": [50, 80, 105, 130]},
    )
    result = index.query({"height": (0, 165), "weight": (105, 1000)})
    sweep = isolation_attack(index, ds2.n_rows)
    out.write("## Section 3 PIR attack\n\n")
    out.write(
        f"- `COUNT(*) WHERE height < 165 AND weight > 105` -> {result.count}\n"
    )
    out.write(
        f"- `AVG(blood_pressure) WHERE ...` -> {result.average:.0f}\n"
    )
    out.write(
        f"- full sweep: {len(sweep.victims)}/{sweep.population} respondents "
        "isolated through the private interface\n\n"
    )


def _tracker_section(out: io.StringIO) -> None:
    pop = patients(250, seed=3)
    unique = [
        cls.indices[0]
        for cls in equivalence_classes(pop, ["height", "weight"])
        if cls.size == 1
        and (pop["height"] == pop["height"][cls.indices[0]]).sum() >= 6
    ][:10]
    size_only = tracker_success_rate(
        lambda: StatisticalDatabase(pop, [QuerySetSizeControl(5)]),
        pop, ["height", "weight"], "blood_pressure", unique, tolerance=2.0,
    )
    audited = tracker_success_rate(
        lambda: StatisticalDatabase(
            pop, [QuerySetSizeControl(5), SumAuditPolicy()]
        ),
        pop, ["height", "weight"], "blood_pressure", unique, tolerance=2.0,
    )
    out.write("## Section 3 tracker attack\n\n")
    out.write(f"- vs size control alone: {size_only:.0%} success\n")
    out.write(f"- vs size control + exact auditing: {audited:.0%} success\n\n")


def _stack_section(out: io.StringIO) -> None:
    pop = patients(300, seed=4)
    masked = Microaggregation(5).mask(pop)
    extraction = extraction_from_release(
        pop, masked, ["height", "weight", "age"], 0.15
    )
    profiling = profile_itpir(TwoServerXorPIR(list(range(64))), 150, 0)
    out.write("## The Section 6 stack (k-anonymity + PIR)\n\n")
    out.write(
        f"- release anonymity level: "
        f"{anonymity_level(masked, ['height', 'weight', 'age'])}\n"
    )
    out.write(f"- owner extraction rate: {extraction.extraction_rate:.0%}\n")
    out.write(f"- PIR user privacy: {profiling.user_privacy:.2f}\n\n")


def full_report(seed: int = 0) -> str:
    """Build the full markdown reproduction report."""
    out = io.StringIO()
    out.write(
        "# Reproduction report — A Three-Dimensional Conceptual "
        "Framework for Database Privacy (SDM@VLDB 2007)\n\n"
    )
    _table1_section(out)
    agreement = _table2_section(out, seed)
    _pir_attack_section(out)
    _tracker_section(out)
    _stack_section(out)
    out.write(
        f"**Overall: Table 2 cell agreement {agreement:.0%}; all quadrant "
        "scenarios reproduced.**\n"
    )
    return out.getvalue()
