"""The eight technology classes of Table 2, as runnable strategies.

Each :class:`TechnologyClass` knows how to *deploy itself* on a population
and be attacked on all three dimensions, yielding an
:class:`EmpiricalAssessment` the scoring harness compares against the
paper's qualitative grades.

Representative instantiations (paper Section 5): SDC = masking per the
Hundepool et al. handbook [17] (microaggregation [10]); use-specific
non-crypto PPDM = Agrawal–Srikant randomization [5]; generic non-crypto
PPDM = condensation [1] (the paper's example of a generic method is the
k-anonymizer of [2], which condensation realizes for numeric data);
crypto PPDM = secure multiparty computation [18]; PIR = Chor et al. [8].
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass

import numpy as np

from ..attacks.owner_extraction import extraction_via_pir_download
from ..attacks.sparse_reconstruction import reconstruction_attack
from ..data.synthetic import horizontal_partition
from ..data.table import Dataset
from ..pir.itpir import TwoServerXorPIR
from ..pir.profiling import profile_itpir
from ..ppdm.randomization import AgrawalSrikantRandomizer
from ..sdc.condensation import Condensation
from ..sdc.microaggregation import Microaggregation
from ..smc.party import Transcript
from ..smc.secure_sum import ring_secure_sum
from .dimensions import Grade, PAPER_TABLE2, PrivacyDimension, grade_from_score
from .meters import (
    owner_privacy_from_release,
    owner_privacy_from_transcript,
    respondent_privacy_score,
    user_privacy_plaintext,
    user_privacy_use_specific,
)

#: Query-space model for the use-specific + PIR cell (see
#: :func:`repro.core.meters.user_privacy_use_specific`).
N_ANALYSIS_CLASSES = 4
N_TARGETS = 16

#: PIR profiling trials per assessment.
PROFILING_TRIALS = 150


@dataclass(frozen=True)
class EmpiricalAssessment:
    """Measured privacy scores of one technology class."""

    technology: str
    scores: dict[PrivacyDimension, float]
    notes: str = ""

    @property
    def grades(self) -> dict[PrivacyDimension, Grade]:
        """Scores mapped onto the paper's ordinal scale."""
        return {d: grade_from_score(s) for d, s in self.scores.items()}

    @property
    def paper_grades(self) -> dict[PrivacyDimension, Grade]:
        """The corresponding Table 2 row."""
        return PAPER_TABLE2[self.technology]

    def matches(self, dimension: PrivacyDimension) -> bool:
        """Does the measured grade agree with the paper's?"""
        return self.grades[dimension] is self.paper_grades[dimension]

    @property
    def agreement(self) -> float:
        """Fraction of the three cells matching the paper exactly."""
        return sum(self.matches(d) for d in PrivacyDimension) / 3.0


class TechnologyClass(abc.ABC):
    """A deployable, attackable technology class."""

    name: str = "abstract"

    @abc.abstractmethod
    def evaluate(self, population: Dataset, seed: int = 0) -> EmpiricalAssessment:
        """Deploy on *population*, run the three adversaries, score."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _qi(population: Dataset) -> list[str]:
    qi = [c for c in population.quasi_identifiers if population.is_numeric(c)]
    return qi or list(population.numeric_columns())


def _masking_scores(
    population: Dataset,
    release: Dataset,
    seed: int,
    extra_disclosure: float = 0.0,
) -> dict[PrivacyDimension, float]:
    qi = _qi(population)
    return {
        PrivacyDimension.RESPONDENT: respondent_privacy_score(
            population, release, qi, extra_disclosure=extra_disclosure, rng=seed
        ),
        PrivacyDimension.OWNER: owner_privacy_from_release(
            population, release, qi
        ),
        PrivacyDimension.USER: user_privacy_plaintext(),
    }


def _pir_user_score(n_blocks: int, seed: int) -> float:
    pir = TwoServerXorPIR(list(range(max(n_blocks, 8))))
    return profile_itpir(pir, PROFILING_TRIALS, seed).user_privacy


class SDCTechnology(TechnologyClass):
    """SDC masking (microaggregation of the quasi-identifiers)."""

    name = "SDC"

    def __init__(self, k: int = 5):
        self.k = k

    def _release(self, population: Dataset, seed: int) -> Dataset:
        return Microaggregation(self.k).mask(
            population, np.random.default_rng(seed)
        )

    def evaluate(self, population: Dataset, seed: int = 0) -> EmpiricalAssessment:
        release = self._release(population, seed)
        return EmpiricalAssessment(
            self.name,
            _masking_scores(population, release, seed),
            notes=f"microaggregation k={self.k}; queries submitted in the clear",
        )


class UseSpecificPPDM(TechnologyClass):
    """Agrawal–Srikant randomization (decision-tree-specific PPDM [5]).

    The respondent meter includes the [11] joint-reconstruction disclosure:
    the published noise model is part of the release.
    """

    name = "Use-specific non-crypto PPDM"

    def __init__(self, relative_scale: float = 0.5, bins: int = 4):
        self.relative_scale = relative_scale
        self.bins = bins

    def _release(self, population: Dataset, seed: int):
        randomizer = AgrawalSrikantRandomizer(self.relative_scale)
        release = randomizer.mask(population, np.random.default_rng(seed))
        return release, randomizer

    def evaluate(self, population: Dataset, seed: int = 0) -> EmpiricalAssessment:
        release, randomizer = self._release(population, seed)
        qi = _qi(population)[:3]  # joint reconstruction on leading QIs
        report = reconstruction_attack(
            population, release, [randomizer.noise_models[c] for c in qi],
            qi, bins=self.bins, max_iter=40,
        )
        scores = _masking_scores(
            population, release, seed, extra_disclosure=report.disclosure_rate
        )
        return EmpiricalAssessment(
            self.name,
            scores,
            notes=(
                f"randomization scale={self.relative_scale}; "
                f"[11] disclosure={report.disclosure_rate:.3f}"
            ),
        )


class GenericPPDM(TechnologyClass):
    """Condensation — analysis-agnostic masking (Aggarwal–Yu [1])."""

    name = "Generic non-crypto PPDM"

    def __init__(self, k: int = 14):
        self.k = k

    def _release(self, population: Dataset, seed: int) -> Dataset:
        return Condensation(self.k).mask(population, np.random.default_rng(seed))

    def evaluate(self, population: Dataset, seed: int = 0) -> EmpiricalAssessment:
        release = self._release(population, seed)
        return EmpiricalAssessment(
            self.name,
            _masking_scores(population, release, seed),
            notes=f"condensation k={self.k}",
        )


class CryptoPPDM(TechnologyClass):
    """Secure multiparty computation among the data owners [18, 19]."""

    name = "Crypto PPDM"

    def __init__(self, n_parties: int = 3):
        if n_parties < 3:
            raise ValueError("the ring protocol needs >= 3 parties")
        self.n_parties = n_parties

    def evaluate(self, population: Dataset, seed: int = 0) -> EmpiricalAssessment:
        parts = horizontal_partition(population, self.n_parties, seed)
        rng = random.Random(seed)
        transcript = Transcript()
        qi = _qi(population)
        private_values = {
            f"P{i}": [
                float(v) for name in qi for v in parts[i].column(name)
            ]
            for i in range(self.n_parties)
        }
        isolating = 0
        outputs = 0
        for name in qi:
            locals_ = [
                int(round(float(part.column(name).sum()))) for part in parts
            ]
            ring_secure_sum(locals_, rng=rng, transcript=transcript)
            outputs += 1
            counts = [part.n_rows for part in parts]
            total = ring_secure_sum(counts, rng=rng, transcript=transcript)
            outputs += 1
            if total == 1:
                isolating += 1
        owner = owner_privacy_from_transcript(transcript, private_values)
        respondent = 1.0 - isolating / max(outputs, 1)
        return EmpiricalAssessment(
            self.name,
            {
                PrivacyDimension.RESPONDENT: respondent,
                PrivacyDimension.OWNER: owner,
                PrivacyDimension.USER: user_privacy_plaintext(),
            },
            notes=(
                f"{self.n_parties}-party secure sums; transcript of "
                f"{len(transcript)} messages; computation known to all parties"
            ),
        )


class PIRTechnology(TechnologyClass):
    """PIR over the unmasked database [8]."""

    name = "PIR"

    def evaluate(self, population: Dataset, seed: int = 0) -> EmpiricalAssessment:
        qi = _qi(population)
        # The client can privately download everything: the effective
        # release is the original file.
        respondent = respondent_privacy_score(population, population, qi, rng=seed)
        owner = 1.0 - extraction_via_pir_download(population, qi).extraction_rate
        user = _pir_user_score(population.n_rows, seed)
        return EmpiricalAssessment(
            self.name,
            {
                PrivacyDimension.RESPONDENT: respondent,
                PrivacyDimension.OWNER: owner,
                PrivacyDimension.USER: user,
            },
            notes="unmasked records behind two-server XOR PIR",
        )


class SDCPlusPIR(TechnologyClass):
    """SDC masking with a PIR retrieval front-end (Section 6 guideline)."""

    name = "SDC + PIR"

    def __init__(self, k: int = 5):
        self.k = k

    def evaluate(self, population: Dataset, seed: int = 0) -> EmpiricalAssessment:
        release = Microaggregation(self.k).mask(
            population, np.random.default_rng(seed)
        )
        scores = _masking_scores(population, release, seed)
        scores[PrivacyDimension.USER] = _pir_user_score(release.n_rows, seed)
        return EmpiricalAssessment(
            self.name, scores,
            notes=f"microaggregation k={self.k} behind two-server PIR",
        )


class UseSpecificPPDMPlusPIR(TechnologyClass):
    """Randomization + PIR: the query *class* still leaks (Section 5)."""

    name = "Use-specific non-crypto PPDM + PIR"

    def __init__(self, relative_scale: float = 0.5, bins: int = 4):
        self._inner = UseSpecificPPDM(relative_scale, bins)

    def evaluate(self, population: Dataset, seed: int = 0) -> EmpiricalAssessment:
        inner = self._inner.evaluate(population, seed)
        scores = dict(inner.scores)
        scores[PrivacyDimension.USER] = user_privacy_use_specific(
            N_ANALYSIS_CLASSES, N_TARGETS
        )
        return EmpiricalAssessment(
            self.name, scores,
            notes=inner.notes + "; PIR with analysis class known to server",
        )


class GenericPPDMPlusPIR(TechnologyClass):
    """Condensation + PIR: the paper's preferred three-dimension stack."""

    name = "Generic non-crypto PPDM + PIR"

    def __init__(self, k: int = 14):
        self._inner = GenericPPDM(k)

    def evaluate(self, population: Dataset, seed: int = 0) -> EmpiricalAssessment:
        inner = self._inner.evaluate(population, seed)
        scores = dict(inner.scores)
        scores[PrivacyDimension.USER] = _pir_user_score(population.n_rows, seed)
        return EmpiricalAssessment(
            self.name, scores, notes=inner.notes + "; behind two-server PIR",
        )


def default_technology_classes() -> list[TechnologyClass]:
    """The eight rows of Table 2, in the paper's order."""
    return [
        SDCTechnology(),
        UseSpecificPPDM(),
        GenericPPDM(),
        CryptoPPDM(),
        PIRTechnology(),
        SDCPlusPIR(),
        UseSpecificPPDMPlusPIR(),
        GenericPPDMPlusPIR(),
    ]
