"""The three privacy dimensions and the grade scale of Table 2.

The paper's central claim: database privacy splits into three independent
dimensions according to *whose* privacy is sought —

* :attr:`PrivacyDimension.RESPONDENT` — the individuals the records refer
  to (patients, census respondents): prevent re-identification.
* :attr:`PrivacyDimension.OWNER` — the entity holding the database as an
  asset: reveal query results, never the dataset.
* :attr:`PrivacyDimension.USER` — whoever queries the database: prevent
  profiling of the queries themselves.

Table 2 grades each technology class on each dimension with the ordinal
scale none < medium < medium-high < high; we add ``low`` so the empirical
harness can express intermediate outcomes honestly.
"""

from __future__ import annotations

import enum
import functools


class PrivacyDimension(enum.Enum):
    """Whose privacy a mechanism protects."""

    RESPONDENT = "respondent"
    OWNER = "owner"
    USER = "user"


@functools.total_ordering
class Grade(enum.Enum):
    """Ordinal privacy grade, as used in the paper's Table 2."""

    NONE = 0
    LOW = 1
    MEDIUM = 2
    MEDIUM_HIGH = 3
    HIGH = 4

    def __lt__(self, other: "Grade") -> bool:
        if not isinstance(other, Grade):
            return NotImplemented
        return self.value < other.value

    @property
    def label(self) -> str:
        """The paper's spelling of the grade."""
        return {
            Grade.NONE: "none",
            Grade.LOW: "low",
            Grade.MEDIUM: "medium",
            Grade.MEDIUM_HIGH: "medium-high",
            Grade.HIGH: "high",
        }[self]

    def __str__(self) -> str:
        return self.label


#: Score thresholds mapping a [0, 1] privacy score to a grade.  Chosen once
#: (see DESIGN.md §4) and frozen; all benches and tests use these.
GRADE_THRESHOLDS: tuple[tuple[float, Grade], ...] = (
    (0.90, Grade.HIGH),
    (0.70, Grade.MEDIUM_HIGH),
    (0.45, Grade.MEDIUM),
    (0.15, Grade.LOW),
    (0.00, Grade.NONE),
)


def grade_from_score(score: float) -> Grade:
    """Map a privacy score in [0, 1] to the ordinal grade scale."""
    if not 0.0 <= score <= 1.0 + 1e-9:
        raise ValueError(f"score must be in [0, 1], got {score}")
    for threshold, grade in GRADE_THRESHOLDS:
        if score >= threshold:
            return grade
    return Grade.NONE


#: The paper's Table 2, verbatim.
PAPER_TABLE2: dict[str, dict[PrivacyDimension, Grade]] = {
    "SDC": {
        PrivacyDimension.RESPONDENT: Grade.MEDIUM_HIGH,
        PrivacyDimension.OWNER: Grade.MEDIUM,
        PrivacyDimension.USER: Grade.NONE,
    },
    "Use-specific non-crypto PPDM": {
        PrivacyDimension.RESPONDENT: Grade.MEDIUM,
        PrivacyDimension.OWNER: Grade.MEDIUM_HIGH,
        PrivacyDimension.USER: Grade.NONE,
    },
    "Generic non-crypto PPDM": {
        PrivacyDimension.RESPONDENT: Grade.MEDIUM,
        PrivacyDimension.OWNER: Grade.MEDIUM_HIGH,
        PrivacyDimension.USER: Grade.NONE,
    },
    "Crypto PPDM": {
        PrivacyDimension.RESPONDENT: Grade.HIGH,
        PrivacyDimension.OWNER: Grade.HIGH,
        PrivacyDimension.USER: Grade.NONE,
    },
    "PIR": {
        PrivacyDimension.RESPONDENT: Grade.NONE,
        PrivacyDimension.OWNER: Grade.NONE,
        PrivacyDimension.USER: Grade.HIGH,
    },
    "SDC + PIR": {
        PrivacyDimension.RESPONDENT: Grade.MEDIUM_HIGH,
        PrivacyDimension.OWNER: Grade.MEDIUM,
        PrivacyDimension.USER: Grade.HIGH,
    },
    "Use-specific non-crypto PPDM + PIR": {
        PrivacyDimension.RESPONDENT: Grade.MEDIUM,
        PrivacyDimension.OWNER: Grade.MEDIUM_HIGH,
        PrivacyDimension.USER: Grade.MEDIUM,
    },
    "Generic non-crypto PPDM + PIR": {
        PrivacyDimension.RESPONDENT: Grade.MEDIUM,
        PrivacyDimension.OWNER: Grade.MEDIUM_HIGH,
        PrivacyDimension.USER: Grade.HIGH,
    },
}
