"""End-to-end release pipelines combining the building blocks.

Two deployable stacks the paper singles out:

* :class:`KAnonymousPIRPipeline` — Section 6's conclusion: k-anonymize the
  microdata, then serve statistical queries through PIR.  Satisfies all
  three dimensions: no cell of the served grid can isolate fewer than k
  respondents, the served values are masked, and the servers cannot see
  which cells a user touches.
* :class:`HippocraticPipeline` — the paper's reading of hippocratic
  databases [3, 4]: k-anonymization for respondent privacy integrated with
  randomization-based PPDM [15] for owner privacy, behind a policy check.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from ..pir.sql_bridge import AggregateResult, PrivateAggregateIndex
from ..ppdm.randomization import AgrawalSrikantRandomizer
from ..sdc.kanonymity import anonymity_level
from ..sdc.microaggregation import Microaggregation
from ..telemetry import instrument as tele


@dataclass(frozen=True)
class PipelineAudit:
    """Release-time invariants checked by a pipeline."""

    k_required: int
    k_achieved: int
    singleton_cells: int

    @property
    def passed(self) -> bool:
        """True when the release meets its declared guarantees."""
        return self.k_achieved >= self.k_required and self.singleton_cells == 0


def _publish_audit(pipeline: str, audit: "PipelineAudit") -> None:
    """Expose the latest audit outcome on the telemetry gauges."""
    tele.gauge("sdc.k_required").set(audit.k_required)
    tele.gauge("sdc.k_achieved").set(audit.k_achieved)
    tele.gauge("sdc.singleton_cells").set(audit.singleton_cells)
    tele.counter(f"sdc.audits[{pipeline}]").inc()


class KAnonymousPIRPipeline:
    """k-Anonymize via microaggregation, then serve aggregates over PIR.

    Parameters
    ----------
    data:
        Original microdata (with a schema marking quasi-identifiers).
    k:
        Anonymity parameter.
    value_column:
        Confidential numeric attribute served as per-cell SUM (for AVG).
    edges:
        Public grid edges over the (masked) quasi-identifiers.
    """

    def __init__(
        self,
        data: Dataset,
        k: int,
        value_column: str,
        edges: Mapping[str, Sequence[float]],
        seed: int = 0,
    ):
        self._original = data
        self.k = k
        qi = [c for c in data.quasi_identifiers if data.is_numeric(c)]
        self.quasi_identifiers = qi
        self.release = Microaggregation(k, qi).mask(
            data, np.random.default_rng(seed)
        )
        self.index = PrivateAggregateIndex(
            self.release, list(edges), value_column, edges
        )

    def query(
        self,
        ranges: Mapping[str, tuple[float, float]],
        rng: np.random.Generator | int | None = 0,
    ) -> AggregateResult:
        """Privately evaluate COUNT/SUM/AVG over the masked release."""
        return self.index.query(ranges, rng)

    def audit(self, rng: np.random.Generator | int | None = 0) -> PipelineAudit:
        """Verify the all-three-dimensions invariants.

        * the masked release is k-anonymous on the quasi-identifiers, and
        * no served grid cell isolates a single respondent (every
          non-empty cell holds >= k records).
        """
        with tele.span("sdc.pipeline_audit", pipeline="k-anonymous-pir"):
            achieved = anonymity_level(self.release, self.quasi_identifiers)
            singles = 0
            import itertools

            per_dim = [
                range(len(self.index.edges[c]) - 1)
                for c in self.index.group_columns
            ]
            for combo in itertools.product(*per_dim):
                ranges = {
                    c: (
                        float(self.index.edges[c][j]),
                        float(self.index.edges[c][j + 1]),
                    )
                    for c, j in zip(self.index.group_columns, combo)
                }
                result = self.index.query(ranges, rng)
                if 0 < result.count < self.k:
                    singles += 1
            audit = PipelineAudit(self.k, achieved, singles)
        _publish_audit("k-anonymous-pir", audit)
        return audit


class HippocraticPipeline:
    """k-Anonymization + randomization, gated by a purpose policy.

    Queries must declare a purpose from the allowed set before any release
    is produced (the hippocratic "purpose specification" principle); the
    release itself combines microaggregation of the quasi-identifiers
    (respondent privacy) with Agrawal–Srikant randomization of the
    remaining numeric attributes (owner privacy).
    """

    def __init__(
        self,
        data: Dataset,
        k: int,
        allowed_purposes: Sequence[str],
        noise_scale: float = 0.5,
        seed: int = 0,
    ):
        self._original = data
        self.k = k
        self.allowed_purposes = frozenset(allowed_purposes)
        qi = [c for c in data.quasi_identifiers if data.is_numeric(c)]
        self._qi = qi
        rng = np.random.default_rng(seed)
        masked = Microaggregation(k, qi).mask(data, rng)
        other_numeric = [
            c for c in masked.numeric_columns() if c not in qi
        ]
        self._randomizer = AgrawalSrikantRandomizer(
            noise_scale, columns=other_numeric
        )
        self._release = self._randomizer.mask(masked, rng)
        self.disclosure_log: list[tuple[str, str]] = []

    def request_release(self, requester: str, purpose: str) -> Dataset:
        """Policy-checked release; raises ``PermissionError`` otherwise."""
        if purpose not in self.allowed_purposes:
            raise PermissionError(
                f"purpose {purpose!r} is not among the allowed purposes "
                f"{sorted(self.allowed_purposes)}"
            )
        self.disclosure_log.append((requester, purpose))
        return self._release.copy()

    def audit(self) -> PipelineAudit:
        """Check the k-anonymity invariant of the inner masking."""
        with tele.span("sdc.pipeline_audit", pipeline="hippocratic"):
            achieved = anonymity_level(self._release, self._qi)
            audit = PipelineAudit(self.k, achieved, 0)
        _publish_audit("hippocratic", audit)
        return audit

    @property
    def noise_models(self):
        """Public noise models (enabling distribution reconstruction)."""
        return dict(self._randomizer.noise_models)
