"""The three privacy meters.

Each meter returns a score in [0, 1] (1 = perfect privacy for that
entity), computed by running the corresponding adversary from
:mod:`repro.attacks`:

* respondent — the strongest of record linkage and interval disclosure
  (optionally plus the [11] joint-reconstruction disclosure for
  randomization-based releases);
* owner — 1 minus the fraction of the dataset a competitor extracts from
  whatever leaves the owner's control (release, transcript, or PIR
  interface);
* user — either the empirical profiling score of the retrieval mechanism
  or the entropy of the server's posterior over the query space.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from ..attacks.linkage import best_linkage_rate
from ..attacks.owner_extraction import (
    extraction_from_release,
    extraction_from_transcript,
)
from ..data.table import Dataset
from ..sdc.risk import unique_interval_disclosure_rate
from ..smc.party import Transcript

#: Interval half-width (fraction of an attribute's std) under which a
#: masked value counts as disclosing the original.  Frozen calibration.
INTERVAL_PCT = 20.0

#: Tolerance (fraction of std) for the owner-extraction adversary.
EXTRACTION_TOLERANCE_SD = 0.15


def respondent_privacy_score(
    original: Dataset,
    release: Dataset,
    numeric_qi: Sequence[str] | None = None,
    categorical_qi: Sequence[str] | None = None,
    extra_disclosure: float = 0.0,
    rng: np.random.Generator | int | None = 0,
) -> float:
    """1 minus the strongest respondent-level disclosure channel."""
    linkage = best_linkage_rate(
        original, release, numeric_qi, categorical_qi, rng
    )
    if release.n_rows == original.n_rows:
        interval = unique_interval_disclosure_rate(
            original, release, numeric_qi, INTERVAL_PCT
        )
    else:
        interval = 0.0
    risk = max(linkage, interval, extra_disclosure)
    return float(np.clip(1.0 - risk, 0.0, 1.0))


def owner_privacy_from_release(
    original: Dataset,
    release: Dataset,
    columns: Sequence[str] | None = None,
) -> float:
    """1 minus the competitor's extraction rate from a published release."""
    report = extraction_from_release(
        original, release, columns, EXTRACTION_TOLERANCE_SD
    )
    return report.owner_privacy


def owner_privacy_from_transcript(
    transcript: Transcript, private_values: dict[str, Iterable[float]]
) -> float:
    """1 minus the exposure of owners' raw values in protocol messages."""
    return extraction_from_transcript(transcript, private_values).owner_privacy


def user_privacy_from_posterior(posterior: Sequence[float]) -> float:
    """Normalized entropy of the server's posterior over the query space.

    1.0 when the server's belief stays uniform over all possible queries
    (perfect user privacy); 0.0 when the query is known exactly.
    """
    p = np.asarray(posterior, dtype=np.float64)
    if p.size <= 1:
        return 0.0
    total = p.sum()
    if total <= 0:
        raise ValueError("posterior must have positive mass")
    p = p / total
    nonzero = p[p > 0]
    entropy = float(-(nonzero * np.log2(nonzero)).sum())
    return entropy / math.log2(p.size)


def user_privacy_use_specific(
    n_analysis_classes: int, n_targets: int
) -> float:
    """User privacy of PIR behind a *use-specific* PPDM release.

    The paper (Section 5): "when use-specific non-crypto PPDM is combined
    with PIR, there is some clue on the queries made by the user (they are
    likely to correspond to the uses the PPDM method is intended for)".
    Model: the query space is (analysis class) x (target); the release
    supports exactly one class, so the server's posterior collapses to the
    n_targets queries of that class while remaining uniform within it.
    """
    if n_analysis_classes < 1 or n_targets < 1:
        raise ValueError("need positive space sizes")
    full = np.zeros(n_analysis_classes * n_targets)
    full[:n_targets] = 1.0 / n_targets
    return user_privacy_from_posterior(full)


def user_privacy_plaintext() -> float:
    """User privacy when the server sees queries in the clear: zero."""
    return 0.0
