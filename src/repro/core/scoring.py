"""The empirical Table 2 harness.

Runs every technology class of :mod:`repro.core.technologies` against the
three adversaries on a common synthetic population and renders the result
side by side with the paper's qualitative grades.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..data.synthetic import patients
from ..data.table import Dataset
from .dimensions import PrivacyDimension
from .technologies import (
    EmpiricalAssessment,
    TechnologyClass,
    default_technology_classes,
)

_DIMS = (
    PrivacyDimension.RESPONDENT,
    PrivacyDimension.OWNER,
    PrivacyDimension.USER,
)


@dataclass(frozen=True)
class Table2Comparison:
    """All assessments plus aggregate agreement with the paper."""

    assessments: tuple[EmpiricalAssessment, ...]

    @property
    def agreement(self) -> float:
        """Mean per-cell agreement with the paper across all rows."""
        if not self.assessments:
            return 0.0
        return sum(a.agreement for a in self.assessments) / len(self.assessments)

    def row(self, technology: str) -> EmpiricalAssessment:
        """Look up one technology's assessment by name."""
        for assessment in self.assessments:
            if assessment.technology == technology:
                return assessment
        raise KeyError(technology)


def score_technologies(
    population: Dataset | None = None,
    classes: Sequence[TechnologyClass] | None = None,
    seed: int = 0,
) -> Table2Comparison:
    """Evaluate all technology classes (defaults: 400 patients, 8 classes)."""
    if population is None:
        population = patients(400, seed=seed).drop(["patient_id"])
    if classes is None:
        classes = default_technology_classes()
    assessments = tuple(tech.evaluate(population, seed) for tech in classes)
    return Table2Comparison(assessments)


def format_table2(comparison: Table2Comparison, show_scores: bool = True) -> str:
    """Render the measured Table 2 next to the paper's grades."""
    header = (
        f"{'Technology class':38s} "
        f"{'Respondent':>24s} {'Owner':>24s} {'User':>24s}"
    )
    lines = [
        "Table 2 (reproduced): measured grade [score] vs paper grade",
        header,
        "-" * len(header),
    ]
    for a in comparison.assessments:
        cells = []
        for dim in _DIMS:
            measured = a.grades[dim].label
            paper = a.paper_grades[dim].label
            mark = "=" if a.matches(dim) else "!"
            if show_scores:
                cells.append(
                    f"{measured}[{a.scores[dim]:.2f}]{mark}{paper}"
                )
            else:
                cells.append(f"{measured}{mark}{paper}")
        lines.append(
            f"{a.technology:38s} "
            f"{cells[0]:>24s} {cells[1]:>24s} {cells[2]:>24s}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"cell agreement with the paper: {comparison.agreement * 100:.0f}%  "
        "( '=' match, '!' mismatch )"
    )
    return "\n".join(lines)
