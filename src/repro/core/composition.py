"""Composition rules: which technologies can be stacked.

Section 6 distils the paper's pairwise analyses into two hard
incompatibilities:

* **query control vs user privacy** — auditing/size control requires the
  owner to see queries, which PIR hides; and
* **crypto PPDM vs user privacy** — interactive multiparty computation
  makes the joint computation known to all parties.

The :func:`check_stack` validator encodes these, plus the positive rules
(masking composes with PIR; microaggregation-grade masking yields both
respondent and owner privacy).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .dimensions import PrivacyDimension


class Mechanism(enum.Enum):
    """Mechanism families a deployment can stack."""

    DATA_MASKING = "data masking"
    QUERY_CONTROL = "query control"
    CRYPTO_PPDM = "crypto PPDM"
    NON_CRYPTO_PPDM = "non-crypto PPDM"
    PIR = "PIR"


#: Which dimensions each mechanism family contributes to.
CONTRIBUTES: dict[Mechanism, frozenset[PrivacyDimension]] = {
    Mechanism.DATA_MASKING: frozenset(
        {PrivacyDimension.RESPONDENT, PrivacyDimension.OWNER}
    ),
    Mechanism.QUERY_CONTROL: frozenset({PrivacyDimension.RESPONDENT}),
    Mechanism.CRYPTO_PPDM: frozenset(
        {PrivacyDimension.OWNER, PrivacyDimension.RESPONDENT}
    ),
    Mechanism.NON_CRYPTO_PPDM: frozenset(
        {PrivacyDimension.OWNER, PrivacyDimension.RESPONDENT}
    ),
    Mechanism.PIR: frozenset({PrivacyDimension.USER}),
}

#: Pairs that cannot coexist in one deployment, with the paper's reason.
INCOMPATIBLE: dict[frozenset[Mechanism], str] = {
    frozenset({Mechanism.QUERY_CONTROL, Mechanism.PIR}): (
        "query control requires the owner to inspect queries, which PIR "
        "hides (paper, Sections 3 and 6)"
    ),
    frozenset({Mechanism.CRYPTO_PPDM, Mechanism.PIR}): (
        "interactive multiparty computation is known to all parties, "
        "which is incompatible with private queries (paper, Sections 4 and 6)"
    ),
}


@dataclass(frozen=True)
class StackReport:
    """Validation outcome for a proposed mechanism stack."""

    mechanisms: tuple[Mechanism, ...]
    valid: bool
    conflicts: tuple[str, ...]
    covered: frozenset[PrivacyDimension]

    @property
    def uncovered(self) -> frozenset[PrivacyDimension]:
        """Dimensions the stack leaves unprotected."""
        return frozenset(PrivacyDimension) - self.covered


def check_stack(mechanisms: list[Mechanism]) -> StackReport:
    """Validate a deployment stack against the paper's composition rules."""
    unique = tuple(dict.fromkeys(mechanisms))
    conflicts = []
    for pair, reason in INCOMPATIBLE.items():
        if pair <= set(unique):
            conflicts.append(reason)
    covered: set[PrivacyDimension] = set()
    for mech in unique:
        covered |= CONTRIBUTES[mech]
    return StackReport(
        mechanisms=unique,
        valid=not conflicts,
        conflicts=tuple(conflicts),
        covered=frozenset(covered),
    )


def full_coverage_stacks() -> list[tuple[Mechanism, ...]]:
    """Enumerate the valid stacks covering all three dimensions.

    The paper's conclusion — k-anonymizing masking plus PIR — appears here
    as (DATA_MASKING, PIR); crypto-PPDM-based stacks never qualify because
    they exclude PIR.
    """
    import itertools

    stacks = []
    mechanisms = list(Mechanism)
    for r in range(1, len(mechanisms) + 1):
        for combo in itertools.combinations(mechanisms, r):
            report = check_stack(list(combo))
            if report.valid and not report.uncovered:
                # Keep minimal stacks only.
                if not any(set(s) < set(combo) for s in stacks):
                    stacks.append(combo)
    return stacks
