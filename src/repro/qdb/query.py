"""Query AST for the interactive statistical database.

Queries are aggregates (COUNT/SUM/AVG/MIN/MAX/MEDIAN) over a boolean
predicate on attributes — the query model of the classical SDC literature
on interactive databases (Chin–Ozsoyoglu [7], Schlörer [22]).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset


class Aggregate(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"
    MEDIAN = "MEDIAN"
    VARIANCE = "VARIANCE"
    STDDEV = "STDDEV"


class Predicate:
    """Abstract boolean predicate over records."""

    def mask(self, data: Dataset) -> np.ndarray:
        """Boolean vector selecting the records satisfying the predicate."""
        raise NotImplementedError

    def cache_key(self) -> tuple:
        """Stable structural key of the AST (for engine-side mask caching).

        Two predicates with equal keys select the same records on every
        dataset, so the engine may share one memoized mask between them.
        """
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every record (a WHERE-less query)."""

    def mask(self, data: Dataset) -> np.ndarray:
        return np.ones(data.n_rows, dtype=bool)

    def cache_key(self) -> tuple:
        return ("true",)

    def __str__(self) -> str:
        return "TRUE"


_OPS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "=": np.equal,
    "!=": np.not_equal,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column op value`` where op in {<, <=, >, >=, =, !=}."""

    column: str
    op: str
    value: object

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown operator {self.op!r}")

    def mask(self, data: Dataset) -> np.ndarray:
        col = data.column(self.column)
        value = self.value
        if col.dtype.kind == "f":
            value = float(value)
        elif self.op not in ("=", "!="):
            raise TypeError(
                f"ordering comparison on non-numeric column {self.column!r}"
            )
        return _OPS[self.op](col, value)

    def cache_key(self) -> tuple:
        value = self.value
        # 1 and 1.0 hash alike but carry the dtype through the comparison,
        # so the key records the type name alongside the value.
        return ("cmp", self.column, self.op, type(value).__name__, value)

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value}"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction."""

    left: Predicate
    right: Predicate

    def mask(self, data: Dataset) -> np.ndarray:
        return self.left.mask(data) & self.right.mask(data)

    def cache_key(self) -> tuple:
        return ("and", self.left.cache_key(), self.right.cache_key())

    def __str__(self) -> str:
        return f"({self.left} AND {self.right})"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction."""

    left: Predicate
    right: Predicate

    def mask(self, data: Dataset) -> np.ndarray:
        return self.left.mask(data) | self.right.mask(data)

    def cache_key(self) -> tuple:
        return ("or", self.left.cache_key(), self.right.cache_key())

    def __str__(self) -> str:
        return f"({self.left} OR {self.right})"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation."""

    operand: Predicate

    def mask(self, data: Dataset) -> np.ndarray:
        return ~self.operand.mask(data)

    def cache_key(self) -> tuple:
        return ("not", self.operand.cache_key())

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class Query:
    """An aggregate query: ``SELECT agg(column) WHERE predicate``."""

    aggregate: Aggregate
    column: str | None
    predicate: Predicate

    def __post_init__(self):
        if self.aggregate is not Aggregate.COUNT and self.column is None:
            raise ValueError(f"{self.aggregate.value} requires a column")

    def query_set(self, data: Dataset) -> np.ndarray:
        """Indices of the records the predicate selects."""
        return np.flatnonzero(self.predicate.mask(data))

    def evaluate(self, data: Dataset) -> float:
        """True (unprotected) answer on *data*."""
        return self.evaluate_masked(data, self.predicate.mask(data))

    def evaluate_masked(self, data: Dataset, mask: np.ndarray) -> float:
        """Like :meth:`evaluate` but on an already-computed predicate mask.

        The engine's mask cache evaluates each unique predicate once per
        dataset; this entry point lets it reuse that mask for the answer.
        """
        if self.aggregate is Aggregate.COUNT:
            return float(mask.sum())
        values = data.column(self.column)[mask]
        if values.size == 0:
            return float("nan")
        values = values.astype(np.float64)
        if self.aggregate is Aggregate.SUM:
            return float(values.sum())
        if self.aggregate is Aggregate.AVG:
            return float(values.mean())
        if self.aggregate is Aggregate.MIN:
            return float(values.min())
        if self.aggregate is Aggregate.MAX:
            return float(values.max())
        if self.aggregate is Aggregate.VARIANCE:
            return float(values.var())
        if self.aggregate is Aggregate.STDDEV:
            return float(values.std())
        return float(np.median(values))

    def __str__(self) -> str:
        target = "*" if self.column is None else self.column
        where = "" if isinstance(self.predicate, TruePredicate) else f" WHERE {self.predicate}"
        return f"SELECT {self.aggregate.value}({target}){where}"
