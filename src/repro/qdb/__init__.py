"""Interactive statistical databases: query language, policies, trackers."""

from .engine import (
    Answer,
    OverlapControl,
    CamouflageIntervals,
    LogEntry,
    NoisePerturbation,
    ProtectionPolicy,
    QuerySetSizeControl,
    RandomSampleQueries,
    StatisticalDatabase,
    SumAuditPolicy,
)
from .parser import ParseError, parse_predicate, parse_query
from .tabular import (
    FrequencyTable,
    margin_reconstruction_attack,
    protect_table,
)
from .query import (
    Aggregate,
    And,
    Comparison,
    Not,
    Or,
    Predicate,
    Query,
    TruePredicate,
)
from .tracker import (
    GeneralTracker,
    TrackerResult,
    find_general_tracker,
    identifying_predicate,
    split_predicate,
    tracker_attack,
    tracker_success_rate,
)

__all__ = [
    "Aggregate",
    "And",
    "Answer",
    "CamouflageIntervals",
    "Comparison",
    "FrequencyTable",
    "LogEntry",
    "GeneralTracker",
    "NoisePerturbation",
    "Not",
    "Or",
    "OverlapControl",
    "ParseError",
    "Predicate",
    "ProtectionPolicy",
    "Query",
    "QuerySetSizeControl",
    "RandomSampleQueries",
    "StatisticalDatabase",
    "SumAuditPolicy",
    "TrackerResult",
    "TruePredicate",
    "find_general_tracker",
    "identifying_predicate",
    "margin_reconstruction_attack",
    "parse_predicate",
    "parse_query",
    "protect_table",
    "split_predicate",
    "tracker_attack",
    "tracker_success_rate",
]
