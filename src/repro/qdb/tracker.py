"""The Schlörer tracker attack [22].

Query-set-size control refuses queries isolating few records, but if a
predicate C = C1 AND C2 uniquely identifies a target, the attacker asks
two *large* legal queries instead:

    q(C1)                — the padding set
    q(C1 AND NOT C2)     — the individual tracker T

and infers q(C) = q(C1) - q(T).  With COUNT confirming |C| = 1, a SUM
query pair discloses the target's confidential value exactly — the attack
that makes SDC of interactive databases "known to be difficult since the
1980s" (paper, Section 3).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..data.table import Dataset
from .engine import StatisticalDatabase
from .query import Aggregate, Comparison, Not, Predicate, Query


@dataclass(frozen=True)
class TrackerResult:
    """Outcome of a tracker attack against one target."""

    succeeded: bool
    inferred_count: float | None
    inferred_value: float | None
    true_value: float | None
    queries_asked: int
    refusals: int
    detail: str = ""

    @property
    def exact(self) -> bool:
        """True when the inferred value matches the truth exactly."""
        return (
            self.succeeded
            and self.inferred_value is not None
            and self.true_value is not None
            and abs(self.inferred_value - self.true_value) < 1e-6
        )


def identifying_predicate(
    data: Dataset, target_index: int, columns: Sequence[str]
) -> Predicate:
    """Conjunction of equalities pinning the target's values on *columns*."""
    predicate: Predicate | None = None
    for name in columns:
        value = data.column(name)[target_index]
        value = float(value) if data.is_numeric(name) else value
        comparison = Comparison(name, "=", value)
        predicate = comparison if predicate is None else predicate & comparison
    if predicate is None:
        raise ValueError("need at least one identifying column")
    return predicate


def split_predicate(
    data: Dataset, target_index: int, columns: Sequence[str]
) -> tuple[Predicate, Predicate]:
    """Split the identifying conjunction into (C1, C2) with C1 the first
    comparison and C2 the rest (Schlörer's individual-tracker split)."""
    if len(columns) < 2:
        raise ValueError("tracker split needs at least two identifying columns")
    c1 = identifying_predicate(data, target_index, columns[:1])
    c2 = identifying_predicate(data, target_index, columns[1:])
    return c1, c2


def tracker_attack(
    db: StatisticalDatabase,
    data: Dataset,
    target_index: int,
    identifying_columns: Sequence[str],
    value_column: str,
) -> TrackerResult:
    """Run the individual tracker against *db* for one target record.

    ``data`` is the attacker's *knowledge of the schema and the target's
    key attributes only* (we pass the dataset for convenience of looking up
    the target's quasi-identifier values; confidential values are read only
    to verify success, never used by the attack).
    """
    c1, c2 = split_predicate(db._data, target_index, identifying_columns)
    tracker = c1 & Not(c2)
    queries = 0
    refusals = 0

    def ask_pair(aggregate: Aggregate, column: str | None,
                 first: Predicate, second: Predicate):
        # The attack always issues the padding/tracker queries as a pair,
        # so they go through the batched workload API (C1 is shared
        # between the two predicates and hits the engine's mask cache).
        nonlocal queries, refusals
        queries += 2
        answers = db.ask_batch([
            Query(aggregate, column, first),
            Query(aggregate, column, second),
        ])
        values = []
        for answer in answers:
            if answer.refused or answer.value is None:
                refusals += 1
                values.append(None)
            else:
                values.append(answer.value)
        return values[0], values[1]

    count_c1, count_t = ask_pair(Aggregate.COUNT, None, c1, tracker)
    if count_c1 is None or count_t is None:
        return TrackerResult(
            False, None, None, None, queries, refusals,
            detail="padding or tracker COUNT refused",
        )
    inferred_count = count_c1 - count_t
    if round(inferred_count) != 1:
        return TrackerResult(
            False, inferred_count, None, None, queries, refusals,
            detail=f"target not isolated (inferred count {inferred_count:g})",
        )
    sum_c1, sum_t = ask_pair(Aggregate.SUM, value_column, c1, tracker)
    if sum_c1 is None or sum_t is None:
        return TrackerResult(
            False, inferred_count, None, None, queries, refusals,
            detail="padding or tracker SUM refused",
        )
    inferred_value = sum_c1 - sum_t
    true_value = float(db._data.column(value_column)[target_index])
    return TrackerResult(
        succeeded=True,
        inferred_count=inferred_count,
        inferred_value=inferred_value,
        true_value=true_value,
        queries_asked=queries,
        refusals=refusals,
    )


class GeneralTracker:
    """Schlörer's *general* tracker [22].

    A predicate T with ``2k <= |T| <= n - 2k`` lets an attacker evaluate
    ANY count — even of predicates whose own query set would be refused —
    using only legal queries:

        count(C) = count(C OR T) + count(C OR NOT T) - n

    where n itself is obtained as ``count(T) + count(NOT T)``.  The same
    identity with SUM aggregates recovers any sum.
    """

    def __init__(self, db: StatisticalDatabase, tracker_predicate: Predicate):
        self._db = db
        self.tracker = tracker_predicate
        self.queries_asked = 0
        self.refused = False
        self._n = None

    def _ask(self, aggregate: Aggregate, column: str | None,
             predicate: Predicate) -> float | None:
        self.queries_asked += 1
        answer = self._db.ask(Query(aggregate, column, predicate))
        if answer.refused or answer.value is None:
            self.refused = True
            return None
        return answer.value

    def _ask_pair(self, aggregate: Aggregate, column: str | None,
                  first: Predicate, second: Predicate
                  ) -> tuple[float | None, float | None]:
        """One tracker query pair through the engine's batched workload API.

        The tracker identities always consume predicates two at a time
        (T / NOT T, C OR T / C OR NOT T), so the pair rides
        :meth:`~repro.qdb.engine.StatisticalDatabase.ask_batch`: the
        shared sub-predicates hit the engine's mask cache and the answer
        sequence is identical to two sequential asks.
        """
        self.queries_asked += 2
        answers = self._db.ask_batch([
            Query(aggregate, column, first),
            Query(aggregate, column, second),
        ])
        values: list[float | None] = []
        for answer in answers:
            if answer.refused or answer.value is None:
                self.refused = True
                values.append(None)
            else:
                values.append(answer.value)
        return values[0], values[1]

    def population_size(self) -> float | None:
        """n = count(T) + count(NOT T), via two legal queries."""
        if self._n is None:
            t, not_t = self._ask_pair(
                Aggregate.COUNT, None, self.tracker, Not(self.tracker)
            )
            if t is None or not_t is None:
                return None
            self._n = t + not_t
        return self._n

    def count(self, predicate: Predicate) -> float | None:
        """Evaluate count(predicate) through the tracker identity."""
        n = self.population_size()
        if n is None:
            return None
        a, b = self._ask_pair(
            Aggregate.COUNT, None,
            predicate | self.tracker, predicate | Not(self.tracker),
        )
        if a is None or b is None:
            return None
        return a + b - n

    def sum(self, column: str, predicate: Predicate) -> float | None:
        """Evaluate sum(column, predicate) through the tracker identity."""
        t, not_t = self._ask_pair(
            Aggregate.SUM, column, self.tracker, Not(self.tracker)
        )
        if t is None or not_t is None:
            return None
        total = t + not_t
        a, b = self._ask_pair(
            Aggregate.SUM, column,
            predicate | self.tracker, predicate | Not(self.tracker),
        )
        if a is None or b is None:
            return None
        return a + b - total


def find_general_tracker(
    data: Dataset, db: StatisticalDatabase, k: int,
    candidate_columns: Sequence[str] | None = None,
) -> Predicate | None:
    """Search simple threshold predicates for a legal general tracker.

    Tries ``column <= median-ish`` cuts on numeric columns until one has a
    query set size in [2k, n - 2k].
    """
    import numpy as np

    columns = list(candidate_columns) if candidate_columns is not None else [
        c for c in data.column_names if data.is_numeric(c)
    ]
    n = data.n_rows
    for name in columns:
        values = np.unique(data.column(name))
        for value in values:
            predicate = Comparison(name, "<=", float(value))
            size = int(predicate.mask(data).sum())
            if 2 * k <= size <= n - 2 * k:
                return predicate
    return None


def tracker_success_rate(
    db_factory,
    data: Dataset,
    identifying_columns: Sequence[str],
    value_column: str,
    targets: Sequence[int],
    tolerance: float = 0.5,
) -> float:
    """Fraction of *targets* whose value a fresh tracker attack recovers.

    ``db_factory()`` must return a fresh database per target so stateful
    policies (auditing) start clean — the strongest setting for the
    defender.  ``tolerance`` is the absolute error under which a
    perturbation-protected answer still counts as disclosed.
    """
    if not targets:
        return 0.0
    hits = 0
    for target in targets:
        db = db_factory()
        result = tracker_attack(db, data, target, identifying_columns, value_column)
        if (
            result.succeeded
            and result.inferred_value is not None
            and abs(result.inferred_value - result.true_value) <= tolerance
        ):
            hits += 1
    return hits / len(targets)
