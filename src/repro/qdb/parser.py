"""A tiny SQL-ish parser for statistical queries.

Grammar (case-insensitive keywords)::

    query    := SELECT agg '(' target ')' [FROM name] [WHERE expr]
    agg      := COUNT | SUM | AVG | MIN | MAX | MEDIAN
    target   := '*' | identifier
    expr     := term (OR term)*
    term     := factor (AND factor)*
    factor   := NOT factor | '(' expr ')' | comparison
    comparison := identifier op literal
    op       := < | <= | > | >= | = | !=
    literal  := number | quoted string | bareword

Covers exactly the queries the paper writes out in Section 3, e.g.
``SELECT AVG(blood_pressure) FROM ds WHERE height < 165 AND weight > 105``.
"""

from __future__ import annotations

import re

from .query import (
    Aggregate,
    Comparison,
    Not,
    Predicate,
    Query,
    TruePredicate,
)

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<op><=|>=|!=|<|>|=)"
    r"|(?P<punct>[(),*])"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<string>'[^']*'|\"[^\"]*\")"
    r"|(?P<word>[A-Za-z_][A-Za-z_0-9]*))"
)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "OR", "NOT"}
_AGGREGATES = {a.value for a in Aggregate}


class ParseError(ValueError):
    """Raised for malformed query strings."""


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize near {remainder[:20]!r}")
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "word" and value.upper() in _KEYWORDS | _AGGREGATES:
            tokens.append(("keyword", value.upper()))
        else:
            tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> tuple[str, str] | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> str:
        token = self._next()
        if token[0] != kind or (value is not None and token[1] != value):
            raise ParseError(f"expected {value or kind}, got {token[1]!r}")
        return token[1]

    def parse_query(self) -> Query:
        self._expect("keyword", "SELECT")
        agg_name = self._expect("keyword")
        if agg_name not in _AGGREGATES:
            raise ParseError(f"unknown aggregate {agg_name!r}")
        aggregate = Aggregate(agg_name)
        self._expect("punct", "(")
        token = self._next()
        if token == ("punct", "*"):
            column = None
        elif token[0] == "word":
            column = token[1]
        else:
            raise ParseError(f"expected column or *, got {token[1]!r}")
        self._expect("punct", ")")
        # Optional FROM <name> (the table name is cosmetic; the engine holds
        # exactly one dataset).
        if self._peek() == ("keyword", "FROM"):
            self._next()
            self._expect("word")
        predicate: Predicate = TruePredicate()
        if self._peek() == ("keyword", "WHERE"):
            self._next()
            predicate = self.parse_expr()
        if self._peek() is not None:
            raise ParseError(f"trailing tokens from {self._peek()[1]!r}")
        return Query(aggregate, column, predicate)

    def parse_expr(self) -> Predicate:
        node = self.parse_term()
        while self._peek() == ("keyword", "OR"):
            self._next()
            node = node | self.parse_term()
        return node

    def parse_term(self) -> Predicate:
        node = self.parse_factor()
        while self._peek() == ("keyword", "AND"):
            self._next()
            node = node & self.parse_factor()
        return node

    def parse_factor(self) -> Predicate:
        token = self._peek()
        if token == ("keyword", "NOT"):
            self._next()
            return Not(self.parse_factor())
        if token == ("punct", "("):
            self._next()
            node = self.parse_expr()
            self._expect("punct", ")")
            return node
        return self.parse_comparison()

    def parse_comparison(self) -> Predicate:
        column = self._expect("word")
        op = self._expect("op")
        kind, raw = self._next()
        if kind == "number":
            value: object = float(raw)
        elif kind == "string":
            value = raw[1:-1]
        elif kind == "word":
            value = raw
        else:
            raise ParseError(f"expected literal, got {raw!r}")
        return Comparison(column, op, value)


def parse_query(text: str) -> Query:
    """Parse a query string into a :class:`~repro.qdb.query.Query`."""
    return _Parser(_tokenize(text)).parse_query()


def parse_predicate(text: str) -> Predicate:
    """Parse a bare predicate expression (the WHERE body)."""
    parser = _Parser(_tokenize(text))
    node = parser.parse_expr()
    if parser._peek() is not None:
        raise ParseError("trailing tokens in predicate")
    return node
