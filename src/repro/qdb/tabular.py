"""Tabular-data SDC: frequency tables with cell suppression.

The other half of the SDC handbook [17]: statistical offices publish
*frequency tables* (counts cross-classified by two categorical
attributes) with marginal totals.  Small cells identify respondents, so
they are *primarily suppressed*; but a row or column with a single
suppressed cell can be recovered exactly from its margin, so
*complementary suppression* must blank additional cells until no
suppressed cell is linearly deducible.

:func:`margin_reconstruction_attack` implements the deduction an intruder
would run, and is used both to drive complementary suppression and to
demonstrate (in tests and benches) why primary suppression alone fails.
"""

from __future__ import annotations


from dataclasses import dataclass, field

import numpy as np

from ..data.table import Dataset


@dataclass
class FrequencyTable:
    """A two-way frequency table with margins.

    ``cells[i][j]`` is the count for (row_values[i], col_values[j]);
    ``None`` marks a suppressed cell in the published view.
    """

    row_attribute: str
    col_attribute: str
    row_values: tuple[str, ...]
    col_values: tuple[str, ...]
    counts: np.ndarray
    suppressed: set[tuple[int, int]] = field(default_factory=set)

    @classmethod
    def from_microdata(
        cls, data: Dataset, row_attribute: str, col_attribute: str
    ) -> "FrequencyTable":
        """Cross-tabulate two categorical attributes."""
        rows = tuple(sorted({str(v) for v in data.column(row_attribute)}))
        cols = tuple(sorted({str(v) for v in data.column(col_attribute)}))
        counts = np.zeros((len(rows), len(cols)), dtype=np.int64)
        r_index = {v: i for i, v in enumerate(rows)}
        c_index = {v: j for j, v in enumerate(cols)}
        row_col = data.column(row_attribute)
        col_col = data.column(col_attribute)
        for i in range(data.n_rows):
            counts[r_index[str(row_col[i])], c_index[str(col_col[i])]] += 1
        return cls(row_attribute, col_attribute, rows, cols, counts)

    # -- published view ----------------------------------------------------
    @property
    def row_margins(self) -> np.ndarray:
        """Published row totals (margins are always exact)."""
        return self.counts.sum(axis=1)

    @property
    def col_margins(self) -> np.ndarray:
        """Published column totals."""
        return self.counts.sum(axis=0)

    def published_cell(self, i: int, j: int) -> int | None:
        """The value a reader of the published table sees."""
        if (i, j) in self.suppressed:
            return None
        return int(self.counts[i, j])

    def published(self) -> list[list[int | None]]:
        """The full published grid."""
        return [
            [self.published_cell(i, j) for j in range(len(self.col_values))]
            for i in range(len(self.row_values))
        ]

    # -- suppression --------------------------------------------------------
    def primary_suppress(self, threshold: int) -> set[tuple[int, int]]:
        """Suppress every non-zero cell below *threshold*; returns them."""
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        primary = {
            (i, j)
            for i in range(len(self.row_values))
            for j in range(len(self.col_values))
            if 0 < self.counts[i, j] < threshold
        }
        self.suppressed |= primary
        return primary

    def complementary_suppress(self) -> set[tuple[int, int]]:
        """Add complementary suppressions until nothing is deducible.

        Greedy: while the margin attack recovers some suppressed cell,
        suppress the smallest unsuppressed non-zero cell sharing its row
        (or column), which breaks the single-unknown equation.
        """
        added: set[tuple[int, int]] = set()
        while True:
            recovered = margin_reconstruction_attack(self)
            if not recovered:
                return added
            (i, j), _value = next(iter(recovered.items()))
            candidates = [
                (i, jj) for jj in range(len(self.col_values))
                if (i, jj) not in self.suppressed and self.counts[i, jj] > 0
            ] or [
                (ii, j) for ii in range(len(self.row_values))
                if (ii, j) not in self.suppressed and self.counts[ii, j] > 0
            ]
            if not candidates:
                # Only zero cells remain on both lines; suppressing one
                # still breaks the single-unknown equation (the attacker
                # cannot assume a suppressed cell is zero).
                candidates = [
                    (i, jj) for jj in range(len(self.col_values))
                    if (i, jj) not in self.suppressed
                ] + [
                    (ii, j) for ii in range(len(self.row_values))
                    if (ii, j) not in self.suppressed
                ]
            if not candidates:
                # The whole row and column are already suppressed yet the
                # cell stays deducible: only possible in degenerate 1-line
                # tables where the margin itself is the cell — unprotectable.
                return added
            extra = min(candidates, key=lambda c: self.counts[c])
            self.suppressed.add(extra)
            added.add(extra)

    def format(self) -> str:
        """Render the published table with margins ('x' = suppressed)."""
        width = max(6, max(len(v) for v in self.col_values) + 1)
        header = " " * 12 + "".join(f"{v:>{width}s}" for v in self.col_values)
        lines = [header + f"{'total':>{width}s}"]
        for i, rv in enumerate(self.row_values):
            cells = "".join(
                f"{'x':>{width}s}" if (i, j) in self.suppressed
                else f"{int(self.counts[i, j]):>{width}d}"
                for j in range(len(self.col_values))
            )
            lines.append(f"{rv:12s}" + cells + f"{int(self.row_margins[i]):>{width}d}")
        totals = "".join(
            f"{int(v):>{width}d}" for v in self.col_margins
        )
        lines.append(f"{'total':12s}" + totals + f"{int(self.counts.sum()):>{width}d}")
        return "\n".join(lines)


def margin_reconstruction_attack(
    table: FrequencyTable,
) -> dict[tuple[int, int], int]:
    """Recover suppressed cells from published cells and margins.

    Iteratively solves every row/column equation with a single unknown —
    exactly what any reader of the published table can do.  Returns the
    recovered cells and their exact values.
    """
    recovered: dict[tuple[int, int], int] = {}
    unknown = set(table.suppressed)
    progress = True
    while progress:
        progress = False
        for i in range(len(table.row_values)):
            missing = [(i, j) for j in range(len(table.col_values))
                       if (i, j) in unknown]
            if len(missing) == 1:
                (ri, rj) = missing[0]
                known = sum(
                    int(table.counts[i, j])
                    for j in range(len(table.col_values))
                    if (i, j) not in unknown
                )
                recovered[(ri, rj)] = int(table.row_margins[i]) - known
                unknown.remove((ri, rj))
                progress = True
        for j in range(len(table.col_values)):
            missing = [(i, j) for i in range(len(table.row_values))
                       if (i, j) in unknown]
            if len(missing) == 1:
                (ri, rj) = missing[0]
                known = sum(
                    int(table.counts[i, j])
                    for i in range(len(table.row_values))
                    if (i, j) not in unknown
                )
                recovered[(ri, rj)] = int(table.col_margins[j]) - known
                unknown.remove((ri, rj))
                progress = True
    return recovered


def protect_table(
    data: Dataset,
    row_attribute: str,
    col_attribute: str,
    threshold: int = 3,
) -> FrequencyTable:
    """Build, primarily suppress and complementarily protect a table."""
    table = FrequencyTable.from_microdata(data, row_attribute, col_attribute)
    table.primary_suppress(threshold)
    table.complementary_suppress()
    return table
