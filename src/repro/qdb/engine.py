"""The interactive statistical database engine with protection policies.

The paper's Section 3 scenario: users submit statistical queries; the data
owner, who *sees every query* (hence no user privacy), applies inference
controls — restriction, perturbation or interval answers, the three
strategies the paper cites ([7] auditing, [14] noise, [16] camouflage) —
to protect respondents.

Policies are composable; each query passes every policy's review (which may
refuse) and then its transform (which may perturb or widen the answer).
"""

from __future__ import annotations

import abc
import os
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..data.table import Dataset
from ..faults.errors import BackendUnavailable
from ..kernels import (
    MemmapWordLog,
    RamWordLog,
    WordLogStore,
    pack_bool_rows,
    words_per_bits,
    words_to_packbits,
)
from ..sdc.base import resolve_rng
from ..telemetry import instrument as tele
from ..telemetry import requesttrace
from ..telemetry.registry import MetricsRegistry
from .parser import parse_query
from .query import Aggregate, And, Not, Or, Query, TruePredicate


@lru_cache(maxsize=4096)
def _span_texts(query: Query) -> tuple[str, str, str]:
    """(query text, predicate text, aggregate name) for a ``qdb.query`` span.

    The predicate is rendered once and reused in both attributes: the
    ``predicate`` attribute is what the observatory's tracker-probe
    detector matches on (a WHERE-less query contributes the empty
    string), and the full query text is assembled around it rather than
    paying a second AST walk through ``str(query)``.  Queries are frozen
    dataclasses and real workloads repeat them (tracker sweeps, batch
    replays, cached predicates), so the whole rendering — including the
    enum-descriptor walk for the aggregate name — is memoized; the cache
    is bounded and keeps only strings alive, and it exists purely for
    the enabled-telemetry path (the disabled hot path never calls this).
    """
    if isinstance(query.predicate, TruePredicate):
        predicate_text = ""
        where = ""
    else:
        predicate_text = str(query.predicate)
        where = f" WHERE {predicate_text}"
    target = "*" if query.column is None else query.column
    aggregate = query.aggregate.value
    return f"SELECT {aggregate}({target}){where}", predicate_text, aggregate


def _env_int(name: str, *, minimum: int = 1) -> int | None:
    """A validated positive integer from the environment, or None if unset.

    Misconfiguration fails loudly at construction: a typo'd chunk size or
    RAM budget silently falling back to a default is exactly the kind of
    drift a perf harness cannot see.
    """
    env = os.environ.get(name, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer >= {minimum}, got {env!r}"
        ) from None
    if value < minimum:
        raise ValueError(f"{name} must be an integer >= {minimum}, got {env!r}")
    return value


def _history_store_from_env() -> str:
    """The ``REPRO_QDB_HISTORY_STORE`` selection ('ram' default), validated."""
    kind = os.environ.get("REPRO_QDB_HISTORY_STORE", "").strip().lower()
    if not kind:
        return "ram"
    if kind not in ("ram", "memmap"):
        raise ValueError(
            f"REPRO_QDB_HISTORY_STORE must be 'ram' or 'memmap', got {kind!r}"
        )
    return kind


def _query_span_attrs(query, mask, depth, cache_hit, answer,
                      plan_stats=None, session=None, trace_id=None) -> dict:
    """Render a ``qdb.query`` span's attribute dict.

    This runs *deferred* (see :meth:`StatisticalDatabase._process`): the
    span parks a closure over these arguments and only calls it when some
    consumer — the trace buffer on read, a JSONL sink, an observatory
    subscriber — actually needs the record.  A buffered-only telemetry
    session therefore never pays for text rendering or the popcount on
    the per-query hot path.  ``answer`` is None when the decision raised
    before completing, matching the eager layout (base attributes only,
    plus the span's automatic ``error`` key).
    """
    query_text, predicate_text, aggregate = _span_texts(query)
    attrs = {
        "query": query_text,
        "predicate": predicate_text,
        "aggregate": aggregate,
        "query_set_size": int(np.count_nonzero(mask)),
        "history_depth": depth,
        "cache_hit": cache_hit,
    }
    if session is not None:
        attrs["session"] = session
    if trace_id is not None:
        attrs["trace_id"] = trace_id
    if answer is not None:
        attrs["refused"] = answer.refused
        attrs["degraded"] = isinstance(answer, Degraded)
        if answer.refused and answer.reason:
            policy_name, _, reason = answer.reason.partition(": ")
            attrs["policy"] = policy_name
            attrs["reason"] = reason
    if plan_stats:
        attrs.update(plan_stats)
    return attrs


@dataclass(frozen=True)
class Answer:
    """The database's reply to one query."""

    query: Query
    value: float | None = None
    interval: tuple[float, float] | None = None
    refused: bool = False
    reason: str | None = None

    @property
    def ok(self) -> bool:
        """True when the query was answered (point or interval)."""
        return not self.refused


@dataclass(frozen=True)
class Refusal(Answer):
    """A typed refusal — the engine declined to answer.

    Policy refusals carry ``reason = "<policy>: <why>"``; infrastructure
    refusals (every backend replica down) carry ``reason =
    "backend: <why>"`` so trace forensics can tell a privacy decision
    from an availability failure.  ``refused`` is always True.
    """

    refused: bool = True


@dataclass(frozen=True)
class Degraded(Answer):
    """An answered query that was served in a degraded mode.

    The value is correct — a storage replica failed and another served
    the read bit-identically — but the redundancy margin shrank, and
    operators should know.  ``detail`` says what degraded; the policy
    pipeline's output is otherwise untouched.
    """

    detail: str | None = None


@dataclass
class LogEntry:
    """Audit-trail record of an answered or refused query."""

    query: Query
    mask: np.ndarray
    answered: bool
    value: float | None


class PackedMaskLog:
    """Answered-query masks as one incrementally grown packed bit matrix.

    Each answered query set over ``n`` records occupies ``ceil(n / 64)``
    ``uint64`` words of one row, in the kernel tier's little-bit-order
    layout (record ``i`` lives at bit ``i & 63`` of word ``i >> 6``).
    Rows live in an amortized-doubling buffer, so appending a mask is
    O(n / 64) and the whole history stays contiguous —
    :class:`OverlapControl` intersects a candidate against *every*
    historical query set with one AND + word popcount pass on the active
    kernel backend instead of a Python loop over full boolean arrays.

    Word rows live in a pluggable :class:`~repro.kernels.WordLogStore`
    (``store="ram"``, the default, or ``store="memmap"`` for histories
    larger than RAM, scanned under an optional byte ``ram_budget``); the
    per-process default comes from ``REPRO_QDB_HISTORY_STORE`` /
    ``REPRO_QDB_HISTORY_BUDGET``, both validated loudly.  Popcounts stay
    in a small RAM array either way, and decisions are store-invariant.

    :attr:`rows` still exposes the history in the historical
    ``np.packbits`` byte layout for inspection and tests; the word matrix
    is internal.
    """

    def __init__(self, n_records: int, initial_capacity: int = 64,
                 store: str | WordLogStore | None = None,
                 ram_budget: int | None = None):
        self.n_records = n_records
        self.n_bytes = (n_records + 7) // 8
        self.n_words = words_per_bits(max(1, n_records))
        if store is None:
            store = _history_store_from_env()
        if isinstance(store, str):
            kind = store.strip().lower()
            if ram_budget is None:
                ram_budget = _env_int("REPRO_QDB_HISTORY_BUDGET")
            if kind == "ram":
                store = RamWordLog(self.n_words, initial_capacity)
            elif kind == "memmap":
                store = MemmapWordLog(self.n_words, initial_capacity,
                                      ram_budget=ram_budget)
            else:
                raise ValueError(
                    f"history store must be 'ram' or 'memmap', got {store!r}"
                )
        self._store = store
        self.store_kind = type(store).__name__
        self._counts = np.zeros(max(1, initial_capacity), dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def rows(self) -> np.ndarray:
        """Packed rows appended so far, oldest first, in the historical
        ``np.packbits`` uint8 layout."""
        return words_to_packbits(
            np.asarray(self._store.rows), self.n_records
        )

    @property
    def counts(self) -> np.ndarray:
        """Query-set sizes (popcounts) of the appended masks."""
        return self._counts[: self._size]

    def pack(self, mask: np.ndarray) -> np.ndarray:
        """Pack a boolean mask into this log's word-row layout."""
        return pack_bool_rows(
            np.asarray(mask, dtype=bool).reshape(1, -1)
        )[0]

    def append(self, mask: np.ndarray) -> None:
        """Append one answered query-set mask (boolean, length n_records)."""
        if self._size == self._counts.shape[0]:
            self._counts = np.concatenate(
                [self._counts, np.zeros_like(self._counts)]
            )
        self._store.append(self.pack(mask))
        self._counts[self._size] = int(np.count_nonzero(mask))
        self._size += 1

    def overlaps(self, packed_candidate: np.ndarray,
                 start: int = 0, stop: int | None = None) -> np.ndarray:
        """|Q_i ∩ C| for the logged masks in ``[start, stop)``."""
        return self._store.overlap_counts(
            packed_candidate, start, self._size if stop is None else stop
        )


class QueryHistory(list):
    """The engine's audit trail: a ``list[LogEntry]`` plus packed state.

    Iteration, indexing and ``len`` behave exactly like the seed's plain
    list, so existing policies and tests are untouched; policies that know
    about the packed representation (``OverlapControl``) pick it up via
    the ``answered_masks`` attribute and skip the per-entry Python loop.
    """

    def __init__(self, n_records: int,
                 store: str | WordLogStore | None = None,
                 ram_budget: int | None = None):
        super().__init__()
        self.answered_masks = PackedMaskLog(
            n_records, store=store, ram_budget=ram_budget
        )

    def record(self, entry: LogEntry) -> None:
        """Append an entry, mirroring answered masks into the packed log."""
        self.append(entry)
        if entry.answered:
            self.answered_masks.append(entry.mask)


class ProtectionPolicy(abc.ABC):
    """One inference-control mechanism.

    Threat model (shared by every policy): the adversary is the
    *querying user*, who issues adaptively chosen aggregate queries to
    isolate individual respondents; the engine itself is trusted and
    evaluates on plaintext (which is why the paper scores query control
    as offering no user privacy).  Failure behaviour: policies never
    raise on privacy grounds — :meth:`review` returns a refusal reason
    (surfaced as a refused :class:`Answer` and audited in the history)
    and :meth:`transform` only perturbs or widens an already-permitted
    answer.
    """

    name: str = "abstract"

    def review(
        self,
        query: Query,
        mask: np.ndarray,
        data: Dataset,
        history: list[LogEntry],
    ) -> str | None:
        """Return a refusal reason, or None to allow the query."""
        return None

    def transform(
        self,
        query: Query,
        answer: Answer,
        mask: np.ndarray,
        data: Dataset,
        rng: np.random.Generator,
    ) -> Answer:
        """Optionally modify the outgoing answer."""
        return answer


class StatisticalDatabase:
    """An interactively queryable database guarded by policies.

    Parameters
    ----------
    data:
        The underlying microdata (never released directly).
    policies:
        Ordered protection policies.  An empty list reproduces the paper's
        unprotected baseline (no respondent, no user privacy).
    seed:
        Seed for stochastic policies (perturbation).
    use_plans:
        Compile queries through the plan IR + optimizer + plan cache
        (:mod:`repro.plan`) — the default, decision-identical to the
        legacy per-policy pipeline.  ``False`` pins the legacy path
        (reference benchmarks, equivalence tests).
    history_store:
        Where the packed answered-mask log lives: ``"ram"`` (default)
        or ``"memmap"`` for out-of-core histories; ``None`` defers to
        ``REPRO_QDB_HISTORY_STORE``.
    """

    def __init__(
        self,
        data: Dataset,
        policies: list[ProtectionPolicy] | None = None,
        seed: int | None = 0,
        use_plans: bool = True,
        history_store: str | None = None,
    ):
        self._data = data
        self.policies = list(policies or [])
        self._rng = resolve_rng(seed)
        self.history: QueryHistory = QueryHistory(
            data.n_rows, store=history_store
        )
        self._mask_cache: dict[tuple, np.ndarray] = {}
        # Always-on per-instance accounting on the telemetry counters API
        # (the seed's plain-int attributes survive as read-through
        # properties below).  The registry aggregates into the process
        # registry for dashboards and benchmark snapshots.
        self.metrics = MetricsRegistry(owner="qdb")
        self._c_asked = self.metrics.counter("qdb.queries_asked")
        self._c_refused = self.metrics.counter("qdb.queries_refused")
        self._c_cache_hits = self.metrics.counter("qdb.mask_cache_hits")
        self._c_cache_misses = self.metrics.counter("qdb.mask_cache_misses")
        self._c_backend_refusals = self.metrics.counter(
            "qdb.backend_refusals"
        )
        self._c_degraded = self.metrics.counter("qdb.degraded_answers")
        self._c_plan_hits = self.metrics.counter("qdb.plan_cache_hits")
        self._c_plan_misses = self.metrics.counter("qdb.plan_cache_misses")
        self._c_fused_rows_skipped = self.metrics.counter(
            "qdb.fused_rows_skipped"
        )
        # Per-thread session label: concurrent serving threads each tag
        # their own spans without seeing each other's labels.
        self._session_ctx = threading.local()
        if use_plans:
            from ..plan import QueryPlanner  # lazy: breaks the import cycle

            self._planner = QueryPlanner(self)
        else:
            self._planner = None

    @property
    def n_records(self) -> int:
        """Number of records behind the interface."""
        return self._data.n_rows

    @property
    def session_label(self) -> str | None:
        """The calling thread's active session label (None outside one)."""
        return getattr(self._session_ctx, "label", None)

    @contextmanager
    def session(self, label: str):
        """Tag this thread's queries with a session label.

        Every ``qdb.query`` / ``qdb.ask_batch`` span opened by the
        calling thread inside the block carries ``session=label``, which
        is what the observatory service's per-session timelines group
        by.  Labels are per-thread and nestable (the inner label wins,
        the outer one is restored on exit); they have no effect when
        telemetry is disabled.

        >>> from repro.data.synthetic import patients
        >>> db = StatisticalDatabase(patients(40, seed=0))
        >>> with db.session("alice"):
        ...     db.session_label
        'alice'
        >>> db.session_label is None
        True
        """
        previous = self.session_label
        self._session_ctx.label = label
        try:
            yield self
        finally:
            self._session_ctx.label = previous

    @property
    def queries_asked(self) -> int:
        """Total queries submitted (read-through to the counter)."""
        return self._c_asked.value

    @property
    def queries_refused(self) -> int:
        """Total queries refused (read-through to the counter)."""
        return self._c_refused.value

    @property
    def mask_cache_hits(self) -> int:
        """Predicate-mask cache hits (read-through to the counter)."""
        return self._c_cache_hits.value

    @property
    def mask_cache_misses(self) -> int:
        """Predicate-mask cache misses (read-through to the counter)."""
        return self._c_cache_misses.value

    @property
    def backend_refusals(self) -> int:
        """Queries refused because the storage backend was unavailable."""
        return self._c_backend_refusals.value

    @property
    def plan_cache_hits(self) -> int:
        """Plan-cache hits (read-through to the counter)."""
        return self._c_plan_hits.value

    @property
    def plan_cache_misses(self) -> int:
        """Plan-cache misses (read-through to the counter)."""
        return self._c_plan_misses.value

    @property
    def fused_rows_skipped(self) -> int:
        """History rows skipped by incremental fused overlap scans."""
        return self._c_fused_rows_skipped.value

    @property
    def degraded_answers(self) -> int:
        """Answers served after a backend replica failover."""
        return self._c_degraded.value

    def predicate_mask(self, predicate) -> np.ndarray:
        """Memoized predicate mask (read-only; one walk per unique key).

        Memoization is per AST *node*, keyed on
        :meth:`~repro.qdb.query.Predicate.cache_key`: repeated workload
        queries hit at the root, while tracker pairs such as ``C OR T`` /
        ``C OR NOT T`` share the cached ``T`` sub-mask even though their
        roots differ.  Hit/miss totals are exposed as
        ``mask_cache_hits`` / ``mask_cache_misses`` for the benchmarks.
        """
        key = predicate.cache_key()
        mask = self._mask_cache.get(key)
        if mask is not None:
            self._c_cache_hits.inc()
            return mask
        self._c_cache_misses.inc()
        if isinstance(predicate, And):
            mask = self.predicate_mask(predicate.left) & self.predicate_mask(
                predicate.right
            )
        elif isinstance(predicate, Or):
            mask = self.predicate_mask(predicate.left) | self.predicate_mask(
                predicate.right
            )
        elif isinstance(predicate, Not):
            mask = ~self.predicate_mask(predicate.operand)
        else:
            mask = predicate.mask(self._data)
        mask.flags.writeable = False  # shared across history entries
        self._mask_cache[key] = mask
        return mask

    def _resolve_mask(
        self, query: Query
    ) -> tuple[np.ndarray | None, BackendUnavailable | None]:
        """Predicate mask, or the backend failure that prevented it."""
        try:
            return self.predicate_mask(query.predicate), None
        except BackendUnavailable as exc:
            return None, exc

    def _consume_degraded(self) -> bool:
        """Poll-and-clear the backend's failover flag (False if absent)."""
        consume = getattr(self._data, "consume_degraded", None)
        return bool(consume()) if consume is not None else False

    def _backend_refusal(
        self, query: Query, mask: np.ndarray | None, exc: BackendUnavailable
    ) -> Refusal:
        """Record and return a typed refusal for a backend blackout.

        Degrading gracefully instead of raising: the session stays alive,
        the refusal lands in the audit history (with an empty mask when
        the backend died before the mask existed), and the counters and
        ``faults.degrade`` telemetry emitted by the backend make the
        decision reconstructable from the trace.
        """
        self._c_refused.inc()
        self._c_backend_refusals.inc()
        self._consume_degraded()  # discard partial failover from failed read
        if mask is None:
            mask = np.zeros(self.n_records, dtype=bool)
        self.history.record(LogEntry(query, mask, False, None))
        return Refusal(query, reason=f"backend: {exc}")

    def _traced_mask_refusal(
        self, query: Query, exc: BackendUnavailable
    ) -> Refusal:
        """Backend refusal raised before a mask existed, as a traced span."""
        self._c_asked.inc()
        query_text, predicate_text, aggregate = _span_texts(query)
        session = self.session_label
        trace_id = requesttrace.pop_pending()
        with tele.span(
            "qdb.query",
            query=query_text,
            predicate=predicate_text,
            aggregate=aggregate,
            query_set_size=-1,
            history_depth=len(self.history),
            cache_hit=False,
        ) as span:
            if session is not None:
                span.set("session", session)
            if trace_id is not None:
                span.set("trace_id", trace_id)
            answer = self._backend_refusal(query, None, exc)
            span.set("refused", True)
            span.set("policy", "backend")
            span.set("reason", str(exc))
        tele.histogram("qdb.query_seconds").observe(span.duration)
        return answer

    def ask(self, query: Query | str) -> Answer:
        """Submit one query; returns an :class:`Answer`.

        Note the privacy model: the engine evaluates the query on plaintext
        data — the owner sees the query in full.  This is exactly why the
        paper scores query-controlled SDC as offering *no* user privacy.

        Failure behaviour: when the backing store is a
        :class:`~repro.faults.ReplicatedBackend` and every replica fails a
        read, the query returns a typed :class:`Refusal` (``reason``
        prefixed ``"backend:"``) instead of raising; a read served by
        failover returns a :class:`Degraded` answer with the correct
        value.  Plain :class:`Dataset` backends never take these paths.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if not tele.enabled():
            mask, exc = self._resolve_mask(query)
            if mask is None:
                self._c_asked.inc()
                return self._backend_refusal(query, None, exc)
            return self._process(query, mask)
        hits_before = self._c_cache_hits.value
        mask, exc = self._resolve_mask(query)
        if mask is None:
            return self._traced_mask_refusal(query, exc)
        return self._process(
            query, mask, cache_hit=self._c_cache_hits.value > hits_before
        )

    def ask_batch(self, queries: list[Query | str]) -> list[Answer]:
        """Submit a workload of queries; returns one :class:`Answer` each.

        Masks are resolved through the predicate cache before any query is
        processed, so a batch with repeated predicates (tracker sweeps,
        replayed logs) pays one vectorized mask pass per *unique*
        predicate.  Policy review/transform then runs in submission order
        against the live audit state, which makes the answer and refusal
        sequence — including ``queries_asked`` / ``queries_refused`` and
        the history — identical to issuing the same queries through
        sequential :meth:`ask` calls.
        """
        parsed = [
            parse_query(q) if isinstance(q, str) else q for q in queries
        ]
        if not tele.enabled():
            resolved = [self._resolve_mask(q) for q in parsed]
            answers = []
            for q, (mask, exc) in zip(parsed, resolved):
                if mask is None:
                    self._c_asked.inc()
                    answers.append(self._backend_refusal(q, None, exc))
                else:
                    answers.append(self._process(q, mask))
            return answers
        session = self.session_label
        with tele.span("qdb.ask_batch", n_queries=len(parsed)) as span:
            if session is not None:
                span.set("session", session)
            resolved = []
            cache_hits = []
            for q in parsed:
                hits_before = self._c_cache_hits.value
                resolved.append(self._resolve_mask(q))
                cache_hits.append(self._c_cache_hits.value > hits_before)
            answers = []
            # One registry lookup for the whole batch, not one per query.
            latency = tele.histogram("qdb.query_seconds")
            for q, (mask, exc), hit in zip(parsed, resolved, cache_hits):
                if mask is None:
                    answers.append(self._traced_mask_refusal(q, exc))
                else:
                    answers.append(
                        self._process(q, mask, cache_hit=hit, latency=latency)
                    )
            span.set("refused", sum(a.refused for a in answers))
        return answers

    def _process(
        self, query: Query, mask: np.ndarray, cache_hit: bool | None = None,
        latency=None,
    ) -> Answer:
        """Run one parsed query with its precomputed mask through policy.

        With telemetry enabled, the decision is wrapped in a ``qdb.query``
        span carrying the query text, query-set size, session depth,
        mask-cache outcome, and — on refusal — the refusing policy's name
        and reason; latency feeds the ``qdb.query_seconds`` histogram.
        The attributes are *deferred*: the span parks one closure and
        :func:`_query_span_attrs` renders the dict only when a trace
        consumer reads the record, which is what keeps a live session
        inside the <10% enabled-overhead benchmark gate.
        """
        if not tele.enabled():
            return self._decide(query, mask)
        depth = len(self.history)
        answer = None
        plan_stats: dict = {}
        session = self.session_label
        # The serving runtime queues one trace id per batched query; pop
        # ours (None outside the runtime) so the deferred attrs carry it.
        trace_id = requesttrace.pop_pending()
        with tele.span("qdb.query") as span:
            span.defer_attrs(
                lambda: _query_span_attrs(query, mask, depth, cache_hit,
                                          answer, plan_stats, session,
                                          trace_id)
            )
            answer = self._decide(query, mask)
            # Captured eagerly (the deferred closure may render much
            # later, after other queries overwrote the planner state).
            if self._planner is not None:
                plan_stats["plan_cached"] = self._planner.last_cached
                if self._planner.last_rows_skipped:
                    plan_stats["fused_rows_skipped"] = (
                        self._planner.last_rows_skipped
                    )
        if latency is None:
            latency = tele.histogram("qdb.query_seconds")
        latency.observe(span.duration)
        return answer

    def _decide(self, query: Query, mask: np.ndarray) -> Answer:
        """Decide one query: the plan executor, or the legacy pipeline."""
        if self._planner is not None:
            return self._planner.decide(query, mask)
        return self._decide_legacy(query, mask)

    def explain(self, query: Query | str) -> str:
        """Render *query*'s plan pre/post optimization without running it."""
        if isinstance(query, str):
            query = parse_query(query)
        planner = self._planner
        if planner is None:
            from ..plan import QueryPlanner

            planner = QueryPlanner(self, cache=False)
        return planner.explain(query)

    def _decide_legacy(self, query: Query, mask: np.ndarray) -> Answer:
        """The untraced per-policy pipeline (review -> evaluate -> transform).

        Kept verbatim as the plan path's reference: the equivalence
        suites replay identical workloads through both and require
        byte-identical decisions, and the ``ref_unfused_*`` benchmark
        kernels time it.
        """
        self._c_asked.inc()
        for policy in self.policies:
            reason = policy.review(query, mask, self._data, self.history)
            if reason is not None:
                self._c_refused.inc()
                self._consume_degraded()  # don't leak onto the next answer
                self.history.record(LogEntry(query, mask, False, None))
                return Answer(query, refused=True, reason=f"{policy.name}: {reason}")
        try:
            answer = Answer(query, value=query.evaluate_masked(self._data, mask))
            for policy in self.policies:
                answer = policy.transform(query, answer, mask, self._data, self._rng)
        except BackendUnavailable as exc:
            return self._backend_refusal(query, mask, exc)
        self.history.record(LogEntry(query, mask, True, answer.value))
        if self._consume_degraded():
            self._c_degraded.inc()
            answer = Degraded(
                answer.query, value=answer.value, interval=answer.interval,
                refused=answer.refused, reason=answer.reason,
                detail="storage replica failover during read",
            )
        return answer

    def true_answer(self, query: Query | str) -> float:
        """Evaluate without protection (test/bench oracle only)."""
        if isinstance(query, str):
            query = parse_query(query)
        return query.evaluate(self._data)


class QuerySetSizeControl(ProtectionPolicy):
    """Refuse queries whose query set is too small or too large.

    The classical first line of defence: |Q| must lie in [k, n - k].
    Schlörer [22] showed trackers defeat it — reproduced in
    :mod:`repro.qdb.tracker`: the threat model it actually resists is a
    *non-adaptive* user issuing isolating predicates directly.  Failure
    behaviour: pure refusal (review-only, never transforms an answer).
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.name = f"size-control(k={k})"

    def review(self, query, mask, data, history):
        size = int(mask.sum())
        if size < self.k:
            return f"query set too small ({size} < {self.k})"
        if size > data.n_rows - self.k:
            return f"query set too large ({size} > n - {self.k})"
        return None


class SumAuditPolicy(ProtectionPolicy):
    """Exact auditing for linear aggregates (Chin–Ozsoyoglu [7]).

    Maintains the subspace spanned by answered query-set indicator vectors;
    a new query is refused when answering it would make some individual
    record's value exactly deducible — i.e. when some unit vector e_i
    enters the row space of the answered-query matrix.

    VARIANCE/STDDEV answers reveal a *pair* of linear statistics (Σx and
    Σx² over the query set), so they are audited in the same basis: a
    variance query whose query set would make a record's (x, x²) pair
    deducible is refused like the equivalent SUM.

    Threat model: an adaptive user combining *exact* answers linearly —
    the strongest query-only adversary against unperturbed statistics;
    the audit assumes answers are exact, which is why the storage layer
    rejects corrupted replica reads rather than serving them (DESIGN.md
    §7).  Failure behaviour: pure refusal; audit state only ever grows
    with *answered* queries, so refusals never change future decisions.

    The basis is maintained *incrementally*: each candidate row is
    orthogonalized against the existing orthonormal basis with one
    (re-orthogonalized) Gram–Schmidt step — O(H·n) per query instead of
    re-factorizing the whole stacked history (O(H²·n)) in both ``review``
    and ``transform``.  The projection is computed once in ``review`` and
    the resulting direction is committed by ``transform`` when the query
    is answered, so the per-query linear-algebra work is done exactly
    once.  Decisions match the seed's full-QR formulation: a unit vector
    e_i lies in the prospective row space iff the basis columns' squared
    norms (tracked incrementally in ``_col_norms``) reach 1 at index i.
    """

    _LINEAR = (Aggregate.SUM, Aggregate.COUNT, Aggregate.AVG,
               Aggregate.VARIANCE, Aggregate.STDDEV)

    def __init__(self, tolerance: float = 1e-8):
        self.tolerance = tolerance
        self.name = "sum-audit"
        self._buffer: np.ndarray | None = None  # amortized-doubling rows
        self._rank = 0
        self._col_norms: np.ndarray | None = None  # Σ_r basis[r]² per column
        self._pending: tuple[np.ndarray, np.ndarray | None] | None = None

    @property
    def _basis(self) -> np.ndarray | None:
        """Orthonormal rows spanning the answered query-set indicators."""
        if self._rank == 0:
            return None
        return self._buffer[: self._rank]

    def _new_direction(self, mask: np.ndarray) -> np.ndarray | None:
        """Unit vector extending the basis to cover *mask*, or None.

        One classical-Gram–Schmidt projection, applied twice for the
        numerical robustness of the textbook "twice is enough" rule; the
        residual-norm threshold reproduces the seed's ``|diag(r)| >
        tolerance`` column-keep criterion.
        """
        residual = mask.astype(np.float64)
        basis = self._basis
        if basis is not None:
            residual = residual - basis.T @ (basis @ residual)
            residual = residual - basis.T @ (basis @ residual)
        norm = float(np.linalg.norm(residual))
        if norm <= self.tolerance:
            return None
        return residual / norm

    def _commit(self, direction: np.ndarray) -> None:
        """Append an orthonormal row and update the column-norm profile."""
        n = direction.shape[0]
        if self._buffer is None:
            self._buffer = np.zeros((16, n), dtype=np.float64)
            self._col_norms = np.zeros(n, dtype=np.float64)
        elif self._rank == self._buffer.shape[0]:
            self._buffer = np.vstack([self._buffer, np.zeros_like(self._buffer)])
        self._buffer[self._rank] = direction
        self._rank += 1
        self._col_norms += direction * direction

    def review(self, query, mask, data, history):
        if query.aggregate not in self._LINEAR:
            return None
        direction = self._new_direction(mask)
        # Share the projection with transform: keyed on the mask object so
        # a direct transform call with a different mask recomputes.
        self._pending = (mask, direction)
        if self._rank == 0 and direction is None:
            return None  # empty query set, empty basis: nothing disclosed
        proj_norms = (
            self._col_norms if self._col_norms is not None
            else np.zeros(mask.shape[0], dtype=np.float64)
        )
        if direction is not None:
            proj_norms = proj_norms + direction * direction
        # e_i lies in the prospective row space iff its projection has
        # norm 1.
        if bool(np.any(proj_norms >= 1.0 - self.tolerance)):
            return "answer would make an individual record deducible"
        return None

    def transform(self, query, answer, mask, data, rng):
        if answer.ok and query.aggregate in self._LINEAR:
            if self._pending is not None and self._pending[0] is mask:
                direction = self._pending[1]
            else:  # transform called without a matching review
                direction = self._new_direction(mask)
            if direction is not None:
                self._commit(direction)
        self._pending = None
        return answer


class RandomSampleQueries(ProtectionPolicy):
    """Denning's random-sample-queries control (1980).

    Each answer is computed on a pseudo-random subsample of the query set
    and rescaled.  The sample is a *deterministic* function of the query
    set (hashed), so repeating a query cannot average the sampling error
    away, yet two different paddings of a tracker pair sample different
    records — breaking the tracker's exact arithmetic.

    Threat model: the tracker-equipped adaptive user; resistance is
    statistical (estimates survive, exact isolation does not).  Failure
    behaviour: transform-only — answers are biased estimates, never
    refused by this policy.
    """

    def __init__(self, sample_fraction: float = 0.9, seed: int = 0):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        self.sample_fraction = sample_fraction
        self.seed = seed
        self.name = f"random-sample(f={sample_fraction:g})"

    def _sample_mask(self, mask: np.ndarray) -> np.ndarray:
        indices = np.flatnonzero(mask)
        # CRC32 over the packed mask bytes, seeded with the policy seed:
        # O(n/8) (no Python tuple of indices) and stable across processes
        # and interpreter configurations (unlike hash(), which varies with
        # PYTHONHASHSEED).
        packed = np.packbits(np.asarray(mask, dtype=bool))
        digest = zlib.crc32(packed.tobytes(), self.seed & 0xFFFFFFFF)
        digest &= 0x7FFFFFFF
        local = np.random.default_rng(digest)
        keep = local.random(indices.size) < self.sample_fraction
        sampled = np.zeros_like(mask)
        sampled[indices[keep]] = True
        return sampled

    def transform(self, query, answer, mask, data, rng):
        if not answer.ok or answer.value is None:
            return answer
        agg = query.aggregate
        supported = (Aggregate.COUNT, Aggregate.SUM, Aggregate.AVG)
        if agg not in supported:
            return answer
        sampled = self._sample_mask(mask)
        if agg is Aggregate.COUNT:
            value = float(sampled.sum()) / self.sample_fraction
            return Answer(answer.query, value=round(value))
        values = data.column(query.column)[sampled].astype(np.float64)
        if values.size == 0:
            return Answer(answer.query, value=float("nan"))
        if agg is Aggregate.SUM:
            return Answer(
                answer.query, value=float(values.sum()) / self.sample_fraction
            )
        return Answer(answer.query, value=float(values.mean()))


class OverlapControl(ProtectionPolicy):
    """Dobkin–Jones–Lipton-style overlap restriction.

    Refuses a query when its query set shares more than ``max_overlap``
    records with some previously *answered* query set — the classical
    response to difference attacks, cheaper than exact auditing but
    coarser (it also refuses many harmless queries).

    Overlaps against the whole answered history are computed in one
    word-level AND + popcount pass over the engine's packed audit state
    (:class:`PackedMaskLog`) on the active kernel backend, chunked so a
    violating early query set short-circuits the scan; a plain ``list``
    history falls back to the per-entry loop.  Refusal decisions (and
    messages) are *chunk-invariant* and identical to the seed's loop:
    the scan preserves history order for any chunk size, so the first
    answered query set whose overlap exceeds the threshold is always
    the one reported.

    The chunk size trades early-exit granularity against per-call
    overhead; the default comes from the
    ``benchmarks/bench_overlap_chunk.py`` sweep and can be overridden
    per instance (``chunk=``) or process-wide with the
    ``REPRO_QDB_OVERLAP_CHUNK`` environment variable.

    Threat model: the difference attacker (query pairs isolating a
    record by subtraction).  Failure behaviour: pure refusal, judged
    against answered history only.
    """

    # History rows per popcount pass (early-exit granularity): the
    # bench_overlap_chunk.py sweep's no-hit winner at H=2000 on the cext
    # backend; early-hit scans stay sub-millisecond at this size.
    _CHUNK = 2048

    def __init__(self, max_overlap: int, chunk: int | None = None):
        if max_overlap < 0:
            raise ValueError("max_overlap must be >= 0")
        if chunk is None:
            chunk = _env_int("REPRO_QDB_OVERLAP_CHUNK")
            if chunk is None:
                chunk = self._CHUNK
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        self.max_overlap = max_overlap
        self.chunk = int(chunk)
        self.name = f"overlap-control(r={max_overlap})"

    def _review_packed(self, mask, log: PackedMaskLog):
        if int(np.count_nonzero(mask)) <= self.max_overlap:
            return None  # |Q ∩ C| <= |C| can never exceed the threshold
        packed = log.pack(mask)
        for start in range(0, len(log), self.chunk):
            stop = min(start + self.chunk, len(log))
            overlaps = log.overlaps(packed, start, stop)
            hits = overlaps > self.max_overlap
            if hits.any():
                overlap = int(overlaps[int(np.argmax(hits))])
                return (
                    f"query set overlaps a previous one in {overlap} "
                    f"records (> {self.max_overlap})"
                )
        return None

    def review(self, query, mask, data, history):
        log = getattr(history, "answered_masks", None)
        if log is not None:
            return self._review_packed(mask, log)
        for entry in history:
            if not entry.answered:
                continue
            overlap = int(np.sum(mask & entry.mask))
            if overlap > self.max_overlap:
                return (
                    f"query set overlaps a previous one in {overlap} "
                    f"records (> {self.max_overlap})"
                )
        return None


class NoisePerturbation(ProtectionPolicy):
    """Additive output noise (Duncan–Mukherjee [14]) to deter trackers.

    Threat model: the adaptive tracker user — noise denies the exact
    arithmetic difference attacks need, at the cost of answer utility.
    Failure behaviour: transform-only; answers are perturbed, never
    refused, and the perturbation is drawn from the engine's seeded rng
    (so sessions replay deterministically).
    """

    def __init__(self, sd: float = 1.0, kind: str = "gaussian"):
        if sd < 0:
            raise ValueError("sd must be non-negative")
        if kind not in ("gaussian", "laplace"):
            raise ValueError("kind must be gaussian or laplace")
        self.sd = float(sd)
        self.kind = kind
        self.name = f"perturbation(sd={sd:g})"

    def transform(self, query, answer, mask, data, rng):
        if not answer.ok or answer.value is None or self.sd == 0:
            return answer
        if self.kind == "gaussian":
            noise = float(rng.normal(0.0, self.sd))
        else:
            noise = float(rng.laplace(0.0, self.sd / np.sqrt(2.0)))
        value = answer.value + noise
        if query.aggregate is Aggregate.COUNT:
            value = max(0.0, round(value))
        return Answer(answer.query, value=value)


class CamouflageIntervals(ProtectionPolicy):
    """Interval answers in the spirit of confidentiality-via-camouflage [16].

    Instead of the exact statistic, the user receives an interval
    guaranteed to contain it: the range the statistic takes over all
    subsets of the query set obtained by deleting up to ``k`` records.
    A COUNT of c becomes [max(0, c-k), c]; a SUM sheds its k largest /
    smallest contributions; AVG is recomputed on trimmed sets.

    Threat model: a user differencing exact answers — intervals make
    record-level deduction ambiguous by construction.  Failure
    behaviour: transform-only; every query is answered, as an interval
    guaranteed to contain the true statistic.
    """

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.name = f"camouflage(k={k})"

    def transform(self, query, answer, mask, data, rng):
        if not answer.ok or answer.value is None:
            return answer
        size = int(mask.sum())
        drop = min(self.k, size)
        agg = query.aggregate
        if agg is Aggregate.COUNT:
            lo, hi = max(0.0, answer.value - drop), answer.value
        elif agg in (Aggregate.SUM, Aggregate.AVG):
            values = np.sort(
                data.column(query.column)[mask].astype(np.float64)
            )
            if values.size == 0:
                return answer
            if agg is Aggregate.SUM:
                lo = answer.value - float(values[-drop:].sum()) if drop else answer.value
                hi = answer.value - float(values[:drop].sum()) if drop else answer.value
                lo, hi = min(lo, hi), max(lo, hi)
            else:
                trims = [values]
                for d in range(1, drop + 1):
                    trims.append(values[d:])
                    trims.append(values[:-d] if d < values.size else values[:1])
                means = [float(t.mean()) for t in trims if t.size]
                lo, hi = min(means), max(means)
        else:
            return Answer(
                answer.query, refused=True,
                reason=f"{self.name}: {agg.value} not supported by camouflage",
            )
        return Answer(answer.query, value=None, interval=(lo, hi))
