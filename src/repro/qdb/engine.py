"""The interactive statistical database engine with protection policies.

The paper's Section 3 scenario: users submit statistical queries; the data
owner, who *sees every query* (hence no user privacy), applies inference
controls — restriction, perturbation or interval answers, the three
strategies the paper cites ([7] auditing, [14] noise, [16] camouflage) —
to protect respondents.

Policies are composable; each query passes every policy's review (which may
refuse) and then its transform (which may perturb or widen the answer).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..data.table import Dataset
from ..sdc.base import resolve_rng
from .parser import parse_query
from .query import Aggregate, Query


@dataclass(frozen=True)
class Answer:
    """The database's reply to one query."""

    query: Query
    value: float | None = None
    interval: tuple[float, float] | None = None
    refused: bool = False
    reason: str | None = None

    @property
    def ok(self) -> bool:
        """True when the query was answered (point or interval)."""
        return not self.refused


@dataclass
class LogEntry:
    """Audit-trail record of an answered or refused query."""

    query: Query
    mask: np.ndarray
    answered: bool
    value: float | None


class ProtectionPolicy(abc.ABC):
    """One inference-control mechanism."""

    name: str = "abstract"

    def review(
        self,
        query: Query,
        mask: np.ndarray,
        data: Dataset,
        history: list[LogEntry],
    ) -> str | None:
        """Return a refusal reason, or None to allow the query."""
        return None

    def transform(
        self,
        query: Query,
        answer: Answer,
        mask: np.ndarray,
        data: Dataset,
        rng: np.random.Generator,
    ) -> Answer:
        """Optionally modify the outgoing answer."""
        return answer


class StatisticalDatabase:
    """An interactively queryable database guarded by policies.

    Parameters
    ----------
    data:
        The underlying microdata (never released directly).
    policies:
        Ordered protection policies.  An empty list reproduces the paper's
        unprotected baseline (no respondent, no user privacy).
    seed:
        Seed for stochastic policies (perturbation).
    """

    def __init__(
        self,
        data: Dataset,
        policies: list[ProtectionPolicy] | None = None,
        seed: int | None = 0,
    ):
        self._data = data
        self.policies = list(policies or [])
        self._rng = resolve_rng(seed)
        self.history: list[LogEntry] = []
        self.queries_asked = 0
        self.queries_refused = 0

    @property
    def n_records(self) -> int:
        """Number of records behind the interface."""
        return self._data.n_rows

    def ask(self, query: Query | str) -> Answer:
        """Submit one query; returns an :class:`Answer`.

        Note the privacy model: the engine evaluates the query on plaintext
        data — the owner sees the query in full.  This is exactly why the
        paper scores query-controlled SDC as offering *no* user privacy.
        """
        if isinstance(query, str):
            query = parse_query(query)
        self.queries_asked += 1
        mask = query.predicate.mask(self._data)
        for policy in self.policies:
            reason = policy.review(query, mask, self._data, self.history)
            if reason is not None:
                self.queries_refused += 1
                self.history.append(LogEntry(query, mask, False, None))
                return Answer(query, refused=True, reason=f"{policy.name}: {reason}")
        answer = Answer(query, value=query.evaluate(self._data))
        for policy in self.policies:
            answer = policy.transform(query, answer, mask, self._data, self._rng)
        self.history.append(LogEntry(query, mask, True, answer.value))
        return answer

    def true_answer(self, query: Query | str) -> float:
        """Evaluate without protection (test/bench oracle only)."""
        if isinstance(query, str):
            query = parse_query(query)
        return query.evaluate(self._data)


class QuerySetSizeControl(ProtectionPolicy):
    """Refuse queries whose query set is too small or too large.

    The classical first line of defence: |Q| must lie in [k, n - k].
    Schlörer [22] showed trackers defeat it — reproduced in
    :mod:`repro.qdb.tracker`.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.name = f"size-control(k={k})"

    def review(self, query, mask, data, history):
        size = int(mask.sum())
        if size < self.k:
            return f"query set too small ({size} < {self.k})"
        if size > data.n_rows - self.k:
            return f"query set too large ({size} > n - {self.k})"
        return None


class SumAuditPolicy(ProtectionPolicy):
    """Exact auditing for linear aggregates (Chin–Ozsoyoglu [7]).

    Maintains the subspace spanned by answered query-set indicator vectors;
    a new query is refused when answering it would make some individual
    record's value exactly deducible — i.e. when some unit vector e_i
    enters the row space of the answered-query matrix.

    VARIANCE/STDDEV answers reveal a *pair* of linear statistics (Σx and
    Σx² over the query set), so they are audited in the same basis: a
    variance query whose query set would make a record's (x, x²) pair
    deducible is refused like the equivalent SUM.
    """

    _LINEAR = (Aggregate.SUM, Aggregate.COUNT, Aggregate.AVG,
               Aggregate.VARIANCE, Aggregate.STDDEV)

    def __init__(self, tolerance: float = 1e-8):
        self.tolerance = tolerance
        self.name = "sum-audit"
        self._basis: np.ndarray | None = None  # orthonormal rows

    def _would_disclose(self, candidate: np.ndarray) -> bool:
        rows = [candidate.astype(np.float64)]
        if self._basis is not None:
            rows = [self._basis, candidate[None, :].astype(np.float64)]
            stacked = np.vstack(rows)
        else:
            stacked = candidate[None, :].astype(np.float64)
        # Orthonormal basis of the prospective row space.
        q, r = np.linalg.qr(stacked.T, mode="reduced")
        keep = np.abs(np.diag(r)) > self.tolerance
        basis = q[:, keep].T
        if basis.size == 0:
            return False
        # e_i lies in the row space iff its projection has norm 1.
        proj_norms = (basis ** 2).sum(axis=0)
        return bool(np.any(proj_norms >= 1.0 - self.tolerance))

    def review(self, query, mask, data, history):
        if query.aggregate not in self._LINEAR:
            return None
        candidate = mask.astype(np.float64)
        if self._would_disclose(candidate):
            return "answer would make an individual record deducible"
        return None

    def transform(self, query, answer, mask, data, rng):
        if answer.ok and query.aggregate in self._LINEAR:
            candidate = mask.astype(np.float64)[None, :]
            stacked = (
                np.vstack([self._basis, candidate])
                if self._basis is not None
                else candidate
            )
            q, r = np.linalg.qr(stacked.T, mode="reduced")
            keep = np.abs(np.diag(r)) > self.tolerance
            self._basis = q[:, keep].T
        return answer


class RandomSampleQueries(ProtectionPolicy):
    """Denning's random-sample-queries control (1980).

    Each answer is computed on a pseudo-random subsample of the query set
    and rescaled.  The sample is a *deterministic* function of the query
    set (hashed), so repeating a query cannot average the sampling error
    away, yet two different paddings of a tracker pair sample different
    records — breaking the tracker's exact arithmetic.
    """

    def __init__(self, sample_fraction: float = 0.9, seed: int = 0):
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        self.sample_fraction = sample_fraction
        self.seed = seed
        self.name = f"random-sample(f={sample_fraction:g})"

    def _sample_mask(self, mask: np.ndarray) -> np.ndarray:
        indices = np.flatnonzero(mask)
        digest = hash((self.seed, tuple(indices.tolist()))) & 0x7FFFFFFF
        local = np.random.default_rng(digest)
        keep = local.random(indices.size) < self.sample_fraction
        sampled = np.zeros_like(mask)
        sampled[indices[keep]] = True
        return sampled

    def transform(self, query, answer, mask, data, rng):
        if not answer.ok or answer.value is None:
            return answer
        agg = query.aggregate
        supported = (Aggregate.COUNT, Aggregate.SUM, Aggregate.AVG)
        if agg not in supported:
            return answer
        sampled = self._sample_mask(mask)
        if agg is Aggregate.COUNT:
            value = float(sampled.sum()) / self.sample_fraction
            return Answer(answer.query, value=round(value))
        values = data.column(query.column)[sampled].astype(np.float64)
        if values.size == 0:
            return Answer(answer.query, value=float("nan"))
        if agg is Aggregate.SUM:
            return Answer(
                answer.query, value=float(values.sum()) / self.sample_fraction
            )
        return Answer(answer.query, value=float(values.mean()))


class OverlapControl(ProtectionPolicy):
    """Dobkin–Jones–Lipton-style overlap restriction.

    Refuses a query when its query set shares more than ``max_overlap``
    records with some previously *answered* query set — the classical
    response to difference attacks, cheaper than exact auditing but
    coarser (it also refuses many harmless queries).
    """

    def __init__(self, max_overlap: int):
        if max_overlap < 0:
            raise ValueError("max_overlap must be >= 0")
        self.max_overlap = max_overlap
        self.name = f"overlap-control(r={max_overlap})"

    def review(self, query, mask, data, history):
        for entry in history:
            if not entry.answered:
                continue
            overlap = int(np.sum(mask & entry.mask))
            if overlap > self.max_overlap:
                return (
                    f"query set overlaps a previous one in {overlap} "
                    f"records (> {self.max_overlap})"
                )
        return None


class NoisePerturbation(ProtectionPolicy):
    """Additive output noise (Duncan–Mukherjee [14]) to deter trackers."""

    def __init__(self, sd: float = 1.0, kind: str = "gaussian"):
        if sd < 0:
            raise ValueError("sd must be non-negative")
        if kind not in ("gaussian", "laplace"):
            raise ValueError("kind must be gaussian or laplace")
        self.sd = float(sd)
        self.kind = kind
        self.name = f"perturbation(sd={sd:g})"

    def transform(self, query, answer, mask, data, rng):
        if not answer.ok or answer.value is None or self.sd == 0:
            return answer
        if self.kind == "gaussian":
            noise = float(rng.normal(0.0, self.sd))
        else:
            noise = float(rng.laplace(0.0, self.sd / np.sqrt(2.0)))
        value = answer.value + noise
        if query.aggregate is Aggregate.COUNT:
            value = max(0.0, round(value))
        return Answer(answer.query, value=value)


class CamouflageIntervals(ProtectionPolicy):
    """Interval answers in the spirit of confidentiality-via-camouflage [16].

    Instead of the exact statistic, the user receives an interval
    guaranteed to contain it: the range the statistic takes over all
    subsets of the query set obtained by deleting up to ``k`` records.
    A COUNT of c becomes [max(0, c-k), c]; a SUM sheds its k largest /
    smallest contributions; AVG is recomputed on trimmed sets.
    """

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.name = f"camouflage(k={k})"

    def transform(self, query, answer, mask, data, rng):
        if not answer.ok or answer.value is None:
            return answer
        size = int(mask.sum())
        drop = min(self.k, size)
        agg = query.aggregate
        if agg is Aggregate.COUNT:
            lo, hi = max(0.0, answer.value - drop), answer.value
        elif agg in (Aggregate.SUM, Aggregate.AVG):
            values = np.sort(
                data.column(query.column)[mask].astype(np.float64)
            )
            if values.size == 0:
                return answer
            if agg is Aggregate.SUM:
                lo = answer.value - float(values[-drop:].sum()) if drop else answer.value
                hi = answer.value - float(values[:drop].sum()) if drop else answer.value
                lo, hi = min(lo, hi), max(lo, hi)
            else:
                trims = [values]
                for d in range(1, drop + 1):
                    trims.append(values[d:])
                    trims.append(values[:-d] if d < values.size else values[:1])
                means = [float(t.mean()) for t in trims if t.size]
                lo, hi = min(means), max(means)
        else:
            return Answer(
                answer.query, refused=True,
                reason=f"{self.name}: {agg.value} not supported by camouflage",
            )
        return Answer(answer.query, value=None, interval=(lo, hi))
