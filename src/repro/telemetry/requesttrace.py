"""Request-scoped trace context for the serving runtime.

Every request admitted by :class:`repro.serving.ServingRuntime` is
assigned a deterministic ``trace_id`` and a :class:`RequestTrace` that
collects monotonic timestamps at frozen points along the request path
(router -> admission -> ingress queue -> worker batch -> engine ->
cross-shard audit -> PIR scatter/gather).  At completion the runtime
emits one flat ``serving.request`` span whose attrs carry the full
latency decomposition, and the worker thread activates the trace id so
every span the engine or PIR layer opens underneath (``qdb.query``,
``pir.retrieve``, ``faults.degrade``) is tagged with the same
``trace_id`` — linking the per-subsystem spans into one causal tree
that :func:`waterfall` reconstructs from a JSONL capture.

The frozen stage list (order matters — it is the waterfall order)::

    admission       router lookup + token-bucket admission decision
    queue_wait      time spent in the shard's bounded ingress queue
    batch_assembly  dequeue -> the worker dispatches the request's batch
    audit           waiting on the cross-shard decision lock
    kernel          engine ``ask_batch`` / PIR ``retrieve_batch_int``
    gather          answer distribution / PIR scatter completion
    serialize       future resolution + span emission

Batched requests share the ``audit``/``kernel`` interval: the engine
answers the whole consecutive same-session run under one lock hold, so
every member of the batch reports that shared wall time.  Requests
refused at admission (overload) never reach a queue and report only
``admission`` + ``serialize``; the split-tracker refusal is an *engine*
decision and traverses all seven stages.

Like the rest of :mod:`repro.telemetry` this module is a strict no-op
until a session is enabled: the runtime mints no trace context while
telemetry is disabled, and ``REPRO_TRACE_SAMPLE=N`` keeps only every
Nth request per session (deterministically — the per-session sequence
number drives the choice, not a clock).

Reconstructing a waterfall from captured span records:

>>> spans = [
...     {"name": "serving.request", "start": 0.0, "duration": 0.004,
...      "attrs": {"trace_id": "5a105e8b-000001", "session": "alice",
...                "kind": "qdb", "shard": 1, "queue_depth": 3,
...                "outcome": "answered", "stage_admission_seconds": 1e-5,
...                "stage_queue_wait_seconds": 2e-3,
...                "stage_batch_assembly_seconds": 5e-5,
...                "stage_audit_seconds": 1e-4,
...                "stage_kernel_seconds": 1.5e-3,
...                "stage_gather_seconds": 2e-5,
...                "stage_serialize_seconds": 1e-5}},
...     {"name": "qdb.query", "start": 0.002, "duration": 0.0015,
...      "attrs": {"trace_id": "5a105e8b-000001", "refused": False}},
... ]
>>> info = waterfall(spans, "5a105e8b-000001")
>>> info["outcome"], info["shard"], len(info["linked"])
('answered', 1, 1)
>>> sorted(info["stages"]) == sorted(TRACE_STAGES)
True
>>> print(format_waterfall(spans, "5a105e8b-000001"))  # doctest: +ELLIPSIS
trace 5a105e8b-000001  session=alice kind=qdb shard=1 queue_depth=3 outcome=answered
  total ...
    admission     ...
    queue_wait    ...
    batch_assembly...
    audit         ...
    kernel        ...
    gather        ...
    serialize     ...
  linked spans:
    qdb.query ...
"""

from __future__ import annotations

import os
import threading
import time
import zlib
from collections import deque
from contextlib import contextmanager
from typing import Iterable, Sequence

from . import instrument as tele
from . import registry
from .tracing import TRACE_CONTEXT

__all__ = [
    "TRACE_STAGES",
    "REQUEST_SPAN_NAME",
    "STAGE_BUCKETS",
    "RequestTrace",
    "mint_trace_id",
    "trace_sample_every",
    "activate",
    "current_trace_id",
    "push_pending",
    "pop_pending",
    "clear_pending",
    "emit_request_span",
    "request_records",
    "waterfall",
    "format_waterfall",
]

# The frozen latency-decomposition stages, in waterfall order.  The
# stage attr on a ``serving.request`` span is ``stage_<name>_seconds``.
TRACE_STAGES = (
    "admission",
    "queue_wait",
    "batch_assembly",
    "audit",
    "kernel",
    "gather",
    "serialize",
)

# The flat span every completed (or refused) request emits.
REQUEST_SPAN_NAME = "serving.request"

# Finer bucket ladder for sub-millisecond serving stages.  The registry
# default (1e-5 .. 1.0, six bounds) saturates its lowest bucket for
# stage timings that live in the 1-500us range; this ladder keeps
# bucket-derived p50/p95 within one bucket width of the exact
# quantiles (see tests/test_requesttrace.py).
STAGE_BUCKETS = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 5e-2, 1e-1, 1.0,
)

# Timestamp marks -> (stage, (start_mark, end_mark)).  A stage is
# reported only when both endpoints were recorded; an overload refusal
# records submit/refused/done and so reports admission + serialize only.
_STAGE_MARKS = (
    ("admission", "submit", "enqueue"),
    ("queue_wait", "enqueue", "dequeue"),
    ("batch_assembly", "dequeue", "dispatch"),
    ("audit", "dispatch", "lock"),
    ("kernel", "lock", "kernel"),
    ("gather", "kernel", "gather"),
    ("serialize", "gather", "done"),
)


# Session-label CRC cache for mint_trace_id.  Sessions are few and
# long-lived relative to requests, so the encode+crc32 runs once per
# label instead of once per traced request (the minting happens on the
# admission path, under the traced-overhead gate).
_SESSION_CRC: dict[str, int] = {}


def mint_trace_id(session: str, seq: int) -> str:
    """Deterministic trace id: crc32(session) + per-session sequence.

    Uses :func:`zlib.crc32`, not :func:`hash`, so ids are stable across
    processes regardless of ``PYTHONHASHSEED`` (same convention as the
    serving router's hash ring).

    >>> mint_trace_id("alice", 1)
    '278ebc47-000001'
    >>> mint_trace_id("alice", 1) == mint_trace_id("alice", 1)
    True
    """
    crc = _SESSION_CRC.get(session)
    if crc is None:
        crc = _SESSION_CRC[session] = zlib.crc32(session.encode("utf-8"))
    return f"{crc:08x}-{seq:06d}"


def trace_sample_every(env: str = "REPRO_TRACE_SAMPLE") -> int:
    """Read the 1-in-N trace sampling knob (default 1 = trace all)."""
    raw = os.environ.get(env)
    if raw is None:
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)


#: Every mark point a request path can record, in path order.
_MARK_POINTS = ("submit", "enqueue", "dequeue", "dispatch", "lock",
                "kernel", "gather", "done", "refused")


class RequestTrace:
    """Per-request mark collector carried on the ingress queue entry.

    Marks are plain ``perf_counter`` readings stored as one slot per
    point (a marks *dict* per request was measurable GC churn on the
    traced hot path — see the serving_traced_qps overhead gate); for
    PIR fan-out the same trace object rides every shard-level queue
    entry and the last writer wins — the reported stage durations then
    reflect the critical path (the last shard to reach each point).
    """

    __slots__ = ("trace_id", "session", "kind", "shard", "queue_depth",
                 "outcome", "reason", "span_id", "_epoch") + _MARK_POINTS

    def __init__(self, trace_id: str, session: str, kind: str, shard: int):
        self.trace_id = trace_id
        self.session = session
        self.kind = kind
        self.shard = shard
        self.queue_depth = -1
        # Filled by emit_request_span when the finished trace is parked
        # on the tracer's pending buffer (see to_record).
        self.outcome = None
        self.reason = None
        self.span_id = 0
        self._epoch = 0.0
        # Explicit assignments, not a setattr loop: one RequestTrace is
        # built per traced request, on the submit path.
        self.submit = None
        self.enqueue = None
        self.dequeue = None
        self.dispatch = None
        self.lock = None
        self.kernel = None
        self.gather = None
        self.done = None
        self.refused = None

    def mark(self, point: str) -> None:
        setattr(self, point, time.perf_counter())

    @property
    def marks(self) -> dict[str, float]:
        """The recorded marks as a dict (diagnostics; not the hot path)."""
        return {point: value for point in _MARK_POINTS
                if (value := getattr(self, point)) is not None}

    def stages(self) -> dict[str, float]:
        """Stage durations (seconds) for every stage whose marks exist."""
        out: dict[str, float] = {}
        for stage, start, end in _STAGE_MARKS:
            t0 = getattr(self, start)
            t1 = getattr(self, end)
            if t0 is not None and t1 is not None:
                out[stage] = max(0.0, t1 - t0)
        # Overload refusals never enqueue: report the admission check up
        # to the refusal decision and the refusal emission as serialize.
        if self.enqueue is None and self.refused is not None:
            out["admission"] = max(0.0, self.refused - self.submit)
            if self.done is not None:
                out["serialize"] = max(0.0, self.done - self.refused)
        return out

    def to_record(self) -> dict:
        """Render the parked trace as its ``serving.request`` span record.

        Called by ``Tracer._drain_locked`` — the same lazy-rendering
        contract :class:`~repro.telemetry.tracing.Span` follows: a
        buffered-only session parks the finished trace object (which the
        request path already allocated) and only a consumer that reads
        the buffer pays for the attrs dict and the record dict.  The
        record is a flat zero-duration event — ``start`` is the request's
        submit mark on the tracer's clock, all timing detail rides in the
        stage attrs, and causal linkage is the ``trace_id`` attr.
        """
        attrs: dict = {
            "trace_id": self.trace_id,
            "session": self.session,
            "kind": self.kind,
            "shard": self.shard,
            "queue_depth": self.queue_depth,
            "outcome": self.outcome,
        }
        if self.reason:
            attrs["reason"] = str(self.reason)
        for stage, value in self.stages().items():
            attrs[_STAGE_ATTR[stage]] = value
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": None,
            "name": REQUEST_SPAN_NAME,
            "depth": 0,
            "start": max(0.0, (self.submit or 0.0) - self._epoch),
            "duration": 0.0,
            "attrs": attrs,
        }


# ---------------------------------------------------------------------------
# Thread-local propagation.
#
# ``TRACE_CONTEXT`` (one thread-local, defined next to the tracer so the
# instrument facade can read it without importing this module) carries
# two fields:
#   tid   — the active trace id; ``instrument.span`` stamps it onto
#           every span the thread opens while it is set.
#   fifo  — a per-batch FIFO of trace ids aligned with the queries a
#           worker hands to ``Engine.ask_batch``; the engine pops one
#           per query so each ``qdb.query`` span gets *its own* id even
#           though the batch shares one engine call.
# ---------------------------------------------------------------------------


def current_trace_id() -> str | None:
    return getattr(TRACE_CONTEXT, "tid", None)


@contextmanager
def activate(trace_id: str):
    """Tag every span this thread opens with ``trace_id``."""
    prev = getattr(TRACE_CONTEXT, "tid", None)
    TRACE_CONTEXT.tid = trace_id
    try:
        yield
    finally:
        TRACE_CONTEXT.tid = prev


def push_pending(trace_ids: Sequence[str | None]) -> None:
    """Queue per-query trace ids for the engine batch about to run.

    Entries align positionally with the batch: sampled-out requests
    contribute ``None`` so the engine's pops stay in sync.
    """
    fifo = getattr(TRACE_CONTEXT, "fifo", None)
    if fifo is None:
        fifo = TRACE_CONTEXT.fifo = deque()
    fifo.extend(trace_ids)


def push_one(trace_id: str | None) -> None:
    """:func:`push_pending` for a single-query batch, without the list.

    Most worker batches group exactly one request (session labels
    rotate faster than the queue drains), so the serving hot path would
    otherwise allocate a one-element list per traced request just to
    extend the FIFO with it.
    """
    fifo = getattr(TRACE_CONTEXT, "fifo", None)
    if fifo is None:
        fifo = TRACE_CONTEXT.fifo = deque()
    fifo.append(trace_id)


def pop_pending() -> str | None:
    """Consume the next per-query trace id (None when nothing queued)."""
    fifo = getattr(TRACE_CONTEXT, "fifo", None)
    if not fifo:
        return None
    return fifo.popleft()


def clear_pending() -> None:
    fifo = getattr(TRACE_CONTEXT, "fifo", None)
    if fifo:
        fifo.clear()


# ---------------------------------------------------------------------------
# Emission.
# ---------------------------------------------------------------------------

# Precomputed span-attr key per stage (f-strings per emission would cost
# more than the histogram observations they label).
_STAGE_ATTR = {stage: f"stage_{stage}_seconds" for stage in TRACE_STAGES}

# Per-shard stage-histogram cache:
#   shard -> (sentinel_name, {stage: hist}, [hist, ...], shared_lock).
# The registry get-or-create takes the registry lock per call; a traced
# request observes seven histograms, so the worker threads resolve each
# shard's set once and reuse the objects.  The list rides in stage
# order (position-aligned with the emit ladder's values) and the shared
# lock — installed by ``histogram_set`` when the family is created
# fresh — lets the batch observation acquire once for all seven.
# ``reset_metrics`` (test isolation) empties the registry without
# replacing it — the sentinel membership probe detects that and
# rebuilds the shard's set.
_HISTOGRAMS: dict[int, tuple] = {}


def emit_request_span(
    trace: RequestTrace,
    outcome: str,
    reason: str | None = None,
) -> None:
    """Publish the ``serving.request`` span + per-shard stage histograms.

    Strict no-op while telemetry is disabled.  The histograms are fed
    eagerly — any registry read (snapshot, OpenMetrics scrape, SSE
    frame) sees this request's stages immediately — but the span record
    itself renders lazily: the finished trace object is handed to
    :meth:`Tracer.emit_deferred`, which in a buffered-only session
    parks it as-is and builds the attrs/record dicts only when a
    consumer reads the buffer.  That keeps the per-request cost on the
    worker thread to the stage arithmetic plus a deque append; the two
    dicts the record needs would otherwise not just cost their
    allocation but sit in the tracer buffer as young-gen GC targets
    paced by the workload's own allocation rate (in-context that
    amplification nearly doubled the emit cost).  With a sink or
    subscriber attached the record renders at emission, so captures and
    live feeds are unaffected.  The waterfall CLI reconstructs the
    causal tree from the shared ``trace_id`` attr rather than span
    nesting (the linked spans were opened on other threads / other lock
    scopes).
    """
    tracer = tele.tracer()
    if tracer is None:
        return
    shard = trace.shard
    cached = _HISTOGRAMS.get(shard)
    if cached is None or cached[0] not in registry.process_registry():
        reg = registry.process_registry()
        prefix = f"serving.shard{shard}."
        names = [prefix + stage + "_seconds" for stage in TRACE_STAGES]
        hist_list, shared = reg.histogram_set(names, STAGE_BUCKETS)
        cached = (
            names[0],
            dict(zip(TRACE_STAGES, hist_list)),
            hist_list,
            shared,
        )
        _HISTOGRAMS[shard] = cached
    trace.outcome = outcome
    trace.reason = reason
    # The stage ladder, unrolled over direct slot reads in mark order
    # (the generic loop shape lives in :meth:`RequestTrace.stages`,
    # which the deferred render uses off the hot path).  Marks are
    # monotone along the request path, so a missing mark ends the
    # ladder, and the stages recorded are always a prefix of
    # TRACE_STAGES — ``values`` below stays position-aligned with the
    # cached histogram list, so the batch observation allocates no
    # per-stage pair tuples (floats are GC-untracked; tuples are not,
    # and at ten young-gen objects a request the collector showed up in
    # the overhead gate).  The one exception is the overload refusal,
    # which never enqueues and reports admission + serialize only; that
    # rare path observes its two histograms directly.
    submit = trace.submit
    enqueue = trace.enqueue
    if enqueue is None:
        hists = cached[1]
        refused = trace.refused
        if refused is not None:
            v = refused - submit
            v = v if v > 0.0 else 0.0
            hists["admission"].observe(v, exemplar=trace.trace_id)
            done = trace.done
            if done is not None:
                v = done - refused
                v = v if v > 0.0 else 0.0
                hists["serialize"].observe(v, exemplar=trace.trace_id)
        tracer.emit_deferred(trace)
        return
    ctx = TRACE_CONTEXT
    values = getattr(ctx, "scratch", None)
    if values is None:
        values = ctx.scratch = []
    else:
        del values[:]
    v = enqueue - submit
    values.append(v if v > 0.0 else 0.0)
    dequeue = trace.dequeue
    if dequeue is not None:
        v = dequeue - enqueue
        values.append(v if v > 0.0 else 0.0)
        dispatch = trace.dispatch
        if dispatch is not None:
            v = dispatch - dequeue
            values.append(v if v > 0.0 else 0.0)
            lock = trace.lock
            if lock is not None:
                v = lock - dispatch
                values.append(v if v > 0.0 else 0.0)
                kernel = trace.kernel
                if kernel is not None:
                    v = kernel - lock
                    values.append(v if v > 0.0 else 0.0)
                    gather = trace.gather
                    if gather is not None:
                        v = gather - kernel
                        values.append(v if v > 0.0 else 0.0)
                        done = trace.done
                        if done is not None:
                            v = done - gather
                            values.append(v if v > 0.0 else 0.0)
    # ``values`` is a per-thread scratch list (one fewer young-gen
    # allocation per request) — safe because observe_batch consumes it
    # synchronously and never retains it.
    registry.observe_batch(cached[2], values, trace.trace_id, cached[3])
    tracer.emit_deferred(trace)


# ---------------------------------------------------------------------------
# Reconstruction (the `repro trace` CLI and the report section).
# ---------------------------------------------------------------------------


def request_records(spans: Iterable[dict]) -> list[dict]:
    """All ``serving.request`` records in a capture, in emission order."""
    return [s for s in spans if s.get("name") == REQUEST_SPAN_NAME]


def waterfall(spans: Iterable[dict], trace_id: str) -> dict | None:
    """Reconstruct one request's causal waterfall from span records.

    Returns ``None`` when no ``serving.request`` record carries the id.
    The result has the request summary (session, kind, shard, queue
    depth at enqueue, decision outcome/reason), the stage decomposition
    in frozen-stage order, and every other span tagged with the same
    trace id (the causal tree, in capture order).
    """
    spans = list(spans)
    request = None
    for record in request_records(spans):
        if record.get("attrs", {}).get("trace_id") == trace_id:
            request = record
            break
    if request is None:
        return None
    attrs = request.get("attrs", {})
    stages = {}
    for stage in TRACE_STAGES:
        value = attrs.get(f"stage_{stage}_seconds")
        if value is not None:
            stages[stage] = float(value)
    linked = [
        s for s in spans
        if s is not request and s.get("attrs", {}).get("trace_id") == trace_id
    ]
    return {
        "trace_id": trace_id,
        "session": attrs.get("session"),
        "kind": attrs.get("kind"),
        "shard": attrs.get("shard"),
        "queue_depth": attrs.get("queue_depth"),
        "outcome": attrs.get("outcome"),
        "reason": attrs.get("reason"),
        "stages": stages,
        "total_seconds": sum(stages.values()),
        "linked": linked,
    }


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:8.3f}s "
    if value >= 1e-3:
        return f"{value * 1e3:8.3f}ms"
    return f"{value * 1e6:8.1f}us"


def format_waterfall(spans: Iterable[dict], trace_id: str, width: int = 40) -> str:
    """ASCII waterfall for one trace id (raises KeyError when unknown)."""
    info = waterfall(spans, trace_id)
    if info is None:
        raise KeyError(trace_id)
    lines = [
        (
            f"trace {info['trace_id']}  session={info['session']} "
            f"kind={info['kind']} shard={info['shard']} "
            f"queue_depth={info['queue_depth']} outcome={info['outcome']}"
        )
    ]
    if info["reason"]:
        lines.append(f"  reason: {info['reason']}")
    total = info["total_seconds"]
    lines.append(f"  total {_fmt_seconds(total)}")
    offset = 0.0
    for stage in TRACE_STAGES:
        if stage not in info["stages"]:
            continue
        value = info["stages"][stage]
        if total > 0:
            lead = int(round(width * offset / total))
            bar = int(round(width * value / total))
        else:
            lead = bar = 0
        bar = max(1, bar) if value > 0 else bar
        lines.append(
            f"    {stage:<14s}{_fmt_seconds(value)}  "
            f"{' ' * lead}{'#' * bar}"
        )
        offset += value
    if info["linked"]:
        lines.append("  linked spans:")
        for record in info["linked"]:
            attrs = record.get("attrs", {})
            detail = ""
            if "refused" in attrs:
                detail = " refused" if attrs["refused"] else " answered"
            if "decision" in attrs:
                detail += f" decision={attrs['decision']}"
            lines.append(
                f"    {record['name']} {_fmt_seconds(float(record['duration']))}"
                f"{detail}"
            )
    return "\n".join(lines)
