"""Continuous sampling profiler: stdlib-only background stack sampler.

A daemon thread wakes ``REPRO_PROFILE_HZ`` times per second, snapshots
every live thread's stack via :func:`sys._current_frames`, and folds
each stack into a ``thread;frame;frame;... count`` tally — the
flamegraph "folded stacks" text format (Brendan Gregg's
``flamegraph.pl`` / speedscope both ingest it directly).  Because the
serving runtime names its workers ``serving-shard{i}-w{n}``, samples
attribute directly to shard/worker without any extra bookkeeping.

Like the rest of :mod:`repro.telemetry`, the profiler is a strict
no-op unless explicitly enabled: :func:`maybe_start` returns ``None``
(and spawns nothing) while ``REPRO_PROFILE_HZ`` is unset, ``0``, or
unparseable.  When running, the only cost to the profiled threads is
the GIL time the sampler spends walking frames — bounded by the
``profiler-on <= 1.05x`` benchmark gate.

>>> prof = SamplingProfiler(hz=50)
>>> prof.hz
50
>>> prof.running
False
>>> import threading, time
>>> with prof:
...     t = threading.Thread(target=time.sleep, args=(0.1,), name="napper")
...     t.start(); t.join()
>>> prof.running
False
>>> any(line.startswith("napper;") for line in prof.folded())
True
>>> prof.sample_count > 0
True
"""

from __future__ import annotations

import os
import sys
import threading
from typing import Iterable

__all__ = [
    "SamplingProfiler",
    "maybe_start",
    "profile_hz",
    "render_folded",
    "top_frames",
]

#: Maximum stack depth folded per sample (deeper frames are dropped at
#: the root end — the leaf side is what a flamegraph reader cares about).
MAX_DEPTH = 64


def profile_hz(env: str = "REPRO_PROFILE_HZ") -> int:
    """The configured sampling rate; 0 means disabled (the default)."""
    raw = os.environ.get(env)
    if raw is None:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 0
    return max(0, value)


class SamplingProfiler:
    """Background stack sampler producing folded-stack tallies.

    Parameters
    ----------
    hz:
        Samples per second.  ``None`` reads ``REPRO_PROFILE_HZ``;
        ``start`` raises when the resolved rate is 0.
    """

    def __init__(self, hz: int | None = None):
        self.hz = profile_hz() if hz is None else int(hz)
        self.sample_count = 0
        self._stacks: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.hz <= 0:
            raise ValueError("SamplingProfiler needs hz >= 1 to start")
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling ----------------------------------------------------------

    def _loop(self) -> None:
        interval = 1.0 / self.hz
        me = threading.get_ident()
        while not self._stop.wait(interval):
            self.sample_once(skip={me})

    def sample_once(self, skip: set[int] | None = None) -> int:
        """Take one sample of every live thread; returns stacks folded."""
        names = {t.ident: t.name for t in threading.enumerate()}
        frames = sys._current_frames()
        folded = 0
        with self._lock:
            self.sample_count += 1
            for ident, frame in frames.items():
                if skip and ident in skip:
                    continue
                stack = []
                depth = 0
                while frame is not None and depth < MAX_DEPTH:
                    code = frame.f_code
                    stack.append(
                        f"{os.path.basename(code.co_filename)}:{code.co_name}"
                    )
                    frame = frame.f_back
                    depth += 1
                # f_back walks leaf -> root; folded format wants
                # root -> leaf under the thread name.
                stack.reverse()
                key = names.get(ident, f"thread-{ident}") + ";" + ";".join(stack)
                self._stacks[key] = self._stacks.get(key, 0) + 1
                folded += 1
        return folded

    # -- export ------------------------------------------------------------

    def folded(self) -> list[str]:
        """Folded-stack lines (``stack count``), heaviest first."""
        with self._lock:
            items = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return [f"{stack} {count}" for stack, count in items]

    def clear(self) -> None:
        with self._lock:
            self._stacks.clear()
            self.sample_count = 0


def maybe_start() -> SamplingProfiler | None:
    """Start a profiler iff ``REPRO_PROFILE_HZ`` enables one; else None.

    The strict-no-op entry point the runtime and CLI use: when the knob
    is unset or 0 nothing is allocated beyond the env read.
    """
    hz = profile_hz()
    if hz <= 0:
        return None
    return SamplingProfiler(hz=hz).start()


def render_folded(lines: Iterable[str]) -> str:
    """Join folded lines into the flamegraph-ready text blob."""
    return "\n".join(lines) + "\n" if lines else ""


def top_frames(lines: Iterable[str], top: int = 20) -> list[tuple[str, int]]:
    """Per-leaf-frame sample totals (hottest first) from folded lines."""
    totals: dict[str, int] = {}
    for line in lines:
        stack, _, count = line.rpartition(" ")
        if not stack:
            continue
        leaf = stack.rsplit(";", 1)[-1]
        totals[leaf] = totals.get(leaf, 0) + int(count)
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top]
