"""Trace-file consumers: summary tables, slowest spans, refusal forensics.

Reads a JSONL capture produced by a telemetry session and reconstructs
what the instrumented system did: per-span-name latency aggregates, the
top-N slowest individual spans, and — the auditor's view — every refusal
decision the statistical database took, with the policy that refused and
its reason.  Backs the ``repro telemetry report`` CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .tracing import SpanSchemaError, validate_record

__all__ = [
    "TraceReport",
    "alert_decisions",
    "cache_efficiency",
    "degradation_decisions",
    "load_trace",
    "read_trace",
    "refusal_decisions",
    "summarize",
]


def read_trace(path: str | Path, validate: bool = True) -> list[dict]:
    """Parse a JSONL trace into span records (meta lines checked, dropped).

    With ``validate`` (the default) every line must conform to the span
    schema; a malformed line raises :class:`SpanSchemaError` naming the
    line number — this is the ``make telemetry-smoke`` drift gate.
    """
    spans: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SpanSchemaError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            if validate:
                try:
                    validate_record(record)
                except SpanSchemaError as exc:
                    raise SpanSchemaError(f"{path}:{lineno}: {exc}") from None
            if record.get("type") == "span":
                spans.append(record)
    return spans


@dataclass
class SpanStats:
    """Latency aggregate for one span name."""

    name: str
    count: int = 0
    total: float = 0.0
    max: float = 0.0
    refused: int = 0

    @property
    def mean(self) -> float:
        """Mean span duration in seconds."""
        return self.total / self.count if self.count else 0.0


def summarize(spans: list[dict]) -> dict[str, SpanStats]:
    """Per-name span statistics, sorted by total time (descending)."""
    stats: dict[str, SpanStats] = {}
    for span in spans:
        entry = stats.setdefault(span["name"], SpanStats(span["name"]))
        entry.count += 1
        entry.total += span["duration"]
        entry.max = max(entry.max, span["duration"])
        if span["attrs"].get("refused") is True:
            entry.refused += 1
    return dict(
        sorted(stats.items(), key=lambda kv: -kv[1].total)
    )


def slowest_spans(spans: list[dict], n: int = 10) -> list[dict]:
    """The *n* individual spans with the longest durations."""
    return sorted(spans, key=lambda s: -s["duration"])[:n]


def refusal_decisions(spans: list[dict]) -> list[dict]:
    """Every refused query span, with its policy name and reason.

    Returns dictionaries ``{"query", "policy", "reason", "span_id"}`` in
    trace order — the reconstruction the acceptance criteria require.
    """
    decisions = []
    for span in spans:
        attrs = span["attrs"]
        if span["name"] == "qdb.query" and attrs.get("refused") is True:
            decisions.append({
                "span_id": span["span_id"],
                "query": attrs.get("query", "?"),
                "policy": attrs.get("policy", "?"),
                "reason": attrs.get("reason", "?"),
            })
    return decisions


def degradation_decisions(spans: list[dict]) -> list[dict]:
    """Every fault-tolerance degradation decision recorded in the trace.

    The fault layer (:mod:`repro.faults`) emits a ``faults.degrade`` span
    for each policy decision taken in response to a failure — PIR
    single-replica fallback, SMC party exclusion, qdb replica failover or
    backend refusal.  Returns dictionaries ``{"component", "decision",
    "reason", "span_id"}`` in trace order, so ``repro telemetry report``
    can reconstruct the full degradation history of a run.
    """
    decisions = []
    for span in spans:
        if span["name"] != "faults.degrade":
            continue
        attrs = span["attrs"]
        decisions.append({
            "span_id": span["span_id"],
            "component": attrs.get("component", "?"),
            "decision": attrs.get("decision", "?"),
            "reason": attrs.get("reason", "?"),
        })
    return decisions


def cache_efficiency(spans: list[dict]) -> dict:
    """Mask-cache / plan-cache efficiency reconstructed from query spans.

    Every ``qdb.query`` span carries ``cache_hit`` (predicate mask cache);
    plan-compiled queries additionally carry ``plan_cached`` (whether the
    compiled plan came from the plan cache) and, when the fused audit
    pass skipped already-cleared history rows, ``fused_rows_skipped``.
    Returns ``{"mask_cache": {...}, "plan_cache": {...},
    "fused_rows_skipped": int}`` where each cache entry holds ``hits``,
    ``misses`` and ``hit_rate`` (0.0 when the cache saw no traffic).
    ``plan_cache`` covers only spans that recorded ``plan_cached`` — a
    pre-plan trace yields zeros there, not an error.
    """
    mask_hits = mask_misses = plan_hits = plan_misses = 0
    rows_skipped = 0
    for span in spans:
        if span["name"] != "qdb.query":
            continue
        attrs = span["attrs"]
        if "cache_hit" in attrs:
            if attrs["cache_hit"]:
                mask_hits += 1
            else:
                mask_misses += 1
        if "plan_cached" in attrs:
            if attrs["plan_cached"]:
                plan_hits += 1
            else:
                plan_misses += 1
        rows_skipped += int(attrs.get("fused_rows_skipped", 0))

    def rates(hits: int, misses: int) -> dict:
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
        }

    return {
        "mask_cache": rates(mask_hits, mask_misses),
        "plan_cache": rates(plan_hits, plan_misses),
        "fused_rows_skipped": rows_skipped,
    }


def alert_decisions(spans: list[dict]) -> list[dict]:
    """Every observatory alert recorded in the trace.

    The observatory (:mod:`repro.telemetry.observatory`) emits an
    ``observatory.alert`` span for each alert its detectors or SLO rules
    fire.  Returns dictionaries ``{"alert", "severity", "dimension",
    "step", "detail", "span_id"}`` in trace order, so the report
    reconstructs the run's incident log next to its refusal and
    degradation history.
    """
    decisions = []
    for span in spans:
        if span["name"] != "observatory.alert":
            continue
        attrs = span["attrs"]
        decisions.append({
            "span_id": span["span_id"],
            "alert": attrs.get("alert", "?"),
            "severity": attrs.get("severity", "?"),
            "dimension": attrs.get("dimension", "?"),
            "step": attrs.get("step", 0),
            "detail": attrs.get("detail", ""),
        })
    return decisions


@dataclass
class TraceReport:
    """Everything the report CLI prints, as data."""

    path: str
    spans: list[dict] = field(repr=False, default_factory=list)

    @property
    def stats(self) -> dict[str, SpanStats]:
        """Per-name aggregates."""
        return summarize(self.spans)

    @property
    def refusals(self) -> list[dict]:
        """Reconstructed refusal decisions."""
        return refusal_decisions(self.spans)

    @property
    def degradations(self) -> list[dict]:
        """Reconstructed fault-tolerance degradation decisions."""
        return degradation_decisions(self.spans)

    @property
    def alerts(self) -> list[dict]:
        """Reconstructed observatory alerts (the incident log)."""
        return alert_decisions(self.spans)

    @property
    def caches(self) -> dict:
        """Mask-cache / plan-cache efficiency and fused-scan savings."""
        return cache_efficiency(self.spans)

    @property
    def requests(self) -> list[dict]:
        """Traced serving requests (``serving.request`` envelopes)."""
        from .requesttrace import request_records

        return request_records(self.spans)

    def format(self, top: int = 10) -> str:
        """Human-readable report: summary table, slowest spans, refusals."""
        lines = [f"trace: {self.path} ({len(self.spans)} spans)", ""]
        stats = self.stats
        if stats:
            width = max(len(name) for name in stats)
            lines.append(
                f"{'span':<{width}s} {'count':>7s} {'total_ms':>10s} "
                f"{'mean_ms':>9s} {'max_ms':>9s} {'refused':>8s}"
            )
            for name, s in stats.items():
                lines.append(
                    f"{name:<{width}s} {s.count:>7d} {s.total * 1e3:>10.3f} "
                    f"{s.mean * 1e3:>9.3f} {s.max * 1e3:>9.3f} "
                    f"{s.refused:>8d}"
                )
        else:
            lines.append("(no spans)")
        slow = slowest_spans(self.spans, top)
        if slow:
            lines += ["", f"top {len(slow)} slowest spans:"]
            name_width = max(len(s["name"]) for s in slow)
            for span in slow:
                detail = span["attrs"].get("query") or ""
                lines.append(
                    f"  #{span['span_id']:<5d} {span['name']:<{name_width}s} "
                    f"{span['duration'] * 1e3:9.3f} ms  {detail}"
                )
        caches = self.caches
        if any(c["hits"] + c["misses"]
               for c in (caches["mask_cache"], caches["plan_cache"])):
            lines += ["", "cache efficiency:"]
            for label, key in (("mask cache", "mask_cache"),
                               ("plan cache", "plan_cache")):
                entry = caches[key]
                if entry["hits"] + entry["misses"] == 0:
                    continue
                lines.append(
                    f"  {label:<11s} {entry['hits']} hits / "
                    f"{entry['misses']} misses "
                    f"({entry['hit_rate']:.1%} hit rate)"
                )
            if caches["fused_rows_skipped"]:
                lines.append(
                    f"  fused audit skipped "
                    f"{caches['fused_rows_skipped']:,} already-cleared "
                    f"history rows"
                )
        refusals = self.refusals
        lines += ["", f"refusal decisions: {len(refusals)}"]
        for decision in refusals:
            lines.append(
                f"  [{decision['policy']}] {decision['query']}\n"
                f"      -> {decision['reason']}"
            )
        degradations = self.degradations
        lines += ["", f"degradation decisions: {len(degradations)}"]
        for decision in degradations:
            lines.append(
                f"  [{decision['component']}] {decision['decision']}\n"
                f"      -> {decision['reason']}"
            )
        alerts = self.alerts
        lines += ["", f"observatory alerts: {len(alerts)}"]
        for decision in alerts:
            lines.append(
                f"  [{decision['severity']}] {decision['alert']} "
                f"({decision['dimension']}, step {decision['step']})\n"
                f"      -> {decision['detail']}"
            )
        requests = self.requests
        if requests:
            from .requesttrace import TRACE_STAGES

            outcomes: dict[str, int] = {}
            stage_totals: dict[str, float] = {}
            for record in requests:
                attrs = record["attrs"]
                outcome = attrs.get("outcome", "?")
                outcomes[outcome] = outcomes.get(outcome, 0) + 1
                for stage in TRACE_STAGES:
                    value = attrs.get(f"stage_{stage}_seconds")
                    if value is not None:
                        stage_totals[stage] = (
                            stage_totals.get(stage, 0.0) + float(value)
                        )
            summary = ", ".join(
                f"{count} {outcome}" for outcome, count in
                sorted(outcomes.items())
            )
            lines += ["", f"traced requests: {len(requests)} ({summary})"]
            total = sum(stage_totals.values())
            for stage in TRACE_STAGES:
                if stage not in stage_totals:
                    continue
                value = stage_totals[stage]
                share = value / total if total else 0.0
                lines.append(
                    f"  {stage:<14s} {value * 1e3:>10.3f} ms total "
                    f"({share:5.1%} of traced wall time)"
                )
            slow_requests = sorted(
                requests,
                key=lambda r: -sum(
                    float(r["attrs"].get(f"stage_{s}_seconds", 0.0))
                    for s in TRACE_STAGES
                ),
            )[:min(top, 5)]
            lines.append("  slowest requests (see `repro trace <id>`):")
            for record in slow_requests:
                attrs = record["attrs"]
                wall = sum(
                    float(attrs.get(f"stage_{s}_seconds", 0.0))
                    for s in TRACE_STAGES
                )
                lines.append(
                    f"    {attrs.get('trace_id')}  {wall * 1e3:8.3f} ms  "
                    f"session={attrs.get('session')} "
                    f"shard={attrs.get('shard')} "
                    f"outcome={attrs.get('outcome')}"
                )
        return "\n".join(lines)


def load_trace(path: str | Path, validate: bool = True) -> TraceReport:
    """Read and wrap a trace file."""
    return TraceReport(str(path), read_trace(path, validate=validate))
