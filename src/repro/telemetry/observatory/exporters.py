"""Registry-snapshot exporters: OpenMetrics text and JSONL.

The OpenMetrics/Prometheus exposition is the lingua franca of scrape
pipelines; :func:`render_openmetrics` turns a
:meth:`~repro.telemetry.registry.MetricsRegistry.snapshot` into it
(sanitized names, HELP/TYPE lines, counters with the mandatory
``_total`` suffix, histograms as cumulative ``_bucket``/``_sum``/
``_count`` families, terminated by ``# EOF``).  The transcript's
bracketed per-pair counters — ``smc.payload_bytes[ring-sum|P0->P1]`` —
become a ``tag`` label, which is lossless: :func:`parse_openmetrics`
reconstructs the bracketed form, and the round-trip test in
``tests/test_observatory_exporters.py`` holds it to
:func:`sanitized_snapshot` equality.

>>> text = render_openmetrics({"counters": {"qdb.asked": 3}, "gauges": {},
...                            "histograms": {}})
>>> print(text, end="")
# HELP repro_qdb_asked qdb.asked
# TYPE repro_qdb_asked counter
repro_qdb_asked_total 3
# EOF
>>> parse_openmetrics(text)["counters"]
{'qdb_asked': 3}
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "parse_openmetrics",
    "read_snapshot_jsonl",
    "render_openmetrics",
    "sanitize_name",
    "sanitized_snapshot",
    "split_metric_name",
    "write_snapshot_jsonl",
]

#: Snapshot-JSONL schema version, stamped into the meta line.
SNAPSHOT_SCHEMA_VERSION = 1

#: The Content-Type a compliant OpenMetrics scrape endpoint must serve
#: (the observatory service's ``/metrics`` uses it verbatim).
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_VALID_FIRST = re.compile(r"[a-zA-Z_:]")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Coerce *name* into a legal OpenMetrics metric name.

    Illegal characters become ``_``; a leading digit gains a ``_``
    prefix; an empty name becomes ``_``.

    >>> sanitize_name("qdb.mask_cache.hits")
    'qdb_mask_cache_hits'
    >>> sanitize_name("3dpriv")
    '_3dpriv'
    """
    if not name:
        return "_"
    cleaned = _INVALID_CHARS.sub("_", name)
    if not _VALID_FIRST.match(cleaned[0]):
        cleaned = "_" + cleaned
    return cleaned


def split_metric_name(name: str) -> tuple[str, str | None]:
    """Split a registry name into (base, bracket tag or None).

    >>> split_metric_name("smc.payload_bytes[ring-sum|P0->P1]")
    ('smc.payload_bytes', 'ring-sum|P0->P1')
    >>> split_metric_name("smc.payload_bytes")
    ('smc.payload_bytes', None)
    """
    if name.endswith("]") and "[" in name:
        base, _, tag = name[:-1].partition("[")
        return base, tag
    return name, None


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    # HELP text is the raw registry name; escape the two characters the
    # exposition format cannot carry verbatim so a hostile metric name
    # can never smuggle an extra line (or a fake '# EOF') into the body.
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    out = []
    it = iter(value)
    for ch in it:
        if ch == "\\":
            nxt = next(it, "")
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
        else:
            out.append(ch)
    return "".join(out)


def _format_value(value) -> str:
    # repr round-trips floats exactly; ints stay ints so parse-back
    # (int first, float fallback) preserves the value's type.
    if isinstance(value, float):
        return repr(value)
    return str(int(value))


def _parse_value(text: str):
    try:
        return int(text)
    except ValueError:
        return float(text)


def _bucket_bounds(buckets: dict) -> list[tuple[str, float]]:
    """(label, upper bound) pairs from a histogram's ``as_dict`` buckets."""
    out = []
    for label in buckets:
        if label == "inf":
            out.append((label, math.inf))
        else:
            out.append((label, float(label[len("le_"):])))
    return out


def render_openmetrics(snapshot: dict, namespace: str = "repro") -> str:
    """One registry snapshot as OpenMetrics exposition text."""
    prefix = f"{sanitize_name(namespace)}_" if namespace else ""
    lines: list[str] = []

    # Counters first, grouped so a family's plain total and its bracketed
    # per-tag splits share one HELP/TYPE header.
    families: dict[str, list[tuple[str | None, object]]] = {}
    family_help: dict[str, str] = {}
    for name in sorted(snapshot.get("counters", {})):
        base, tag = split_metric_name(name)
        family = prefix + sanitize_name(base)
        families.setdefault(family, []).append(
            (tag, snapshot["counters"][name])
        )
        family_help.setdefault(family, base)
    for family in sorted(families):
        lines.append(f"# HELP {family} {_escape_help(family_help[family])}")
        lines.append(f"# TYPE {family} counter")
        for tag, value in families[family]:
            label = f'{{tag="{_escape_label(tag)}"}}' if tag is not None else ""
            lines.append(f"{family}_total{label} {_format_value(value)}")

    for name in sorted(snapshot.get("gauges", {})):
        metric = prefix + sanitize_name(name)
        lines.append(f"# HELP {metric} {_escape_help(name)}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(snapshot['gauges'][name])}")

    for name in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][name]
        metric = prefix + sanitize_name(name)
        lines.append(f"# HELP {metric} {_escape_help(name)}")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        exemplar = data.get("exemplar")
        exemplar_done = False
        for label, bound in _bucket_bounds(data["buckets"]):
            cumulative += data["buckets"][label]
            le = "+Inf" if math.isinf(bound) else f"{bound:g}"
            line = f'{metric}_bucket{{le="{le}"}} {cumulative}'
            # OpenMetrics exemplar syntax, on the first bucket that
            # contains the worst-offender observation:
            #   ..._bucket{le="0.01"} 5 # {trace_id="..."} 0.0042
            if (exemplar is not None and not exemplar_done
                    and float(exemplar["value"]) <= bound):
                line += (
                    f' # {{trace_id="{_escape_label(exemplar["trace_id"])}"}}'
                    f' {_format_value(float(exemplar["value"]))}'
                )
                exemplar_done = True
            lines.append(line)
        lines.append(f"{metric}_sum {_format_value(float(data['total']))}")
        lines.append(f"{metric}_count {int(data['count'])}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>\S+)'
    r'(?:\s+#\s+\{(?P<exlabels>[^}]*)\}\s+(?P<exvalue>\S+))?$'
)
_LABEL = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_openmetrics(text: str, namespace: str = "repro") -> dict:
    """Parse exposition text back into a snapshot-shaped dictionary.

    Metric names come back *sanitized* (the text format cannot recover
    ``.`` from ``_``); bracketed counter tags are reconstructed from
    their ``tag`` label.  The result compares equal to
    :func:`sanitized_snapshot` of the exported snapshot.

    The OpenMetrics termination contract is enforced strictly: the text
    must contain exactly one ``# EOF``, as its final non-empty line — a
    truncated scrape (missing EOF) or a concatenated double-exposition
    (stray mid-document EOF) both raise :class:`ValueError`.
    """
    prefix = f"{sanitize_name(namespace)}_" if namespace else ""
    types: dict[str, str] = {}
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    hist_acc: dict[str, dict] = {}

    content = [line.strip() for line in text.splitlines() if line.strip()]
    if not content or content[-1] != "# EOF":
        raise ValueError("exposition must end with a single '# EOF' line")
    if content.count("# EOF") != 1:
        raise ValueError("exposition must contain exactly one '# EOF' line")

    def strip_prefix(name: str) -> str:
        return name[len(prefix):] if prefix and name.startswith(prefix) else name

    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        name = match.group("name")
        labels = dict(_LABEL.findall(match.group("labels") or ""))
        labels = {k: _unescape_label(v) for k, v in labels.items()}
        value = _parse_value(match.group("value"))

        family = name if name in types else None
        suffix = ""
        if family is None:
            for candidate in ("_bucket", "_sum", "_count", "_total"):
                if (name.endswith(candidate)
                        and name[: -len(candidate)] in types):
                    family = name[: -len(candidate)]
                    suffix = candidate
                    break
        if family is None:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        kind = types[family]
        if kind == "counter":
            key = strip_prefix(family)
            if "tag" in labels:
                key = f"{key}[{labels['tag']}]"
            out["counters"][key] = value
        elif kind == "gauge":
            out["gauges"][strip_prefix(family)] = value
        elif kind == "histogram":
            acc = hist_acc.setdefault(
                strip_prefix(family), {"buckets": [], "total": 0.0, "count": 0}
            )
            if suffix == "_bucket":
                acc["buckets"].append((labels.get("le", "+Inf"), int(value)))
                if match.group("exlabels") is not None:
                    exlabels = dict(_LABEL.findall(match.group("exlabels")))
                    acc["exemplar"] = {
                        "trace_id": _unescape_label(
                            exlabels.get("trace_id", "")
                        ),
                        "value": float(match.group("exvalue")),
                    }
            elif suffix == "_sum":
                acc["total"] = float(value)
            elif suffix == "_count":
                acc["count"] = int(value)
        else:
            raise ValueError(f"line {lineno}: unknown metric type {kind!r}")

    for name, acc in hist_acc.items():
        buckets: dict[str, int] = {}
        previous = 0
        for le, cumulative in acc["buckets"]:
            if le == "+Inf":
                label = "inf"
            else:
                label = f"le_{float(le):g}"
            buckets[label] = cumulative - previous
            previous = cumulative
        count = acc["count"]
        data = {
            "count": count,
            "total": acc["total"],
            "mean": acc["total"] / count if count else 0.0,
            "buckets": buckets,
        }
        if "exemplar" in acc:
            data["exemplar"] = acc["exemplar"]
        out["histograms"][name] = data
    return out


def sanitized_snapshot(snapshot: dict) -> dict:
    """The snapshot with every metric name put through the export mapping.

    This is the fixed point of export/parse: ``parse_openmetrics(
    render_openmetrics(s)) == sanitized_snapshot(s)`` minus the ``owner``
    key, which the text format does not carry.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for name, value in snapshot.get("counters", {}).items():
        base, tag = split_metric_name(name)
        key = sanitize_name(base)
        if tag is not None:
            key = f"{key}[{tag}]"
        out["counters"][key] = value
    for name, value in snapshot.get("gauges", {}).items():
        out["gauges"][sanitize_name(name)] = value
    for name, data in snapshot.get("histograms", {}).items():
        out["histograms"][sanitize_name(name)] = dict(data)
    return out


def write_snapshot_jsonl(snapshot: dict, path: str | Path) -> int:
    """Write a snapshot as JSONL: one meta line, one line per metric.

    Returns the number of metric lines written.
    """
    path = Path(path)
    lines = [json.dumps({
        "type": "meta", "kind": "metrics_snapshot",
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "owner": snapshot.get("owner", ""),
    }, separators=(",", ":"))]
    for name in sorted(snapshot.get("counters", {})):
        lines.append(json.dumps(
            {"type": "metric", "kind": "counter", "name": name,
             "value": snapshot["counters"][name]},
            separators=(",", ":"),
        ))
    for name in sorted(snapshot.get("gauges", {})):
        lines.append(json.dumps(
            {"type": "metric", "kind": "gauge", "name": name,
             "value": snapshot["gauges"][name]},
            separators=(",", ":"),
        ))
    for name in sorted(snapshot.get("histograms", {})):
        lines.append(json.dumps(
            {"type": "metric", "kind": "histogram", "name": name,
             **snapshot["histograms"][name]},
            separators=(",", ":"),
        ))
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(lines) - 1


def read_snapshot_jsonl(path: str | Path) -> dict:
    """Read a JSONL snapshot back into snapshot shape (round-trip exact)."""
    out: dict = {"owner": "", "counters": {}, "gauges": {}, "histograms": {}}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "meta":
                out["owner"] = record.get("owner", "")
                continue
            kind = record.get("kind")
            if kind == "counter":
                out["counters"][record["name"]] = record["value"]
            elif kind == "gauge":
                out["gauges"][record["name"]] = record["value"]
            elif kind == "histogram":
                data = {
                    "count": record["count"],
                    "total": record["total"],
                    "mean": record["mean"],
                    "buckets": record["buckets"],
                }
                if "exemplar" in record:
                    data["exemplar"] = record["exemplar"]
                out["histograms"][record["name"]] = data
    return out
