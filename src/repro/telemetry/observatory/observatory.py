"""The observatory core: subscribe, window, detect, alert, render.

An :class:`Observatory` attaches to a live
:class:`~repro.telemetry.tracing.Tracer` as a subscriber and processes
every finished span synchronously: the span feeds the windowed
:class:`~.stream.SeriesStore`, the online :mod:`detectors <.detectors>`,
and the declarative :class:`~.rules.RulesEngine`.  Every alert that
fires is recorded and — when attached to a live tracer — emitted as an
``observatory.alert`` span, so the trace file carries its own incident
log.

Determinism model: the observatory never reads the clock.  Its *step* is
the count of ingested (non-observatory) spans, every detector decision
is a pure function of span attributes and prior steps, and alert spans
are skipped on ingestion — so replaying a captured trace through
:func:`replay_trace` re-derives the exact alert set the live run
emitted.  That equality is the ``make observe-smoke`` golden gate.

The observatory is *pull-free* on the hot path: when telemetry is
disabled no tracer exists, nothing subscribes, and instrumented code
runs its seed-identical fast path untouched.

Thread model: ingestion (step counter, series updates, detectors, rule
evaluation, alert registration) runs under one reentrant lock, so spans
dispatched from concurrent sessions are processed one at a time in
tracer-dispatch order — the order the capture file records, which keeps
the replay-equality gate true under concurrency.  Alert *emission*
happens strictly after that lock is released: the tracer's emit lock may
already be held by the dispatching thread (reentrancy makes that safe),
but a thread that entered through :meth:`Observatory.ingest_snapshot`
holds no tracer lock, and emitting from inside the observatory lock
would invert the ``emit → observatory`` lock order and deadlock.
"""

from __future__ import annotations

import threading
from pathlib import Path

from ..dashboard import meter_bar
from .detectors import Detector, default_detectors
from .rules import (
    ALERT_SPAN_NAME,
    Alert,
    AlertRule,
    RulesEngine,
    DIMENSIONS,
)
from .stream import SeriesStore

__all__ = ["Observatory", "replay_trace"]

#: Posture penalty per alert severity (posture = 1.0 minus penalties).
_SEVERITY_PENALTY = {"info": 0.1, "warning": 0.25, "critical": 0.5}


class Observatory:
    """Streaming privacy-posture monitor over the telemetry event feed."""

    def __init__(
        self,
        rules: list[AlertRule] | None = None,
        detectors: list[Detector] | None = None,
        capacity: int = 512,
    ):
        self.store = SeriesStore(capacity)
        self.engine = RulesEngine(rules)
        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.alerts: list[Alert] = []
        self.step = 0
        self._tracer = None
        self._ingesting = False
        # span-name → (count series, seconds series): ingestion runs per
        # span, so the two f-string builds and store lookups per event
        # are worth caching (mutated only under ``_lock``).
        self._span_series: dict[str, tuple] = {}
        # Serializes ingestion; reentrant so a directly-recursive
        # process_record (a detector that itself traces, say) degrades
        # to the _ingesting skip instead of self-deadlocking.
        self._lock = threading.RLock()

    # -- live attachment ---------------------------------------------------

    def attach(self, tracer) -> "Observatory":
        """Subscribe to *tracer*; fired alerts are emitted as spans."""
        tracer.add_subscriber(self._on_record)
        self._tracer = tracer
        return self

    def detach(self) -> None:
        """Unsubscribe from the attached tracer (no-op when detached)."""
        if self._tracer is not None:
            self._tracer.remove_subscriber(self._on_record)
            self._tracer = None

    def _on_record(self, record: dict) -> None:
        self.process_record(record, emit=True)

    # -- ingestion ---------------------------------------------------------

    def process_record(self, record: dict, emit: bool = False) -> list[Alert]:
        """Ingest one trace record; returns the alerts it fired.

        Alert spans (``observatory.*``) are skipped — both to keep steps
        identical between a live run and its replay, and so emitting an
        alert from inside the subscriber callback cannot recurse.
        """
        if record.get("type") != "span":
            return []
        if record["name"].startswith("observatory."):
            return []
        with self._lock:
            if self._ingesting:
                return []
            self._ingesting = True
            try:
                self.step += 1
                step = self.step
                self._update_series(record, step)
                fired: list[Alert] = []
                for detector in self.detectors:
                    fired.extend(
                        detector.observe_span(record, step, self.store)
                    )
                fired.extend(self.engine.evaluate(self.store, step))
                self.alerts.extend(fired)
            finally:
                self._ingesting = False
        # Emission deliberately happens after the ingestion lock is
        # released (see the module docstring's lock-order note).
        if emit:
            for alert in fired:
                self._emit_alert(alert)
        return fired

    def ingest_snapshot(self, snapshot: dict) -> list[Alert]:
        """Feed a metrics-registry snapshot to the snapshot detectors.

        Spans never carry the transcript's per-pair SMC byte counters, so
        the traffic-imbalance detector reads them here.  Alerts fired
        from a snapshot are ``source="metric"`` — they are excluded from
        the replay-equality gate because a trace file cannot re-derive
        them.
        """
        with self._lock:
            fired: list[Alert] = []
            for detector in self.detectors:
                fired.extend(detector.observe_snapshot(snapshot, self.step))
            self.alerts.extend(fired)
        for alert in fired:
            self._emit_alert(alert)
        return fired

    def _update_series(self, record: dict, step: int) -> None:
        name = record["name"]
        attrs = record["attrs"]
        series = self.store.series
        cached = self._span_series.get(name)
        if cached is None:
            cached = (series(f"span.{name}"), series(f"span.{name}.seconds"))
            self._span_series[name] = cached
        cached[0].append(step, 1.0)
        cached[1].append(step, record["duration"])
        if name == "qdb.query":
            series("qdb.refused").append(
                step, 1.0 if attrs.get("refused") is True else 0.0
            )
            size = attrs.get("query_set_size", -1)
            if isinstance(size, int) and size >= 0:
                series("qdb.query_set_size").append(step, float(size))
        elif name == "faults.degrade":
            series("faults.degrade").append(step, 1.0)
        elif name == "pir.retrieve_batch":
            series("pir.batch_queries").append(
                step, float(attrs.get("n_queries", 0))
            )

    def _register(self, alert: Alert, emit: bool) -> None:
        with self._lock:
            self.alerts.append(alert)
        if emit:
            self._emit_alert(alert)

    def _emit_alert(self, alert: Alert) -> None:
        """Emit one alert span.  Never call while holding ``_lock``."""
        tracer = self._tracer
        if tracer is not None:
            with tracer.span(ALERT_SPAN_NAME, **alert.span_attrs()):
                pass

    # -- read-out ----------------------------------------------------------

    def alerts_for(self, dimension: str) -> list[Alert]:
        """Fired alerts threatening one privacy dimension."""
        return [a for a in self.alerts if a.dimension == dimension]

    def span_alerts(self) -> list[Alert]:
        """Alerts derived from the span stream (the replayable subset)."""
        return [a for a in self.alerts if a.source == "span"]

    def posture(self) -> dict[str, float]:
        """Per-dimension posture score in [0, 1]: 1.0 minus alert penalties.

        >>> obs = Observatory(rules=[], detectors=[])
        >>> obs.posture()
        {'respondent': 1.0, 'owner': 1.0, 'user': 1.0}
        """
        scores = {dimension: 1.0 for dimension in DIMENSIONS}
        for alert in self.alerts:
            penalty = _SEVERITY_PENALTY.get(alert.severity, 0.25)
            scores[alert.dimension] = max(
                0.0, scores[alert.dimension] - penalty
            )
        return scores

    def render(self, title: str = "privacy observatory") -> str:
        """Posture meters per dimension beside the fired alerts."""
        lines = [title, "=" * len(title), ""]
        scores = self.posture()
        for dimension in DIMENSIONS:
            count = len(self.alerts_for(dimension))
            suffix = f"{count} alert{'s' if count != 1 else ''}"
            lines.append(
                f"  {dimension:<11s} {meter_bar(scores[dimension])} "
                f"{scores[dimension]:5.2f}  {suffix}"
            )
        lines.append("")
        lines.append(f"events ingested: {self.step}")
        lines.append(f"alerts fired: {len(self.alerts)}")
        for alert in self.alerts:
            lines.append(
                f"  [{alert.severity:<8s}] step {alert.step:>5d} "
                f"{alert.name} ({alert.dimension})"
            )
            lines.append(f"      {alert.detail}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Observatory(step={self.step}, alerts={len(self.alerts)}, "
            f"attached={self._tracer is not None})"
        )


def replay_trace(
    trace: str | Path | list[dict],
    rules: list[AlertRule] | None = None,
    detectors: list[Detector] | None = None,
    on_alert=None,
) -> Observatory:
    """Re-derive the observatory state from a captured trace.

    *trace* is a JSONL path or an already-parsed record list.  Records
    are processed in capture order with no tracer attached (nothing is
    emitted); ``on_alert(alert, record)`` — when given — is called as
    each alert fires, which is how ``repro observe --follow`` narrates
    the replay.
    """
    if isinstance(trace, (str, Path)):
        from ..report import read_trace

        records = read_trace(trace, validate=True)
    else:
        records = trace
    observatory = Observatory(rules=rules, detectors=detectors)
    for record in records:
        fired = observatory.process_record(record)
        if on_alert is not None:
            for alert in fired:
                on_alert(alert, record)
    return observatory
