"""Privacy observatory: streaming windows, detectors, alerting, export.

The observatory rides the telemetry substrate (PR 3): it subscribes to
the live tracer, folds finished spans into windowed step-indexed series
(:mod:`.stream`), runs online attack detectors (:mod:`.detectors`) and
declarative SLO rules (:mod:`.rules`) after every event, and emits fired
alerts back into the trace as ``observatory.alert`` spans.  Captured
traces replay to the identical alert set (:func:`replay_trace`), which
``make observe-smoke`` holds against a committed golden trace
(:mod:`.smoke`).  Registry snapshots export to OpenMetrics text or JSONL
(:mod:`.exporters`).  The :mod:`.service` subpackage promotes all of it
to a resident HTTP service — SSE event stream, OpenMetrics scrape,
per-session timelines, and self-verifying incident bundles — driven in
CI by a deterministic concurrent load generator
(``make observe-serve-smoke``).

Everything is stdlib-only and strictly inert when telemetry is disabled:
no tracer exists, nothing subscribes, hot paths keep their seed-identical
fast paths.
"""

from .detectors import (
    DegradationBurstDetector,
    Detector,
    PIRAccessSkewDetector,
    SMCImbalanceDetector,
    TrackerProbeDetector,
    default_detectors,
)
from .exporters import (
    OPENMETRICS_CONTENT_TYPE,
    parse_openmetrics,
    read_snapshot_jsonl,
    render_openmetrics,
    sanitize_name,
    sanitized_snapshot,
    split_metric_name,
    write_snapshot_jsonl,
)
from .observatory import Observatory, replay_trace
from .rules import (
    ALERT_SPAN_NAME,
    Alert,
    AlertRule,
    AlertSchemaError,
    DIMENSIONS,
    RulesEngine,
    SEVERITIES,
    default_rules,
    validate_alert_record,
)
from .stream import (
    HistogramSeries,
    Series,
    SeriesStore,
    WindowAggregate,
    quantile_from_buckets,
)

__all__ = [
    "ALERT_SPAN_NAME",
    "Alert",
    "AlertRule",
    "AlertSchemaError",
    "DIMENSIONS",
    "DegradationBurstDetector",
    "Detector",
    "OPENMETRICS_CONTENT_TYPE",
    "HistogramSeries",
    "Observatory",
    "PIRAccessSkewDetector",
    "RulesEngine",
    "SEVERITIES",
    "SMCImbalanceDetector",
    "Series",
    "SeriesStore",
    "TrackerProbeDetector",
    "WindowAggregate",
    "default_detectors",
    "default_rules",
    "parse_openmetrics",
    "quantile_from_buckets",
    "read_snapshot_jsonl",
    "render_openmetrics",
    "replay_trace",
    "sanitize_name",
    "sanitized_snapshot",
    "split_metric_name",
    "validate_alert_record",
    "write_snapshot_jsonl",
]
