"""Windowed time-series over telemetry events — the observatory's memory.

Everything here is indexed by **step**, a monotonic event counter (one
step per finished span the observatory ingests), never by wall-clock
time: a captured trace replays into bit-identical series and alert
decisions on any machine, which is what makes the golden-trace smoke
gate possible.

* :class:`Series` — a fixed-capacity ring buffer of ``(step, value)``
  samples with O(1) append and cheap tumbling/sliding window views.
* :class:`HistogramSeries` — cumulative fixed-bucket snapshots sampled
  from a registry histogram; window deltas yield p50/p95 without raw
  samples (:func:`quantile_from_buckets`).
* :class:`SeriesStore` — the named collection detectors and alert rules
  read from.

Thread model: each series takes a small per-object lock around appends
and window reads, so the observatory service's HTTP threads can sample
window aggregates while the ingestion thread appends — a reader always
sees a consistent ring (never a half-written slot), and lifetime
``count``/``total`` stay exact under concurrent writers.  Window
aggregates themselves are frozen value objects, safe to share freely.

>>> s = Series("qdb.refused", capacity=4)
>>> for step, value in enumerate([0, 1, 1, 0, 1], start=1):
...     s.append(step, value)
>>> len(s), s.values()        # capacity 4: the oldest sample fell out
(4, [1.0, 1.0, 0.0, 1.0])
>>> s.window(2).mean
0.5
"""

from __future__ import annotations

import math
import threading
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = [
    "HistogramSeries",
    "Series",
    "SeriesStore",
    "WindowAggregate",
    "quantile_from_buckets",
]

#: Default ring-buffer capacity per series (samples, not bytes).
DEFAULT_CAPACITY = 512


def quantile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Conservative quantile estimate from fixed histogram buckets.

    ``bounds`` are the sorted upper edges; ``counts`` has one extra entry
    for the ``+inf`` overflow bucket.  Returns the upper edge of the
    bucket containing the ``q``-quantile observation — an upper bound on
    the true quantile, which is the honest direction for latency SLOs.
    Returns ``0.0`` for an empty histogram and ``inf`` when the quantile
    lands in the overflow bucket.

    >>> quantile_from_buckets((0.001, 0.01, 0.1), (5, 3, 2, 0), 0.5)
    0.001
    >>> quantile_from_buckets((0.001, 0.01, 0.1), (5, 3, 2, 0), 0.95)
    0.1
    >>> quantile_from_buckets((0.001,), (0, 3), 0.5)
    inf
    """
    if len(counts) != len(bounds) + 1:
        raise ValueError("counts must have one entry per bound plus overflow")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += count
        if cumulative >= rank:
            return float(bound)
    return math.inf


@dataclass(frozen=True)
class WindowAggregate:
    """Aggregates over one window of ``(step, value)`` samples."""

    steps: tuple[int, ...]
    values: tuple[float, ...]

    @property
    def count(self) -> int:
        """Number of samples in the window."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of the window's values."""
        return float(sum(self.values))

    @property
    def mean(self) -> float:
        """Mean value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def last(self) -> float:
        """Most recent value (0.0 when empty)."""
        return self.values[-1] if self.values else 0.0

    @property
    def max(self) -> float:
        """Largest value (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    @property
    def delta(self) -> float:
        """Last minus first value — growth of a sampled counter."""
        if len(self.values) < 2:
            return 0.0
        return self.values[-1] - self.values[0]

    @property
    def rate(self) -> float:
        """Delta per step — the event-time analogue of a per-second rate."""
        if len(self.steps) < 2:
            return 0.0
        span = self.steps[-1] - self.steps[0]
        return self.delta / span if span else 0.0

    def percentile(self, q: float) -> float:
        """Exact ``q``-quantile of the raw window samples (0.0 when empty)."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def aggregate(self, kind: str, q: float | None = None) -> float:
        """Dispatch by aggregate name (the rule engine's selector)."""
        if kind == "p50":
            return self.percentile(0.5)
        if kind == "p95":
            return self.percentile(0.95)
        if kind == "percentile":
            return self.percentile(0.95 if q is None else q)
        if kind in ("count", "total", "mean", "last", "max", "delta", "rate"):
            return float(getattr(self, kind))
        raise ValueError(f"unknown window aggregate {kind!r}")


class Series:
    """A fixed-capacity ring buffer of ``(step, value)`` samples.

    Appending past capacity overwrites the oldest sample; ``count`` and
    ``total`` keep running lifetime totals so rates survive eviction.
    """

    __slots__ = ("name", "capacity", "_steps", "_values", "_size", "_next",
                 "count", "total", "_lock")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self._steps = [0] * capacity
        self._values = [0.0] * capacity
        self._size = 0
        self._next = 0
        self.count = 0      # lifetime samples (evicted ones included)
        self.total = 0.0    # lifetime value sum
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._size

    def append(self, step: int, value: float) -> None:
        """Record one sample at *step*; exact under concurrent writers."""
        with self._lock:
            self._steps[self._next] = step
            self._values[self._next] = float(value)
            self._next = (self._next + 1) % self.capacity
            if self._size < self.capacity:
                self._size += 1
            self.count += 1
            self.total += value

    def _ordered(self) -> tuple[list[int], list[float]]:
        with self._lock:
            if self._size < self.capacity:
                return self._steps[: self._size], self._values[: self._size]
            head = self._next
            return (self._steps[head:] + self._steps[:head],
                    self._values[head:] + self._values[:head])

    def samples(self) -> list[tuple[int, float]]:
        """Retained samples, oldest first."""
        steps, values = self._ordered()
        return list(zip(steps, values))

    def values(self) -> list[float]:
        """Retained values, oldest first."""
        return self._ordered()[1]

    def window(self, n: int | None = None) -> WindowAggregate:
        """Sliding window over the most recent *n* samples (all if None).

        Copies only the *n* newest samples out of the ring — this runs on
        every ingested event (rule evaluation, service point frames), so
        it must not scale with capacity.
        """
        with self._lock:
            size = self._size
            take = size if n is None or n >= size else n
            if take <= 0:
                return WindowAggregate((), ())
            if size < self.capacity:
                start = size - take
                steps = self._steps[start:size]
                values = self._values[start:size]
            else:
                end = self._next
                start = (end - take) % self.capacity
                if start < end:
                    steps = self._steps[start:end]
                    values = self._values[start:end]
                else:
                    steps = self._steps[start:] + self._steps[:end]
                    values = self._values[start:] + self._values[:end]
        return WindowAggregate(tuple(steps), tuple(values))

    def window_reduce(
        self, kind: str, n: int | None = None, q: float | None = None
    ) -> tuple[int, float]:
        """``(sample count, aggregate)`` over the last *n* samples.

        The rule engine calls this on every ingested event, so the
        common reductions (count/total/mean/last/max) run over a bare
        value slice under the lock — no step copy, no tuple conversion,
        no :class:`WindowAggregate` — with arithmetic identical to the
        corresponding aggregate property.  Other kinds fall back to
        :meth:`window`.
        """
        if kind not in ("count", "total", "mean", "last", "max"):
            window = self.window(n)
            return window.count, window.aggregate(kind, q)
        with self._lock:
            size = self._size
            take = size if n is None or n >= size else n
            if take <= 0:
                return 0, 0.0
            if kind == "count":
                return take, float(take)
            values = self._values
            if size < self.capacity:
                if kind == "last":
                    return take, values[size - 1]
                segment = values[size - take: size]
            else:
                end = self._next
                if kind == "last":
                    return take, values[(end - 1) % self.capacity]
                start = (end - take) % self.capacity
                if start < end:
                    segment = values[start:end]
                else:
                    segment = values[start:] + values[:end]
            if kind == "total":
                return take, float(sum(segment))
            if kind == "mean":
                return take, float(sum(segment)) / take
            return take, float(max(segment))

    def since(self, step: int) -> WindowAggregate:
        """Tumbling window: every retained sample with ``step >= step``."""
        steps, values = self._ordered()
        start = 0
        while start < len(steps) and steps[start] < step:
            start += 1
        return WindowAggregate(tuple(steps[start:]), tuple(values[start:]))

    def __repr__(self) -> str:
        return f"Series({self.name!r}, size={self._size}/{self.capacity})"


class HistogramSeries:
    """Cumulative histogram snapshots; windows difference the buckets.

    Each sample is the histogram's *cumulative* state at a step; a window
    subtracts the first snapshot from the last, so p50/p95 describe only
    the observations that arrived inside the window.
    """

    __slots__ = ("name", "bounds", "_snaps", "_snaps_buckets", "_lock")

    def __init__(self, name: str, bounds: Sequence[float],
                 capacity: int = 64):
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self._snaps = Series(name + ".__snaps", capacity)
        # The value slot of each Series sample indexes into a parallel
        # list of bucket tuples; the lock keeps them in lockstep.
        self._snaps_buckets: list[tuple[int, ...]] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._snaps_buckets)

    def append(self, step: int, bucket_counts: Sequence[int]) -> None:
        """Record the histogram's cumulative bucket counts at *step*."""
        if len(bucket_counts) != len(self.bounds) + 1:
            raise ValueError("bucket_counts must match bounds (+overflow)")
        with self._lock:
            if len(self._snaps_buckets) >= self._snaps.capacity:
                self._snaps_buckets.pop(0)
            self._snaps_buckets.append(tuple(int(c) for c in bucket_counts))
            self._snaps.append(step, float(sum(bucket_counts)))

    def window_buckets(self, n: int | None = None) -> tuple[int, ...]:
        """Per-bucket observation counts inside the last-*n*-snapshot window."""
        with self._lock:
            snaps = self._snaps_buckets
            if not snaps:
                return tuple([0] * (len(self.bounds) + 1))
            if n is None or n >= len(snaps):
                return snaps[-1]
            first, last = snaps[-n - 1], snaps[-1]
            return tuple(b - a for a, b in zip(first, last))

    def quantile(self, q: float, window: int | None = None) -> float:
        """Windowed quantile upper bound via :func:`quantile_from_buckets`."""
        return quantile_from_buckets(self.bounds, self.window_buckets(window), q)


class SeriesStore:
    """Named series with get-or-create semantics (the detectors' input)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self._series: dict[str, Series] = {}
        self._histograms: dict[str, HistogramSeries] = {}
        self._lock = threading.Lock()

    def series(self, name: str) -> Series:
        """Get or create the named scalar series."""
        series = self._series.get(name)
        if series is None:
            with self._lock:
                series = self._series.get(name)
                if series is None:
                    series = Series(name, self.capacity)
                    self._series[name] = series
        return series

    def histogram_series(
        self, name: str, bounds: Sequence[float]
    ) -> HistogramSeries:
        """Get or create the named histogram-snapshot series."""
        series = self._histograms.get(name)
        if series is None:
            with self._lock:
                series = self._histograms.get(name)
                if series is None:
                    series = HistogramSeries(name, bounds)
                    self._histograms[name] = series
        return series

    def get(self, name: str) -> Series | None:
        """The named scalar series, or None if never written."""
        return self._series.get(name)

    def names(self) -> list[str]:
        """Sorted names of every scalar series."""
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series or name in self._histograms

    def __repr__(self) -> str:
        return (f"SeriesStore(series={len(self._series)}, "
                f"histograms={len(self._histograms)})")
