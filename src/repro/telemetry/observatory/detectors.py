"""Online attack detectors over the telemetry stream.

Each detector consumes finished span records (and, for the SMC detector,
registry snapshots) and fires typed :class:`~.rules.Alert` records when
the stream matches a known erosion pattern from the paper:

* :class:`TrackerProbeDetector` — the Sect. 3 Schlörer tracker issues a
  padding query ``q(C1)`` and an individual tracker ``q(C1 AND NOT C2)``
  whose query sets differ by the target alone.  The wire signature is a
  pair of COUNT probes where one predicate *contains* the other, the
  containing one carries a negation, and the query-set sizes differ by at
  most a couple of records — fired at the COUNT stage, strictly before
  the attacker's differencing SUM pair can run.
* :class:`PIRAccessSkewDetector` — the Sect. 4 isolation attack drives a
  PIR front-end with range probes that concentrate on the cells isolating
  a victim.  Skewed per-block retrieval mass is the precursor.
* :class:`SMCImbalanceDetector` — per-pair payload-byte counters from the
  :class:`~repro.smc.party.Transcript`; a party that receives protocol
  traffic but never speaks is crashed or silently harvesting shares.
* :class:`DegradationBurstDetector` — a burst of ``faults.degrade``
  decisions means the runtime is trading guarantees for availability
  faster than an operator would sign off on.

Detectors are deterministic functions of the event stream (steps, never
wall-clock), so a captured trace replays to the identical alert set —
the property the golden-trace gate (:mod:`.smoke`) asserts.
"""

from __future__ import annotations

from collections import deque

from .rules import Alert
from .stream import SeriesStore

__all__ = [
    "DegradationBurstDetector",
    "Detector",
    "PIRAccessSkewDetector",
    "SMCImbalanceDetector",
    "TrackerProbeDetector",
    "default_detectors",
    "pair_traffic_from_counters",
]


class Detector:
    """Base class: a stateful consumer of the telemetry event stream."""

    #: Detector name, used as the fired alerts' ``alert`` attribute.
    name = "detector"

    def observe_span(
        self, record: dict, step: int, store: SeriesStore
    ) -> list[Alert]:
        """React to one finished span record; return newly fired alerts."""
        return []

    def observe_snapshot(self, snapshot: dict, step: int) -> list[Alert]:
        """React to a metrics-registry snapshot; return newly fired alerts."""
        return []


class TrackerProbeDetector(Detector):
    """Flags Schlörer-style padding/tracker COUNT probe pairs.

    A probe pair (earlier predicate ``P``, later predicate ``Q``) matches
    when ``P`` is a strict substring of ``Q``, ``Q`` negates a term
    (``"(NOT "``), and the query-set sizes differ by at most
    ``max_count_diff`` records — i.e. the difference query isolates a
    handful of individuals.  Innocent drill-downs (``height > 170`` vs
    ``(height > 170 AND weight > 80)``) share the containment but carve
    off a *large* sub-population and carry no negation, so they pass.

    Refused probes still count: the span records the query-set size the
    engine computed before policy review, and an attacker probing against
    an auditing policy generates exactly this refused-pair traffic.
    """

    name = "tracker-probe"

    def __init__(self, window: int = 16, max_count_diff: float = 2.0):
        self.window = window
        self.max_count_diff = float(max_count_diff)
        self._probes: deque[tuple[str, int, int]] = deque(maxlen=window)
        self._fired: set[str] = set()

    def observe_span(
        self, record: dict, step: int, store: SeriesStore
    ) -> list[Alert]:
        if record["name"] != "qdb.query":
            return []
        attrs = record["attrs"]
        if attrs.get("aggregate") != "COUNT":
            return []
        predicate = attrs.get("predicate") or ""
        size = attrs.get("query_set_size", -1)
        if not predicate or not isinstance(size, int) or size < 0:
            return []
        alerts: list[Alert] = []
        if "(NOT " in predicate and predicate not in self._fired:
            for earlier, earlier_size, _ in reversed(self._probes):
                if earlier == predicate or earlier not in predicate:
                    continue
                diff = earlier_size - size
                if 0 <= diff <= self.max_count_diff:
                    self._fired.add(predicate)
                    refusal_rate = 0.0
                    refused = store.get("qdb.refused")
                    if refused is not None:
                        refusal_rate = refused.window(self.window).mean
                    alerts.append(Alert(
                        name=self.name,
                        severity="critical",
                        dimension="respondent",
                        step=step,
                        value=float(diff),
                        threshold=self.max_count_diff,
                        detail=(
                            f"padding/tracker pair isolates {diff:g} "
                            f"record(s): [{earlier}] minus [{predicate}]; "
                            f"recent refusal rate {refusal_rate:.2f}"
                        ),
                    ))
                    break
        self._probes.append((predicate, size, step))
        return alerts


class PIRAccessSkewDetector(Detector):
    """Flags retrieval mass concentrating on few PIR blocks.

    The servers cannot see access patterns (that is the point of PIR);
    this is *client-side* telemetry for the database operator, who can —
    and under the Sect. 4 attack should — notice a front-end hammering
    the cells that isolate one respondent.

    Single retrievals contribute their ``block`` attribute; batched
    retrievals contribute their precomputed ``top_block`` / ``top_count``
    summary (per-block lists are not span-schema scalars).
    """

    name = "pir-access-skew"

    def __init__(self, min_retrievals: int = 12, max_top_share: float = 0.5):
        self.min_retrievals = min_retrievals
        self.max_top_share = float(max_top_share)
        self._block_counts: dict[int, int] = {}
        self._total = 0
        self._fired: set[int] = set()

    def _ingest(self, block: int, count: int, total: int) -> None:
        self._block_counts[block] = self._block_counts.get(block, 0) + count
        self._total += total

    def observe_span(
        self, record: dict, step: int, store: SeriesStore
    ) -> list[Alert]:
        name = record["name"]
        attrs = record["attrs"]
        if name == "pir.retrieve":
            block = attrs.get("block")
            if isinstance(block, int) and not isinstance(block, bool):
                self._ingest(block, 1, 1)
        elif name == "pir.retrieve_batch":
            top_block = attrs.get("top_block")
            top_count = attrs.get("top_count")
            n_queries = attrs.get("n_queries", 0)
            if isinstance(top_block, int) and isinstance(top_count, int):
                self._ingest(top_block, top_count, int(n_queries))
        else:
            return []
        if self._total < self.min_retrievals:
            return []
        top = max(self._block_counts, key=self._block_counts.get)
        share = self._block_counts[top] / self._total
        if share < self.max_top_share or top in self._fired:
            return []
        self._fired.add(top)
        return [Alert(
            name=self.name,
            severity="warning",
            dimension="respondent",
            step=step,
            value=float(share),
            threshold=self.max_top_share,
            detail=(
                f"block {top} drew {self._block_counts[top]} of "
                f"{self._total} retrievals ({share:.0%}) — isolation-attack "
                f"precursor (Sect. 4)"
            ),
        )]


def pair_traffic_from_counters(
    counters: dict,
) -> dict[tuple[str, str, str], int]:
    """Per-pair SMC byte totals from registry counter names.

    The :class:`~repro.smc.party.Transcript` names its per-pair counters
    ``smc.payload_bytes[<protocol>|<sender>-><receiver>]``; this parses
    them back into ``(protocol, sender, receiver) -> bytes``.

    >>> pair_traffic_from_counters(
    ...     {"smc.payload_bytes[ring-sum|P0->P1]": 24, "smc.rounds": 3})
    {('ring-sum', 'P0', 'P1'): 24}
    """
    prefix = "smc.payload_bytes["
    traffic: dict[tuple[str, str, str], int] = {}
    for name, value in counters.items():
        if not (name.startswith(prefix) and name.endswith("]")):
            continue
        inner = name[len(prefix):-1]
        protocol, _, pair = inner.partition("|")
        sender, arrow, receiver = pair.partition("->")
        if not arrow:
            continue
        traffic[(protocol, sender, receiver)] = int(value)
    return traffic


class SMCImbalanceDetector(Detector):
    """Flags parties that receive protocol traffic but never send any.

    In every healthy protocol here (ring sum, additive shares) each party
    both speaks and listens.  A silent receiver is either crashed — its
    share of the aggregate is about to be excluded — or a harvesting
    endpoint collecting other owners' masked shares, so the alert guards
    the owner dimension.  Runs off metrics snapshots because SMC traffic
    lives in transcript counters, not spans.
    """

    name = "smc-traffic-imbalance"

    def __init__(self, min_received_bytes: int = 8):
        self.min_received_bytes = min_received_bytes
        self._fired: set[str] = set()

    def observe_snapshot(self, snapshot: dict, step: int) -> list[Alert]:
        traffic = pair_traffic_from_counters(snapshot.get("counters", {}))
        if not traffic:
            return []
        sent: dict[str, int] = {}
        received: dict[str, int] = {}
        for (_, sender, receiver), nbytes in traffic.items():
            sent[sender] = sent.get(sender, 0) + nbytes
            received[receiver] = received.get(receiver, 0) + nbytes
        alerts: list[Alert] = []
        for party in sorted(received):
            if party in self._fired:
                continue
            got = received[party]
            spoke = sent.get(party, 0)
            if got >= self.min_received_bytes and spoke == 0:
                self._fired.add(party)
                alerts.append(Alert(
                    name=self.name,
                    severity="warning",
                    dimension="owner",
                    step=step,
                    value=float(got),
                    threshold=float(self.min_received_bytes),
                    detail=(
                        f"party {party} received {got} payload bytes but "
                        f"sent none — crashed or silently collecting shares"
                    ),
                    source="metric",
                ))
        return alerts


#: Which privacy dimension a degradation in each component erodes first:
#: PIR fallbacks weaken the retrieval privacy of the *user*, SMC
#: exclusions touch the *owners'* pooled computation, qdb failovers sit
#: in front of the *respondents'* records.
_DEGRADE_DIMENSION = {"pir": "user", "smc": "owner", "qdb": "respondent"}


class DegradationBurstDetector(Detector):
    """Flags bursts of fault-layer degradation decisions.

    One ``faults.degrade`` span is a survivable incident; ``burst`` of
    them within ``window_steps`` events means guarantees are being traded
    away faster than anyone is reviewing them.  Fires once per run; the
    dimension follows the most frequent degrading component.
    """

    name = "degradation-burst"

    def __init__(self, burst: int = 3, window_steps: int = 256):
        self.burst = burst
        self.window_steps = window_steps
        self._events: deque[tuple[int, str]] = deque()
        self._fired = False

    def observe_span(
        self, record: dict, step: int, store: SeriesStore
    ) -> list[Alert]:
        if record["name"] != "faults.degrade":
            return []
        component = record["attrs"].get("component", "?")
        self._events.append((step, component))
        while self._events and self._events[0][0] <= step - self.window_steps:
            self._events.popleft()
        if self._fired or len(self._events) < self.burst:
            return []
        self._fired = True
        by_component: dict[str, int] = {}
        for _, name in self._events:
            by_component[name] = by_component.get(name, 0) + 1
        # Most frequent component decides the dimension; ties break on
        # sorted name so replay stays deterministic.
        top = max(sorted(by_component), key=by_component.get)
        summary = ", ".join(
            f"{name}:{count}" for name, count in sorted(by_component.items())
        )
        return [Alert(
            name=self.name,
            severity="warning",
            dimension=_DEGRADE_DIMENSION.get(top, "respondent"),
            step=step,
            value=float(len(self._events)),
            threshold=float(self.burst),
            detail=(
                f"{len(self._events)} degradation decisions within "
                f"{self.window_steps} events ({summary})"
            ),
        )]


def default_detectors() -> list[Detector]:
    """One instance of every stock detector (fresh state)."""
    return [
        TrackerProbeDetector(),
        PIRAccessSkewDetector(),
        SMCImbalanceDetector(),
        DegradationBurstDetector(),
    ]
