"""Declarative alerting: rules over windowed series, typed alert records.

An :class:`AlertRule` names a series, a window, an aggregate and a
threshold — plus the *privacy dimension* (respondent / owner / user) the
paper's framework says the condition threatens.  The :class:`RulesEngine`
evaluates every rule against the observatory's :class:`SeriesStore` after
each ingested event and fires each rule at most once, producing frozen
:class:`Alert` records.

Alerts are themselves emitted as ``observatory.alert`` spans with the
frozen attribute schema :data:`ALERT_ATTRS`, so a captured trace carries
its own incident log and ``repro observe`` can reconstruct — and
re-derive, for the golden gate — exactly which alerts fired and when.

>>> from repro.telemetry.observatory.stream import SeriesStore
>>> store = SeriesStore()
>>> for step in range(1, 9):
...     store.series("qdb.refused").append(step, 1.0)
>>> rule = AlertRule(name="refusal-rate", series="qdb.refused", window=8,
...                  aggregate="mean", op=">=", threshold=0.5,
...                  dimension="respondent", min_count=4)
>>> engine = RulesEngine([rule])
>>> [a.name for a in engine.evaluate(store, step=8)]
['refusal-rate']
>>> engine.evaluate(store, step=9)     # each rule fires at most once
[]
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .stream import SeriesStore

__all__ = [
    "ALERT_ATTRS",
    "ALERT_SPAN_NAME",
    "Alert",
    "AlertRule",
    "AlertSchemaError",
    "DIMENSIONS",
    "RulesEngine",
    "SEVERITIES",
    "default_rules",
    "validate_alert_record",
]

#: The three privacy dimensions of the paper (Table 2 rows).
DIMENSIONS = ("respondent", "owner", "user")

#: Allowed alert severities, mildest first.
SEVERITIES = ("info", "warning", "critical")

#: Span name carrying an alert record in a trace.
ALERT_SPAN_NAME = "observatory.alert"

#: Frozen attribute schema of an ``observatory.alert`` span.
ALERT_ATTRS: dict[str, tuple[type, ...]] = {
    "alert": (str,),
    "severity": (str,),
    "dimension": (str,),
    "step": (int,),
    "value": (int, float),
    "threshold": (int, float),
    "detail": (str,),
    "source": (str,),
}

#: Allowed values of the ``source`` attribute: alerts derived from the
#: span stream replay deterministically; alerts derived from a metrics
#: snapshot exist only when the caller ingested one.
ALERT_SOURCES = ("span", "metric")


class AlertSchemaError(ValueError):
    """An alert span does not conform to :data:`ALERT_ATTRS`."""


@dataclass(frozen=True)
class Alert:
    """One fired alert — the typed record behind an alert span."""

    name: str
    severity: str
    dimension: str
    step: int
    value: float
    threshold: float
    detail: str = ""
    source: str = "span"

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.dimension not in DIMENSIONS:
            raise ValueError(f"unknown dimension {self.dimension!r}")
        if self.source not in ALERT_SOURCES:
            raise ValueError(f"unknown alert source {self.source!r}")

    def span_attrs(self) -> dict:
        """The alert as ``observatory.alert`` span attributes."""
        return {
            "alert": self.name,
            "severity": self.severity,
            "dimension": self.dimension,
            "step": self.step,
            "value": float(self.value),
            "threshold": float(self.threshold),
            "detail": self.detail,
            "source": self.source,
        }

    @classmethod
    def from_span_attrs(cls, attrs: dict) -> "Alert":
        """Rebuild the alert from a validated alert span's attributes."""
        return cls(
            name=attrs["alert"],
            severity=attrs["severity"],
            dimension=attrs["dimension"],
            step=int(attrs["step"]),
            value=float(attrs["value"]),
            threshold=float(attrs["threshold"]),
            detail=attrs.get("detail", ""),
            source=attrs.get("source", "span"),
        )


def validate_alert_record(record: dict) -> None:
    """Raise :class:`AlertSchemaError` unless *record* is a valid alert span.

    *record* must already be a schema-valid span record (the tracing
    layer's :func:`~repro.telemetry.tracing.validate_record` checks that);
    this validates the observatory's frozen attribute contract on top.
    """
    if record.get("name") != ALERT_SPAN_NAME:
        raise AlertSchemaError(
            f"not an alert span: name={record.get('name')!r}"
        )
    attrs = record.get("attrs", {})
    for key, types in ALERT_ATTRS.items():
        if key not in attrs:
            raise AlertSchemaError(f"alert span missing attr {key!r}")
        if not isinstance(attrs[key], types) or isinstance(attrs[key], bool):
            raise AlertSchemaError(
                f"alert attr {key!r} has invalid type "
                f"{type(attrs[key]).__name__}"
            )
    if attrs["severity"] not in SEVERITIES:
        raise AlertSchemaError(f"unknown severity {attrs['severity']!r}")
    if attrs["dimension"] not in DIMENSIONS:
        raise AlertSchemaError(f"unknown dimension {attrs['dimension']!r}")
    if attrs["source"] not in ALERT_SOURCES:
        raise AlertSchemaError(f"unknown source {attrs['source']!r}")
    if attrs["step"] < 1:
        raise AlertSchemaError("alert step must be >= 1")


_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class AlertRule:
    """A declarative threshold rule over one windowed series.

    ``aggregate`` is any :meth:`~.stream.WindowAggregate.aggregate` kind
    (``mean``/``rate``/``delta``/``count``/``total``/``last``/``max``/
    ``p50``/``p95``); the rule fires when ``aggregate(window) op
    threshold`` holds and the window holds at least ``min_count`` samples.
    """

    name: str
    series: str
    window: int | None
    aggregate: str
    op: str
    threshold: float
    dimension: str
    severity: str = "warning"
    min_count: int = 1
    description: str = ""

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison {self.op!r}")
        if self.dimension not in DIMENSIONS:
            raise ValueError(f"unknown dimension {self.dimension!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def evaluate(self, store: SeriesStore, step: int) -> Alert | None:
        """The alert this rule fires at *step*, or None."""
        series = store.get(self.series)
        if series is None:
            return None
        count, value = series.window_reduce(self.aggregate, self.window)
        if count < self.min_count:
            return None
        if not _OPS[self.op](value, self.threshold):
            return None
        detail = self.description or (
            f"{self.aggregate}({self.series}"
            f"[{self.window if self.window is not None else 'all'}]) "
            f"= {value:g} {self.op} {self.threshold:g}"
        )
        return Alert(
            name=self.name,
            severity=self.severity,
            dimension=self.dimension,
            step=step,
            value=float(value),
            threshold=float(self.threshold),
            detail=detail,
        )


class RulesEngine:
    """Evaluates rules after each event; each rule fires at most once.

    One-shot firing keeps incident logs readable and replay-deterministic:
    a sustained condition produces a single alert at the first step it
    held, not one alert per subsequent event.
    """

    def __init__(self, rules: list[AlertRule] | None = None):
        self.rules = list(rules) if rules is not None else default_rules()
        self._pending: list[AlertRule] = list(self.rules)
        # Guards the armed-rule list so concurrent evaluations (live
        # ingestion racing a metrics-snapshot ingest) never double-fire
        # a one-shot rule.
        self._lock = threading.Lock()
        # Lifetime sample count of each rule's series at its last
        # evaluation, keyed by rule name.  A rule's window aggregate can
        # only change when its series gains a sample, so re-evaluating on
        # unrelated events is pure waste — and this engine runs on *every*
        # ingested span.  Skipping is semantics-preserving: a threshold
        # can only be crossed at an append, which is exactly when the
        # count moves, so the firing step is unchanged (live and replay
        # both take this path, keeping them identical).
        self._evaluated_at: dict[str, int] = {}

    def evaluate(self, store: SeriesStore, step: int) -> list[Alert]:
        """Newly fired alerts at *step* (armed rules only)."""
        with self._lock:
            if not self._pending:
                return []
            fired: list[Alert] = []
            still_armed: list[AlertRule] = []
            for rule in self._pending:
                series = store.get(rule.series)
                count = series.count if series is not None else 0
                if self._evaluated_at.get(rule.name) == count:
                    still_armed.append(rule)
                    continue
                self._evaluated_at[rule.name] = count
                alert = rule.evaluate(store, step)
                if alert is None:
                    still_armed.append(rule)
                else:
                    fired.append(alert)
            if fired:
                self._pending = still_armed
            return fired


def default_rules() -> list[AlertRule]:
    """The stock SLO rules shipped with the observatory.

    Detectors (:mod:`.detectors`) carry the attack-specific logic; these
    declarative rules cover the coarse posture conditions a plain
    threshold can express.
    """
    return [
        # A sustained refusal rate means the protection policies are
        # working overtime — the tracker signature's first half, and on
        # its own a sign the session is probing the respondent dimension.
        AlertRule(
            name="qdb-refusal-rate",
            series="qdb.refused",
            window=16,
            aggregate="mean",
            op=">=",
            threshold=0.5,
            min_count=8,
            dimension="respondent",
            severity="warning",
            description="half of the recent queries were refused",
        ),
        # An absolute refusal pile-up over the whole retained window:
        # even a diluted attack leaves this trail.
        AlertRule(
            name="qdb-refusal-volume",
            series="qdb.refused",
            window=None,
            aggregate="total",
            op=">=",
            threshold=12,
            min_count=12,
            dimension="respondent",
            severity="info",
            description="refusal volume exceeds the session budget",
        ),
    ]
