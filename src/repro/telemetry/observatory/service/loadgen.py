"""Deterministic threaded load generator for the observatory service.

Drives either one shared :class:`~repro.qdb.engine.StatisticalDatabase`
(plus a PIR front-end) or — when constructed with ``runtime=`` — a
sharded :class:`~repro.serving.runtime.ServingRuntime`, from concurrent
threads: a zipfian mix of user sessions issuing statistical queries,
PIR batch retrievals, and — when armed — a bursty tracker cohort
running the Sect. 3 Schlörer attack.  Against a runtime the cohort uses
the *split* tracker (:func:`~repro.serving.attack.split_tracker_attack`)
over sessions pinned to distinct shards, so the ``make serve-smoke``
gate exercises the cross-shard audit path end to end; standalone mode
is what ``make observe-serve-smoke`` drives the HTTP surface with.

Determinism model: the *operation script* (which user label issues which
operation, in which global order) is precomputed from the seed before
any thread starts, then dealt round-robin across threads.  Thread
interleaving varies between runs, but three properties are invariant:

* the multiset of operations each session executes,
* the tracker cohort's probe pairs are *adjacent* in the span stream —
  each attack runs under one continuous hold of the database lock, so
  the tracker-probe detector's containment window always sees the
  padding/tracker COUNT pair back-to-back, and the cohort alert fires
  on every run regardless of scheduling, and
* whatever alert set a given run produces, its capture replays to that
  exact set (the incident bundle's proof) — live/replay equality is
  interleaving-independent even where the interleaving itself is not.

The database lock also documents a real constraint: the engine's audit
history is deliberately a single serialized decision log (policy review
order *is* the privacy semantics), so the serving layer serializes
decisions per database while PIR retrievals run genuinely concurrently.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["LOAD_PROFILES", "LoadGenerator"]

#: Supported traffic profiles.
LOAD_PROFILES = ("mixed", "audit-heavy", "pir-heavy")

#: Fraction of operations that are qdb queries (the rest are PIR), and
#: whether PIR indices concentrate on a hot block, per profile.
_PROFILE_SHAPE = {
    "mixed": {"qdb_share": 0.65, "hot_pir": False},
    "audit-heavy": {"qdb_share": 0.9, "hot_pir": False},
    "pir-heavy": {"qdb_share": 0.3, "hot_pir": True},
}


def zipf_weights(n: int, s: float) -> np.ndarray:
    """Normalized zipfian rank weights: ``w_r ∝ 1/(r+1)^s``."""
    ranks = np.arange(1, n + 1, dtype=float)
    weights = 1.0 / ranks**s
    return weights / weights.sum()


class LoadGenerator:
    """Scripted concurrent load against one shared statistical database.

    Parameters
    ----------
    records, seed:
        Population shape; the defaults match the telemetry smoke
        scenario, whose population is known to contain single-out
        tracker targets.
    threads:
        Worker threads the script is dealt across.
    users:
        Distinct user session labels in the zipfian mix.
    ops:
        Total scripted operations (excluding the tracker cohort).
    profile:
        One of :data:`LOAD_PROFILES`.
    tracker_cohort:
        When True, thread 0 runs the Schlörer tracker against
        ``cohort_targets`` single-out records halfway through its share
        of the script, under the ``"cohort-tracker"`` session label
        (split across ``"cohort-tracker-*"`` labels in runtime mode).
    runtime:
        A started :class:`~repro.serving.runtime.ServingRuntime` to
        drive instead of a private database.  The generator then uses
        the runtime's population, routes every operation through
        ``runtime.ask`` / ``runtime.retrieve_batch_int``, and runs the
        cohort as a cross-shard *split* tracker.
    """

    def __init__(
        self,
        records: int = 150,
        seed: int = 3,
        threads: int = 4,
        users: int = 8,
        ops: int = 96,
        profile: str = "mixed",
        tracker_cohort: bool = True,
        cohort_targets: int = 2,
        zipf_s: float = 1.2,
        pir_blocks: int = 16,
        runtime=None,
    ):
        if profile not in LOAD_PROFILES:
            raise ValueError(
                f"unknown profile {profile!r}; expected one of {LOAD_PROFILES}"
            )
        if threads < 1 or users < 1 or ops < 1:
            raise ValueError("threads, users and ops must all be >= 1")
        self.records = records
        self.seed = seed
        self.threads = threads
        self.users = users
        self.ops = ops
        self.profile = profile
        self.tracker_cohort = tracker_cohort
        self.cohort_targets = cohort_targets
        self.zipf_s = zipf_s
        self.pir_blocks = pir_blocks
        self.runtime = runtime
        self.cohort_label = "cohort-tracker"
        self.cohort_sessions: list[str] | None = None
        self._db_lock = threading.Lock()
        self._built = False

    # -- construction ------------------------------------------------------

    def build(self) -> "LoadGenerator":
        """Materialize the population, engines, targets, and op script."""
        if self._built:
            return self
        from ....sdc import equivalence_classes

        if self.runtime is not None:
            # Runtime mode: the serving runtime owns population, engines
            # and PIR partitions; the generator only scripts traffic.
            self.pop = self.runtime.data
            self.db = None
            self.pir = None
            self._n_pir_blocks = self.runtime.n_blocks
            if self.tracker_cohort:
                self.cohort_sessions = self.runtime.distinct_shard_sessions(
                    self.cohort_label, 2
                )
        else:
            from ....data import patients
            from ....pir.itpir import TwoServerXorPIR
            from ....qdb import (
                QuerySetSizeControl,
                StatisticalDatabase,
                SumAuditPolicy,
            )

            self.pop = patients(self.records, seed=self.seed)
            self.db = StatisticalDatabase(
                self.pop, [QuerySetSizeControl(5), SumAuditPolicy()]
            )
            self.pir = TwoServerXorPIR(
                [int(v) for v in self.pop["blood_pressure"][: self.pir_blocks]]
            )
            self._n_pir_blocks = self.pir.n
        # Single-out records reachable by the height/weight tracker —
        # the same recipe the telemetry smoke scenario uses.
        self.targets = [
            cls.indices[0]
            for cls in equivalence_classes(self.pop, ["height", "weight"])
            if cls.size == 1
            and (self.pop["height"]
                 == self.pop["height"][cls.indices[0]]).sum() >= 6
        ][: self.cohort_targets]
        if self.tracker_cohort and not self.targets:
            raise ValueError(
                f"population (records={self.records}, seed={self.seed}) "
                f"contains no single-out tracker targets"
            )
        self._script = self._build_script()
        self._built = True
        return self

    def _query_pool(self) -> list[str]:
        pool: list[str] = []
        for column in ("height", "weight", "age"):
            for q in (0.25, 0.5, 0.75):
                value = float(np.quantile(self.pop[column], q))
                pool.append(f"SELECT COUNT(*) WHERE {column} > {value:g}")
                pool.append(
                    f"SELECT AVG(blood_pressure) WHERE {column} > {value:g}"
                )
                pool.append(
                    f"SELECT SUM(blood_pressure) WHERE {column} <= {value:g}"
                )
        return pool

    def _build_script(self) -> list[tuple[str, str, object]]:
        """The precomputed (label, kind, payload) operation list."""
        shape = _PROFILE_SHAPE[self.profile]
        rng = np.random.default_rng(self.seed)
        labels = [f"user-{i}" for i in range(self.users)]
        weights = zipf_weights(self.users, self.zipf_s)
        pool = self._query_pool()
        n_blocks = self._n_pir_blocks
        qdb_share = shape["qdb_share"] if n_blocks else 1.0
        if n_blocks and shape["hot_pir"]:
            # Concentrate retrieval mass: the pir-heavy profile exists
            # to trip the access-skew detector on purpose.
            block_weights = zipf_weights(n_blocks, 2.0)
        elif n_blocks:
            block_weights = np.full(n_blocks, 1.0 / n_blocks)
        script: list[tuple[str, str, object]] = []
        for op_index in range(self.ops):
            label = labels[int(rng.choice(self.users, p=weights))]
            if rng.random() < qdb_share:
                query = pool[int(rng.integers(len(pool)))]
                script.append((label, "qdb", query))
            else:
                indices = tuple(
                    int(i) for i in rng.choice(
                        n_blocks, size=4, p=block_weights
                    )
                )
                op_seed = int(self.seed * 10_000 + op_index)
                script.append((label, "pir", (indices, op_seed)))
        return script

    # -- execution ---------------------------------------------------------

    def run(self) -> dict:
        """Execute the script across the worker threads; returns a report."""
        self.build()
        results = [
            {"qdb": 0, "pir": 0, "refusals": 0, "errors": []}
            for _ in range(self.threads)
        ]
        cohort_report: dict = {"attacks": 0, "refusals": 0}
        workers = [
            threading.Thread(
                target=self._worker,
                args=(tid, self._script[tid::self.threads], results[tid],
                      cohort_report),
                name=f"loadgen-{tid}",
                daemon=True,
            )
            for tid in range(self.threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        errors = [err for result in results for err in result["errors"]]
        if errors:
            raise RuntimeError(f"load generator worker failed: {errors[0]}")
        return {
            "profile": self.profile,
            "ops": len(self._script),
            "threads": self.threads,
            "qdb_ops": sum(r["qdb"] for r in results),
            "pir_ops": sum(r["pir"] for r in results),
            "refusals": sum(r["refusals"] for r in results),
            "cohort": dict(cohort_report),
            "sessions": sorted(
                {label for label, _, _ in self._script}
                | (set(self.cohort_sessions or [self.cohort_label])
                   if self.tracker_cohort else set())
            ),
        }

    def _worker(
        self, tid: int, script: list, result: dict, cohort_report: dict
    ) -> None:
        cohort_at = len(script) // 2 if self.tracker_cohort and tid == 0 else -1
        try:
            for op_index, (label, kind, payload) in enumerate(script):
                if op_index == cohort_at:
                    self._run_cohort(cohort_report)
                if kind == "qdb":
                    if self.runtime is not None:
                        answer = self.runtime.ask(label, payload)
                    else:
                        with self._db_lock, self.db.session(label):
                            answer = self.db.ask(payload)
                    result["qdb"] += 1
                    if answer.refused:
                        result["refusals"] += 1
                else:
                    indices, op_seed = payload
                    if self.runtime is not None:
                        self.runtime.retrieve_batch_int(
                            label, list(indices), seed=op_seed
                        )
                    else:
                        self.pir.retrieve_batch(list(indices), rng=op_seed)
                    result["pir"] += 1
            if cohort_at >= len(script):
                self._run_cohort(cohort_report)
        except Exception as exc:  # surfaced by run(); never swallowed
            result["errors"].append(f"{type(exc).__name__}: {exc}")

    def _run_cohort(self, cohort_report: dict) -> None:
        """The bursty tracker cohort: each attack is one atomic db hold.

        Holding the database lock across a whole attack keeps its COUNT
        probe pair adjacent in the span stream, so the tracker-probe
        detector's windowed containment match is deterministic under any
        thread interleaving.  In runtime mode the cohort instead runs
        the cross-shard *split* tracker through the public serving path
        — no lock is available to a tenant, and the sequential awaits
        inside the attack keep the probe pair ordered.
        """
        cohort_report.setdefault("succeeded", 0)
        if self.runtime is not None:
            from ....serving.attack import split_tracker_attack

            for target in self.targets:
                outcome = split_tracker_attack(
                    self.runtime, self.pop, target,
                    ["height", "weight"], "blood_pressure",
                    sessions=self.cohort_sessions,
                )
                cohort_report["attacks"] += 1
                cohort_report["refusals"] += outcome.refusals
                cohort_report["succeeded"] += int(outcome.succeeded)
            return
        from ....qdb import tracker_attack

        for target in self.targets:
            with self._db_lock, self.db.session(self.cohort_label):
                outcome = tracker_attack(
                    self.db, self.pop, target,
                    ["height", "weight"], "blood_pressure",
                )
            cohort_report["attacks"] += 1
            cohort_report["refusals"] += outcome.refusals
            cohort_report["succeeded"] += int(outcome.succeeded)
