"""Resident observatory service: HTTP/SSE surface, sessions, incidents, load.

The service layer promotes the replay-oriented observatory
(:mod:`repro.telemetry.observatory`) into something operable while a
statistical database is live under concurrent sessions:

* :mod:`~repro.telemetry.observatory.service.server` — the stdlib HTTP
  server (OpenMetrics scrape, SSE event stream, session timelines,
  incident export) and the end-to-end serve smoke.
* :mod:`~repro.telemetry.observatory.service.sessions` — per-session
  timelines reconstructed from span ``session`` attributes.
* :mod:`~repro.telemetry.observatory.service.incidents` — one-call
  incident bundles with embedded replay proofs.
* :mod:`~repro.telemetry.observatory.service.loadgen` — the
  deterministic threaded load generator that drives it all.

Everything here is standard library + numpy; there is no web framework.
"""

from .incidents import (
    INCIDENT_BUNDLE_SCHEMA,
    build_incident_bundle,
    narrate_alert,
    verify_incident_bundle,
)
from .loadgen import LOAD_PROFILES, LoadGenerator
from .server import (
    SSE_EVENT_TYPES,
    SSE_SCHEMA_VERSION,
    WATCHED_SERIES,
    EventBus,
    ObservatoryService,
    ServeSmokeError,
    create_server,
    run_serve_smoke,
)
from .sessions import (
    ANONYMOUS_SESSION,
    SESSION_EVENT_FIELDS,
    SESSION_EVENT_KINDS,
    SessionTimelines,
)

__all__ = [
    "ANONYMOUS_SESSION",
    "INCIDENT_BUNDLE_SCHEMA",
    "LOAD_PROFILES",
    "SESSION_EVENT_FIELDS",
    "SESSION_EVENT_KINDS",
    "SSE_EVENT_TYPES",
    "SSE_SCHEMA_VERSION",
    "WATCHED_SERIES",
    "EventBus",
    "LoadGenerator",
    "ObservatoryService",
    "ServeSmokeError",
    "SessionTimelines",
    "build_incident_bundle",
    "create_server",
    "narrate_alert",
    "run_serve_smoke",
    "verify_incident_bundle",
]
