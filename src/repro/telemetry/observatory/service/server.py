"""The resident observatory service: live HTTP surface over the tracer feed.

This module promotes the replay-oriented observatory into a service a
human (or the smoke gate) can point a browser at while a statistical
database is under concurrent load:

``/``
    JSON status: step, posture, alert count, session count, endpoints.
``/metrics``
    OpenMetrics scrape of the process-wide registry snapshot, served
    with the spec content type (single exposition, one ``# EOF``).
``/events``
    Server-sent events: one ``hello`` frame per connection, then
    ``point`` frames (windowed aggregates of :data:`WATCHED_SERIES` +
    posture) every ``emit_every`` ingested spans, ``alert`` frames the
    instant an alert span is published, and a ``bye`` frame at service
    close.  The frame schema is frozen (:data:`SSE_SCHEMA_VERSION`).
``/sessions`` and ``/sessions/<label>``
    Per-session timelines reconstructed from span session attributes.
``/incident``
    One-call incident bundle export with its embedded replay proof.

Thread model: the service's tracer subscriber (``_feed``) runs inside
the tracer's emit lock, serialized with every other record consumer, so
it sees the same total record order the observatory and any capture
sink see.  It must therefore stay fast and non-blocking: it folds the
record into the session timelines and appends to the event bus's polled
ring — no subscriber wakeups, no condition notifies, nothing that hands
the GIL to a consumer thread mid-query.  SSE handler threads drain the
ring on their own clock; a slow client loses overwritten events
(counted, never blocking the measured system).  The subscriber is
registered *before* the observatory's, so the bus always carries a
point's trigger context before the alert derived from it.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from itertools import islice
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import unquote, urlsplit

from ..detectors import default_detectors
from ..exporters import (
    OPENMETRICS_CONTENT_TYPE,
    parse_openmetrics,
    render_openmetrics,
)
from ..observatory import Observatory
from ..rules import ALERT_SPAN_NAME, Alert, default_rules
from ...requesttrace import REQUEST_SPAN_NAME
from .incidents import build_incident_bundle
from .loadgen import LoadGenerator
from .sessions import SessionTimelines

__all__ = [
    "SSE_EVENT_TYPES",
    "SSE_SCHEMA_VERSION",
    "WATCHED_SERIES",
    "EventBus",
    "ObservatoryService",
    "ServeSmokeError",
    "create_server",
    "run_serve_smoke",
]

#: Frozen SSE frame schema version (bump on structural changes).
#: v2: added the ``trace`` frame (one per completed ``serving.request``
#: span, carrying the trace id and stage decomposition) and /traces.
SSE_SCHEMA_VERSION = 2

#: Event types a client may receive, in lifecycle order.
SSE_EVENT_TYPES = ("hello", "point", "alert", "trace", "bye")

#: Series whose windowed aggregates ride in every ``point`` frame —
#: one per paper dimension the detectors watch (respondent: refusals and
#: query-set size; owner: degradation; user: PIR batch shape).
WATCHED_SERIES = (
    "qdb.refused",
    "qdb.query_set_size",
    "faults.degrade",
    "pir.batch_queries",
)


#: How often an SSE handler thread polls the event ring when idle.
#: Bounds event latency; small enough that a dashboard feels live,
#: large enough that an idle connection costs ~20 wakeups/second.
SSE_POLL_SECONDS = 0.05

#: Idle time before a ``: keepalive`` comment is written so proxies and
#: clients can tell a quiet stream from a dead one.
SSE_KEEPALIVE_SECONDS = 1.0


class ServeSmokeError(RuntimeError):
    """The end-to-end serve smoke found a discrepancy."""


class EventBus:
    """Bounded broadcast ring of service events for SSE subscribers.

    ``publish`` is called on the *monitored engine's* thread (inside the
    tracer's emit lock), so it must cost that thread as close to nothing
    as possible.  The bus is therefore polled, not pushed: publishing
    appends to a bounded ring under a short lock — no per-subscriber
    queues, no condition notifies, no wakeup cascade handing the GIL to
    consumer threads in the middle of a measured query — and each SSE
    handler thread drains new events with :meth:`since` on its own
    clock.  Sequence numbers are contiguous, so delivery is gapless and
    duplicate-free across the history-replay/live boundary: a client
    that connects after the interesting part still sees the retained
    ring.  A consumer that falls more than ``history`` events behind
    loses the overwritten ones; the loss is returned to that consumer
    and counted in ``dropped`` (never blocking the measured system).
    """

    def __init__(self, history: int = 256):
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=history)
        self._seq = 0
        self.dropped = 0

    def publish(self, event_type: str, data: dict) -> dict:
        """Append one event to the ring; returns the stamped event."""
        with self._lock:
            self._seq += 1
            event = {"event": event_type, "seq": self._seq, "data": data}
            self._events.append(event)
        return event

    def since(self, last_seq: int) -> tuple[list[dict], int]:
        """Events newer than *last_seq*, plus the count lost to overwrite.

        Returns ``(events, lost)``: every retained event with ``seq >
        last_seq`` in order, and how many the ring overwrote before this
        consumer caught up (0 for a consumer polling faster than the
        ring fills).  Lost events are added to :attr:`dropped`.
        """
        with self._lock:
            behind = self._seq - last_seq
            if behind <= 0:
                return [], 0
            take = min(len(self._events), behind)
            lost = behind - take
            if lost:
                self.dropped += lost
            start = len(self._events) - take
            return list(islice(self._events, start, None)), lost

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq


class ObservatoryService:
    """The observatory, session timelines, and event bus behind one facade.

    The service owns its :class:`Observatory` (built from the given rule
    and detector factories so the incident bundle can hand the *same*
    factories to its replay proof), a :class:`SessionTimelines`, and an
    :class:`EventBus`.  ``attach(tracer)`` wires both the service feed
    and the observatory into the live span stream.

    Failure behaviour: the feed callback runs on the monitored
    engine's thread inside the tracer's emit lock, so it must never
    block and never raise into the engine — bus publishing is a
    bounded append (slow consumers lose history, reported to *them*,
    rather than backpressuring the engine), and ``close()`` detaches
    the feed, publishes the ``bye`` frame, and is idempotent, so a
    crashed HTTP server or an exception mid-smoke can always tear the
    service down without stranding the tracer subscription.  The
    service holds no thread of its own; everything it knows arrived
    via ``observe`` or a reader's HTTP thread.
    """

    def __init__(
        self,
        rules_factory=None,
        detectors_factory=None,
        # Each point frame costs the monitored engine's thread the
        # window aggregation in _point() (consumers poll the ring on
        # their own clock), so the default cadence is a compromise
        # between dashboard smoothness and the serve-mode overhead gate.
        emit_every: int = 16,
        window: int = 16,
        history: int = 512,
    ):
        self._rules_factory = rules_factory or default_rules
        self._detectors_factory = detectors_factory or default_detectors
        self.observatory = Observatory(
            rules=self._rules_factory(),
            detectors=self._detectors_factory(),
        )
        self.sessions = SessionTimelines()
        self.bus = EventBus(history=history)
        self.emit_every = emit_every
        self.window = window
        self._seen = 0
        self._tracer = None
        # Recent serving.request attr dicts (trace id + stage split),
        # newest last; served by /traces and broadcast as trace frames.
        self.traces: deque[dict] = deque(maxlen=256)

    # -- lifecycle ---------------------------------------------------------

    def attach(self, tracer) -> "ObservatoryService":
        """Subscribe to *tracer*: the feed first, then the observatory.

        Registration order matters: the service feed must see each span
        record *before* the observatory's processing can publish the
        alert span derived from it, so any alert frame on the bus always
        follows the point context that triggered it.
        """
        if self._tracer is not None:
            raise RuntimeError("service is already attached to a tracer")
        self._tracer = tracer
        tracer.add_subscriber(self._feed)
        self.observatory.attach(tracer)
        return self

    def detach(self) -> None:
        """Unsubscribe from the tracer without ending the event stream.

        SSE clients stay connected (the bus keeps serving history and
        keepalives); ``attach`` may be called again with a new tracer.
        The benchmark harness uses this to swap per-rep telemetry
        sessions through one persistent service.
        """
        tracer, self._tracer = self._tracer, None
        if tracer is not None:
            self.observatory.detach()
            tracer.remove_subscriber(self._feed)

    def close(self) -> None:
        """Publish ``bye`` and detach from the tracer (idempotent)."""
        self.bus.publish(
            "bye", {"step": self.observatory.step, "seen": self._seen}
        )
        self.detach()

    # -- the live feed (runs under the tracer's emit lock) -----------------

    def _feed(self, record: dict) -> None:
        if record.get("type") != "span":
            return
        name = record["name"]
        if name == ALERT_SPAN_NAME:
            self.bus.publish("alert", dict(record["attrs"]))
            return
        if name == REQUEST_SPAN_NAME:
            # A completed request's latency decomposition: retain for
            # /traces and broadcast, but keep it out of the point/series
            # cadence (it is an envelope around spans already counted).
            attrs = dict(record["attrs"])
            self.traces.append(attrs)
            self.bus.publish("trace", attrs)
            return
        if name.startswith("observatory."):
            return
        self._seen += 1
        self.sessions.observe(record, self._seen)
        if self._seen % self.emit_every == 0:
            self.bus.publish("point", self._point())

    def _point(self) -> dict:
        store = self.observatory.store
        series = {}
        for name in WATCHED_SERIES:
            aggregate = store.series(name).window(self.window)
            series[name] = {
                "count": aggregate.count,
                "total": aggregate.total,
                "mean": aggregate.mean,
                "last": aggregate.last,
            }
        return {
            "step": self.observatory.step,
            "seen": self._seen,
            "window": self.window,
            "series": series,
            "posture": self.observatory.posture(),
        }

    # -- endpoint payloads -------------------------------------------------

    def hello(self) -> dict:
        """The per-connection SSE handshake frame payload."""
        return {
            "schema": SSE_SCHEMA_VERSION,
            "events": list(SSE_EVENT_TYPES),
            "series": list(WATCHED_SERIES),
            "emit_every": self.emit_every,
            "step": self.observatory.step,
            "posture": self.observatory.posture(),
        }

    def status(self) -> dict:
        return {
            "service": "repro-observatory",
            "schema": SSE_SCHEMA_VERSION,
            "attached": self._tracer is not None,
            "step": self.observatory.step,
            "seen": self._seen,
            "alerts": len(self.observatory.alerts),
            "sessions": len(self.sessions.labels()),
            "events_dropped": self.bus.dropped,
            "posture": self.observatory.posture(),
            "endpoints": ["/", "/metrics", "/events", "/sessions",
                          "/sessions/<label>", "/traces", "/incident"],
        }

    def trace_index(self) -> dict:
        """The retained request traces, oldest first."""
        traces = list(self.traces)
        return {
            "schema": SSE_SCHEMA_VERSION,
            "count": len(traces),
            "traces": traces,
        }

    def openmetrics(self) -> str:
        from ... import instrument

        return render_openmetrics(instrument.snapshot())

    def incident_bundle(self, note: str = "") -> dict:
        if self._tracer is None:
            raise RuntimeError("service is not attached to a tracer")
        return build_incident_bundle(
            self._tracer,
            self.observatory,
            self.sessions,
            rules_factory=self._rules_factory,
            detectors_factory=self._detectors_factory,
            note=note,
        )


class _Handler(BaseHTTPRequestHandler):
    """Stdlib request handler over the attached :class:`ObservatoryService`."""

    server_version = "repro-observatory"

    @property
    def service(self) -> ObservatoryService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = urlsplit(self.path).path
        try:
            if path == "/":
                self._json(self.service.status())
            elif path == "/metrics":
                body = self.service.openmetrics().encode("utf-8")
                self._respond(200, OPENMETRICS_CONTENT_TYPE, body)
            elif path == "/events":
                self._sse()
            elif path == "/sessions":
                self._json({"sessions": self.service.sessions.summary()})
            elif path.startswith("/sessions/"):
                label = unquote(path[len("/sessions/"):])
                timeline = self.service.sessions.timeline(label)
                if timeline is None:
                    self._json({"error": f"unknown session {label!r}"}, 404)
                else:
                    self._json(timeline)
            elif path == "/traces":
                self._json(self.service.trace_index())
            elif path == "/incident":
                self._json(self.service.incident_bundle())
            else:
                self._json({"error": f"no such endpoint {path!r}"}, 404)
        except (BrokenPipeError, ConnectionResetError):
            pass

    # -- helpers -----------------------------------------------------------

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        self._respond(status, "application/json; charset=utf-8", body)

    def _sse(self) -> None:
        bus = self.service.bus
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream; charset=utf-8")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self._sse_frame("hello", 0, self.service.hello())
        last_seq = 0
        idle = 0.0
        while True:
            events, lost = bus.since(last_seq)
            if not events:
                time.sleep(SSE_POLL_SECONDS)
                idle += SSE_POLL_SECONDS
                if idle >= SSE_KEEPALIVE_SECONDS:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    idle = 0.0
                continue
            idle = 0.0
            if lost:
                self.wfile.write(
                    f": dropped {lost} events (slow consumer)\n\n".encode()
                )
            for event in events:
                last_seq = event["seq"]
                self._sse_frame(event["event"], event["seq"], event["data"])
                if event["event"] == "bye":
                    return

    def _sse_frame(self, event: str, seq: int, data: dict) -> None:
        frame = (
            f"event: {event}\nid: {seq}\n"
            f"data: {json.dumps(data, sort_keys=True)}\n\n"
        )
        self.wfile.write(frame.encode("utf-8"))
        self.wfile.flush()


def create_server(
    service: ObservatoryService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """A threading HTTP server bound to *host:port* (0 = ephemeral) serving
    *service*; call ``serve_forever`` on it (usually from a thread)."""
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


# -- the end-to-end serve smoke -------------------------------------------


class _SseCollector(threading.Thread):
    """Minimal SSE client: collects frames from ``/events`` until ``bye``."""

    def __init__(self, url: str):
        super().__init__(name="sse-collector", daemon=True)
        self.url = url
        self.frames: list[dict] = []
        self.hello_seen = threading.Event()
        self.error: str | None = None

    def run(self) -> None:
        from urllib.request import urlopen

        event_type: str | None = None
        data: str | None = None
        try:
            with urlopen(self.url) as response:
                for raw in response:
                    line = raw.decode("utf-8").rstrip("\n")
                    if line.startswith(":"):
                        continue
                    if line.startswith("event: "):
                        event_type = line[len("event: "):]
                    elif line.startswith("data: "):
                        data = line[len("data: "):]
                    elif not line:
                        if event_type is not None and data is not None:
                            frame = {
                                "event": event_type,
                                "data": json.loads(data),
                            }
                            self.frames.append(frame)
                            if event_type == "hello":
                                self.hello_seen.set()
                            if event_type == "bye":
                                return
                        event_type = data = None
        except Exception as exc:
            self.error = f"{type(exc).__name__}: {exc}"

    def of_type(self, event_type: str) -> list[dict]:
        return [f["data"] for f in self.frames if f["event"] == event_type]


def _fetch_json(url: str) -> dict:
    from urllib.request import urlopen

    with urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


def run_serve_smoke(
    records: int = 150,
    seed: int = 3,
    threads: int = 4,
    ops: int = 96,
    profile: str = "mixed",
    echo=print,
) -> dict:
    """Boot the service, drive it with the concurrent load generator, and
    assert the full pipeline end to end over real HTTP.

    The checks, in order: the SSE stream delivers the handshake and the
    injected tracker cohort's critical ``tracker-probe`` alert; the SSE
    alert stream is *exactly* the live observatory's span-alert list (no
    alert lost or reordered crossing the bus); ``/metrics`` serves the
    OpenMetrics content type and strictly parses back; ``/sessions``
    shows the cohort's timeline with its refusals; and the ``/incident``
    bundle's embedded replay proof verifies.  Raises
    :class:`ServeSmokeError` on the first violated property.
    """
    from ... import instrument

    service = ObservatoryService()
    server = create_server(service)
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    server_thread = threading.Thread(
        target=server.serve_forever, name="observatory-http", daemon=True
    )
    summary: dict = {}
    with instrument.session() as tracer:
        service.attach(tracer)
        server_thread.start()
        collector = _SseCollector(f"{base}/events")
        try:
            collector.start()
            if not collector.hello_seen.wait(timeout=10.0):
                raise ServeSmokeError(
                    f"SSE handshake did not arrive (client error: "
                    f"{collector.error})"
                )
            generator = LoadGenerator(
                records=records, seed=seed, threads=threads, ops=ops,
                profile=profile, tracker_cohort=True,
            )
            report = generator.run()
            echo(
                f"load: {report['ops']} ops over {report['threads']} threads "
                f"({report['qdb_ops']} qdb / {report['pir_ops']} pir, "
                f"{report['refusals']} refusals, "
                f"cohort {report['cohort']['attacks']} attacks)"
            )
            metrics_text, metrics_type = _fetch_metrics(base)
            sessions_payload = _fetch_json(f"{base}/sessions")
            cohort_timeline = _fetch_json(
                f"{base}/sessions/{generator.cohort_label}"
            )
            bundle = _fetch_json(f"{base}/incident")
        finally:
            service.close()
            collector.join(timeout=10.0)
            server.shutdown()
            server.server_close()

        if collector.error:
            raise ServeSmokeError(f"SSE client failed: {collector.error}")
        if collector.is_alive():
            raise ServeSmokeError("SSE client never saw the bye frame")

        sse_alerts = collector.of_type("alert")
        live_alerts = [
            alert for alert in service.observatory.alerts
            if alert.source == "span"
        ]
        if [Alert.from_span_attrs(a) for a in sse_alerts] != live_alerts:
            raise ServeSmokeError(
                f"SSE alert stream diverged from the live observatory: "
                f"{len(sse_alerts)} over SSE vs {len(live_alerts)} live"
            )
        tracker_hits = [
            a for a in sse_alerts
            if a["alert"] == "tracker-probe" and a["severity"] == "critical"
        ]
        if not tracker_hits:
            raise ServeSmokeError(
                f"injected tracker cohort produced no tracker-probe alert "
                f"over SSE (alerts seen: {[a['alert'] for a in sse_alerts]})"
            )
        if metrics_type != OPENMETRICS_CONTENT_TYPE:
            raise ServeSmokeError(
                f"/metrics content type {metrics_type!r} != "
                f"{OPENMETRICS_CONTENT_TYPE!r}"
            )
        parse_openmetrics(metrics_text)  # raises on non-compliant exposition
        labels = [s["session"] for s in sessions_payload["sessions"]]
        if generator.cohort_label not in labels:
            raise ServeSmokeError(
                f"cohort session missing from /sessions (saw {labels})"
            )
        if cohort_timeline["refusals"] < 1:
            raise ServeSmokeError(
                "cohort timeline shows no refusals; the tracker's padding "
                "probes should have tripped the size control"
            )
        if not bundle["replay"]["verified"]:
            raise ServeSmokeError(
                f"incident bundle replay proof failed: "
                f"{bundle['replay']['detail']}"
            )
        points = collector.of_type("point")
        if not points:
            raise ServeSmokeError("no point frames arrived over SSE")

        summary = {
            "ops": report["ops"],
            "sse_frames": len(collector.frames),
            "points": len(points),
            "alerts": [a["alert"] for a in sse_alerts],
            "tracker_alerts": len(tracker_hits),
            "sessions": labels,
            "bundle_spans": bundle["spans"],
            "replay": bundle["replay"]["detail"],
        }
    echo(
        f"serve smoke OK: {summary['sse_frames']} SSE frames "
        f"({summary['points']} points, {len(summary['alerts'])} alerts, "
        f"{summary['tracker_alerts']} tracker-probe), "
        f"{len(summary['sessions'])} sessions, {summary['replay']}"
    )
    return summary


def _fetch_metrics(base: str) -> tuple[str, str]:
    from urllib.request import urlopen

    with urlopen(f"{base}/metrics") as response:
        return (
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )
