"""Per-session timelines reconstructed live from span attributes.

The paper's user dimension is about *who is asking*: the engine tags
every ``qdb.query`` / ``qdb.ask_batch`` span with the calling thread's
session label (:meth:`~repro.qdb.engine.StatisticalDatabase.session`),
and :class:`SessionTimelines` folds those spans — as they arrive over
the live tracer feed — into one bounded event timeline per session:
queries asked, refusals (with the refusing policy and reason), degraded
answers, and batch submissions.  The observatory service's
``/sessions`` endpoints are thin JSON views over this structure, and the
incident bundle embeds its summary so a post-hoc reviewer can see which
session was probing when an alert fired.

Timeline events carry the frozen field set :data:`SESSION_EVENT_FIELDS`;
like the span and alert schemas, additions are allowed but removals and
type changes are not.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = [
    "ANONYMOUS_SESSION",
    "SESSION_EVENT_FIELDS",
    "SESSION_EVENT_KINDS",
    "SessionTimelines",
]

#: Label grouping spans that carry no ``session`` attribute.
ANONYMOUS_SESSION = "(anonymous)"

#: Timeline event kinds, in escalation order.
SESSION_EVENT_KINDS = ("query", "batch", "degraded", "refusal")

#: Frozen field schema of one timeline event (allowed types per field).
SESSION_EVENT_FIELDS: dict[str, tuple[type, ...]] = {
    "kind": (str,),
    "step": (int,),
    "span_id": (int,),
    "detail": (str,),
}


class _Timeline:
    """One session's bounded event history plus lifetime counts."""

    __slots__ = ("label", "events", "first_step", "last_step",
                 "queries", "refusals", "degraded", "batches")

    def __init__(self, label: str, capacity: int):
        self.label = label
        self.events: deque[dict] = deque(maxlen=capacity)
        self.first_step = 0
        self.last_step = 0
        self.queries = 0
        self.refusals = 0
        self.degraded = 0
        self.batches = 0

    def record(self, event: dict) -> None:
        step = event["step"]
        if not self.first_step:
            self.first_step = step
        self.last_step = step
        self.events.append(event)

    def summary(self) -> dict:
        return {
            "session": self.label,
            "queries": self.queries,
            "refusals": self.refusals,
            "degraded": self.degraded,
            "batches": self.batches,
            "first_step": self.first_step,
            "last_step": self.last_step,
        }


class SessionTimelines:
    """Fold span records into per-session query/refusal/degrade timelines.

    ``observe`` is called from the tracer's subscriber dispatch (one
    record at a time, already serialized); the internal lock exists for
    the *readers* — HTTP threads rendering ``/sessions`` concurrently
    with ingestion — and is never held while calling out.
    """

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self._sessions: dict[str, _Timeline] = {}
        self._lock = threading.Lock()

    def observe(self, record: dict, step: int) -> None:
        """Ingest one span record at the service's *step* counter."""
        if record.get("type") != "span":
            return
        name = record["name"]
        if name == "qdb.query":
            self._observe_query(record, step)
        elif name == "qdb.ask_batch":
            self._observe_batch(record, step)

    def _timeline(self, label: str) -> _Timeline:
        timeline = self._sessions.get(label)
        if timeline is None:
            timeline = _Timeline(label, self.capacity)
            self._sessions[label] = timeline
        return timeline

    def _observe_query(self, record: dict, step: int) -> None:
        attrs = record["attrs"]
        label = attrs.get("session") or ANONYMOUS_SESSION
        if attrs.get("refused") is True:
            kind = "refusal"
            detail = "{policy}: {reason} [{query}]".format(
                policy=attrs.get("policy", "?"),
                reason=attrs.get("reason", "?"),
                query=attrs.get("query", "?"),
            )
        elif attrs.get("degraded") is True:
            kind = "degraded"
            detail = attrs.get("query", "")
        else:
            kind = "query"
            detail = attrs.get("query", "")
        event = {
            "kind": kind,
            "step": step,
            "span_id": record["span_id"],
            "detail": detail,
        }
        with self._lock:
            timeline = self._timeline(label)
            timeline.queries += 1
            if kind == "refusal":
                timeline.refusals += 1
            elif kind == "degraded":
                timeline.degraded += 1
            timeline.record(event)

    def _observe_batch(self, record: dict, step: int) -> None:
        attrs = record["attrs"]
        label = attrs.get("session") or ANONYMOUS_SESSION
        event = {
            "kind": "batch",
            "step": step,
            "span_id": record["span_id"],
            "detail": (
                f"{attrs.get('n_queries', 0)} queries, "
                f"{attrs.get('refused', 0)} refused"
            ),
        }
        with self._lock:
            timeline = self._timeline(label)
            timeline.batches += 1
            timeline.record(event)

    # -- read-out ----------------------------------------------------------

    def labels(self) -> list[str]:
        """Sorted labels of every observed session."""
        with self._lock:
            return sorted(self._sessions)

    def summary(self) -> list[dict]:
        """Per-session lifetime counts, sorted by label."""
        with self._lock:
            return [
                self._sessions[label].summary()
                for label in sorted(self._sessions)
            ]

    def timeline(self, label: str) -> dict | None:
        """One session's summary plus its retained events (None if unknown)."""
        with self._lock:
            timeline = self._sessions.get(label)
            if timeline is None:
                return None
            out = timeline.summary()
            out["events"] = [dict(event) for event in timeline.events]
            return out

    def __repr__(self) -> str:
        return f"SessionTimelines(sessions={len(self._sessions)})"
