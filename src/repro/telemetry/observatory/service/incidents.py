"""Incident bundles: one-call export of trace + narration + replay proof.

An incident bundle is the observatory service's forensic artifact: a
single JSON document holding the retained trace capture, the alert
narration, the per-session activity summary, the posture at export time
— and an embedded *replay proof*: the bundle's own trace is replayed
through a fresh observatory and the re-derived alert set is compared to
the alert spans the bundle carries.  A bundle whose proof verifies is
self-authenticating: any reviewer can re-run
:func:`verify_incident_bundle` offline and reproduce exactly the alerts
the live service fired, which is the paper-framework requirement that a
claimed privacy incident be *demonstrable from the record*, not merely
asserted.

Only span-sourced alerts participate (metric-sourced alerts cannot be
re-derived from a trace, by design), and a bundle exported after the
tracer's bounded buffer dropped spans is honestly marked unverifiable
rather than silently passing.
"""

from __future__ import annotations

from ..observatory import replay_trace
from ..rules import ALERT_SPAN_NAME, Alert

__all__ = [
    "INCIDENT_BUNDLE_SCHEMA",
    "build_incident_bundle",
    "narrate_alert",
    "verify_incident_bundle",
]

#: Bundle schema version; bump on structural changes.
INCIDENT_BUNDLE_SCHEMA = 1


def narrate_alert(attrs: dict) -> str:
    """One human-readable line for an alert span's attributes.

    Pure formatting over the frozen ``ALERT_ATTRS`` attribute set;
    missing attributes render as ``?`` / empty rather than raising, so
    a narration over a partially-schema-drifted capture still produces
    a readable (if visibly degraded) incident log instead of crashing
    the bundle export.
    """
    return (
        f"[{attrs.get('severity', '?'):<8s}] step {attrs.get('step', 0):>5d} "
        f"{attrs.get('alert', '?')} ({attrs.get('dimension', '?')}): "
        f"{attrs.get('detail', '')}"
    )


def build_incident_bundle(
    tracer,
    observatory,
    sessions=None,
    rules_factory=None,
    detectors_factory=None,
    note: str = "",
) -> dict:
    """Export the current incident state as one self-verifying document.

    The trace is the tracer's retained record buffer (a bounded ring —
    ``spans_dropped`` reports what fell out), the alerts are the
    ``observatory.alert`` spans inside it, and ``replay`` is the embedded
    proof computed by :func:`verify_incident_bundle` with the same rule/
    detector factories the live observatory was built from.
    """
    trace = [dict(record) for record in tracer.finished]
    alert_attrs = [
        dict(record["attrs"]) for record in trace
        if record.get("type") == "span" and record["name"] == ALERT_SPAN_NAME
    ]
    bundle = {
        "type": "incident_bundle",
        "schema": INCIDENT_BUNDLE_SCHEMA,
        "note": note,
        "step": observatory.step,
        "posture": observatory.posture(),
        "spans": len(trace),
        "spans_dropped": tracer.spans_dropped,
        "trace": trace,
        "alerts": alert_attrs,
        "narration": [narrate_alert(attrs) for attrs in alert_attrs],
        "sessions": sessions.summary() if sessions is not None else [],
    }
    bundle["replay"] = verify_incident_bundle(
        bundle, rules_factory=rules_factory,
        detectors_factory=detectors_factory,
    )
    return bundle


def verify_incident_bundle(
    bundle: dict, rules_factory=None, detectors_factory=None
) -> dict:
    """Replay the bundle's trace; compare re-derived alerts to recorded ones.

    Returns the proof record: ``verified`` is True exactly when a fresh
    observatory (built from the given factories, or the stock rules and
    detectors) replaying ``bundle["trace"]`` derives — in order — the
    same span-sourced alerts the bundle's alert spans record.  A bundle
    exported after buffer overflow (``spans_dropped > 0``) cannot verify:
    the dropped prefix may hold the evidence, so the proof says so
    instead of comparing a partial record.
    """
    rules = rules_factory() if rules_factory is not None else None
    detectors = detectors_factory() if detectors_factory is not None else None
    recorded = [
        Alert.from_span_attrs(attrs)
        for attrs in bundle.get("alerts", [])
        if attrs.get("source", "span") == "span"
    ]
    if bundle.get("spans_dropped", 0):
        return {
            "verified": False,
            "alerts_recorded": len(recorded),
            "alerts_replayed": 0,
            "detail": (
                f"{bundle['spans_dropped']} span(s) fell out of the trace "
                f"buffer before export; replay evidence is incomplete"
            ),
        }
    replayed = replay_trace(
        bundle.get("trace", []), rules=rules, detectors=detectors
    ).span_alerts()
    verified = replayed == recorded
    if verified:
        detail = (
            f"replay re-derived all {len(recorded)} span-sourced alert(s)"
        )
    else:
        detail = (
            f"replay drift: recorded {len(recorded)} alert(s), "
            f"re-derived {len(replayed)}"
        )
    return {
        "verified": verified,
        "alerts_recorded": len(recorded),
        "alerts_replayed": len(replayed),
        "detail": detail,
    }
