"""The ``make observe-smoke`` golden-trace gate.

A short instrumented scenario — the telemetry smoke workload plus a
deliberately skewed PIR probe sequence — was captured once with the
observatory attached and committed at ``tests/data/observatory_golden.jsonl``.
:func:`run_observe_smoke` replays that committed capture and asserts:

* every ``observatory.alert`` span in it validates against the frozen
  alert schema (:func:`~.rules.validate_alert_record`) *and* the span
  schema;
* replaying the trace re-derives **exactly** the frozen alert set
  :data:`EXPECTED_ALERTS` — same names, severities, dimensions and steps;
* the re-derived alerts equal the alert spans recorded live, field for
  field — the observatory's determinism contract.

Any drift — a detector threshold change, a new span the scenario emits,
an attribute rename — fails the gate, which is the point: alerts are part
of the trace wire format now.  To regenerate after an *intentional*
change::

    PYTHONPATH=src python -c "
    from repro.telemetry.observatory.smoke import capture_golden
    capture_golden('tests/data/observatory_golden.jsonl')"

then update :data:`EXPECTED_ALERTS` to match the printed alert set.
"""

from __future__ import annotations

from pathlib import Path

from .. import instrument
from ..report import read_trace
from .observatory import Observatory, replay_trace
from .rules import Alert, AlertSchemaError, validate_alert_record

__all__ = [
    "EXPECTED_ALERTS",
    "ObserveSmokeError",
    "capture_golden",
    "default_golden_path",
    "run_observe_smoke",
]

#: The frozen alert set of the committed golden trace, in firing order:
#: ``(alert, severity, dimension, step)``.
EXPECTED_ALERTS: tuple[tuple[str, str, str, int], ...] = (
    ("tracker-probe", "critical", "respondent", 2),
    ("tracker-probe", "critical", "respondent", 5),
    ("tracker-probe", "critical", "respondent", 8),
    ("qdb-refusal-rate", "warning", "respondent", 11),
    ("pir-access-skew", "warning", "respondent", 53),
)


class ObserveSmokeError(RuntimeError):
    """The golden trace failed the observatory's determinism gate."""


def default_golden_path() -> Path:
    """The committed golden trace, resolved from the repo layout.

    Prefers the working directory (the Makefile runs from the repo root)
    and falls back to walking up from this file (``src/repro/...`` →
    repo root) so the gate also runs from other directories.
    """
    relative = Path("tests/data/observatory_golden.jsonl")
    if relative.exists():
        return relative
    return Path(__file__).resolve().parents[4] / relative


def _scenario(records: int, seed: int) -> None:
    """The golden workload: the smoke scenario plus a skewed PIR probe."""
    from ...pir.itpir import TwoServerXorPIR
    from ..smoke import _scenario as telemetry_scenario

    telemetry_scenario(records, seed)

    # An isolation-attack-shaped access profile: one block drawing most
    # of the retrieval mass through single retrievals, so the golden
    # trace also exercises the PIR skew detector.  The hammering must be
    # insistent enough to outweigh the keyword lookups above in the
    # detector's cumulative tally.
    pir = TwoServerXorPIR(list(range(16)))
    for i, index in enumerate([5] * 14 + [0, 1, 2, 3, 4]):
        pir.retrieve(index, rng=seed + i)


def capture_golden(
    path: str | Path, records: int = 150, seed: int = 3
) -> Observatory:
    """(Re)capture the golden trace; prints the alert set to freeze."""
    observatory = Observatory()
    with instrument.session(Path(path)) as tracer:
        observatory.attach(tracer)
        try:
            _scenario(records, seed)
        finally:
            observatory.detach()
    for alert in observatory.alerts:
        print((alert.name, alert.severity, alert.dimension, alert.step))
    return observatory


def run_observe_smoke(trace_path: str | Path | None = None) -> dict:
    """Validate the committed golden trace; raises on any drift."""
    trace_path = Path(trace_path) if trace_path else default_golden_path()
    if not trace_path.exists():
        raise ObserveSmokeError(f"golden trace missing: {trace_path}")
    spans = read_trace(trace_path, validate=True)

    alert_spans = [s for s in spans if s["name"] == "observatory.alert"]
    for record in alert_spans:
        try:
            validate_alert_record(record)
        except AlertSchemaError as exc:
            raise ObserveSmokeError(f"malformed alert span: {exc}") from exc

    observatory = replay_trace(spans)
    replayed = observatory.span_alerts()
    derived = tuple(
        (a.name, a.severity, a.dimension, a.step) for a in replayed
    )
    if derived != EXPECTED_ALERTS:
        raise ObserveSmokeError(
            "replayed alert set drifted from the frozen expectation:\n"
            f"  expected: {EXPECTED_ALERTS}\n"
            f"  derived:  {derived}"
        )
    recorded = [Alert.from_span_attrs(s["attrs"]) for s in alert_spans
                if s["attrs"]["source"] == "span"]
    if replayed != recorded:
        raise ObserveSmokeError(
            f"recorded alert spans ({len(recorded)}) do not match the "
            f"re-derived alerts ({len(replayed)})"
        )
    return {
        "trace": str(trace_path),
        "spans": len(spans),
        "alerts": len(replayed),
        "alert_names": sorted({a.name for a in replayed}),
        "posture": observatory.posture(),
    }
